"""Section 4.4 — "Multiple masks for higher bus speed".

"At the peak traffic volume of high throughput buses ... a mask is
consumed every bus cycle and a new mask is needed after each bus
cycle. ... The number of masks necessary is AES latency / bus cycle."

This bench sweeps the bus cycle time and finds, empirically, the
smallest mask-array size that sustains a peak-rate burst with zero
stalls — which must equal the paper's formula — and shows the stall
penalty of undershooting by one.
"""


from repro.analysis.report import format_table
from repro.core.masks import MaskTimingArray, max_useful_masks

AES_LATENCY = 80
BURST = 64  # messages at peak rate


def stall_cycles(num_masks, bus_cycle):
    array = MaskTimingArray(num_masks, AES_LATENCY)
    return sum(array.consume(t)
               for t in range(0, BURST * bus_cycle, bus_cycle))


def minimum_masks(bus_cycle):
    for count in range(1, 65):
        if stall_cycles(count, bus_cycle) == 0:
            return count
    return None


def collect():
    rows = []
    outcomes = {}
    for bus_cycle in (5, 8, 10, 16, 20, 40, 80):
        formula = max_useful_masks(AES_LATENCY, bus_cycle)
        empirical = minimum_masks(bus_cycle)
        shortfall = stall_cycles(max(1, empirical - 1), bus_cycle)
        rows.append([f"{bus_cycle} cy", formula, empirical,
                     shortfall])
        outcomes[bus_cycle] = (formula, empirical)
    return rows, outcomes


def test_sec44_bus_speed(benchmark, emit):
    rows, outcomes = collect()
    table = format_table(
        "Section 4.4 — masks needed vs bus cycle time "
        f"(AES latency {AES_LATENCY} cy, {BURST}-message peak burst)",
        ["bus cycle", "formula ceil(AES/bus)", "empirical minimum",
         "stalls with one fewer"], rows)
    emit(table, "sec44_bus_speed.txt")
    for bus_cycle, (formula, empirical) in outcomes.items():
        assert empirical == formula, bus_cycle
    # Faster buses need more masks; the Figure-5 machine needs 8.
    assert outcomes[5][0] == 16
    assert outcomes[10][0] == 8
    assert outcomes[80][0] == 1
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
