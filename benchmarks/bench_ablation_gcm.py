"""Ablation (section 4.3) — CBC-chained masks vs GCM for the bus.

"There are also newly developed algorithms that can provide encryption
and fast MACs calculation involving only one invoking of AES such as
the GCM [13] algorithm."

Both channels run the same functional message stream; we count AES
invocations (the expensive unit — GHASH's GF(2^128) multiply is cheap
dedicated hardware) and verify that both chains detect a drop attack.
"""


from repro.analysis.report import format_table
from repro.core.bus_crypto import GroupChannel
from repro.core.gcm_channel import GcmGroupChannel

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])
MESSAGES = 200


def drive(channel_factory):
    sender = channel_factory()
    receiver = channel_factory()
    start = sender.aes_invocations
    for index in range(MESSAGES):
        wire = sender.encrypt_message(index % 4,
                                      bytes([index % 251] * 32))
        receiver.decrypt_message(index % 4, wire)
    spent = sender.aes_invocations - start
    # Drop detection check: a desynchronized replica diverges.
    lagging = channel_factory()
    probe = channel_factory()
    probe.encrypt_message(0, bytes(32))  # lagging never sees this
    detects_drop = probe.mac_digest() != lagging.mac_digest()
    return spent, detects_drop


def collect():
    cbc_spent, cbc_detects = drive(
        lambda: GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=2))
    gcm_spent, gcm_detects = drive(
        lambda: GcmGroupChannel(KEY, ENC_IV, AUTH_IV))
    return {
        "cbc": (cbc_spent, cbc_detects),
        "gcm": (gcm_spent, gcm_detects),
    }


def test_ablation_gcm(benchmark, emit):
    outcome = collect()
    cbc_spent, cbc_detects = outcome["cbc"]
    gcm_spent, gcm_detects = outcome["gcm"]
    rows = [
        ["CBC masks + chained CBC-MAC (SENSS)", MESSAGES,
         cbc_spent, f"{cbc_spent / MESSAGES:.1f}",
         "yes" if cbc_detects else "NO"],
        ["CTR + chained GHASH (GCM, sec 4.3)", MESSAGES,
         gcm_spent, f"{gcm_spent / MESSAGES:.1f}",
         "yes" if gcm_detects else "NO"],
    ]
    table = format_table(
        "Ablation (sec 4.3) — AES invocations per sender: CBC vs GCM "
        "(32B messages = 2 AES blocks)",
        ["scheme", "messages", "AES calls", "calls/message",
         "chained detection"], rows)
    emit(table, "ablation_gcm.txt")
    assert cbc_detects and gcm_detects
    # The paper's point: GCM halves the AES work (2 blocks/message
    # instead of 2 mask + 2 MAC blocks).
    assert gcm_spent == cbc_spent // 2
    benchmark.pedantic(collect, rounds=1, iterations=1)
