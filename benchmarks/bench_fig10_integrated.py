"""Figure 10 — SENSS integrated with cache-to-memory protection.

Paper setup: 1 MB L2, fast memory (OTP) encryption with a perfect
sequence-number cache, CHash memory authentication. Reported: %
slowdown (SENSS-only bars ~0; SENSS+Mem_OTP_CHash ~12% average) and %
bus traffic increase (~58% average, dominated by hash-tree fetches and
hash coherence).
"""


from repro.analysis.report import format_table
from repro.smp.metrics import (average, slowdown_percent,
                               traffic_increase_percent)

from conftest import baseline_config, run, senss_config, splash2_names

CPUS = 4
L2_MB = 1


def integrated_config():
    return senss_config(CPUS, L2_MB).with_memprotect(
        encryption_enabled=True, integrity_enabled=True)


def collect():
    slowdown_rows, traffic_rows = [], []
    senss_slow, integ_slow, senss_traf, integ_traf = [], [], [], []
    hash_stats = []
    for name in splash2_names():
        base = run(name, baseline_config(CPUS, L2_MB))
        senss_only = run(name, senss_config(CPUS, L2_MB))
        integrated = run(name, integrated_config())
        senss_slow.append(slowdown_percent(base, senss_only))
        integ_slow.append(slowdown_percent(base, integrated))
        senss_traf.append(traffic_increase_percent(base, senss_only))
        integ_traf.append(traffic_increase_percent(base, integrated))
        slowdown_rows.append([name, f"{senss_slow[-1]:+.3f}",
                              f"{integ_slow[-1]:+.2f}"])
        traffic_rows.append([name, f"{senss_traf[-1]:+.3f}",
                             f"{integ_traf[-1]:+.2f}"])
        hash_stats.append(
            (name, integrated.stat("memprotect.hash_fetches"),
             integrated.stat("memprotect.hash_updates"),
             integrated.stat("memprotect.pad_requests"),
             integrated.stat("memprotect.pad_invalidates")))
    slowdown_rows.append(["average", f"{average(senss_slow):+.3f}",
                          f"{average(integ_slow):+.2f}"])
    traffic_rows.append(["average", f"{average(senss_traf):+.3f}",
                         f"{average(integ_traf):+.2f}"])
    return slowdown_rows, traffic_rows, hash_stats


def test_fig10_integrated(benchmark, emit):
    slowdown_rows, traffic_rows, hash_stats = collect()
    header = ["workload", "SENSS", "SENSS+Mem_OTP_CHash"]
    text = "\n\n".join([
        format_table("Figure 10a — % slowdown of the integrated system "
                     "(1M L2, 4P)", header, slowdown_rows),
        format_table("Figure 10b — % bus activity increase of the "
                     "integrated system", header, traffic_rows),
        format_table("Supporting detail — memory-protection traffic",
                     ["workload", "hash fetches", "hash updates",
                      "pad requests", "pad invalidates"],
                     [list(row) for row in hash_stats]),
    ])
    emit(text, "fig10_integrated.txt")
    senss_avg = float(slowdown_rows[-1][1])
    integrated_avg = float(slowdown_rows[-1][2])
    # Shape: memory protection dominates bus protection by far.
    assert abs(senss_avg) < 2.0
    assert integrated_avg > senss_avg + 5.0
    assert float(traffic_rows[-1][2]) > float(traffic_rows[-1][1]) + 10.0
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
