"""Extension — multiprogrammed SENSS groups (Figure 1 / section 4.2).

Two programs run side by side on disjoint CPU pairs. We compare
running them under a SINGLE group (one shared mask array and auth
counter) against proper per-program GROUPS (each maintains its own
masks, section 4.2). With a constrained mask supply the per-group
arrays partition the regeneration load, and each group's MAC rounds
track its own transfer count.
"""


from repro.analysis.report import format_table
from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.workloads.micro import ping_pong, producer_consumer
from repro.workloads.multiprogram import run_multiprogrammed

AUTH_INTERVAL = 10


def programs():
    return [ping_pong(rounds=300), producer_consumer(num_cpus=2,
                                                     items=300)]


def run_with_groups(shared_group: bool, num_masks):
    config = e6000_config(num_processors=4,
                          auth_interval=AUTH_INTERVAL)
    config = config.with_masks(num_masks)
    system = build_secure_system(config)
    group_ids = [0, 0] if shared_group else [0, 1]
    result, _ = run_multiprogrammed(system, programs(), group_ids)
    layer = system.bus.security_layer
    return result, layer


def collect():
    rows = []
    outcomes = {}
    for label, shared in (("single shared group", True),
                          ("per-program groups", False)):
        for masks in (1, None):
            result, layer = run_with_groups(shared, masks)
            mask_label = "1 mask" if masks else "perfect"
            stalls = result.stat("senss.mask_wait_cycles")
            rows.append([label, mask_label, result.cycles,
                         stalls, layer.auth_broadcasts])
            outcomes[(label, mask_label)] = (result.cycles, stalls,
                                             layer.auth_broadcasts)
    return rows, outcomes


def test_ext_multiprogram(benchmark, emit):
    rows, outcomes = collect()
    table = format_table(
        "Extension — multiprogrammed groups (2 programs x 2 CPUs, "
        f"interval {AUTH_INTERVAL})",
        ["grouping", "masks", "cycles", "mask stall cycles",
         "MAC broadcasts"], rows)
    emit(table, "ext_multiprogram.txt")
    single_stalls = outcomes[("single shared group", "1 mask")][1]
    split_stalls = outcomes[("per-program groups", "1 mask")][1]
    # Per-group mask state partitions the regeneration load: two
    # independent single-mask arrays stall less than one shared array
    # absorbing both programs' back-to-back transfers.
    assert split_stalls < single_stalls
    # Broadcast counts exist under both groupings.
    assert outcomes[("per-program groups", "perfect")][2] > 0
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
