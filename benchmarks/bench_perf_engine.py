"""Engine throughput — simulated accesses per wall-clock second.

Not a paper figure: this bench tracks the *simulator's* speed so
performance regressions in the hot path are caught. It times two
points on the three machine flavours and writes ``BENCH_engine.json``
at the repo root with absolute throughputs and the speedup over the
recorded pre-fastpath engine:

- **hit-heavy**: the fft kernel on the default 1 MB L2 (>90% hits) —
  dominated by the merged fast path;
- **miss-heavy**: the ocean model on a 64 KB L2 (~73% hits) —
  dominated by the slow path (coherence protocol, bus arbitration,
  security layers), the target of the DESIGN.md §6c streamlining.

It also records **per-backend points** (DESIGN.md §6f): the scalar,
vector and ``auto`` engines on the same hit-heavy and miss-heavy
baseline machines, asserting the backends simulate bit-identical
cycles and recording each backend's throughput (and the ratios vs
scalar) so either backend regressing is caught. The ``auto`` row
exercises the workload-probing dispatcher: on miss-heavy points it
must fall back to scalar, and ``auto_vs_scalar`` is gated at
``AUTO_MIN_VS_SCALAR`` so the probe itself staying cheap is what CI
enforces. When numpy is unavailable the vector/auto rows are skipped
— the committed report still carries them, and the ``--check``
comparison only walks points present in both. The legacy config
sections are pinned to the scalar backend so the longitudinal
time-series (and seed-speedup columns) keep one meaning whether or
not numpy is installed; ``backends.*`` is where backend choice is
the variable.

Run directly (``python benchmarks/bench_perf_engine.py --check``) the
module is a regression gate instead of a pytest bench: it re-measures
the throughput points fresh (six config points plus the per-backend
points) and compares them against the committed
``BENCH_engine.json``, failing if any point slowed down by more than
``--threshold`` percent (default 25). The committed file's own scale
is reused so the comparison is like-for-like. Two absolute gates ride
along: the committed miss-heavy ``auto_vs_scalar`` ratio must clear
its floor, and when the committed report carries a ``serving``
section the warm/cold speedup is re-measured fresh and gated at
``SERVING_MIN_SPEEDUP``.

It also records an **observability** point (DESIGN.md §6d): the
miss-heavy senss machine untraced, with a full ``repro.obs.Tracer``
attached, and with a category-filtered tracer (senss+memprotect
only), asserting the untraced run pays no measurable overhead for
the observer hooks (budget: 2%), that filtering lands under the
full-tracing cost, and that tracing leaves simulated cycles
bit-identical either way.

A **recording** point (docs/record_replay.md) rides along: the same
miss-heavy senss machine untraced vs with a full ``repro.obs.Recorder``
(lossless event log + stats snapshots) attached. Recording must never
change simulated cycles, and a run with recording disabled must cost
the interleaved noise floor (budget: 2%) — the same gate ``--check``
re-asserts against the committed report.

Finally it records a **serving** point (docs/serving.md): the same
sweep submitted ``SERVING_SUBMISSIONS`` times, cold (a fresh
``run_sweep`` pool per client, no cache) vs warm (one persistent
``repro.serve`` server over localhost HTTP, warm worker pool and
shared result cache, alternating tenants). Results must be
bit-identical between the two paths and the warm speedup is gated
at ``SERVING_MIN_SPEEDUP``.

Two **checkpointing** points (docs/checkpointing.md) ride along: a
scale-axis sweep run cold per point vs chained through the
prefix-sharing executor (each point forks the previous point's end
snapshot and simulates only its tail), and a fault campaign with the
shared clean prefix simulated once vs once per cell. Both must
produce bit-identical results to their cold legs and their speedups
are gated at ``CHECKPOINT_MIN_SPEEDUP`` / ``CAMPAIGN_MIN_SPEEDUP``;
``--check`` re-measures them (and the serving gate) in a fresh
subprocess (``--gates-only``) so the ratios aren't taxed by the heap
the in-process throughput sweep grows.

Reference throughputs were measured on the seed engine (linear-scan
scheduler, per-access NamedTuples, StatsRegistry on the hot path) on
the same machine/scale this bench defaults to; the speedup column is
only meaningful on comparable hardware, so the assertion is a loose
sanity floor rather than the ~3x the rewrite achieves here.
"""

import gc
import json
import os
import pathlib
import time

from conftest import (BENCH_SCALE, BENCH_SEED, baseline_config,
                     senss_config, workload)

from repro.config import KB, SystemConfig
from repro.sim.sweep import build_system
from repro.workloads.registry import generate

CPUS = 4
L2_MB = 1
WORKLOAD = "fft"
#: best-of-N per point; raise via env on noisy machines — the
#: observability/fault-hook budgets assert against the measured noise
#: floor, so they need enough repeats to find a quiet slot.
REPEATS = int(os.environ.get("REPRO_BENCH_REPEATS", "3"))

MISSHEAVY_WORKLOAD = "ocean"
MISSHEAVY_L2_KB = 64

#: accesses/second of the pre-fastpath seed engine at scale 0.5 on the
#: reference machine (best of 3); denominators for the speedup column.
SEED_THROUGHPUT = {
    "baseline": 191234,
    "senss": 176465,
    "integrated": 189117,
}

#: the auto dispatcher may cost at most the workload probe vs an
#: explicit scalar pin on miss-heavy points (gated by --check).
AUTO_MIN_VS_SCALAR = 0.9
#: the warm server must beat cold per-client sweeps by at least this
#: factor on repeated submissions (gated by --check).
SERVING_MIN_SPEEDUP = 3.0
SERVING_SUBMISSIONS = 3
SERVING_SEEDS = 4
SERVING_CPUS = 2
SERVING_WORKERS = 2

#: a prefix-sharing checkpoint chain over a scale axis must beat cold
#: per-point runs by at least this factor (gated by --check). The
#: measured margin is ~3x; the floor leaves room for machine noise.
CHECKPOINT_MIN_SPEEDUP = 2.0
CHECKPOINT_WORKLOAD = "radix"
CHECKPOINT_CPUS = 2
CHECKPOINT_SCALES = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8)
#: small caches keep the snapshot blob (dominated by resident
#: CacheLine objects) cheap to pickle — with the default 64K L1 /
#: 1M L2 the capture/restore pickling eats most of the tail savings.
CHECKPOINT_L1_KB = 8
CHECKPOINT_L2_KB = 32
#: a forked fault campaign must beat cold per-cell prefix simulation
#: by at least this factor (gated by --check).
CAMPAIGN_MIN_SPEEDUP = 2.0
CAMPAIGN_SCALE = 0.2
#: deep enough that the shared clean prefix dominates each cell, and
#: below every bus-fault cell's event count at CAMPAIGN_SCALE so all
#: cells actually fork (triggers past the event space run clean).
CAMPAIGN_TRIGGER = 70


def integrated_config() -> SystemConfig:
    return senss_config(CPUS, L2_MB).with_memprotect(
        encryption_enabled=True, integrity_enabled=True)


def measure(config: SystemConfig, bench_workload) -> dict:
    accesses = bench_workload.total_accesses
    best = None
    for _ in range(REPEATS):
        system = build_system(config)
        start = time.perf_counter()
        result = system.run(bench_workload)
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return {
        "accesses": accesses,
        "seconds": round(best, 4),
        "accesses_per_second": round(accesses / best),
        "cycles": result.cycles,
    }


def missheavy_configs():
    # Pinned to the scalar backend (like the hit-heavy config section):
    # these are the longitudinal time-series the seed/§6c comparisons
    # and the --check gate track, so they must not silently change
    # meaning with numpy's presence. backends.* holds the vector rows.
    small = MISSHEAVY_L2_KB * KB
    return {
        "baseline": baseline_config(CPUS, L2_MB).with_l2_size(small)
        .with_engine("scalar"),
        "senss": senss_config(CPUS, L2_MB).with_l2_size(small)
        .with_engine("scalar"),
        "integrated": integrated_config().with_l2_size(small)
        .with_engine("scalar"),
    }


def measure_backends(config, bench_workload) -> dict:
    """One per-backend section: each engine timed on the same machine.

    Returns ``{"scalar": {...}, "vector": {...}, "auto": {...},
    "vector_speedup": r, "auto_vs_scalar": r}`` (vector/auto entries
    absent without numpy). Simulated cycles must be bit-identical
    across backends — that is the vector engine's contract, and a
    throughput table comparing diverging simulations would be
    meaningless. The ``auto`` row times the workload-probing
    dispatcher (DESIGN.md §6f): on hit-heavy points it should track
    vector, on miss-heavy points it must fall back to scalar and
    cost no more than the probe — ``auto_vs_scalar`` is the gated
    ratio (:data:`AUTO_MIN_VS_SCALAR`).
    """
    from repro.smp.engine import numpy_available

    backends = ["scalar"]
    if numpy_available():
        backends.extend(["vector", "auto"])
    section = {}
    for backend in backends:
        section[backend] = measure(config.with_engine(backend),
                                   bench_workload)
    if "vector" in section:
        assert section["vector"]["cycles"] == \
            section["scalar"]["cycles"], section
        section["vector_speedup"] = round(
            section["vector"]["accesses_per_second"]
            / section["scalar"]["accesses_per_second"], 2)
    if "auto" in section:
        assert section["auto"]["cycles"] == \
            section["scalar"]["cycles"], section
        section["auto_vs_scalar"] = round(
            section["auto"]["accesses_per_second"]
            / section["scalar"]["accesses_per_second"], 2)
    return section


def measure_serving(scale: float) -> dict:
    """Warm-server vs cold-client throughput on repeated sweeps.

    **Cold**: each of ``SERVING_SUBMISSIONS`` clients runs the same
    sweep through :func:`run_sweep` with a fresh worker pool and no
    cache — the pre-service topology, paying interpreter spawn +
    imports + warmup per client. **Warm**: one ``repro.serve`` server
    (warm pool booted outside the timed region — that is the point:
    it survives across jobs) takes the same submissions over HTTP
    from two alternating tenants; the first executes once on the warm
    pool, the rest are served from the shared cache/dedup path.
    ``warm_speedup`` is the gated ratio
    (:data:`SERVING_MIN_SPEEDUP`).
    """
    import asyncio
    import tempfile
    import threading

    from repro.serve.client import ServeClient
    from repro.serve.http import ServeHTTP
    from repro.serve.scheduler import Scheduler
    from repro.sim.sweep import ResultCache, SweepPoint, run_sweep

    config = baseline_config(SERVING_CPUS, L2_MB)
    points = [SweepPoint(WORKLOAD, config, scale=scale, seed=seed)
              for seed in range(SERVING_SEEDS)]
    total_points = len(points) * SERVING_SUBMISSIONS

    start = time.perf_counter()
    cold_results = None
    for _ in range(SERVING_SUBMISSIONS):
        cold_results = run_sweep(points, cache=None, parallel=True,
                                 max_workers=SERVING_WORKERS)
    cold_s = time.perf_counter() - start

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    with tempfile.TemporaryDirectory() as cache_dir:
        async def boot():
            # Journal + point deadline on: the resilience layer
            # (docs/resilience.md) must be free when nothing fails,
            # so the gated speedup is measured with it enabled.
            scheduler = Scheduler(cache=ResultCache(cache_dir),
                                  max_workers=SERVING_WORKERS,
                                  journal=pathlib.Path(cache_dir)
                                  / "state",
                                  point_timeout=300.0)
            await scheduler.start()
            return await ServeHTTP(scheduler, port=0).start()

        server = asyncio.run_coroutine_threadsafe(
            boot(), loop).result(timeout=120)
        client = ServeClient(port=server.port)
        warm_results = None
        start = time.perf_counter()
        for index in range(SERVING_SUBMISSIONS):
            tenant = "alice" if index % 2 == 0 else "bob"
            job = client.submit(points, tenant=tenant)
            client.wait(job["id"])
            warm_results = client.results(job["id"])
        warm_s = time.perf_counter() - start
        asyncio.run_coroutine_threadsafe(server.drain(),
                                         loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)

    # Serving is only a win if it serves the same simulation.
    for served, direct in zip(warm_results, cold_results):
        assert served.cycles == direct.cycles, (served, direct)
        assert served.stats == direct.stats, (served, direct)

    cold_pps = total_points / cold_s
    warm_pps = total_points / warm_s
    return {
        "workload": WORKLOAD, "num_cpus": SERVING_CPUS,
        "scale": scale, "points_per_submission": len(points),
        "submissions": SERVING_SUBMISSIONS,
        "workers": SERVING_WORKERS,
        "cold": {"seconds": round(cold_s, 4),
                 "points_per_second": round(cold_pps, 2)},
        "warm": {"seconds": round(warm_s, 4),
                 "points_per_second": round(warm_pps, 2)},
        "warm_speedup": round(warm_pps / cold_pps, 2),
    }


def checkpoint_config() -> SystemConfig:
    from dataclasses import replace

    config = senss_config(CHECKPOINT_CPUS, L2_MB).with_l2_size(
        CHECKPOINT_L2_KB * KB)
    return replace(config, l1=replace(config.l1,
                                      size_bytes=CHECKPOINT_L1_KB * KB))


def measure_checkpointing() -> dict:
    """Cold per-point scale sweep vs the prefix-sharing chain.

    The scale axis is the shape ``run_sweep(checkpoint_dir=...)``
    chains: every point is the same trace prefix, so point *k* forks
    point *k-1*'s end snapshot and simulates only its tail. **Cold**
    runs every point from reset; **chain** runs :func:`run_chain`
    against a fresh store (the first point pays full price and seeds
    the chain). ``chain_speedup`` is the gated ratio
    (:data:`CHECKPOINT_MIN_SPEEDUP`).
    """
    import tempfile

    from repro.sim.checkpoint import CheckpointStore, run_chain
    from repro.sim.sweep import SweepPoint, run_point

    config = checkpoint_config()
    points = [SweepPoint(CHECKPOINT_WORKLOAD, config, scale=scale,
                         seed=BENCH_SEED) for scale in CHECKPOINT_SCALES]
    # Prime the workload memo outside both timed legs — trace
    # synthesis cost is identical either way and would drown the
    # executor difference at these point sizes.
    for point in points:
        generate(point.workload, CHECKPOINT_CPUS, scale=point.scale,
                 seed=point.seed)

    cold_s = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        cold_results = [run_point(point) for point in points]
        elapsed = time.perf_counter() - start
        cold_s = elapsed if cold_s is None else min(cold_s, elapsed)

    chain_s = None
    for _ in range(REPEATS):
        with tempfile.TemporaryDirectory() as root:
            start = time.perf_counter()
            chain = run_chain(points, CheckpointStore(root))
            elapsed = time.perf_counter() - start
        chain_s = elapsed if chain_s is None else min(chain_s, elapsed)

    # Prefix sharing is only a win if the forked runs ARE the runs.
    for direct, (forked, _, error) in zip(cold_results, chain):
        assert error is None, chain
        assert forked == direct, (forked, direct)

    return {
        "workload": CHECKPOINT_WORKLOAD, "num_cpus": CHECKPOINT_CPUS,
        "l1_kb": CHECKPOINT_L1_KB, "l2_kb": CHECKPOINT_L2_KB,
        "scales": list(CHECKPOINT_SCALES),
        "cold": {"seconds": round(cold_s, 4),
                 "points_per_second": round(len(points) / cold_s, 2)},
        "chain": {"seconds": round(chain_s, 4),
                  "points_per_second": round(len(points) / chain_s, 2)},
        "chain_speedup": round(cold_s / chain_s, 2),
    }


def measure_fault_campaign() -> dict:
    """Fault campaign with forked clean prefixes vs cold per cell.

    Every (kind, policy) cell of a campaign simulates the same clean
    prefix up to its trigger; with ``fork=True`` that prefix runs
    once and each cell restores the deepest snapshot preceding its
    trigger. Reports must match cell for cell modulo the fork
    bookkeeping keys. ``fork_speedup`` is the gated ratio
    (:data:`CAMPAIGN_MIN_SPEEDUP`).
    """
    from repro.faults.campaign import run_campaign
    from repro.faults.plan import FaultKind
    from repro.faults.recovery import POLICIES

    kwargs = dict(kinds=FaultKind.BUS, policies=POLICIES,
                  workload=CHECKPOINT_WORKLOAD, cpus=CHECKPOINT_CPUS,
                  scale=CAMPAIGN_SCALE, seed=BENCH_SEED,
                  trigger=CAMPAIGN_TRIGGER)

    cold_s = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        cold_report = run_campaign(fork=False, **kwargs)
        elapsed = time.perf_counter() - start
        cold_s = elapsed if cold_s is None else min(cold_s, elapsed)

    fork_s = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        fork_report = run_campaign(fork=True, **kwargs)
        elapsed = time.perf_counter() - start
        fork_s = elapsed if fork_s is None else min(fork_s, elapsed)

    def stripped(report: dict) -> list:
        return [{key: value for key, value in entry.items()
                 if key != "forked"} for entry in report["entries"]]

    # Forking must not change a single cell's verdict.
    assert stripped(cold_report) == stripped(fork_report), (
        cold_report, fork_report)

    cells = len(fork_report["entries"])
    return {
        "workload": CHECKPOINT_WORKLOAD, "num_cpus": CHECKPOINT_CPUS,
        "scale": CAMPAIGN_SCALE, "trigger": CAMPAIGN_TRIGGER,
        "kinds": list(FaultKind.BUS), "policies": list(POLICIES),
        "cells": cells,
        "forked_cells": fork_report.get("forked_cells", 0),
        "cold": {"seconds": round(cold_s, 4),
                 "cells_per_second": round(cells / cold_s, 2)},
        "fork": {"seconds": round(fork_s, 4),
                 "cells_per_second": round(cells / fork_s, 2)},
        "fork_speedup": round(cold_s / fork_s, 2),
    }


def test_engine_throughput(benchmark, emit):
    from repro.analysis.report import format_table

    configs = {
        "baseline": baseline_config(CPUS, L2_MB).with_engine("scalar"),
        "senss": senss_config(CPUS, L2_MB).with_engine("scalar"),
        "integrated": integrated_config().with_engine("scalar"),
    }
    report = {"workload": WORKLOAD, "num_cpus": CPUS, "l2_mb": L2_MB,
              "scale": BENCH_SCALE, "configs": {}}
    rows = []
    for kind, config in configs.items():
        measured = measure(config, workload(WORKLOAD, CPUS))
        measured["seed_accesses_per_second"] = SEED_THROUGHPUT[kind]
        measured["speedup_vs_seed"] = round(
            measured["accesses_per_second"] / SEED_THROUGHPUT[kind], 2)
        report["configs"][kind] = measured
        rows.append([kind, f"{measured['accesses_per_second']:,}",
                     f"{SEED_THROUGHPUT[kind]:,}",
                     f"{measured['speedup_vs_seed']:.2f}x"])

    table = format_table(
        f"Engine throughput — {WORKLOAD}, {CPUS}P, {L2_MB}M L2, "
        f"scale {BENCH_SCALE:g} (accesses/s, best of {REPEATS})",
        ["config", "accesses/s", "seed engine", "speedup"], rows)
    emit(table)

    # Miss-heavy companion point: slow-path throughput tracking.
    missheavy_workload = generate(MISSHEAVY_WORKLOAD, CPUS,
                                  scale=BENCH_SCALE, seed=BENCH_SEED)
    report["missheavy"] = {"workload": MISSHEAVY_WORKLOAD,
                           "num_cpus": CPUS,
                           "l2_kb": MISSHEAVY_L2_KB,
                           "scale": BENCH_SCALE, "configs": {}}
    rows = []
    for kind, config in missheavy_configs().items():
        measured = measure(config, missheavy_workload)
        report["missheavy"]["configs"][kind] = measured
        rows.append([kind, f"{measured['accesses_per_second']:,}",
                     f"{measured['seconds']:.3f}"])
    table = format_table(
        f"Engine throughput, miss-heavy — {MISSHEAVY_WORKLOAD}, "
        f"{CPUS}P, {MISSHEAVY_L2_KB}K L2, scale {BENCH_SCALE:g} "
        f"(accesses/s, best of {REPEATS})",
        ["config", "accesses/s", "seconds"], rows)
    emit(table)

    # Per-backend points (DESIGN.md §6f): scalar vs vector on the
    # baseline machine, hit-heavy and miss-heavy. Honest same-machine
    # numbers — the table is how a backend-specific regression (or a
    # vector win evaporating) shows up in CI and PR diffs.
    report["backends"] = {
        "hit_heavy": {"workload": WORKLOAD, "num_cpus": CPUS,
                      "l2_mb": L2_MB, "scale": BENCH_SCALE,
                      "config": "baseline",
                      **measure_backends(configs["baseline"],
                                         workload(WORKLOAD, CPUS))},
        "miss_heavy": {"workload": MISSHEAVY_WORKLOAD, "num_cpus": CPUS,
                       "l2_kb": MISSHEAVY_L2_KB, "scale": BENCH_SCALE,
                       "config": "baseline",
                       **measure_backends(missheavy_configs()["baseline"],
                                          missheavy_workload)},
    }
    rows = []
    for point, section in report["backends"].items():
        for backend in ("scalar", "vector", "auto"):
            measured = section.get(backend)
            if measured is None:
                continue
            ratio = {"scalar": "1.00x",
                     "vector": f"{section.get('vector_speedup', 1):.2f}x",
                     "auto": f"{section.get('auto_vs_scalar', 1):.2f}x",
                     }[backend]
            rows.append([point, backend,
                         f"{measured['accesses_per_second']:,}",
                         f"{measured['seconds']:.3f}", ratio])
    table = format_table(
        f"Engine backends — baseline config, scale {BENCH_SCALE:g} "
        f"(accesses/s, best of {REPEATS}; identical simulated cycles)",
        ["point", "backend", "accesses/s", "seconds", "vs scalar"],
        rows)
    emit(table)

    # The workload probe must keep auto off the vector path on
    # miss-heavy points: paying the probe is fine, paying the 0.4x
    # vector slowdown is the regression this gate exists for.
    miss_auto = report["backends"]["miss_heavy"].get("auto_vs_scalar")
    if miss_auto is not None:
        assert miss_auto >= AUTO_MIN_VS_SCALAR, report["backends"]

    # Observability point (DESIGN.md §6d): the observer hooks must be
    # ~free when no tracer is attached, and attaching one must not
    # change simulated results. Interleaved best-of-N on the
    # slow-path-heavy senss point (every hook site exercised): "ref"
    # and "off" run identical untraced code back to back, so their
    # ratio is the noise floor the disabled-overhead budget is
    # checked against — drift between separate batches would
    # otherwise swamp the single `is not None` test per hook. The
    # mode order rotates each repeat: allocator/cache drift within
    # the process is monotonic, so a fixed order would systematically
    # tax whichever mode runs later in the triple.
    # The "filtered" mode measures per-category filtering (DESIGN.md
    # §6d): a tracer recording only the senss/memprotect categories
    # never hooks the bus, so the engine keeps its scratch-transaction
    # route — most of the full-tracing cost on miss-heavy runs.
    from repro.obs import Tracer
    senss_small = missheavy_configs()["senss"]
    accesses = missheavy_workload.total_accesses
    modes = ("ref", "off", "on", "filtered")
    filtered_categories = frozenset({"senss", "memprotect"})
    best, cycles = {}, {}
    traced_events = filtered_events = 0
    for repeat in range(REPEATS):
        shift = repeat % len(modes)
        for mode in modes[shift:] + modes[:shift]:
            system = build_system(senss_small)
            if mode == "on":
                tracer = Tracer(capacity=1 << 20).attach(system)
            elif mode == "filtered":
                tracer = Tracer(capacity=1 << 20,
                                categories=filtered_categories
                                ).attach(system)
            # Drop the previous iteration's ring before timing — its
            # collection otherwise lands inside the next run.
            gc.collect()
            start = time.perf_counter()
            result = system.run(missheavy_workload)
            elapsed = time.perf_counter() - start
            best[mode] = min(best.get(mode, elapsed), elapsed)
            cycles[mode] = result.cycles
            if mode == "on":
                traced_events = tracer.ring.total_recorded
                tracer = None
            elif mode == "filtered":
                filtered_events = tracer.ring.total_recorded
                tracer = None
            # Dropping the ring promptly matters: ~50 MB of trace
            # columns alive through a later mode's timed region taxes
            # that mode and skews the ref/off noise floor.
    rates = {mode: round(accesses / seconds)
             for mode, seconds in best.items()}
    disabled_pct = round((rates["ref"] / rates["off"] - 1) * 100, 2)
    tracing_pct = round((rates["off"] / rates["on"] - 1) * 100, 2)
    filtered_pct = round(
        (rates["off"] / rates["filtered"] - 1) * 100, 2)
    report["observability"] = {
        "workload": MISSHEAVY_WORKLOAD, "num_cpus": CPUS,
        "l2_kb": MISSHEAVY_L2_KB, "scale": BENCH_SCALE,
        "config": "senss",
        "off": {"accesses": accesses,
                "seconds": round(best["off"], 4),
                "accesses_per_second": rates["off"],
                "cycles": cycles["off"]},
        "on": {"accesses": accesses,
               "seconds": round(best["on"], 4),
               "accesses_per_second": rates["on"],
               "cycles": cycles["on"],
               "events_recorded": traced_events},
        "filtered": {"accesses": accesses,
                     "categories": sorted(filtered_categories),
                     "seconds": round(best["filtered"], 4),
                     "accesses_per_second": rates["filtered"],
                     "cycles": cycles["filtered"],
                     "events_recorded": filtered_events},
        "overhead_when_disabled_percent": disabled_pct,
        "tracing_overhead_percent": tracing_pct,
        "filtered_overhead_percent": filtered_pct,
    }
    table = format_table(
        f"Observability overhead — senss, {MISSHEAVY_WORKLOAD}, "
        f"{MISSHEAVY_L2_KB}K L2 (accesses/s, best of {REPEATS})",
        ["mode", "accesses/s", "overhead"],
        [["hooks only (no tracer)", f"{rates['off']:,}",
          f"{disabled_pct:+.2f}%"],
         ["tracer attached (all categories)", f"{rates['on']:,}",
          f"{tracing_pct:+.2f}%"],
         ["tracer attached (senss,memprotect)",
          f"{rates['filtered']:,}", f"{filtered_pct:+.2f}%"]])
    emit(table)

    # Tracing never changes simulated time — filtered or not.
    assert cycles["ref"] == cycles["off"] == cycles["on"] \
        == cycles["filtered"]
    assert disabled_pct <= 2.0, report["observability"]
    # Filtering must recover most of the armed cost: a senss-only
    # tracer skips the bus observer, so it has to land well under the
    # full-tracing overhead.
    assert filtered_pct <= tracing_pct, report["observability"]
    assert filtered_events < traced_events, report["observability"]

    # Fault-hook point (docs/fault_injection.md): like the observer
    # hooks, the two fault-hook sites must be ~free when no injector
    # is attached, and an attached injector whose plan never triggers
    # must leave simulated cycles bit-identical. Same interleaved
    # ref/off/on discipline; "on" attaches an injector with one
    # never-firing spec per hook family on the integrated machine so
    # the bus, pad and verify hook sites all run. Same rotating mode
    # order as above.
    from repro.faults import FaultInjector, FaultKind, FaultPlan, \
        FaultSpec
    integrated_small = missheavy_configs()["integrated"]
    never = 1 << 40
    idle_plan = FaultPlan(specs=(
        FaultSpec(FaultKind.DROP, never),
        FaultSpec(FaultKind.PAD_CORRUPT, never, cpu=0),
        FaultSpec(FaultKind.MERKLE_FLIP, never)))
    fault_modes = ("ref", "off", "on")
    best, cycles = {}, {}
    for repeat in range(REPEATS):
        shift = repeat % len(fault_modes)
        for mode in fault_modes[shift:] + fault_modes[:shift]:
            system = build_system(integrated_small)
            if mode == "on":
                FaultInjector(idle_plan).attach(system)
            gc.collect()
            start = time.perf_counter()
            result = system.run(missheavy_workload)
            elapsed = time.perf_counter() - start
            best[mode] = min(best.get(mode, elapsed), elapsed)
            cycles[mode] = result.cycles
    rates = {mode: round(accesses / seconds)
             for mode, seconds in best.items()}
    disabled_pct = round((rates["ref"] / rates["off"] - 1) * 100, 2)
    armed_pct = round((rates["off"] / rates["on"] - 1) * 100, 2)
    report["fault_hooks"] = {
        "workload": MISSHEAVY_WORKLOAD, "num_cpus": CPUS,
        "l2_kb": MISSHEAVY_L2_KB, "scale": BENCH_SCALE,
        "config": "integrated",
        "off": {"accesses": accesses,
                "seconds": round(best["off"], 4),
                "accesses_per_second": rates["off"],
                "cycles": cycles["off"]},
        "on": {"accesses": accesses,
               "seconds": round(best["on"], 4),
               "accesses_per_second": rates["on"],
               "cycles": cycles["on"]},
        "overhead_when_disabled_percent": disabled_pct,
        "armed_overhead_percent": armed_pct,
    }
    table = format_table(
        f"Fault-hook overhead — integrated, {MISSHEAVY_WORKLOAD}, "
        f"{MISSHEAVY_L2_KB}K L2 (accesses/s, best of {REPEATS})",
        ["mode", "accesses/s", "overhead"],
        [["hooks only (no injector)", f"{rates['off']:,}",
          f"{disabled_pct:+.2f}%"],
         ["injector armed, never fires", f"{rates['on']:,}",
          f"{armed_pct:+.2f}%"]])
    emit(table)

    # A never-firing plan changes nothing and costs the noise floor.
    assert cycles["ref"] == cycles["off"] == cycles["on"]
    assert disabled_pct <= 2.0, report["fault_hooks"]

    # Recording point (docs/record_replay.md): a Recorder is a Tracer
    # that keeps every event plus stats snapshots, so "on" bounds the
    # full record-for-replay cost, while "off" (no recorder attached —
    # recording disabled) must pay nothing beyond the same observer
    # hooks the tracing budget already gates, and must keep simulated
    # cycles bit-identical to the untraced goldens. Unlike the points
    # above, the "on" leg is measured in its own batch after the
    # ref/off pairs: its lossless EventLog allocates an order of
    # magnitude more memory than the bounded tracer rings, and
    # interleaving those spikes between the ref/off runs visibly
    # skews the A/A noise floor the disabled budget is checked
    # against. The alternating ref/off pairs keep the drift
    # protection that matters for that gate.
    from repro.obs import Recorder
    best, cycles = {}, {}
    recorded_events = 0
    for repeat in range(REPEATS):
        pair = ("ref", "off") if repeat % 2 else ("off", "ref")
        for mode in pair:
            system = build_system(senss_small)
            gc.collect()
            start = time.perf_counter()
            result = system.run(missheavy_workload)
            elapsed = time.perf_counter() - start
            best[mode] = min(best.get(mode, elapsed), elapsed)
            cycles[mode] = result.cycles
    for repeat in range(REPEATS):
        system = build_system(senss_small)
        recorder = Recorder().attach(system)
        gc.collect()
        start = time.perf_counter()
        result = system.run(missheavy_workload)
        elapsed = time.perf_counter() - start
        best["on"] = min(best.get("on", elapsed), elapsed)
        cycles["on"] = result.cycles
        recorded_events = recorder.ring.total_recorded
        # Drop the full event log before the next repeat's timing.
        recorder = None
    rates = {mode: round(accesses / seconds)
             for mode, seconds in best.items()}
    disabled_pct = round((rates["ref"] / rates["off"] - 1) * 100, 2)
    recording_pct = round((rates["off"] / rates["on"] - 1) * 100, 2)
    report["recording"] = {
        "workload": MISSHEAVY_WORKLOAD, "num_cpus": CPUS,
        "l2_kb": MISSHEAVY_L2_KB, "scale": BENCH_SCALE,
        "config": "senss",
        "off": {"accesses": accesses,
                "seconds": round(best["off"], 4),
                "accesses_per_second": rates["off"],
                "cycles": cycles["off"]},
        "on": {"accesses": accesses,
               "seconds": round(best["on"], 4),
               "accesses_per_second": rates["on"],
               "cycles": cycles["on"],
               "events_recorded": recorded_events},
        "overhead_when_disabled_percent": disabled_pct,
        "recording_overhead_percent": recording_pct,
    }
    table = format_table(
        f"Recording overhead — senss, {MISSHEAVY_WORKLOAD}, "
        f"{MISSHEAVY_L2_KB}K L2 (accesses/s, best of {REPEATS})",
        ["mode", "accesses/s", "overhead"],
        [["recording disabled", f"{rates['off']:,}",
          f"{disabled_pct:+.2f}%"],
         ["recorder attached (full event log)", f"{rates['on']:,}",
          f"{recording_pct:+.2f}%"]])
    emit(table)

    # Recording never changes simulated time, and not recording
    # costs the noise floor.
    assert cycles["ref"] == cycles["off"] == cycles["on"]
    assert disabled_pct <= 2.0, report["recording"]
    assert recorded_events > 0, report["recording"]

    # Serving point (docs/serving.md): warm persistent server vs cold
    # per-client run_sweep on repeated identical submissions — the
    # workload repro.serve exists for. A smaller scale keeps the cold
    # leg (which really spawns a fresh pool per client) affordable.
    report["serving"] = measure_serving(BENCH_SCALE * 0.2)
    serving = report["serving"]
    table = format_table(
        f"Simulation service — {serving['workload']}, "
        f"{serving['num_cpus']}P, {serving['points_per_submission']} "
        f"points x {serving['submissions']} submissions "
        f"(points/s, {serving['workers']} workers)",
        ["mode", "points/s", "seconds"],
        [["cold run_sweep per client",
          f"{serving['cold']['points_per_second']:,}",
          f"{serving['cold']['seconds']:.3f}"],
         ["warm server, shared cache",
          f"{serving['warm']['points_per_second']:,}",
          f"{serving['warm']['seconds']:.3f}"]])
    emit(table)
    emit(f"warm/cold speedup: {serving['warm_speedup']:.2f}x "
         f"(floor {SERVING_MIN_SPEEDUP:g}x)")
    assert serving["warm_speedup"] >= SERVING_MIN_SPEEDUP, serving

    # Checkpointing points (docs/checkpointing.md): the scale-axis
    # chain and the forked fault campaign, both asserted bit-identical
    # to their cold legs inside the measure functions.
    report["checkpointing"] = measure_checkpointing()
    chain = report["checkpointing"]
    table = format_table(
        f"Checkpoint chain — {chain['workload']}, "
        f"{chain['num_cpus']}P, {len(chain['scales'])} scales "
        f"{chain['scales'][0]:g}..{chain['scales'][-1]:g} "
        f"(points/s, best of {REPEATS})",
        ["mode", "points/s", "seconds"],
        [["cold per-point runs",
          f"{chain['cold']['points_per_second']:,}",
          f"{chain['cold']['seconds']:.3f}"],
         ["prefix-sharing chain",
          f"{chain['chain']['points_per_second']:,}",
          f"{chain['chain']['seconds']:.3f}"]])
    emit(table)
    emit(f"chain speedup: {chain['chain_speedup']:.2f}x "
         f"(floor {CHECKPOINT_MIN_SPEEDUP:g}x)")
    assert chain["chain_speedup"] >= CHECKPOINT_MIN_SPEEDUP, chain

    report["fault_campaign"] = measure_fault_campaign()
    campaign = report["fault_campaign"]
    table = format_table(
        f"Fault campaign — {campaign['workload']}, "
        f"{campaign['num_cpus']}P, {campaign['cells']} cells, "
        f"trigger {campaign['trigger']} (cells/s, best of {REPEATS})",
        ["mode", "cells/s", "seconds"],
        [["cold prefix per cell",
          f"{campaign['cold']['cells_per_second']:,}",
          f"{campaign['cold']['seconds']:.3f}"],
         ["forked clean prefix",
          f"{campaign['fork']['cells_per_second']:,}",
          f"{campaign['fork']['seconds']:.3f}"]])
    emit(table)
    emit(f"campaign fork speedup: {campaign['fork_speedup']:.2f}x "
         f"(floor {CAMPAIGN_MIN_SPEEDUP:g}x)")
    assert campaign["fork_speedup"] >= CAMPAIGN_MIN_SPEEDUP, campaign
    assert campaign["forked_cells"] == campaign["cells"], campaign

    out = pathlib.Path(__file__).parent.parent / "BENCH_engine.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    # Loose floor: even slow CI hardware should beat a fraction of the
    # reference machine's *seed* numbers given the ~3x engine rewrite.
    for kind, measured in report["configs"].items():
        assert measured["accesses_per_second"] > 20_000, (
            kind, measured)
    for kind, measured in report["missheavy"]["configs"].items():
        assert measured["accesses_per_second"] > 4_000, (
            kind, measured)

    benchmark.pedantic(
        lambda: build_system(configs["baseline"]).run(
            workload(WORKLOAD, CPUS)),
        rounds=1, iterations=1)


# -- regression-gate CLI (python bench_perf_engine.py --check) ----------

def _fresh_points(scale: float, repeats: int) -> dict:
    """Re-measure the throughput points at ``scale``.

    Returns ``{"configs": {...}, "missheavy": {"configs": {...}},
    "backends": {...}}`` shaped like the committed report so the
    comparison walks every section with one loop. Without numpy the
    per-backend sections carry scalar only; the comparison skips
    points missing on either side.
    """
    global REPEATS
    previous_repeats = REPEATS
    REPEATS = repeats
    try:
        hit_workload = generate(WORKLOAD, CPUS, scale=scale,
                                seed=BENCH_SEED)
        miss_workload = generate(MISSHEAVY_WORKLOAD, CPUS, scale=scale,
                                 seed=BENCH_SEED)
        configs = {
            "baseline": baseline_config(CPUS, L2_MB).with_engine("scalar"),
            "senss": senss_config(CPUS, L2_MB).with_engine("scalar"),
            "integrated": integrated_config().with_engine("scalar"),
        }
        fresh = {"configs": {}, "missheavy": {"configs": {}}}
        for kind, config in configs.items():
            fresh["configs"][kind] = measure(config, hit_workload)
        for kind, config in missheavy_configs().items():
            fresh["missheavy"]["configs"][kind] = measure(
                config, miss_workload)
        fresh["backends"] = {
            "hit_heavy": measure_backends(configs["baseline"],
                                          hit_workload),
            "miss_heavy": measure_backends(
                missheavy_configs()["baseline"], miss_workload),
        }
        return fresh
    finally:
        REPEATS = previous_repeats
        # Drop the memoized full-scale workloads: the serving /
        # checkpoint gates that may re-measure next are wall-clock
        # ratios, and ~100 MB of retained trace columns visibly taxes
        # their timed regions.
        from repro.workloads.registry import clear_memo
        clear_memo()


def _compare(committed: dict, fresh: dict, threshold_pct: float):
    """Yield one (label, committed, fresh, delta_pct, ok) per config."""
    sections = [("", committed.get("configs", {}),
                 fresh.get("configs", {})),
                ("missheavy/",
                 committed.get("missheavy", {}).get("configs", {}),
                 fresh.get("missheavy", {}).get("configs", {}))]
    for point in ("hit_heavy", "miss_heavy"):
        sections.append((
            f"backends/{point}/",
            {name: row for name, row in committed.get(
                "backends", {}).get(point, {}).items()
             if isinstance(row, dict) and "accesses_per_second" in row},
            fresh.get("backends", {}).get(point, {})))
    for prefix, old_configs, new_configs in sections:
        for kind, old in old_configs.items():
            new = new_configs.get(kind)
            if new is None:
                continue
            old_rate = old["accesses_per_second"]
            new_rate = new["accesses_per_second"]
            delta_pct = (new_rate / old_rate - 1) * 100
            ok = new_rate >= old_rate * (1 - threshold_pct / 100)
            yield prefix + kind, old_rate, new_rate, delta_pct, ok


def _ratio_gates(committed: dict, scale: float) -> int:
    """Re-measure the wall-clock ratio gates against their floors.

    Invoked by ``--check`` in a fresh subprocess (``--gates-only``)
    so the measured ratios aren't taxed by the heap the throughput
    sweep grows; returns the number of failed gates.
    """
    failures = []
    if "serving" in committed:
        serving = measure_serving(
            committed["serving"].get("scale", scale * 0.2))
        ok = serving["warm_speedup"] >= SERVING_MIN_SPEEDUP
        print(f"serving warm/cold speedup: "
              f"{serving['warm_speedup']:.2f}x "
              f"(committed {committed['serving']['warm_speedup']:.2f}x,"
              f" floor {SERVING_MIN_SPEEDUP:g}x)"
              f"{'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append("serving/warm_speedup")

    if "checkpointing" in committed:
        chain = measure_checkpointing()
        ok = chain["chain_speedup"] >= CHECKPOINT_MIN_SPEEDUP
        print(f"checkpoint chain speedup: "
              f"{chain['chain_speedup']:.2f}x "
              f"(committed "
              f"{committed['checkpointing']['chain_speedup']:.2f}x,"
              f" floor {CHECKPOINT_MIN_SPEEDUP:g}x)"
              f"{'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append("checkpointing/chain_speedup")

    if "fault_campaign" in committed:
        campaign = measure_fault_campaign()
        ok = campaign["fork_speedup"] >= CAMPAIGN_MIN_SPEEDUP
        print(f"campaign fork speedup: "
              f"{campaign['fork_speedup']:.2f}x "
              f"(committed "
              f"{committed['fault_campaign']['fork_speedup']:.2f}x,"
              f" floor {CAMPAIGN_MIN_SPEEDUP:g}x)"
              f"{'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append("fault_campaign/fork_speedup")
    return len(failures)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="Engine-throughput regression gate: fresh run vs "
                    "the committed BENCH_engine.json.")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed report and "
                             "exit non-zero on regression")
    parser.add_argument("--baseline",
                        default=str(pathlib.Path(__file__).parent.parent
                                    / "BENCH_engine.json"),
                        help="committed report to compare against")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max tolerated slowdown, percent "
                             "(default 25)")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="best-of-N repeats per point")
    parser.add_argument("--gates-only", action="store_true",
                        help="re-measure only the wall-clock ratio "
                             "gates (serving/checkpointing/campaign); "
                             "used internally by --check, which runs "
                             "them in a fresh subprocess")
    args = parser.parse_args(argv)

    committed_path = pathlib.Path(args.baseline)
    committed = json.loads(committed_path.read_text())
    scale = committed.get("scale", BENCH_SCALE)
    failures = []

    if args.gates_only:
        return _ratio_gates(committed, scale)

    fresh = _fresh_points(scale, args.repeats)

    width = max(len("config"), *(len(label) for label, *_ in
                                 _compare(committed, fresh, 0)))
    print(f"{'config':<{width}}  {'committed':>10}  {'fresh':>10}  "
          f"{'delta':>8}")
    for label, old_rate, new_rate, delta_pct, ok in _compare(
            committed, fresh, args.threshold):
        flag = "" if ok else "  << REGRESSION"
        print(f"{label:<{width}}  {old_rate:>10,}  {new_rate:>10,}  "
              f"{delta_pct:>+7.1f}%{flag}")
        if not ok:
            failures.append(label)

    # Absolute gates travel with the committed report: the auto
    # dispatcher must not have regressed below scalar on miss-heavy
    # points, and a committed serving section must still clear the
    # warm/cold floor when re-measured fresh.
    miss_auto = committed.get("backends", {}).get(
        "miss_heavy", {}).get("auto_vs_scalar")
    if miss_auto is not None:
        ok = miss_auto >= AUTO_MIN_VS_SCALAR
        print(f"auto vs scalar (miss-heavy, committed): "
              f"{miss_auto:.2f}x (floor {AUTO_MIN_VS_SCALAR:g}x)"
              f"{'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append("backends/miss_heavy/auto_vs_scalar")

    recording = committed.get("recording")
    if recording is not None:
        pct = recording["overhead_when_disabled_percent"]
        ok = pct <= 2.0
        print(f"recording disabled overhead (committed): "
              f"{pct:+.2f}% (budget 2%)"
              f"{'' if ok else '  << REGRESSION'}")
        if not ok:
            failures.append("recording/overhead_when_disabled")

    if args.check:
        # The wall-clock *ratio* gates (serving, checkpointing, fault
        # campaign) re-measure in a fresh subprocess: each compares
        # two timed legs against an absolute floor, and the heap this
        # process grew running the full throughput sweep taxes the
        # legs unevenly enough to flip a ~10%-margin ratio (and
        # symmetrically, running them first in-process slows the
        # sweep's absolute points past the 25% threshold).
        import subprocess
        import sys
        code = subprocess.run(
            [sys.executable, __file__, "--gates-only",
             "--baseline", str(committed_path)]).returncode
        if code:
            failures.append(
                "ratio gates (serving/checkpointing/campaign)")

    if not args.check:
        return 0
    if failures:
        print(f"FAIL: {', '.join(failures)} regressed vs "
              f"{committed_path.name}")
        return 1
    print(f"OK: all configs within {args.threshold:g}% of "
          f"{committed_path.name}")
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(main())
