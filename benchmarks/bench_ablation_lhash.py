"""Ablation (section 7.7) — CHash strict verification vs LHash-style
lazy verification.

The paper: "The LHash algorithm ... gave much better performance than
the CHash algorithm and thus will also be very effective in SENSS."
This bench quantifies that claim on our substrate: the lazy scheme
removes the hash-tree fetch traffic and its L2 pollution entirely.
"""


from repro.analysis.report import format_table
from repro.smp.metrics import (average, slowdown_percent,
                               traffic_increase_percent)

from conftest import baseline_config, run, senss_config, splash2_names

CPUS = 4
L2_MB = 1


def integrity_config(lazy: bool):
    return senss_config(CPUS, L2_MB).with_memprotect(
        encryption_enabled=True, integrity_enabled=True,
        lazy_verification=lazy)


def collect():
    rows = []
    chash_slow, lhash_slow = [], []
    for name in splash2_names():
        base = run(name, baseline_config(CPUS, L2_MB))
        chash = run(name, integrity_config(lazy=False))
        lhash = run(name, integrity_config(lazy=True))
        chash_slow.append(slowdown_percent(base, chash))
        lhash_slow.append(slowdown_percent(base, lhash))
        rows.append([
            name,
            f"{chash_slow[-1]:+.2f}",
            f"{traffic_increase_percent(base, chash):+.2f}",
            str(chash.stat("memprotect.hash_fetches")),
            f"{lhash_slow[-1]:+.2f}",
            f"{traffic_increase_percent(base, lhash):+.2f}",
            str(lhash.stat("memprotect.lazy_hash_updates")),
        ])
    rows.append(["average", f"{average(chash_slow):+.2f}", "", "",
                 f"{average(lhash_slow):+.2f}", "", ""])
    return rows, average(chash_slow), average(lhash_slow)


def test_ablation_lhash(benchmark, emit):
    rows, chash_avg, lhash_avg = collect()
    table = format_table(
        "Ablation (sec 7.7) — CHash vs lazy (LHash-style) verification "
        "(1M L2, 4P)",
        ["workload", "CHash slow%", "CHash traf%", "hash fetches",
         "LHash slow%", "LHash traf%", "multiset updates"], rows)
    emit(table, "ablation_lhash.txt")
    # The paper's claim: lazy verification is much cheaper.
    assert lhash_avg < chash_avg / 2
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
