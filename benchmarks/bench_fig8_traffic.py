"""Figure 8 — bus traffic increase of SENSS over the insecure SMP.

Paper setup: interval 100, 1 MB and 4 MB L2, 2 and 4 processors.
Reported: % increase in total bus transactions; everything well below
1% (paper max 0.46%) because one MAC broadcast per 100 c2c transfers
is a drop in the total transaction count.
"""

import pytest

from repro.analysis.report import format_table
from repro.smp.metrics import average, traffic_increase_percent

from conftest import baseline_config, run, senss_config, splash2_names


def figure8_rows(l2_mb: int):
    rows = []
    for num_cpus in (2, 4):
        row = [f"{num_cpus}P"]
        increases = []
        for name in splash2_names():
            base = run(name, baseline_config(num_cpus, l2_mb))
            secured = run(name, senss_config(num_cpus, l2_mb))
            increases.append(traffic_increase_percent(base, secured))
            row.append(f"{increases[-1]:+.3f}")
        row.append(f"{average(increases):+.3f}")
        rows.append(row)
    return rows


@pytest.mark.parametrize("l2_mb", [1, 4])
def test_fig8_traffic(benchmark, emit, l2_mb):
    rows = figure8_rows(l2_mb)
    table = format_table(
        f"Figure 8 — % bus activity increase, {l2_mb}M write-back L2 "
        "(auth interval 100)",
        ["config"] + splash2_names() + ["average"], rows)
    emit(table, f"fig8_traffic_{l2_mb}mb.txt")
    for row in rows:
        for value in row[1:]:
            assert abs(float(value)) < 5.0  # interval-100 regime
    benchmark.pedantic(lambda: figure8_rows(l2_mb), rounds=1,
                       iterations=1)
