"""Ablation (section 6.1) — pad coherence: write-invalidate vs
write-update.

The paper adopts write-invalidate "since most of the SMPs adopt [it]
for its better performance". This ablation quantifies the choice on
(a) the SPLASH-2-style workloads, whose write-back-then-remote-read
pattern is rare (pad traffic near zero — consistent with the paper
treating pad coherence as a minor term), and (b) a dedicated
migratory-through-memory stressor (``pad_churn``) where the tradeoff
is visible: write-update pays one data message per remote-held
write-back but nearly eliminates pad requests; write-invalidate pays
an address-only message plus on-demand requests.
"""


from repro.analysis.report import format_table
from repro.core.senss import build_secure_system
from repro.smp.metrics import traffic_increase_percent
from repro.smp.system import SmpSystem
from repro.workloads.micro import pad_churn

from conftest import baseline_config, run, senss_config, splash2_names

CPUS = 4
L2_MB = 1


def protocol_config(protocol: str, num_cpus: int = CPUS):
    return senss_config(num_cpus, L2_MB).with_memprotect(
        encryption_enabled=True, integrity_enabled=False,
        pad_protocol=protocol)


def pad_messages(result):
    return {
        "invalidates": result.stat("memprotect.pad_invalidates"),
        "updates": result.stat("memprotect.pad_updates"),
        "requests": result.stat("memprotect.pad_requests"),
    }


def collect_splash():
    rows = []
    for name in splash2_names():
        base = run(name, baseline_config(CPUS, L2_MB))
        row = [name]
        for protocol in ("write-invalidate", "write-update"):
            secured = run(name, protocol_config(protocol))
            messages = pad_messages(secured)
            row.append(str(sum(messages.values())))
            row.append(f"{traffic_increase_percent(base, secured):+.3f}")
        rows.append(row)
    return rows


def collect_stressor():
    workload = pad_churn(2, rounds=60)
    rows = []
    outcomes = {}
    base = SmpSystem(baseline_config(2, L2_MB)).run(workload)
    for protocol in ("write-invalidate", "write-update"):
        system = build_secure_system(protocol_config(protocol, 2))
        result = system.run(workload)
        messages = pad_messages(result)
        outcomes[protocol] = messages
        rows.append([protocol, messages["invalidates"],
                     messages["updates"], messages["requests"],
                     f"{traffic_increase_percent(base, result):+.2f}"])
    return rows, outcomes


def test_ablation_pad_protocol(benchmark, emit):
    splash_rows = collect_splash()
    stressor_rows, outcomes = collect_stressor()
    text = "\n\n".join([
        format_table(
            "Ablation (sec 6.1) — pad coherence on SPLASH-2-style "
            "workloads (encryption only, 1M L2, 4P)",
            ["workload", "inval msgs", "inval traffic%",
             "update msgs", "update traffic%"], splash_rows),
        format_table(
            "Ablation (sec 6.1) — pad_churn migratory stressor (2P)",
            ["protocol", "invalidates", "updates", "requests",
             "traffic%"], stressor_rows),
    ])
    emit(text, "ablation_pad_protocol.txt")
    invalidate = outcomes["write-invalidate"]
    update = outcomes["write-update"]
    # The defining tradeoff: update pays data messages up front and
    # saves requests; invalidate pays address messages plus requests.
    assert invalidate["invalidates"] > 0
    assert update["updates"] > 0
    assert update["requests"] < invalidate["requests"]
    assert invalidate["updates"] == 0
    assert update["invalidates"] == 0
    benchmark.pedantic(lambda: collect_stressor, rounds=1, iterations=1)
