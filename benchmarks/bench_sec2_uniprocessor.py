"""Section 2 — the uniprocessor background SENSS builds on.

Section 2.1: direct memory encryption "imposes significant performance
overhead" (~17% in [29]) because every read serializes behind AES;
fast (OTP pad) encryption overlaps pad generation with the fetch and
cuts the cost to ~1.3%. Section 2.2: CHash tree verification costs
~25% [7]; LHash-style lazy verification ~5% [25].

This bench reproduces those *orderings and magnitudes-of-separation*
on a single-processor machine so the multiprocessor results of
Figures 6-10 sit on a calibrated baseline.
"""


from repro.analysis.report import format_table
from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.smp.metrics import slowdown_percent
from repro.smp.system import SmpSystem
from repro.workloads.registry import generate

WORKLOAD = "radix"  # memory-bound: the worst case for encryption


def config_for(mode=None, integrity=False, lazy=False):
    config = e6000_config(num_processors=1, l2_mb=1,
                          senss_enabled=False)
    if mode is None and not integrity:
        return config
    return config.with_memprotect(
        encryption_enabled=mode is not None,
        encryption_mode=mode or "otp",
        integrity_enabled=integrity,
        lazy_verification=lazy)


def run_one(config, workload):
    if (config.memprotect.encryption_enabled
            or config.memprotect.integrity_enabled):
        system = build_secure_system(config)
    else:
        system = SmpSystem(config)
    return system.run(workload)


def collect():
    workload = generate(WORKLOAD, 1, scale=0.5)
    base = run_one(config_for(), workload)
    results = {}
    for label, config in [
        ("direct encryption", config_for(mode="direct")),
        ("fast (OTP) encryption", config_for(mode="otp")),
        ("CHash integrity", config_for(integrity=True)),
        ("lazy (LHash) integrity",
         config_for(integrity=True, lazy=True)),
    ]:
        results[label] = slowdown_percent(base,
                                          run_one(config, workload))
    return results


def test_sec2_uniprocessor(benchmark, emit):
    results = collect()
    rows = [[label, f"{value:+.2f}"]
            for label, value in results.items()]
    rows.append(["(paper's cited points)",
                 "direct ~17%, OTP ~1.3%, CHash ~25%, LHash ~5%"])
    table = format_table(
        f"Section 2 — uniprocessor protection costs ({WORKLOAD}, 1P, "
        "1M L2)", ["mechanism", "slowdown %"], rows)
    emit(table, "sec2_uniprocessor.txt")
    # Orderings the section reports:
    assert results["direct encryption"] > \
        5 * max(0.1, results["fast (OTP) encryption"])
    assert results["CHash integrity"] > \
        2 * max(0.1, results["lazy (LHash) integrity"])
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
