"""Section 7.8 — variability across workload instances (seed study).

Alameldeen & Wood [4] (the paper's methodology reference) quantify
multiprocessor simulation variability by running multiple perturbed
instances of each workload. We do the trace-driven analogue: the same
generator with different seeds produces statistically identical but
microscopically different traces; the spread of the measured SENSS
slowdown across seeds bounds how much of any single number is noise.
"""


from repro.analysis.report import format_table
from repro.core.senss import build_secure_system
from repro.smp.metrics import slowdown_percent
from repro.smp.system import SmpSystem
from repro.workloads.registry import generate

from conftest import baseline_config, senss_config, splash2_names

CPUS = 4
L2_MB = 1
SEEDS = [0, 1, 2, 3]
SCALE = 0.3


def collect():
    rows = []
    spreads = {}
    for name in splash2_names():
        slowdowns = []
        for seed in SEEDS:
            workload = generate(name, CPUS, scale=SCALE, seed=seed)
            base = SmpSystem(baseline_config(CPUS, L2_MB)).run(workload)
            secured = build_secure_system(
                senss_config(CPUS, L2_MB)).run(workload)
            slowdowns.append(slowdown_percent(base, secured))
        mean = sum(slowdowns) / len(slowdowns)
        spread = max(slowdowns) - min(slowdowns)
        spreads[name] = (mean, spread)
        rows.append([name,
                     " ".join(f"{value:+.3f}" for value in slowdowns),
                     f"{mean:+.3f}", f"{spread:.3f}"])
    return rows, spreads


def test_sec78_seed_variability(benchmark, emit):
    rows, spreads = collect()
    table = format_table(
        f"Section 7.8 — SENSS slowdown across {len(SEEDS)} workload "
        f"seeds ({L2_MB}M L2, {CPUS}P, interval 100)",
        ["workload", "per-seed slowdown %", "mean", "spread"], rows)
    emit(table, "sec78_seeds.txt")
    for name, (mean, spread) in spreads.items():
        # The regime claim survives the noise: interval-100 slowdowns
        # stay small for every seed of every workload...
        assert abs(mean) < 2.0, name
        assert spread < 3.0, name
    # ...and the spread is non-zero somewhere: the measurements do
    # carry the variability the paper warns about.
    assert any(spread > 0 for _, spread in spreads.values())
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
