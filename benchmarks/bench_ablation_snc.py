"""Ablation (section 7.7) — perfect vs finite sequence-number cache.

"We used a perfect sequence number cache (SNC) for simplicity since
the difference between a perfect SNC and large SNC is small [29]."

This ablation *verifies* that simplification on our substrate: sweep
the SNC size from perfect down to a few entries and show that a
reasonably sized cache is indeed indistinguishable from perfect, while
a tiny one inflates pad-regeneration misses.
"""


from repro.analysis.report import format_table
from repro.core.senss import build_secure_system
from repro.smp.metrics import slowdown_percent
from repro.smp.system import SmpSystem
from repro.workloads.micro import snc_stream

from conftest import baseline_config, senss_config

CPUS = 1
L2_MB = 1
SNC_SIZES = [None, 4096, 256, 16]


def snc_config(entries):
    return senss_config(CPUS, L2_MB).with_memprotect(
        encryption_enabled=True, integrity_enabled=False,
        pad_cache_entries=entries)


def collect():
    workload = snc_stream(passes=30)
    base = SmpSystem(baseline_config(CPUS, L2_MB)).run(workload)
    rows = []
    outcomes = {}
    for entries in SNC_SIZES:
        label = "perfect" if entries is None else str(entries)
        secured = build_secure_system(snc_config(entries)).run(workload)
        hits = secured.stat("memprotect.pad_cache_hits")
        misses = secured.stat("memprotect.pad_cache_misses")
        outcomes[label] = (hits, misses, secured.cycles)
        rows.append([label, hits, misses,
                     f"{slowdown_percent(base, secured):+.3f}"])
    return rows, outcomes


def test_ablation_snc(benchmark, emit):
    rows, outcomes = collect()
    table = format_table(
        "Ablation (sec 7.7) — SNC size sweep (snc_stream, encryption "
        f"only, {L2_MB}M L2, {CPUS}P)",
        ["SNC entries", "pad hits", "pad misses", "slowdown %"], rows)
    emit(table, "ablation_snc.txt")
    # Perfect SNC: every re-fetch hits (only cold misses).
    perfect_hits, perfect_misses, perfect_cycles = outcomes["perfect"]
    tiny_hits, tiny_misses, tiny_cycles = outcomes["16"]
    large_hits, large_misses, large_cycles = outcomes["4096"]
    # The paper's simplification: perfect ~ large.
    assert large_cycles == perfect_cycles
    # A tiny SNC misses far more often.
    assert tiny_misses > perfect_misses
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
