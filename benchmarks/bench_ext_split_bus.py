"""Extension — atomic vs split-transaction bus under SENSS.

The modeled Sun Gigaplane is a split-transaction bus; our default
timing model is atomic (conservative: every transaction holds the bus
through its data phase). This extension quantifies what the
simplification costs: on the split bus the injected MAC broadcasts and
data phases overlap address arbitration, so the interval-1 security
overhead shrinks — i.e. the atomic model *overstates* SENSS's cost,
making the headline reproduction conservative.
"""

from dataclasses import replace


from repro.analysis.report import format_table
from repro.core.senss import build_secure_system
from repro.smp.metrics import slowdown_percent
from repro.smp.system import SmpSystem

from conftest import baseline_config, senss_config, splash2_names, workload

CPUS = 4
L2_MB = 4
INTERVAL = 1  # maximum security level: the stress case


def with_split(config, split):
    return replace(config, bus=replace(config.bus,
                                       split_transaction=split))


def collect():
    rows = []
    averages = {False: [], True: []}
    for name in splash2_names():
        row = [name]
        for split in (False, True):
            base_cfg = with_split(baseline_config(CPUS, L2_MB), split)
            senss_cfg = with_split(
                senss_config(CPUS, L2_MB, auth_interval=INTERVAL),
                split)
            base = SmpSystem(base_cfg).run(workload(name, CPUS))
            secured = build_secure_system(senss_cfg).run(
                workload(name, CPUS))
            slow = slowdown_percent(base, secured)
            averages[split].append(slow)
            row.append(f"{slow:+.3f}")
        rows.append(row)
    atomic_avg = sum(averages[False]) / len(averages[False])
    split_avg = sum(averages[True]) / len(averages[True])
    rows.append(["average", f"{atomic_avg:+.3f}", f"{split_avg:+.3f}"])
    return rows, averages


def test_ext_split_bus(benchmark, emit):
    rows, averages = collect()
    table = format_table(
        "Extension — atomic vs split-transaction bus "
        f"(interval {INTERVAL}, {L2_MB}M L2, {CPUS}P, % slowdown)",
        ["workload", "atomic bus", "split bus"], rows)
    emit(table, "ext_split_bus.txt")
    atomic_avg = sum(averages[False]) / len(averages[False])
    split_avg = sum(averages[True]) / len(averages[True])
    # The atomic model is the conservative (higher-overhead) one.
    assert split_avg <= atomic_avg + 0.05
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
