"""Figure 11 / section 7.8 — simulation variability under false sharing.

The paper's point: SENSS's 3-cycle bus delay reorders racy accesses,
changing hit/miss outcomes and sometimes making the secured run
*faster*. We reproduce the Figure 11 scenario (two CPUs touching
different words of one cache block) and report how the global bus
ordering and the per-CPU miss counts shift between the baseline and
the SENSS machine.
"""


from repro.analysis.report import format_table
from repro.analysis.variability import AccessRecorder, compare_orderings
from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.smp.system import SmpSystem
from repro.workloads.micro import false_sharing


def run_recorded(config, workload):
    system = (build_secure_system(config) if config.senss.enabled
              else SmpSystem(config))
    recorder = AccessRecorder()
    system.bus.add_observer(recorder)
    result = system.run(workload)
    return result, recorder


def collect():
    workload = false_sharing(num_cpus=2, rounds=400)
    config = e6000_config(num_processors=2, auth_interval=1)
    base_result, base_rec = run_recorded(config.with_senss(False),
                                         workload)
    senss_result, senss_rec = run_recorded(config, workload)
    comparison = compare_orderings(base_rec, senss_rec)
    return workload, base_result, senss_result, comparison


def test_fig11_variability(benchmark, emit):
    workload, base, senss, comparison = collect()
    delta = 100.0 * (senss.cycles - base.cycles) / base.cycles
    rows = [
        ["bus transactions (base)", base.total_bus_transactions],
        ["bus transactions (SENSS)", senss.total_bus_transactions],
        ["cache-to-cache (base)", base.cache_to_cache_transfers],
        ["cache-to-cache (SENSS)", senss.cache_to_cache_transfers],
        ["first ordering divergence",
         comparison["first_divergence"]],
        ["identical prefix fraction",
         f"{comparison['identical_prefix_fraction']:.3f}"],
        ["execution time delta", f"{delta:+.3f}%"],
    ]
    table = format_table(
        "Figure 11 / sec 7.8 — access reordering under false sharing "
        "(2P, interval 1)", ["metric", "value"], rows)
    emit(table, "fig11_variability.txt")
    # The orderings must actually diverge (that is the phenomenon).
    assert comparison["reordered"]
    assert comparison["first_divergence"] < base.total_bus_transactions
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
