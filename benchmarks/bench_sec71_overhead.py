"""Section 7.1 — hardware overhead of the SHU.

Regenerates the paper's cost accounting exactly: 640-byte bit matrix,
1161 bits per group-table entry (148.6 KB total), +11 bus lines
(+3.1%), 3 cycles per message, 8 masks maximum.
"""

from repro.analysis.overhead import compute_overhead
from repro.analysis.report import format_table
from repro.config import e6000_config


def test_sec71_overhead(benchmark, emit):
    report = benchmark.pedantic(
        lambda: compute_overhead(e6000_config()), rounds=5, iterations=1)
    table = format_table("Section 7.1 — SHU hardware overhead",
                         ["quantity", "value"], list(report.rows()))
    emit(table, "sec71_overhead.txt")
    assert report.bit_matrix_bytes == 640
    assert report.table_bits_per_entry == 1161
    assert abs(report.table_total_kb - 148.6) < 0.05
    assert abs(report.bus_line_increase_percent - 3.17) < 0.1
    assert report.per_message_cycles == 3
    assert report.max_masks == 8
