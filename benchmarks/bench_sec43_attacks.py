"""Section 4.3 — attack detection matrix: SENSS vs non-chained baseline.

Runs every attack class of section 3.2 against (a) the SENSS chained
CBC-MAC scheme and (b) the non-chained per-message-MAC scheme of Shi
et al. [20], and prints who detects what. Expected: SENSS detects all;
the baseline misses the split-group drop (Type 1) and the
replay/spoof (Type 3) — exactly the paper's security argument.
"""


from repro.analysis.report import format_table
from repro.core.attacks import (DropAttack, SecureBusFabric, SpoofAttack,
                                SwapAttack)
from repro.core.authentication import (AuthenticationManager,
                                       NonChainedAuthenticator)
from repro.core.shu import SecurityHardwareUnit
from repro.errors import AuthenticationFailure, SpoofDetected

SESSION_KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])
GID = 1


def make_fabric(attacker):
    members = set(range(4))
    shus = [SecurityHardwareUnit(pid, max_processors=8)
            for pid in range(4)]
    for shu in shus:
        shu.join_group(GID, members, SESSION_KEY, ENC_IV, AUTH_IV,
                       num_masks=2, auth_interval=8)
    manager = AuthenticationManager(sorted(members), 8, GID)
    return SecureBusFabric(shus, GID, manager, attacker)


def senss_detects(attacker) -> bool:
    fabric = make_fabric(attacker)
    try:
        for index in range(16):
            fabric.transmit(index % 4, bytes([index] * 32))
        fabric.finish()
    except (AuthenticationFailure, SpoofDetected):
        return True
    return False


def baseline_split_drop_detected() -> bool:
    """Non-chained scheme under the paper's split drop: every
    per-message MAC verifies, so no alarm is ever raised."""
    auth = NonChainedAuthenticator(SESSION_KEY)
    wires = [auth.send(bytes([tag] * 32)) for tag in range(4)]
    # Receivers 0,1 miss message 2; receivers 2,3 miss message 3.
    for receiver in (0, 1):
        for index in (0, 1, 3):
            if auth.receive(receiver, *wires[index]) is None:
                return True
    for receiver in (2, 3):
        for index in (0, 1, 2):
            if auth.receive(receiver, *wires[index]) is None:
                return True
    return auth.per_message_failures > 0


def baseline_swap_detected() -> bool:
    """Swapped messages decrypt with the wrong local-sequence pads but
    the ciphertext MACs still verify: silent corruption, no alarm."""
    auth = NonChainedAuthenticator(SESSION_KEY)
    first = auth.send(bytes([1] * 32))
    second = auth.send(bytes([2] * 32))
    alarms = 0
    for wire, mac in (second, first):  # swapped order
        if auth.receive(0, wire, mac) is None:
            alarms += 1
    return alarms > 0


def baseline_replay_detected() -> bool:
    auth = NonChainedAuthenticator(SESSION_KEY)
    wire, mac = auth.send(bytes([7] * 32))
    auth.receive(0, wire, mac)
    # Replay to a victim whose local sequence still matches.
    return auth.receive(1, wire, mac) is None


def collect():
    scenarios = [
        ("Type 1: simple drop",
         senss_detects(DropAttack({3: [2]})), None),
        ("Type 1: split-group drop",
         senss_detects(DropAttack({3: [2, 3], 4: [0, 1]})),
         baseline_split_drop_detected()),
        ("Type 2: swap",
         senss_detects(SwapAttack(first_index=2)),
         baseline_swap_detected()),
        ("Type 3: spoof to claimed PID",
         senss_detects(SpoofAttack(1, GID, 2, bytes(32), [2])), None),
        ("Type 3: spoof/replay to other member",
         senss_detects(SpoofAttack(1, GID, 2, bytes(32), [3])),
         baseline_replay_detected()),
    ]
    return scenarios


def render(scenarios):
    def cell(value):
        if value is None:
            return "-"
        return "DETECTED" if value else "missed"
    return [[name, cell(senss), cell(baseline)]
            for name, senss, baseline in scenarios]


def test_sec43_attack_matrix(benchmark, emit):
    scenarios = collect()
    table = format_table(
        "Section 4.3 — attack detection: SENSS chained CBC-MAC vs "
        "non-chained per-message MAC (Shi et al. [20])",
        ["attack", "SENSS", "non-chained"], render(scenarios))
    emit(table, "sec43_attacks.txt")
    # SENSS detects every attack.
    assert all(senss for _, senss, _ in scenarios)
    # The baseline misses split-drop, swap-of-valid-MACs and replay.
    baseline_results = [b for _, _, b in scenarios if b is not None]
    assert not any(baseline_results)
    benchmark.pedantic(collect, rounds=1, iterations=1)
