"""Figure 7 — impact of the number of masks (perfect / 4 / 2 / 1).

Paper setup: 4 MB L2, auth interval 100. Reported: % slowdown and %
bus-activity increase per workload for each mask supply. Expected
shape: 4 masks ~ perfect, 2 masks close, 1 mask visibly worse.
"""


from repro.analysis.report import format_table
from repro.smp.metrics import (average, slowdown_percent,
                               traffic_increase_percent)

from conftest import baseline_config, run, senss_config, splash2_names

MASK_CONFIGS = [("perfect", None), ("4 masks", 4), ("2 masks", 2),
                ("1 mask", 1)]
L2_MB = 4
CPUS = 4


def collect():
    slowdown_rows, traffic_rows, stall_totals = [], [], {}
    for label, masks in MASK_CONFIGS:
        slow_row, traffic_row = [label], [label]
        stalls = 0
        for name in splash2_names():
            base = run(name, baseline_config(CPUS, L2_MB))
            secured = run(name, senss_config(CPUS, L2_MB,
                                             num_masks=masks))
            slow_row.append(f"{slowdown_percent(base, secured):+.3f}")
            traffic_row.append(
                f"{traffic_increase_percent(base, secured):+.3f}")
            stalls += secured.stat("senss.mask_wait_cycles")
        slow_avg = average([float(v) for v in slow_row[1:]])
        traffic_avg = average([float(v) for v in traffic_row[1:]])
        slow_row.append(f"{slow_avg:+.3f}")
        traffic_row.append(f"{traffic_avg:+.3f}")
        slowdown_rows.append(slow_row)
        traffic_rows.append(traffic_row)
        stall_totals[label] = stalls
    return slowdown_rows, traffic_rows, stall_totals


def test_fig7_masks(benchmark, emit):
    slowdown_rows, traffic_rows, stall_totals = collect()
    header = ["masks"] + splash2_names() + ["average"]
    text = "\n\n".join([
        format_table("Figure 7a — % slowdown vs mask count "
                     "(4M L2, 4P, interval 100)", header, slowdown_rows),
        format_table("Figure 7b — % bus activity increase vs mask count",
                     header, traffic_rows),
    ])
    emit(text, "fig7_masks.txt")
    # Shape: stall cycles monotone in mask count; 4 masks ~ perfect.
    assert stall_totals["perfect"] == 0
    assert stall_totals["4 masks"] <= stall_totals["2 masks"]
    assert stall_totals["2 masks"] <= stall_totals["1 mask"]
    assert stall_totals["1 mask"] > stall_totals["4 masks"]
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
