"""Table 1 — adapting CBC-AES to the shared bus.

Prints both columns of the paper's Table 1 and *verifies* them with
the real cipher: classic CBC sends the AES output (cannot leave before
the ~80-cycle AES finishes), the SENSS bus scheme sends the AES input
B = D XOR C_prev (one XOR) and regenerates the mask in the background.
The bench also times both functional paths to show the critical-path
asymmetry.
"""


from repro.analysis.report import format_table
from repro.crypto.aes import AES
from repro.crypto.modes import cbc_decrypt, cbc_encrypt
from repro.crypto.otp import xor_bytes
from repro.core.bus_crypto import GroupChannel

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])


def verify_equivalence():
    """Both schemes decrypt the identical message stream correctly,
    and the bus scheme's wire value is the CBC *input* chain."""
    aes = AES(KEY)
    messages = [bytes([tag] * 32) for tag in range(1, 9)]
    # Classic CBC over the concatenated stream.
    stream = b"".join(messages)
    assert cbc_decrypt(aes, ENC_IV, cbc_encrypt(aes, ENC_IV,
                                                stream)) == stream
    # SENSS bus scheme (single mask slot = strict chaining).
    sender = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=1)
    receiver = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=1)
    critical_path_xors = 0
    for message in messages:
        mask = sender.mask_snapshot()[0]
        wire = sender.encrypt_message(0, message)
        assert wire == xor_bytes(message, mask)  # B = D XOR M: one XOR
        critical_path_xors += 1
        assert receiver.decrypt_message(0, wire) == message
    return len(messages), critical_path_xors


def test_table1_bus_encryption(benchmark, emit):
    count, xors = verify_equivalence()
    rows = [
        ["Encryption 1st", "M = C_prev (available)",
         "M = C_prev (available)"],
        ["Encryption 2nd", "C = AES_K(D XOR M)  [~80 cy]",
         "B = D XOR M  [1 cy] ; send B"],
        ["Encryption 3rd", "send C",
         "C = AES_K(B XOR PID) in background"],
        ["Decryption 1st", "receive C", "receive B"],
        ["Decryption 2nd", "P = AES^-1_K(C)  [~80 cy]",
         "D = B XOR M  [1 cy]"],
        ["Decryption 3rd", "D = P XOR M",
         "C = AES_K(B XOR PID) in background"],
        ["verified", f"{count} messages round-tripped",
         f"{xors} one-XOR critical paths"],
    ]
    table = format_table("Table 1 — CBC-AES vs SENSS bus encryption",
                         ["step", "CBC-AES", "Bus encryption"], rows)
    emit(table, "table1_bus_encryption.txt")
    benchmark.pedantic(verify_equivalence, rounds=3, iterations=1)
