"""Shared bench harness: cached simulation runs + figure printing.

Every bench regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports (via ``capsys.disabled()`` so
the tables appear in the terminal and in ``bench_output.txt``). The
``benchmark`` fixture times one representative simulation per figure
so ``pytest benchmarks/ --benchmark-only`` has real timings to report.

Scale: ``BENCH_SCALE`` trades fidelity for wall time; 0.5 keeps the
whole suite within a few minutes while staying in the paper's
cache-behaviour regime.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import pytest

from repro.config import SystemConfig, e6000_config
from repro.core.senss import build_secure_system
from repro.smp.metrics import SimulationResult
from repro.smp.system import SmpSystem
from repro.workloads.registry import SPLASH2_NAMES, generate

BENCH_SCALE = 0.5
BENCH_SEED = 0

_workload_cache: Dict[Tuple[str, int], object] = {}
_result_cache: Dict[tuple, SimulationResult] = {}


def workload(name: str, num_cpus: int):
    key = (name, num_cpus)
    if key not in _workload_cache:
        _workload_cache[key] = generate(name, num_cpus,
                                        scale=BENCH_SCALE,
                                        seed=BENCH_SEED)
    return _workload_cache[key]


def build_system(config: SystemConfig):
    if (config.senss.enabled or config.memprotect.encryption_enabled
            or config.memprotect.integrity_enabled):
        return build_secure_system(config)
    return SmpSystem(config)


def run(name: str, config: SystemConfig,
        cache_key: Optional[tuple] = None) -> SimulationResult:
    """Run `name` on a fresh machine built from `config`, memoized."""
    key = cache_key or (name, config)
    if key not in _result_cache:
        system = build_system(config)
        _result_cache[key] = system.run(workload(name,
                                                 config.num_processors))
    return _result_cache[key]


def baseline_config(num_cpus: int = 4, l2_mb: int = 1) -> SystemConfig:
    return e6000_config(num_processors=num_cpus, l2_mb=l2_mb,
                        senss_enabled=False)


def senss_config(num_cpus: int = 4, l2_mb: int = 1,
                 auth_interval: int = 100,
                 num_masks=None) -> SystemConfig:
    config = e6000_config(num_processors=num_cpus, l2_mb=l2_mb,
                          auth_interval=auth_interval)
    return config.with_masks(num_masks)


@pytest.fixture
def emit(capsys):
    """Print a figure table to the real terminal and archive it."""
    def _emit(text: str, archive_name: Optional[str] = None):
        with capsys.disabled():
            print()
            print(text)
        if archive_name:
            import pathlib
            results = pathlib.Path(__file__).parent / "results"
            results.mkdir(exist_ok=True)
            (results / archive_name).write_text(text + "\n")
    return _emit


def splash2_names():
    return list(SPLASH2_NAMES)
