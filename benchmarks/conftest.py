"""Shared bench harness: parallel sweep runner + figure printing.

Every bench regenerates one of the paper's tables/figures and prints
the same rows/series the paper reports (via ``capsys.disabled()`` so
the tables appear in the terminal and in ``bench_output.txt``). The
``benchmark`` fixture times one representative simulation per figure
so ``pytest benchmarks/ --benchmark-only`` has real timings to report.

Simulations route through :mod:`repro.sim.sweep`: the first ``run()``
call of a session fans the whole figure grid (Figs. 6-10) out over a
process pool, and every completed point lands in the disk cache under
``.benchmarks/cache/`` — so the figure suite parallelizes across cores
and warm re-runs are near-instant. ``REPRO_BENCH_PREWARM=0`` disables
the fan-out (points then run serially on demand, still cached), and
``REPRO_SWEEP_PARALLEL=0`` forces the runner itself serial.

Scale: ``BENCH_SCALE`` (env ``REPRO_BENCH_SCALE``) trades fidelity for
wall time; 0.5 keeps the whole suite within a few minutes while
staying in the paper's cache-behaviour regime. The scale is part of
every cache key, so different scales never collide.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Optional, Tuple

import pytest

from repro.config import SystemConfig, e6000_config
from repro.sim.sweep import ResultCache, SweepPoint, run_sweep
from repro.smp.metrics import SimulationResult
from repro.workloads.registry import SPLASH2_NAMES, generate

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
BENCH_SEED = 0

CACHE_DIR = pathlib.Path(__file__).parent.parent / ".benchmarks" / "cache"

_workload_cache: Dict[Tuple[str, int], object] = {}
_result_cache: Dict[tuple, SimulationResult] = {}
_sweep_cache = ResultCache(CACHE_DIR)
_prewarmed = False


def workload(name: str, num_cpus: int):
    key = (name, num_cpus)
    if key not in _workload_cache:
        _workload_cache[key] = generate(name, num_cpus,
                                        scale=BENCH_SCALE,
                                        seed=BENCH_SEED)
    return _workload_cache[key]


def _point(name: str, config: SystemConfig) -> SweepPoint:
    return SweepPoint(name, config, scale=BENCH_SCALE, seed=BENCH_SEED)


def _figure_sweep_points() -> List[SweepPoint]:
    """The full Figs. 6-10 grid (duplicates are deduped by the runner)."""
    points = []
    for l2_mb in (1, 4):
        for num_cpus in (2, 4):
            for name in SPLASH2_NAMES:
                # Figures 6 and 8: baseline vs SENSS across the grid.
                points.append(_point(name, baseline_config(num_cpus,
                                                           l2_mb)))
                points.append(_point(name, senss_config(num_cpus, l2_mb)))
    for name in SPLASH2_NAMES:
        for masks in (4, 2, 1):  # Figure 7 (perfect == fig6 senss 4P/4M)
            points.append(_point(name, senss_config(4, 4,
                                                    num_masks=masks)))
        for interval in (32, 10, 1):  # Figure 9 (100 == fig6 senss)
            points.append(_point(name,
                                 senss_config(4, 4,
                                              auth_interval=interval)))
        # Figure 10: SENSS integrated with memory protection.
        points.append(_point(name, senss_config(4, 1).with_memprotect(
            encryption_enabled=True, integrity_enabled=True)))
    return points


def _prewarm() -> None:
    """Fan the figure grid out over the process pool, once per session."""
    global _prewarmed
    if _prewarmed:
        return
    _prewarmed = True
    if os.environ.get("REPRO_BENCH_PREWARM", "1") == "0":
        return
    points = _figure_sweep_points()
    results = run_sweep(points, cache=_sweep_cache)
    for point, result in zip(points, results):
        _result_cache.setdefault((point.workload, point.config), result)


def run(name: str, config: SystemConfig,
        cache_key: Optional[tuple] = None) -> SimulationResult:
    """Run `name` on a fresh machine built from `config`, memoized.

    Routed through the sweep runner: warmed by the session-wide
    parallel prewarm and persisted in the disk-backed result cache.
    """
    _prewarm()
    key = cache_key or (name, config)
    if key not in _result_cache:
        _result_cache[key] = run_sweep([_point(name, config)],
                                       cache=_sweep_cache)[0]
    return _result_cache[key]


def baseline_config(num_cpus: int = 4, l2_mb: int = 1) -> SystemConfig:
    return e6000_config(num_processors=num_cpus, l2_mb=l2_mb,
                        senss_enabled=False)


def senss_config(num_cpus: int = 4, l2_mb: int = 1,
                 auth_interval: int = 100,
                 num_masks=None) -> SystemConfig:
    config = e6000_config(num_processors=num_cpus, l2_mb=l2_mb,
                          auth_interval=auth_interval)
    return config.with_masks(num_masks)


@pytest.fixture
def emit(capsys):
    """Print a figure table to the real terminal and archive it."""
    def _emit(text: str, archive_name: Optional[str] = None):
        with capsys.disabled():
            print()
            print(text)
        if archive_name:
            results = pathlib.Path(__file__).parent / "results"
            results.mkdir(exist_ok=True)
            (results / archive_name).write_text(text + "\n")
    return _emit


def splash2_names():
    return list(SPLASH2_NAMES)
