"""Figure 6 — SENSS performance slowdown vs. an insecure SMP.

Paper setup: write-invalidate MESI, write-back L2 of 1 MB and 4 MB,
2 and 4 processors, authentication interval 100, perfect masks.
Reported: percentage slowdown per workload plus the average; all
values well under 1% (paper max 0.18%).
"""

import pytest

from repro.analysis.report import format_table
from repro.sim.sweep import build_system
from repro.smp.metrics import average, slowdown_percent

from conftest import (baseline_config, run, senss_config, splash2_names,
                      workload)


def figure6_rows(l2_mb: int):
    rows = []
    for num_cpus in (2, 4):
        row = [f"{num_cpus}P"]
        slowdowns = []
        for name in splash2_names():
            base = run(name, baseline_config(num_cpus, l2_mb))
            secured = run(name, senss_config(num_cpus, l2_mb))
            slowdowns.append(slowdown_percent(base, secured))
            row.append(f"{slowdowns[-1]:+.3f}")
        row.append(f"{average(slowdowns):+.3f}")
        rows.append(row)
    return rows


@pytest.mark.parametrize("l2_mb", [1, 4])
def test_fig6_slowdown(benchmark, emit, l2_mb):
    rows = figure6_rows(l2_mb)
    table = format_table(
        f"Figure 6 — % slowdown, write-invalidate + {l2_mb}M write-back "
        "L2 (auth interval 100, perfect masks)",
        ["config"] + splash2_names() + ["average"], rows)
    emit(table, f"fig6_slowdown_{l2_mb}mb.txt")
    # Shape assertions: the paper's regime is sub-percent slowdowns.
    for row in rows:
        for value in row[1:]:
            assert abs(float(value)) < 3.0
    # Time one representative secured run.
    config = senss_config(4, l2_mb)
    benchmark.pedantic(
        lambda: build_system(config).run(
            workload("lu", 4)),
        rounds=1, iterations=1)
