"""Figure 9 — varying the authentication interval (1 / 10 / 32 / 100).

Paper setup: 4 processors, 4 MB L2. Reported: % slowdown (paper max
3.4% at interval 1) and % bus traffic increase (paper max 46% at
interval 1 — "the proportion of the cache-to-cache transactions
within the total bus activity").
"""


from repro.analysis.report import format_table
from repro.smp.metrics import (average, slowdown_percent,
                               traffic_increase_percent)

from conftest import baseline_config, run, senss_config, splash2_names

INTERVALS = [100, 32, 10, 1]
CPUS = 4
L2_MB = 4


def collect():
    slowdown_rows, traffic_rows = [], []
    per_interval_traffic_avg = {}
    for interval in INTERVALS:
        slow_row = [f"{interval} transactions"]
        traffic_row = [f"{interval} transactions"]
        slows, traffics = [], []
        for name in splash2_names():
            base = run(name, baseline_config(CPUS, L2_MB))
            secured = run(name, senss_config(CPUS, L2_MB,
                                             auth_interval=interval))
            slows.append(slowdown_percent(base, secured))
            traffics.append(traffic_increase_percent(base, secured))
            slow_row.append(f"{slows[-1]:+.3f}")
            traffic_row.append(f"{traffics[-1]:+.3f}")
        slow_row.append(f"{average(slows):+.3f}")
        traffic_row.append(f"{average(traffics):+.3f}")
        slowdown_rows.append(slow_row)
        traffic_rows.append(traffic_row)
        per_interval_traffic_avg[interval] = average(traffics)
    return slowdown_rows, traffic_rows, per_interval_traffic_avg


def test_fig9_interval(benchmark, emit):
    slowdown_rows, traffic_rows, traffic_avg = collect()
    header = ["interval"] + splash2_names() + ["average"]
    text = "\n\n".join([
        format_table("Figure 9a — % slowdown vs authentication interval "
                     "(4M L2, 4P)", header, slowdown_rows),
        format_table("Figure 9b — % bus activity increase vs "
                     "authentication interval", header, traffic_rows),
    ])
    emit(text, "fig9_interval.txt")
    # Shape: traffic increase strictly grows as the interval shrinks,
    # and interval 1 costs tens of percent (the c2c share).
    assert (traffic_avg[100] < traffic_avg[32] < traffic_avg[10]
            < traffic_avg[1])
    assert traffic_avg[1] > 10.0
    assert traffic_avg[100] < 2.0
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
