"""Ablation — coherence protocol family (MSI / MESI / MOESI) under SENSS.

The paper's machine uses MESI (section 7.2). The two classic variants
bracket it:

- **MSI** (no Exclusive state) pays an upgrade bus transaction on every
  first write to a privately read line;
- **MOESI** (adds Owned) keeps dirty lines on-chip through read
  sharing — more of the traffic SENSS must encrypt stays
  cache-to-cache, and the dirty-intervention memory updates disappear.

For SENSS the protocol choice shifts *what fraction of bus traffic is
protected*, which this ablation measures alongside the upgrade and
dirty-intervention counts.
"""


from repro.analysis.report import format_table
from repro.core.senss import build_secure_system
from repro.smp.metrics import slowdown_percent
from repro.smp.system import SmpSystem

from conftest import baseline_config, senss_config, splash2_names, workload

CPUS = 4
L2_MB = 1
PROTOCOLS = ("MSI", "MESI", "MOESI")


def collect():
    rows = []
    aggregates = {protocol: {"upgrades": 0, "interventions": 0,
                             "c2c": 0, "total": 0}
                  for protocol in PROTOCOLS}
    for name in splash2_names():
        row = [name]
        for protocol in PROTOCOLS:
            base_cfg = baseline_config(CPUS, L2_MB).with_protocol(
                protocol)
            senss_cfg = senss_config(CPUS, L2_MB).with_protocol(
                protocol)
            base = SmpSystem(base_cfg).run(workload(name, CPUS))
            secured = build_secure_system(senss_cfg).run(
                workload(name, CPUS))
            stats = aggregates[protocol]
            stats["upgrades"] += base.stat("bus.tx.BusUpgr")
            stats["interventions"] += base.stat(
                "coherence.dirty_interventions")
            stats["c2c"] += base.cache_to_cache_transfers
            stats["total"] += base.total_bus_transactions
            row.append(f"{slowdown_percent(base, secured):+.3f}")
        rows.append(row)
    summary = []
    for protocol in PROTOCOLS:
        stats = aggregates[protocol]
        summary.append([protocol, stats["upgrades"],
                        stats["interventions"],
                        f"{stats['c2c'] / stats['total']:.1%}"])
    return rows, summary, aggregates


def test_ablation_protocols(benchmark, emit):
    rows, summary, aggregates = collect()
    text = "\n\n".join([
        format_table(
            "Ablation — SENSS slowdown by coherence protocol "
            f"({L2_MB}M L2, {CPUS}P, interval 100)",
            ["workload"] + list(PROTOCOLS), rows),
        format_table(
            "Ablation — baseline traffic composition by protocol",
            ["protocol", "upgrades", "dirty interventions",
             "c2c share"], summary),
    ])
    emit(text, "ablation_protocols.txt")
    # MSI inflates upgrades; MOESI all but eliminates dirty
    # interventions (read-sharing keeps ownership on-chip; only
    # write-miss steals of dirty lines remain).
    assert aggregates["MSI"]["upgrades"] > aggregates["MESI"]["upgrades"]
    assert aggregates["MESI"]["interventions"] > 0
    assert (aggregates["MOESI"]["interventions"]
            < 0.05 * aggregates["MESI"]["interventions"])
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
