"""Supporting table — workload characterization (§7.2 methodology).

Profiles the five SPLASH-2 stand-ins on the Figure-5 machine so the
per-workload differences across Figures 6-10 can be read off directly
(e.g. lu's high cache-to-cache share explains its interval-1 traffic;
radix's memory-bound streaming explains its near-zero SENSS cost).
"""


from repro.analysis.characterize import WorkloadProfile, characterize
from repro.analysis.report import format_table

from conftest import baseline_config, splash2_names, workload


def collect():
    config = baseline_config(4, 1)
    profiles = [characterize(workload(name, 4), config)
                for name in splash2_names()]
    rows = []
    for profile in profiles:
        rows.extend(profile.rows())
    return profiles, rows


def test_characterization(benchmark, emit):
    profiles, rows = collect()
    table = format_table(
        "Workload characterization (insecure Figure-5 machine, 4P, "
        "1M L2)", WorkloadProfile.header(), rows)
    emit(table, "characterization.txt")
    by_name = {profile.name: profile for profile in profiles}
    # The properties the figures depend on:
    assert by_name["lu"].cache_to_cache_share == max(
        profile.cache_to_cache_share for profile in profiles)
    for profile in profiles:
        assert profile.l2_miss_rate < 0.25
        assert profile.bus_utilisation < 0.85
        assert profile.cache_to_cache_share > 0
    benchmark.pedantic(lambda: collect, rounds=1, iterations=1)
