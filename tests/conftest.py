"""Shared fixtures for the SENSS reproduction test suite."""

from __future__ import annotations

import pytest

from repro.config import e6000_config
from repro.core.authentication import AuthenticationManager
from repro.core.shu import SecurityHardwareUnit
from repro.sim.rng import DeterministicRng

# A fixed 128-bit session key used across crypto tests.
SESSION_KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])


@pytest.fixture
def rng():
    return DeterministicRng(12345)


@pytest.fixture
def config():
    """The paper's default 4-processor, 1 MB L2 machine."""
    return e6000_config(num_processors=4, l2_mb=1)


@pytest.fixture
def config_4mb():
    return e6000_config(num_processors=4, l2_mb=4)


def make_group(num_members: int = 4, num_masks: int = 2,
               auth_interval: int = 100, group_id: int = 3):
    """Build SHUs with one installed group; returns (shus, manager)."""
    members = set(range(num_members))
    shus = [SecurityHardwareUnit(pid, max_processors=8)
            for pid in range(num_members)]
    for shu in shus:
        shu.join_group(group_id, members, SESSION_KEY, ENC_IV, AUTH_IV,
                       num_masks=num_masks, auth_interval=auth_interval)
    manager = AuthenticationManager(sorted(members), auth_interval,
                                    group_id)
    return shus, manager


@pytest.fixture
def group():
    return make_group()
