"""Configuration dataclass tests."""

import pytest

from repro.config import (KB, MB, BusConfig, CacheConfig, MemProtectConfig,
                          SenssConfig, SystemConfig, e6000_config)
from repro.errors import ConfigError


class TestCacheConfig:
    def test_geometry(self):
        cache = CacheConfig(size_bytes=1 * MB, associativity=4,
                            line_bytes=64, hit_latency=10)
        assert cache.num_sets == 4096
        assert cache.num_lines == 16384

    def test_validation(self):
        with pytest.raises(ConfigError):
            CacheConfig(0, 4, 64, 10)
        with pytest.raises(ConfigError):
            CacheConfig(1 * MB, 0, 64, 10)
        with pytest.raises(ConfigError):
            CacheConfig(1 * MB, 4, 48, 10)  # not a power of two
        with pytest.raises(ConfigError):
            CacheConfig(1000, 3, 64, 10)  # not divisible


class TestBusConfig:
    def test_gigaplane_line_count(self):
        assert BusConfig().total_lines == 378

    def test_validation(self):
        with pytest.raises(ConfigError):
            BusConfig(bandwidth_gb_s=0)
        with pytest.raises(ConfigError):
            BusConfig(cycle_cpu_cycles=0)


class TestSenssConfig:
    def test_per_message_overhead(self):
        assert SenssConfig().per_message_overhead_cycles == 3

    def test_validation(self):
        with pytest.raises(ConfigError):
            SenssConfig(auth_interval=0)
        with pytest.raises(ConfigError):
            SenssConfig(num_masks=0)
        with pytest.raises(ConfigError):
            SenssConfig(counter_bits=40)


class TestMemProtectConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            MemProtectConfig(pad_protocol="broadcast")
        with pytest.raises(ConfigError):
            MemProtectConfig(hash_tree_arity=1)


class TestSystemConfig:
    def test_figure5_defaults(self):
        config = SystemConfig()
        assert config.l1.size_bytes == 64 * KB
        assert config.l1.hit_latency == 2
        assert config.l2.hit_latency == 10
        assert config.bus.cache_to_cache_latency == 120
        assert config.bus.cache_to_memory_latency == 180
        assert config.crypto.aes_latency == 80
        assert config.max_masks == 8

    def test_with_helpers_are_pure(self):
        config = e6000_config()
        bigger = config.with_l2_size(4 * MB)
        assert config.l2.size_bytes == 1 * MB
        assert bigger.l2.size_bytes == 4 * MB
        assert config.with_processors(2).num_processors == 2
        assert config.with_auth_interval(1).senss.auth_interval == 1
        assert config.with_masks(2).senss.num_masks == 2
        assert not config.with_senss(False).senss.enabled
        assert config.with_memprotect(
            encryption_enabled=True).memprotect.encryption_enabled

    def test_validation(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_processors=0)
        with pytest.raises(ConfigError):
            SystemConfig(num_processors=33)  # exceeds the bit matrix

    def test_l2_line_at_least_l1_line(self):
        small_l2 = CacheConfig(64 * KB, 4, 16, 10)
        with pytest.raises(ConfigError):
            SystemConfig(l2=small_l2)

    def test_describe_renders_figure5(self):
        text = e6000_config().describe()
        assert "1 GHz" in text
        assert "120 cycles (uncontended)" in text
        assert "80 cycles" in text
        assert "3.2 GB/s" in text

    def test_configs_are_hashable_and_comparable(self):
        assert e6000_config() == e6000_config()
        assert hash(e6000_config()) == hash(e6000_config())
        assert e6000_config(l2_mb=1) != e6000_config(l2_mb=4)

    def test_e6000_knobs(self):
        config = e6000_config(num_processors=2, l2_mb=4,
                              senss_enabled=False, auth_interval=10)
        assert config.num_processors == 2
        assert config.l2.size_bytes == 4 * MB
        assert not config.senss.enabled
        assert config.senss.auth_interval == 10
