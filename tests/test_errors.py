"""Exception hierarchy tests."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("ConfigError", "CryptoError", "BusError",
                 "CoherenceError", "SimulationError",
                 "AuthenticationFailure", "IntegrityViolation",
                 "GroupTableFull", "TraceError", "SpoofDetected",
                 "PadCoherenceViolation", "SweepError"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_spoof_is_an_authentication_failure():
    assert issubclass(errors.SpoofDetected, errors.AuthenticationFailure)


def test_authentication_failure_carries_context():
    failure = errors.AuthenticationFailure("boom", cycle=42, group_id=7)
    assert failure.cycle == 42
    assert failure.group_id == 7
    assert "boom" in str(failure)


def test_catching_the_base_class():
    with pytest.raises(errors.ReproError):
        raise errors.GroupTableFull("full")


def test_pad_coherence_violation_carries_context():
    violation = errors.PadCoherenceViolation("stale", cycle=9, cpu=3)
    assert violation.cycle == 9
    assert violation.cpu == 3
    assert "stale" in str(violation)


def test_sweep_error_carries_failures():
    failures = [("fft", "ValueError: boom")]
    error = errors.SweepError("1 point failed", failures=failures)
    assert error.failures == failures
    assert "1 point failed" in str(error)
