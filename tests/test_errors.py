"""Exception hierarchy tests."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("ConfigError", "CryptoError", "BusError",
                 "CoherenceError", "SimulationError",
                 "AuthenticationFailure", "IntegrityViolation",
                 "GroupTableFull", "TraceError", "SpoofDetected"):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_spoof_is_an_authentication_failure():
    assert issubclass(errors.SpoofDetected, errors.AuthenticationFailure)


def test_authentication_failure_carries_context():
    failure = errors.AuthenticationFailure("boom", cycle=42, group_id=7)
    assert failure.cycle == 42
    assert failure.group_id == 7
    assert "boom" in str(failure)


def test_catching_the_base_class():
    with pytest.raises(errors.ReproError):
        raise errors.GroupTableFull("full")
