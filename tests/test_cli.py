"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "640" in out
    assert "1161" in out


def test_attacks_command(capsys):
    assert main(["attacks"]) == 0
    out = capsys.readouterr().out
    assert out.count("DETECTED") == 5
    assert "missed" not in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("fft", "radix", "barnes", "lu", "ocean"):
        assert name in out


def test_run_command(capsys):
    assert main(["run", "lu", "--cpus", "2", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "slowdown" in out
    assert "traffic increase" in out


def test_run_with_masks_and_memprotect(capsys):
    assert main(["run", "fft", "--cpus", "2", "--scale", "0.1",
                 "--masks", "2", "--memprotect"]) == 0
    assert "slowdown" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["sweep", "ocean", "--cpus", "2", "--scale", "0.1",
                 "--intervals", "100", "1"]) == 0
    out = capsys.readouterr().out
    assert "interval" in out
    assert "100" in out


def test_unknown_workload_rejected():
    from repro.errors import TraceError
    with pytest.raises(TraceError):
        main(["run", "quicksort"])


def test_run_with_trace_file(tmp_path, capsys):
    from repro.workloads.registry import generate
    from repro.workloads.tracefile import save_workload
    trace_path = tmp_path / "small.trace"
    save_workload(generate("ocean", 2, scale=0.05), trace_path)
    assert main(["run", str(trace_path), "--cpus", "2"]) == 0
    assert "slowdown" in capsys.readouterr().out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_sweep_with_trace_file(tmp_path, capsys):
    from repro.workloads.registry import generate
    from repro.workloads.tracefile import save_workload
    trace_path = tmp_path / "sweepme.trace"
    save_workload(generate("lu", 2, scale=0.05), trace_path)
    assert main(["sweep", str(trace_path), "--cpus", "2",
                 "--intervals", "100", "1"]) == 0
    assert "interval" in capsys.readouterr().out


def test_version_flag(capsys):
    from repro import __version__
    from repro.sim.sweep import ENGINE_VERSION
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert f"repro {__version__}" in out
    assert f"engine {ENGINE_VERSION}" in out


def test_trace_command_writes_valid_json(tmp_path, capsys):
    import json

    from repro.obs import validate_chrome_trace

    out_path = tmp_path / "trace.json"
    assert main(["trace", "fft", "--cpus", "2", "--scale", "0.05",
                 "--memprotect", "--interval", "10",
                 "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert validate_chrome_trace(payload) > 0
    err = capsys.readouterr().err
    assert "events" in err
    assert "Recorded events" in err


def test_trace_command_to_stdout(capsys):
    import json
    assert main(["trace", "lu", "--cpus", "2", "--scale", "0.05",
                 "--out", "-"]) == 0
    out = capsys.readouterr().out
    assert json.loads(out)["otherData"]["workload"] == "lu"


def test_trace_capacity_bounds_the_ring(tmp_path):
    import json
    out_path = tmp_path / "trace.json"
    assert main(["trace", "fft", "--cpus", "2", "--scale", "0.05",
                 "--memprotect", "--capacity", "64",
                 "--out", str(out_path)]) == 0
    payload = json.loads(out_path.read_text())
    assert payload["otherData"]["events_dropped"] > 0
    # 64 events plus the track-metadata records.
    assert len(payload["traceEvents"]) <= 64 + 3


def test_report_command(capsys):
    assert main(["report", "fft", "--cpus", "2", "--scale",
                 "0.05"]) == 0
    out = capsys.readouterr().out
    assert "Run report" in out
    assert "slowdown" in out
    assert "obs.miss_latency" in out
    assert "p95" in out
    assert "Wall-clock phases" in out


def test_report_command_json_output(tmp_path):
    import json
    json_path = tmp_path / "report.json"
    assert main(["report", "fft", "--cpus", "2", "--scale", "0.05",
                 "--memprotect", "--json", str(json_path)]) == 0
    payload = json.loads(json_path.read_text())
    assert payload["kind"] == "repro-report"
    assert payload["workload"] == "fft"
    assert payload["configs"]["secured"]["cycles"] > \
        payload["configs"]["baseline"]["cycles"]
    assert "simulate.secured" in payload["timings"]


def test_faults_command(tmp_path, capsys):
    import json
    json_path = tmp_path / "faults.json"
    assert main(["faults", "--scale", "0.02",
                 "--kinds", "spoof", "drop",
                 "--policies", "halt", "rekey-replay",
                 "--json", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "Fault-injection campaign" in out
    assert "spoof_self" in out
    assert "mac_interval" in out
    assert "all detected      : True" in out
    payload = json.loads(json_path.read_text())
    assert payload["all_detected"]
    assert payload["within_interval"]
    assert len(payload["entries"]) == 4


def test_faults_command_verify_identity(capsys):
    assert main(["faults", "--scale", "0.02", "--kinds", "merkle-flip",
                 "--policies", "halt", "--verify-identity"]) == 0
    assert "identity w/o fault: True" in capsys.readouterr().out


def test_report_empty_trace_exits_cleanly(tmp_path, capsys):
    from repro.smp.trace import Workload
    from repro.workloads.tracefile import save_workload
    trace_path = tmp_path / "empty.trace"
    save_workload(Workload("empty", [[], []]), trace_path)
    assert main(["report", str(trace_path), "--cpus", "2"]) == 1
    err = capsys.readouterr().err
    assert "no memory accesses" in err or "contains no" in err


def test_record_replay_diff_workflow(tmp_path, capsys):
    """The tentpole loop: record, replay perturbed, diff pinpoints."""
    import json
    rec = tmp_path / "run.rec.json"
    assert main(["record", "fft", "--cpus", "2", "--scale", "0.05",
                 "--interval", "10", "--memprotect",
                 "--out", str(rec)]) == 0
    streams = capsys.readouterr()
    combined = (streams.out + streams.err).lower()
    assert "recorded" in combined or "events" in combined

    replayed = tmp_path / "perturbed.replay.json"
    # the perturbed replay diverges, so --diff exits 1 (like diff(1))
    assert main(["replay", str(rec), "--perturb", "auth_interval=50",
                 "--out", str(replayed), "--diff"]) == 1
    out = capsys.readouterr().out
    assert "First divergence" in out

    diff_json = tmp_path / "diff.json"
    assert main(["diff", str(rec), str(replayed),
                 "--json", str(diff_json)]) == 1
    payload = json.loads(diff_json.read_text())
    assert payload["kind"] == "repro-recording-diff"
    assert payload["identical"] is False
    assert payload["first_divergence"] is not None
    assert payload["perturbation"]["name"] == "auth_interval"


def test_diff_identical_recordings_exit_zero(tmp_path, capsys):
    first = tmp_path / "a.rec.json"
    second = tmp_path / "b.rec.json"
    for path in (first, second):
        assert main(["record", "lu", "--cpus", "2", "--scale", "0.05",
                     "--out", str(path)]) == 0
    assert main(["diff", str(first), str(second)]) == 0
    out = capsys.readouterr().out
    assert "identical" in out


def test_diff_missing_file_exits_two(tmp_path, capsys):
    assert main(["diff", str(tmp_path / "a.json"),
                 str(tmp_path / "b.json")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_record_rejects_trace_workloads(tmp_path):
    from repro.workloads.registry import generate
    from repro.workloads.tracefile import save_workload
    trace_path = tmp_path / "t.trace"
    save_workload(generate("fft", 2, scale=0.05), trace_path)
    with pytest.raises(SystemExit, match="registry workload"):
        main(["record", str(trace_path), "--cpus", "2"])


def test_faults_record_diff_column(capsys):
    assert main(["faults", "--scale", "0.02", "--kinds", "drop",
                 "--policies", "rekey-replay",
                 "--record-diff"]) == 0
    out = capsys.readouterr().out
    assert "diverges vs clean" in out
    assert "fault_inject" in out
