"""CLI tests (python -m repro ...)."""

import pytest

from repro.cli import main


def test_overhead_command(capsys):
    assert main(["overhead"]) == 0
    out = capsys.readouterr().out
    assert "640" in out
    assert "1161" in out


def test_attacks_command(capsys):
    assert main(["attacks"]) == 0
    out = capsys.readouterr().out
    assert out.count("DETECTED") == 5
    assert "missed" not in out


def test_workloads_command(capsys):
    assert main(["workloads"]) == 0
    out = capsys.readouterr().out
    for name in ("fft", "radix", "barnes", "lu", "ocean"):
        assert name in out


def test_run_command(capsys):
    assert main(["run", "lu", "--cpus", "2", "--scale", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "slowdown" in out
    assert "traffic increase" in out


def test_run_with_masks_and_memprotect(capsys):
    assert main(["run", "fft", "--cpus", "2", "--scale", "0.1",
                 "--masks", "2", "--memprotect"]) == 0
    assert "slowdown" in capsys.readouterr().out


def test_sweep_command(capsys):
    assert main(["sweep", "ocean", "--cpus", "2", "--scale", "0.1",
                 "--intervals", "100", "1"]) == 0
    out = capsys.readouterr().out
    assert "interval" in out
    assert "100" in out


def test_unknown_workload_rejected():
    from repro.errors import TraceError
    with pytest.raises(TraceError):
        main(["run", "quicksort"])


def test_run_with_trace_file(tmp_path, capsys):
    from repro.workloads.registry import generate
    from repro.workloads.tracefile import save_workload
    trace_path = tmp_path / "small.trace"
    save_workload(generate("ocean", 2, scale=0.05), trace_path)
    assert main(["run", str(trace_path), "--cpus", "2"]) == 0
    assert "slowdown" in capsys.readouterr().out


def test_command_required():
    with pytest.raises(SystemExit):
        main([])


def test_sweep_with_trace_file(tmp_path, capsys):
    from repro.workloads.registry import generate
    from repro.workloads.tracefile import save_workload
    trace_path = tmp_path / "sweepme.trace"
    save_workload(generate("lu", 2, scale=0.05), trace_path)
    assert main(["sweep", str(trace_path), "--cpus", "2",
                 "--intervals", "100", "1"]) == 0
    assert "interval" in capsys.readouterr().out
