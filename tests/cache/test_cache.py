"""Set-associative cache tag store tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.mesi import MesiState
from repro.config import CacheConfig
from repro.errors import CoherenceError


def small_cache(sets=4, ways=2, line=64):
    return SetAssociativeCache(CacheConfig(
        size_bytes=sets * ways * line, associativity=ways,
        line_bytes=line, hit_latency=2))


def test_line_alignment():
    cache = small_cache()
    assert cache.line_address(0x1234) == 0x1200


def test_miss_then_hit():
    cache = small_cache()
    assert cache.lookup(0x1000) is None
    cache.insert(0x1000, MesiState.EXCLUSIVE)
    line = cache.lookup(0x1010)  # same line, different byte
    assert line is not None
    assert line.state is MesiState.EXCLUSIVE


def test_lru_eviction_order():
    cache = small_cache(sets=1, ways=2)
    cache.insert(0x000, MesiState.SHARED)
    cache.insert(0x040, MesiState.SHARED)
    cache.lookup(0x000)  # touch A -> B becomes LRU
    victim = cache.insert(0x080, MesiState.SHARED)
    assert victim == (0x040, MesiState.SHARED)
    assert cache.contains(0x000)
    assert not cache.contains(0x040)


def test_insert_prefers_invalid_ways():
    cache = small_cache(sets=1, ways=2)
    cache.insert(0x000, MesiState.MODIFIED)
    cache.insert(0x040, MesiState.SHARED)
    cache.invalidate(0x000)
    victim = cache.insert(0x080, MesiState.SHARED)
    assert victim is None  # the invalid way absorbed the fill
    assert cache.contains(0x040)


def test_dirty_victim_reported():
    cache = small_cache(sets=1, ways=1)
    cache.insert(0x000, MesiState.MODIFIED)
    victim = cache.insert(0x040, MesiState.SHARED)
    assert victim == (0x000, MesiState.MODIFIED)


def test_reinsert_updates_state_without_eviction():
    cache = small_cache(sets=1, ways=1)
    cache.insert(0x000, MesiState.SHARED)
    victim = cache.insert(0x000, MesiState.MODIFIED)
    assert victim is None
    assert cache.state_of(0x000) is MesiState.MODIFIED


def test_invalidate():
    cache = small_cache()
    cache.insert(0x100, MesiState.SHARED)
    assert cache.invalidate(0x100)
    assert not cache.invalidate(0x100)
    assert cache.state_of(0x100) is MesiState.INVALID


def test_set_state_on_missing_line():
    cache = small_cache()
    with pytest.raises(CoherenceError):
        cache.set_state(0x100, MesiState.SHARED)
    cache.set_state(0x100, MesiState.INVALID)  # no-op is allowed


def test_cannot_insert_invalid():
    cache = small_cache()
    with pytest.raises(CoherenceError):
        cache.insert(0x100, MesiState.INVALID)


def test_snoop_lookup_does_not_perturb_lru():
    cache = small_cache(sets=1, ways=2)
    cache.insert(0x000, MesiState.SHARED)
    cache.insert(0x040, MesiState.SHARED)
    cache.lookup(0x000, touch=False)  # snoop: must NOT refresh A
    victim = cache.insert(0x080, MesiState.SHARED)
    assert victim == (0x000, MesiState.SHARED)


def test_iter_lines_roundtrip():
    cache = small_cache()
    addresses = {0x000, 0x040, 0x400, 0x440}
    for address in addresses:
        cache.insert(address, MesiState.SHARED)
    assert {addr for addr, _ in cache.iter_lines()} == addresses
    assert cache.valid_line_count() == 4


def test_flush():
    cache = small_cache()
    cache.insert(0x000, MesiState.MODIFIED)
    cache.flush()
    assert cache.valid_line_count() == 0


def test_sets_never_exceed_associativity():
    cache = small_cache(sets=2, ways=2)
    for i in range(32):
        cache.insert(i * 64, MesiState.SHARED)
    assert cache.valid_line_count() <= 4


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=100))
def test_property_capacity_invariant(line_indices):
    """No matter the access pattern, ways per set <= associativity and
    the most recently inserted line is always resident."""
    cache = small_cache(sets=4, ways=2)
    for index in line_indices:
        cache.insert(index * 64, MesiState.SHARED)
        assert cache.contains(index * 64)
    assert cache.valid_line_count() <= 8
