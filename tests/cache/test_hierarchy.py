"""Two-level cache hierarchy tests (classification + inclusion)."""

import pytest

from repro.cache.hierarchy import AccessKind, CacheHierarchy
from repro.cache.mesi import MesiState
from repro.config import CacheConfig
from repro.errors import CoherenceError


def make_hierarchy(cpu_id=0):
    l1 = CacheConfig(size_bytes=4 * 1024, associativity=2, line_bytes=32,
                     hit_latency=2)
    l2 = CacheConfig(size_bytes=16 * 1024, associativity=4, line_bytes=64,
                     hit_latency=10)
    return CacheHierarchy(cpu_id, l1, l2)


def test_cold_read_misses():
    hierarchy = make_hierarchy()
    result = hierarchy.access(False, 0x1000)
    assert result.kind is AccessKind.MISS
    assert result.line_address == 0x1000


def test_fill_then_l1_hit():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.EXCLUSIVE)
    result = hierarchy.access(False, 0x1008)
    assert result.kind is AccessKind.L1_HIT
    assert result.latency == 2


def test_l2_hit_when_l1_line_differs():
    """L2 lines are 64B, L1 lines 32B: the upper half of a filled L2
    line is an L1 miss / L2 hit on first touch."""
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.EXCLUSIVE)
    result = hierarchy.access(False, 0x1020)
    assert result.kind is AccessKind.L2_HIT
    assert result.latency == 10
    # And it is an L1 hit afterwards.
    assert hierarchy.access(False, 0x1020).kind is AccessKind.L1_HIT


def test_write_to_shared_needs_upgrade():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.SHARED)
    result = hierarchy.access(True, 0x1000)
    assert result.kind is AccessKind.L2_HIT_NEEDS_UPGRADE


def test_write_to_exclusive_is_silent_upgrade():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.EXCLUSIVE)
    result = hierarchy.access(True, 0x1000)
    assert result.kind in (AccessKind.L1_HIT, AccessKind.L2_HIT)
    assert hierarchy.state_of(0x1000) is MesiState.MODIFIED


def test_upgrade_commit():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.SHARED)
    hierarchy.upgrade(0x1000)
    assert hierarchy.state_of(0x1000) is MesiState.MODIFIED


def test_upgrade_requires_residency():
    hierarchy = make_hierarchy()
    with pytest.raises(CoherenceError):
        hierarchy.upgrade(0x9000)


def test_snoop_read_downgrades_to_shared():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.MODIFIED)
    prior = hierarchy.snoop_read(0x1000)
    assert prior is MesiState.MODIFIED
    assert hierarchy.state_of(0x1000) is MesiState.SHARED


def test_snoop_read_exclusive_invalidates_and_purges_l1():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.EXCLUSIVE)
    hierarchy.access(False, 0x1000)   # pulls into L1
    prior = hierarchy.snoop_read_exclusive(0x1000)
    assert prior is MesiState.EXCLUSIVE
    assert hierarchy.state_of(0x1000) is MesiState.INVALID
    # Inclusion: the L1 copy must be gone (next access is a full miss).
    assert hierarchy.access(False, 0x1000).kind is AccessKind.MISS


def test_snoop_missing_line_is_invalid():
    hierarchy = make_hierarchy()
    assert hierarchy.snoop_read(0x7000) is MesiState.INVALID
    assert hierarchy.snoop_read_exclusive(0x7000) is MesiState.INVALID


def test_eviction_enforces_inclusion():
    """Evicting an L2 line must invalidate its L1 sublines."""
    hierarchy = make_hierarchy()
    l2 = hierarchy.l2
    # Fill one L2 set (4 ways) with conflicting lines.
    conflicting = []
    base = 0x1000
    step = l2.config.num_sets * l2.config.line_bytes
    for way in range(5):
        address = base + way * step
        conflicting.append(address)
        hierarchy.fill(address, MesiState.EXCLUSIVE)
        hierarchy.access(False, address)  # warm L1 too
    # The first line was evicted by the fifth fill.
    assert hierarchy.state_of(conflicting[0]) is MesiState.INVALID
    assert hierarchy.access(False, conflicting[0]).kind is AccessKind.MISS


def test_fill_reports_dirty_victim():
    hierarchy = make_hierarchy()
    l2 = hierarchy.l2
    step = l2.config.num_sets * l2.config.line_bytes
    for way in range(4):
        hierarchy.fill(0x0 + way * step, MesiState.MODIFIED)
    victim = hierarchy.fill(4 * step, MesiState.EXCLUSIVE)
    assert victim is not None
    assert victim[1] is MesiState.MODIFIED


def test_flush_returns_dirty_lines():
    hierarchy = make_hierarchy()
    hierarchy.fill(0x1000, MesiState.MODIFIED)
    hierarchy.fill(0x2000, MesiState.SHARED)
    dirty = hierarchy.flush()
    assert dirty == [0x1000]
    assert hierarchy.state_of(0x1000) is MesiState.INVALID


def test_stats_recorded():
    hierarchy = make_hierarchy()
    hierarchy.access(False, 0x1000)
    hierarchy.fill(0x1000, MesiState.EXCLUSIVE)
    hierarchy.access(False, 0x1000)
    assert hierarchy.stats.get("cpu0.l2_miss") == 1
    assert hierarchy.stats.get("cpu0.l1_hit") == 1
