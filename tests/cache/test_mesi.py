"""MESI state semantics tests."""

from repro.cache.mesi import MesiState


def test_validity():
    assert MesiState.MODIFIED.is_valid
    assert MesiState.EXCLUSIVE.is_valid
    assert MesiState.SHARED.is_valid
    assert not MesiState.INVALID.is_valid


def test_dirtiness():
    assert MesiState.MODIFIED.is_dirty
    assert not MesiState.EXCLUSIVE.is_dirty
    assert not MesiState.SHARED.is_dirty
    assert not MesiState.INVALID.is_dirty


def test_write_permission():
    assert MesiState.MODIFIED.can_write
    assert MesiState.EXCLUSIVE.can_write
    assert not MesiState.SHARED.can_write
    assert not MesiState.INVALID.can_write


def test_single_letter_names():
    assert str(MesiState.MODIFIED) == "M"
    assert str(MesiState.INVALID) == "I"
