"""Recovery policies: rekey-replay continues, quarantine evicts."""

import pytest

from repro.errors import AuthenticationFailure, ConfigError
from repro.faults import (FaultInjector, FaultKind, FaultPlan,
                          RecoveryEngine)
from repro.faults.campaign import default_spec
from repro.sim.sweep import build_system

from .conftest import CPUS


def _run(config, workload, kind, policy):
    plan = FaultPlan(specs=(default_spec(kind, CPUS),))
    system = build_system(config)
    injector = FaultInjector(plan, policy=policy).attach(system)
    result = system.run(workload)
    return system, injector, result


def test_rekey_replay_completes_where_halt_aborts(config, workload):
    halted = build_system(config)
    FaultInjector(FaultPlan(specs=(default_spec(FaultKind.DROP, CPUS),)
                            )).attach(halted)
    with pytest.raises(AuthenticationFailure):
        halted.run(workload)

    system, injector, result = _run(config, workload, FaultKind.DROP,
                                    "rekey-replay")
    scoreboard = injector.finalize()
    assert result.cycles > 0
    record = scoreboard.records[0]
    assert record.detected and record.recovered
    assert record.recovery == "rekey-replay"
    assert injector.recovery.rekeys == 1
    assert scoreboard.penalty_cycles > 0


def test_rekey_replay_charges_the_replayed_window(config, workload):
    """The penalty covers the window since the last MAC checkpoint
    plus the fixed re-keying cost, and lengthens the run."""
    vanilla = build_system(config).run(workload)
    _, injector, result = _run(config, workload, FaultKind.DROP,
                               "rekey-replay")
    scoreboard = injector.finalize()
    assert scoreboard.penalty_cycles >= \
        injector.recovery.rekey_cycles
    assert result.cycles > vanilla.cycles


def test_quarantine_evicts_the_culprit(config, workload):
    system, injector, result = _run(config, workload, FaultKind.DROP,
                                    "quarantine")
    scoreboard = injector.finalize()
    assert result.cycles > 0
    assert scoreboard.records[0].recovered
    evicted = injector.recovery.quarantined
    assert len(evicted) == 1
    members = system.bus.security_layer.group_state(0).member_pids
    assert evicted[0] not in members
    assert len(members) == CPUS - 1


def test_quarantine_without_a_culprit_only_charges_cycles(config,
                                                          workload):
    """A flipped Merkle node has no PID to evict: penalty only."""
    system, injector, result = _run(config, workload,
                                    FaultKind.MERKLE_FLIP, "quarantine")
    scoreboard = injector.finalize()
    assert result.cycles > 0
    assert scoreboard.records[0].recovered
    assert injector.recovery.quarantined == []
    members = system.bus.security_layer.group_state(0).member_pids
    assert len(members) == CPUS


def test_unknown_policy_rejected(config):
    system = build_system(config)
    with pytest.raises(ConfigError):
        RecoveryEngine(system, policy="pray")
