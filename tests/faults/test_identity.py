"""Bit-identity: hooks that never fire change nothing.

The acceptance criterion for the whole subsystem: a system with a
FaultInjector attached whose plan never triggers must produce results
(cycles, per-CPU clocks, every statistic) identical to an untouched
system — the fault hooks are pure pointer checks until a trigger
index is reached.
"""

from repro.config import e6000_config
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.sim.sweep import build_system

from .conftest import CPUS

NEVER = 1 << 40  # a trigger index no small run reaches


def _compare(config, workload, plan):
    vanilla = build_system(config).run(workload)
    system = build_system(config)
    injector = FaultInjector(plan).attach(system)
    hooked = system.run(workload)
    injector.finalize()
    assert hooked.cycles == vanilla.cycles
    assert list(hooked.per_cpu_cycles) == list(vanilla.per_cpu_cycles)
    assert hooked.stats == vanilla.stats
    assert injector.untriggered == len(plan)


def test_identity_on_the_integrated_config(config, workload):
    # One never-firing spec per hook family, so every hook site runs.
    from repro.faults import FaultSpec
    plan = FaultPlan(specs=(
        FaultSpec(FaultKind.DROP, NEVER),
        FaultSpec(FaultKind.PAD_CORRUPT, NEVER, cpu=0),
        FaultSpec(FaultKind.MERKLE_FLIP, NEVER),
    ))
    _compare(config, workload, plan)


def test_identity_on_a_senss_only_config(workload):
    config = e6000_config(num_processors=CPUS, l2_mb=1,
                          auth_interval=10)
    _compare(config, workload,
             FaultPlan.single(FaultKind.SPOOF, trigger=NEVER,
                              claimed_pid=1))


def test_campaign_verify_identity_helper():
    from repro.faults.campaign import verify_identity
    report = verify_identity(scale=0.02)
    assert report["identical"]
    assert report["untriggered"] == 1
