"""End-to-end detection: each injected fault fires the right error.

These pin the errors.py hierarchy on the *timing* path: a fault
injected into a full ``SmpSystem`` run surfaces as the matching
exception out of ``system.run`` under the ``halt`` policy, and the
scoreboard attributes it to the defense mechanism the paper says
catches that attack class.
"""

import pytest

from repro.errors import (AuthenticationFailure, IntegrityViolation,
                          PadCoherenceViolation, ReproError,
                          SpoofDetected)
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.faults.campaign import default_spec
from repro.faults.scoreboard import (MECH_MAC, MECH_MERKLE, MECH_PAD,
                                     MECH_SPOOF)
from repro.sim.sweep import build_system

from .conftest import CPUS, INTERVAL

#: kind -> (error raised under halt, mechanism that catches it)
EXPECTED = {
    FaultKind.DROP: (AuthenticationFailure, MECH_MAC),
    FaultKind.REORDER: (AuthenticationFailure, MECH_MAC),
    FaultKind.SPOOF: (SpoofDetected, MECH_SPOOF),
    FaultKind.BIT_FLIP: (AuthenticationFailure, MECH_MAC),
    FaultKind.MASK_DESYNC: (AuthenticationFailure, MECH_MAC),
    FaultKind.PAD_CORRUPT: (PadCoherenceViolation, MECH_PAD),
    FaultKind.SEQ_CORRUPT: (PadCoherenceViolation, MECH_PAD),
    FaultKind.MERKLE_FLIP: (IntegrityViolation, MECH_MERKLE),
}


@pytest.mark.parametrize("kind", FaultKind.ALL)
def test_halt_raises_the_matching_error(kind, config, workload):
    error_class, mechanism = EXPECTED[kind]
    plan = FaultPlan(specs=(default_spec(kind, CPUS),))
    system = build_system(config)
    injector = FaultInjector(plan).attach(system)
    with pytest.raises(error_class):
        system.run(workload)
    scoreboard = injector.finalize()
    assert scoreboard.injected == 1
    record = scoreboard.records[0]
    assert record.detected
    assert record.mechanism == mechanism
    assert record.recovery == "halt"
    assert record.latency_cycles >= 0


@pytest.mark.parametrize("kind", FaultKind.ALL)
def test_every_fault_error_is_a_repro_error(kind):
    assert issubclass(EXPECTED[kind][0], ReproError)


def test_mac_detection_is_within_one_auth_interval(config, workload):
    """Bus faults caught by the interval check are bounded by it."""
    for kind in (FaultKind.DROP, FaultKind.BIT_FLIP):
        plan = FaultPlan(specs=(default_spec(kind, CPUS),))
        system = build_system(config)
        injector = FaultInjector(plan).attach(system)
        with pytest.raises(AuthenticationFailure):
            system.run(workload)
        record = injector.finalize().records[0]
        assert 0 <= record.latency_tx <= INTERVAL + 1


def test_untriggered_plan_detects_nothing(config, workload):
    plan = FaultPlan.single(FaultKind.DROP, trigger=1 << 40)
    system = build_system(config)
    injector = FaultInjector(plan).attach(system)
    system.run(workload)  # must not raise
    scoreboard = injector.finalize()
    assert scoreboard.injected == 0
    assert injector.untriggered == 1


def test_scoreboard_counters_reach_the_stats(config, workload):
    """faults.* counters flush through StatsRegistry into the result."""
    plan = FaultPlan(specs=(default_spec(FaultKind.DROP, CPUS),))
    system = build_system(config)
    injector = FaultInjector(plan, policy="rekey-replay").attach(system)
    result = system.run(workload)
    injector.finalize()
    assert result.stats["faults.injected"] == 1
    assert result.stats["faults.detected"] == 1
    assert result.stats["faults.recovered"] == 1
    assert result.stats["faults.by_mechanism.mac_interval"] == 1
    assert result.stats["faults.penalty_cycles"] > 0


def test_bus_kinds_require_the_senss_layer(workload):
    from repro.config import e6000_config
    from repro.errors import ConfigError
    plain = e6000_config(num_processors=CPUS, senss_enabled=False)
    system = build_system(plain)
    plan = FaultPlan.single(FaultKind.DROP, trigger=0)
    with pytest.raises(ConfigError):
        FaultInjector(plan).attach(system)
