"""Shared machinery for the fault-injection tests.

One miss-heavy secured config and one small workload, generated once:
every test in this package simulates the same traffic so the whole
matrix stays fast while still exercising the bus, mask, pad and
hash-tree paths the injectors perturb.
"""

import pytest

from repro.faults.campaign import campaign_config
from repro.workloads.registry import generate

CPUS = 4
SCALE = 0.02
SEED = 0
INTERVAL = 10


@pytest.fixture(scope="package")
def config():
    return campaign_config(cpus=CPUS, interval=INTERVAL)


@pytest.fixture(scope="package")
def workload():
    return generate("ocean", CPUS, scale=SCALE, seed=SEED)
