"""The campaign matrix reducer (what `python -m repro faults` runs)."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultKind
from repro.faults.campaign import default_spec, run_campaign

from .conftest import CPUS, SCALE


def test_default_specs_are_valid_for_every_kind():
    for kind in FaultKind.ALL:
        spec = default_spec(kind, CPUS)
        assert spec.kind == kind
        assert spec.trigger >= 0


def test_matrix_detects_and_reports(config):
    report = run_campaign(kinds=(FaultKind.SPOOF, FaultKind.DROP),
                          policies=("halt", "rekey-replay"),
                          scale=SCALE, config=config)
    assert len(report["entries"]) == 4
    assert report["all_detected"]
    assert report["within_interval"]
    by_cell = {(entry["kind"], entry["policy"]): entry
               for entry in report["entries"]}
    assert by_cell[(FaultKind.SPOOF, "halt")]["halted"]
    assert by_cell[(FaultKind.SPOOF, "rekey-replay")]["completed"]
    assert by_cell[(FaultKind.DROP, "halt")]["mechanism"] == \
        "mac_interval"


def test_unknown_policy_rejected():
    with pytest.raises(ReproError):
        run_campaign(policies=("pray",))


def test_record_diff_pinpoints_divergence(config):
    """`repro faults --record-diff`: every cell carries a divergence
    summary against the clean (fault-free) recording."""
    report = run_campaign(kinds=(FaultKind.DROP,),
                          policies=("halt", "rekey-replay"),
                          scale=SCALE, config=config,
                          record_diff=True)
    assert report["record_diff"] is True
    assert report["clean_cycles"] > 0
    by_policy = {entry["policy"]: entry["divergence"]
                 for entry in report["entries"]}
    for policy, divergence in by_policy.items():
        assert divergence["identical"] is False
        first = divergence["first_divergence"]
        assert first is not None and first["cycle"] >= 0
    # rekey-replay completes, so its cycle delta is measurable; the
    # halt cell stops early and reports no delta.
    assert by_policy["rekey-replay"]["cycles_delta"] is not None
    assert by_policy["halt"]["cycles_delta"] is None


def test_without_record_diff_entries_stay_lean(config):
    report = run_campaign(kinds=(FaultKind.DROP,),
                          policies=("halt",), scale=SCALE,
                          config=config)
    assert "record_diff" not in report
    assert "divergence" not in report["entries"][0]
