"""The campaign matrix reducer (what `python -m repro faults` runs)."""

import pytest

from repro.errors import ReproError
from repro.faults import FaultKind
from repro.faults.campaign import default_spec, run_campaign

from .conftest import CPUS, SCALE


def test_default_specs_are_valid_for_every_kind():
    for kind in FaultKind.ALL:
        spec = default_spec(kind, CPUS)
        assert spec.kind == kind
        assert spec.trigger >= 0


def test_matrix_detects_and_reports(config):
    report = run_campaign(kinds=(FaultKind.SPOOF, FaultKind.DROP),
                          policies=("halt", "rekey-replay"),
                          scale=SCALE, config=config)
    assert len(report["entries"]) == 4
    assert report["all_detected"]
    assert report["within_interval"]
    by_cell = {(entry["kind"], entry["policy"]): entry
               for entry in report["entries"]}
    assert by_cell[(FaultKind.SPOOF, "halt")]["halted"]
    assert by_cell[(FaultKind.SPOOF, "rekey-replay")]["completed"]
    assert by_cell[(FaultKind.DROP, "halt")]["mechanism"] == \
        "mac_interval"


def test_unknown_policy_rejected():
    with pytest.raises(ReproError):
        run_campaign(policies=("pray",))
