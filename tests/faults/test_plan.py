"""FaultSpec validation and FaultPlan determinism."""

import pytest

from repro.errors import ConfigError
from repro.faults import FaultKind, FaultPlan, FaultSpec


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec("gamma-ray", 0)

    def test_negative_trigger_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.DROP, -1)

    def test_pad_kinds_need_a_victim_cpu(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.PAD_CORRUPT, 0)
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.SEQ_CORRUPT, 0)
        assert FaultSpec(FaultKind.PAD_CORRUPT, 0, cpu=1).cpu == 1

    def test_spoof_needs_a_claimed_pid(self):
        with pytest.raises(ConfigError):
            FaultSpec(FaultKind.SPOOF, 0)
        assert FaultSpec(FaultKind.SPOOF, 0,
                         claimed_pid=2).claimed_pid == 2

    def test_auto_label(self):
        assert FaultSpec(FaultKind.DROP, 7).label == "drop@7"
        assert FaultSpec(FaultKind.DROP, 7, label="x").label == "x"


class TestFaultPlan:
    def test_single(self):
        plan = FaultPlan.single(FaultKind.REORDER, trigger=3)
        assert len(plan) == 1
        assert list(plan)[0].kind == FaultKind.REORDER

    def test_random_is_deterministic(self):
        first = FaultPlan.random(seed=42, count=10, num_cpus=4)
        second = FaultPlan.random(seed=42, count=10, num_cpus=4)
        assert first.specs == second.specs

    def test_random_seed_changes_the_plan(self):
        first = FaultPlan.random(seed=1, count=10, num_cpus=4)
        second = FaultPlan.random(seed=2, count=10, num_cpus=4)
        assert first.specs != second.specs

    def test_random_rejects_unknown_kinds(self):
        with pytest.raises(ConfigError):
            FaultPlan.random(seed=0, count=1, num_cpus=2,
                             kinds=["gamma-ray"])

    def test_bus_and_memory_specs_partition_the_plan(self):
        plan = FaultPlan.random(seed=3, count=20, num_cpus=4)
        split = plan.bus_specs() + plan.memory_specs()
        assert sorted(s.label for s in split) == \
            sorted(s.label for s in plan)
        assert all(s.kind in FaultKind.BUS for s in plan.bus_specs())
        assert all(s.kind in FaultKind.MEMORY
                   for s in plan.memory_specs())
