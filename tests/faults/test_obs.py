"""Fault events flow through the observability layer.

An attached Tracer records FAULT_INJECT/FAULT_DETECT events for every
injected fault, the Chrome-trace export names them with kind and
mechanism strings, and the exported payload passes the published
schema (including the new enum entries).
"""

from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.faults.campaign import default_spec
from repro.obs import Tracer, to_chrome_trace, validate_chrome_trace
from repro.sim.sweep import build_system

from .conftest import CPUS


def _traced_run(config, workload, kind):
    system = build_system(config)
    # Big enough that early fault events survive the ring (the run
    # records ~140k events; the default 64k window would drop them).
    tracer = Tracer(capacity=200_000).attach(system)
    plan = FaultPlan(specs=(default_spec(kind, CPUS),))
    injector = FaultInjector(plan, policy="rekey-replay").attach(system)
    system.run(workload)
    injector.finalize()
    return tracer


def test_tracer_records_fault_events(config, workload):
    tracer = _traced_run(config, workload, FaultKind.DROP)
    by_kind = tracer.summary()["by_kind"]
    assert by_kind["fault_inject"] == 1
    assert by_kind["fault_detect"] == 1


def test_export_carries_kind_and_mechanism(config, workload):
    tracer = _traced_run(config, workload, FaultKind.SPOOF)
    payload = to_chrome_trace(tracer)
    validate_chrome_trace(payload)
    events = {event["name"]: event
              for event in payload["traceEvents"]
              if event["name"].startswith("fault_")}
    assert events["fault_inject"]["args"]["kind"] == "spoof"
    detect = events["fault_detect"]["args"]
    assert detect["kind"] == "spoof"
    assert detect["mechanism"] == "spoof_self"
    assert detect["latency_cycles"] >= 0


def test_memory_fault_events_validate_too(config, workload):
    tracer = _traced_run(config, workload, FaultKind.MERKLE_FLIP)
    payload = to_chrome_trace(tracer)
    validate_chrome_trace(payload)
    detects = [event for event in payload["traceEvents"]
               if event["name"] == "fault_detect"]
    assert detects[0]["args"]["mechanism"] == "merkle_verify"
