"""Chaos plan determinism, fire-once hooks, and one real campaign.

The units pin what makes chaos *deterministic* (plans are a pure
function of the seed; faults fire exactly once). The smoke test at
the bottom runs a real ``run_chaos`` campaign — server subprocess,
worker SIGKILL, mid-job server kill + ``--resume`` — and asserts the
headline invariant: completed jobs' results are identical to a clean
``run_sweep``.
"""

import json
import os
from multiprocessing import Process

import pytest

from repro.chaos.harness import run_chaos
from repro.chaos.hooks import _claim, apply_worker_faults
from repro.chaos.plan import (FAULT_KINDS, ChaosPlan, build_plan,
                              describe_plan)
from repro.config import e6000_config
from repro.sim.sweep import SweepPoint, point_key


def keys(count=4):
    return [f"{'%02x' % n}" * 32 for n in range(count)]


class TestPlan:
    def test_same_seed_same_plan(self):
        one = build_plan(3, keys(), FAULT_KINDS, "/tmp/m")
        two = build_plan(3, keys(), FAULT_KINDS, "/tmp/m")
        assert one.to_dict() == two.to_dict()

    def test_different_seed_different_targets(self):
        plans = [build_plan(seed, keys(16), ("worker-kill",), "/m")
                 for seed in range(8)]
        targets = {plan.targets("worker-kill")[0] for plan in plans}
        assert len(targets) > 1

    def test_kind_order_does_not_matter(self):
        forward = build_plan(0, keys(), FAULT_KINDS, "/m")
        backward = build_plan(0, keys(), tuple(reversed(FAULT_KINDS)),
                              "/m")
        assert forward.to_dict() == backward.to_dict()

    def test_worker_faults_get_distinct_points(self):
        plan = build_plan(0, keys(4), FAULT_KINDS, "/m")
        targeted = [fault["point"] for fault in plan.faults
                    if "point" in fault]
        assert len(targeted) == len(set(targeted))

    def test_fewer_points_than_faults_reuses_targets(self):
        plan = build_plan(0, keys(1), FAULT_KINDS, "/m")
        for fault in plan.worker_faults():
            assert fault["point"] == keys(1)[0]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            build_plan(0, keys(), ("zombie-apocalypse",), "/m")

    def test_no_points_rejected(self):
        with pytest.raises(ValueError, match="at least one point"):
            build_plan(0, [], FAULT_KINDS, "/m")

    def test_round_trips_through_json_file(self, tmp_path):
        plan = build_plan(5, keys(), FAULT_KINDS, str(tmp_path))
        path = plan.save(tmp_path / "plan.json")
        loaded = ChaosPlan.load(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_describe_names_point_indexes(self):
        plan = build_plan(0, keys(4), ("worker-kill",
                                       "server-restart"), "/m")
        lines = describe_plan(
            plan, {key: index for index, key in enumerate(keys(4))})
        assert any(line.startswith("worker-kill: point ")
                   for line in lines)
        assert "server-restart: orchestrator-level" in lines


class TestHooks:
    def test_claim_is_exclusive(self, tmp_path):
        assert _claim(str(tmp_path), "fault-x") is True
        assert _claim(str(tmp_path), "fault-x") is False
        assert _claim(str(tmp_path), "fault-y") is True

    def test_claim_exclusive_across_processes(self, tmp_path):
        """The marker must arbitrate between concurrent worker
        processes, not just calls in one process."""
        winners = []

        def contender(marker_dir, out):
            result = _claim(marker_dir, "contested")
            with open(out, "a") as handle:
                handle.write(f"{int(result)}\n")

        out = tmp_path / "winners"
        processes = [Process(target=contender,
                             args=(str(tmp_path), str(out)))
                     for _ in range(4)]
        for process in processes:
            process.start()
        for process in processes:
            process.join()
        winners = out.read_text().split()
        assert sorted(winners) == ["0", "0", "0", "1"]

    def test_no_plan_env_is_inert(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_PLAN", raising=False)
        point = SweepPoint("fft", e6000_config(num_processors=2),
                           scale=0.05, seed=0)
        apply_worker_faults(point)  # must not raise, must not act

    def test_malformed_plan_runs_clean(self, tmp_path, monkeypatch):
        bad = tmp_path / "plan.json"
        bad.write_text("{not json")
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(bad))
        point = SweepPoint("fft", e6000_config(num_processors=2),
                           scale=0.05, seed=0)
        apply_worker_faults(point)

    def test_untargeted_point_untouched(self, tmp_path, monkeypatch):
        point = SweepPoint("fft", e6000_config(num_processors=2),
                           scale=0.05, seed=0)
        plan = ChaosPlan(seed=0, marker_dir=str(tmp_path / "m"),
                         faults=[{"kind": "worker-kill",
                                  "point": "not-this-point"}])
        path = plan.save(tmp_path / "plan.json")
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(path))
        apply_worker_faults(point)  # alive = the fault didn't fire
        assert not os.listdir(tmp_path / "m") \
            if (tmp_path / "m").exists() else True

    def test_targeted_fault_claims_marker_once(self, tmp_path,
                                               monkeypatch):
        """A hang fault (0s, so it returns) claims its marker on the
        first hit and is inert on the second."""
        point = SweepPoint("fft", e6000_config(num_processors=2),
                           scale=0.05, seed=0)
        key = point_key(point)
        plan = ChaosPlan(seed=0, marker_dir=str(tmp_path / "m"),
                         faults=[{"kind": "point-hang", "point": key,
                                  "hang_s": 0.0}])
        path = plan.save(tmp_path / "plan.json")
        monkeypatch.setenv("REPRO_CHAOS_PLAN", str(path))
        apply_worker_faults(point)
        assert os.listdir(tmp_path / "m") == [f"point-hang-{key}"]
        apply_worker_faults(point)  # marker held: no second fire
        assert len(os.listdir(tmp_path / "m")) == 1


class TestCampaign:
    def test_worker_kill_and_restart_campaign(self, tmp_path):
        """One real chaos campaign: a worker SIGKILLs itself mid-
        point and the server is SIGKILLed mid-job then resumed from
        its journal — and every completed job's results are byte-
        identical to a clean in-process sweep."""
        report = run_chaos(points=2, scale=0.03, seed=0,
                           faults=["worker-kill", "server-restart"],
                           workers=2, point_timeout=10.0,
                           work_dir=str(tmp_path))
        assert report.ok, report.format()
        names = [check["name"] for check in report.checks]
        assert "worker-faults results identical" in names
        assert "server-restart results identical" in names
        # The report is JSON-serializable for --json consumers.
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is True

    def test_report_format_flags_failures(self):
        from repro.chaos.harness import ChaosReport
        report = ChaosReport(seed=1, faults=["worker-kill"],
                             plan_lines=["worker-kill: point 0"])
        report.check("results identical", False, "point 1 diverged")
        assert not report.ok
        text = report.format()
        assert "[FAIL] results identical" in text
        assert "INVARIANT VIOLATED" in text
