"""Workload characterization tests."""

import pytest

from repro.analysis.characterize import WorkloadProfile, characterize
from repro.config import e6000_config
from repro.workloads import generate
from repro.workloads.micro import ping_pong, private_stream


@pytest.fixture(scope="module")
def config():
    return e6000_config(num_processors=4)


def test_profile_fields_are_consistent(config):
    profile = characterize(generate("lu", 4, scale=0.1), config)
    assert profile.references > 0
    assert 0.0 <= profile.write_fraction <= 1.0
    assert 0.0 <= profile.shared_fraction <= 1.0
    assert 0.0 <= profile.l2_miss_rate <= 1.0
    assert 0.0 <= profile.cache_to_cache_share <= 1.0
    assert profile.unique_lines > 0
    assert profile.bus_utilisation > 0


def test_private_stream_has_zero_sharing(config):
    two_cpu = e6000_config(num_processors=2)
    profile = characterize(private_stream(2, refs_per_cpu=300), two_cpu)
    assert profile.shared_fraction == 0.0
    assert profile.cache_to_cache_share == 0.0


def test_ping_pong_is_all_shared_writes(config):
    two_cpu = e6000_config(num_processors=2)
    profile = characterize(ping_pong(rounds=50), two_cpu)
    assert profile.write_fraction == 1.0
    assert profile.shared_fraction == 1.0
    assert profile.unique_lines == 1
    assert profile.cache_to_cache_share > 0.5


def test_splash_models_sit_in_the_paper_regime(config):
    """The DESIGN.md §2 tuning targets: few-percent miss rates,
    unsaturated bus, non-trivial cache-to-cache share."""
    for name in ("fft", "radix", "barnes", "lu", "ocean"):
        profile = characterize(generate(name, 4, scale=0.3), config)
        assert profile.l2_miss_rate < 0.25, name
        assert profile.bus_utilisation < 0.85, name


def test_rows_render():
    header = WorkloadProfile.header()
    profile = characterize(ping_pong(rounds=10),
                           e6000_config(num_processors=2))
    rows = profile.rows()
    assert len(rows[0]) == len(header)
    assert rows[0][0] == "ping_pong"
