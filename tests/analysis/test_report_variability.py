"""Report formatting and variability analysis tests."""

from repro.analysis.report import format_percent, format_table
from repro.analysis.variability import AccessRecorder, compare_orderings
from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.smp.system import SmpSystem
from repro.workloads.micro import false_sharing


def test_format_table_alignment():
    text = format_table("Title", ["name", "value"],
                        [["fft", 1.5], ["radix", 22]])
    lines = text.splitlines()
    assert lines[0] == "Title"
    assert "fft" in text and "22" in text
    # Header and data columns line up.
    header_line = lines[2]
    assert header_line.index("value") == lines[4].index("1.5")


def test_format_percent():
    assert format_percent(1.234) == "+1.234%"
    assert format_percent(-0.5) == "-0.500%"


def test_recorder_captures_bus_order():
    config = e6000_config(num_processors=2, senss_enabled=False)
    system = SmpSystem(config)
    recorder = AccessRecorder()
    system.bus.add_observer(recorder)
    system.run(false_sharing(num_cpus=2, rounds=5))
    assert recorder.events
    assert set(recorder.per_cpu_counts()) <= {0, 1}


def test_figure11_reordering_between_base_and_senss():
    """The section 7.8 phenomenon: adding the security delay reorders
    the global bus interleaving under false sharing."""
    workload = false_sharing(num_cpus=2, rounds=100)
    config = e6000_config(num_processors=2)

    base_system = SmpSystem(config.with_senss(False))
    base_recorder = AccessRecorder()
    base_system.bus.add_observer(base_recorder)
    base_system.run(workload)

    senss_system = build_secure_system(config.with_auth_interval(1))
    senss_recorder = AccessRecorder()
    senss_system.bus.add_observer(senss_recorder)
    senss_system.run(workload)

    comparison = compare_orderings(base_recorder, senss_recorder)
    assert comparison["base_transactions"] > 0
    # SENSS adds MAC broadcasts, so the streams cannot be identical.
    assert comparison["reordered"]
    assert 0.0 <= comparison["identical_prefix_fraction"] <= 1.0


def test_identical_runs_compare_equal():
    workload = false_sharing(num_cpus=2, rounds=10)
    config = e6000_config(num_processors=2, senss_enabled=False)
    recorders = []
    for _ in range(2):
        system = SmpSystem(config)
        recorder = AccessRecorder()
        system.bus.add_observer(recorder)
        system.run(workload)
        recorders.append(recorder)
    comparison = compare_orderings(*recorders)
    assert not comparison["reordered"]
    assert comparison["identical_prefix_fraction"] == 1.0
