"""Hardware overhead accounting tests (section 7.1's exact numbers)."""

import pytest

from repro.analysis.overhead import compute_overhead
from repro.config import e6000_config


@pytest.fixture(scope="module")
def report():
    return compute_overhead(e6000_config())


def test_bit_matrix_is_640_bytes(report):
    assert report.bit_matrix_bytes == 640


def test_table_entry_is_1161_bits(report):
    assert report.table_bits_per_entry == 1161


def test_table_total_is_148_6_kb(report):
    assert report.table_total_kb == pytest.approx(148.6, abs=0.05)


def test_bus_lines_increase_3_1_percent(report):
    """378 Gigaplane lines + 2 type + 10 GID = +3.1%."""
    assert report.baseline_bus_lines == 378
    assert report.extra_type_lines == 2
    assert report.extra_gid_lines == 10
    assert report.bus_line_increase_percent == pytest.approx(3.17, abs=0.1)


def test_per_message_delay_is_3_cycles(report):
    assert report.per_message_cycles == 3


def test_max_masks_is_8(report):
    assert report.max_masks == 8


def test_rows_render(report):
    rows = dict(report.rows())
    assert rows["Group-processor bit matrix"] == "640 B"
    assert "1161" in rows["Group info table (bits/entry)"]
    assert "148.6" in rows["Group info table (total)"]
    assert "3.2%" in rows["Bus line increase"] or \
        "3.1" in rows["Bus line increase"]
