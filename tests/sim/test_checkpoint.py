"""Checkpoint/fork execution: bit-identity is the whole contract.

Every test here reduces to one claim: a run that pauses, snapshots,
restores and continues — possibly in a different process, possibly
under a different point of the same family — produces *exactly* the
result a cold run produces: same cycles, same per-CPU cycles, same
stats, same recording bytes. The speedup is worthless without that.
"""

import hashlib
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import e6000_config
from repro.errors import CheckpointError
from repro.faults.campaign import run_campaign
from repro.obs.recording import record_run
from repro.sim.checkpoint import (CHECKPOINT_VERSION, CheckpointStore,
                                  HotSnapshotLRU, capture, family_key,
                                  fork_point, restore, run_chain,
                                  serve_checkpoint_runner,
                                  trace_digests, validates_against)
from repro.sim.sweep import (ENGINE_VERSION, ResultCache, SweepPoint,
                             build_system, point_key, run_point,
                             run_sweep)
from repro.smp.fastpath import _finish_run, _run_loop, new_counters
from repro.workloads.registry import generate


def point(name="radix", seed=0, scale=0.02, cpus=2, **config_kwargs):
    config = e6000_config(num_processors=cpus, l2_mb=1,
                          **config_kwargs)
    return SweepPoint(name, config, scale=scale, seed=seed)


def assert_same_result(lhs, rhs):
    assert lhs.cycles == rhs.cycles
    assert list(lhs.per_cpu_cycles) == list(rhs.per_cpu_cycles)
    assert lhs.stats == rhs.stats


def run_paused(target, pauses, recorded=False, store=None):
    """Run ``target`` cold but pause ``pauses`` times, snapshotting
    and restoring through a full pickle round-trip at each pause."""
    workload = generate(target.workload,
                        target.config.num_processors,
                        scale=target.scale, seed=target.seed)
    system = build_system(target.config)
    if recorded:
        from repro.obs.recording import Recorder
        Recorder().attach(system)
    num_cpus = workload.num_cpus
    clocks, cursors = [0] * num_cpus, [0] * num_cpus
    counters = new_counters(num_cpus)
    for index, chunk in enumerate(pauses):
        running = _run_loop(system, workload, clocks, cursors,
                            counters, stop_accesses=chunk)
        snapshot = capture(system, workload, target, clocks, cursors,
                           counters, tag=f"pause-{index}",
                           recorded=recorded)
        if store is not None:
            store.store(snapshot)
        # Restore into *fresh* objects: the continued run must owe
        # nothing to the pre-pause machine.
        system, clocks, cursors, counters = restore(snapshot)
        if not running:
            break
    _run_loop(system, workload, clocks, cursors, counters)
    return _finish_run(system, workload, clocks, counters), system


class TestFamilyKey:
    def test_scale_is_not_part_of_the_family(self):
        assert family_key(point(scale=0.02)) \
            == family_key(point(scale=0.2))

    def test_sensitive_to_workload_seed_and_config(self):
        base = family_key(point())
        assert family_key(point(name="ocean")) != base
        assert family_key(point(seed=1)) != base
        assert family_key(point(auth_interval=10)) != base
        assert family_key(point(senss_enabled=False)) != base

    def test_recorded_partitions_the_space(self):
        """A snapshot with a recorder pickled inside must never be
        forked into a plain run, and vice versa."""
        assert family_key(point(), recorded=True) \
            != family_key(point(), recorded=False)

    def test_engine_and_checkpoint_versions_bust_the_store(self,
                                                           monkeypatch):
        base = family_key(point())
        monkeypatch.setattr("repro.sim.checkpoint.ENGINE_VERSION",
                            ENGINE_VERSION + 1)
        assert family_key(point()) != base
        monkeypatch.undo()
        monkeypatch.setattr(
            "repro.sim.checkpoint.CHECKPOINT_VERSION",
            CHECKPOINT_VERSION + 1)
        assert family_key(point()) != base

    def test_engine_version_covers_checkpoint_fork_executor(self):
        """The checkpoint/fork executor shipped as engine 5; result
        caches and checkpoint stores written by older engines must
        miss. (Floor, not equality: later bumps must not un-bust.)"""
        assert ENGINE_VERSION >= 5


class TestSnapshotRoundTrip:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(1, 400), st.integers(1, 3),
           st.sampled_from(["radix", "ocean"]),
           st.sampled_from([2, 4]))
    def test_pause_restore_continue_is_bit_identical(
            self, chunk, pauses, name, cpus):
        """Snapshot anywhere — including mid-auth-interval, since
        ``chunk`` is arbitrary and the secured config authenticates
        every 10 accesses — restore, continue: identical to cold."""
        target = point(name=name, cpus=cpus, auth_interval=10)
        cold = run_point(target)
        resumed, _ = run_paused(target, [chunk] * pauses)
        assert_same_result(cold, resumed)

    def test_roundtrip_with_memory_protection(self):
        """Merkle digests and pad caches survive the pickle."""
        target = point()
        target = SweepPoint(
            target.workload,
            target.config.with_memprotect(encryption_enabled=True,
                                          integrity_enabled=True),
            scale=target.scale, seed=target.seed)
        cold = run_point(target)
        resumed, _ = run_paused(target, [97, 311])
        assert_same_result(cold, resumed)

    def test_roundtrip_with_recorder_attached(self, tmp_path):
        """A recorder pickled inside the snapshot keeps appending
        through the tail: the recording equals a cold recording."""
        target = point()
        cold = record_run(target)
        resumed, system = run_paused(target, [123], recorded=True)
        from repro.obs.recording import Recording
        recording = Recording.build(target, system._obs, resumed)
        a = tmp_path / "cold.json"
        b = tmp_path / "resumed.json"
        cold.save(a)
        recording.save(b)
        assert hashlib.sha256(a.read_bytes()).hexdigest() \
            == hashlib.sha256(b.read_bytes()).hexdigest()

    def test_corrupt_blob_raises(self):
        target = point()
        workload = generate(target.workload, 2, scale=target.scale)
        system = build_system(target.config)
        snapshot = capture(system, workload, target, [0, 0], [0, 0],
                           new_counters(2), tag="t")
        snapshot.blob = snapshot.blob[:-1] + b"\x00"
        with pytest.raises(CheckpointError, match="checksum"):
            restore(snapshot)


class TestValidation:
    def make_snapshot(self, target, chunk=200):
        workload = generate(target.workload,
                            target.config.num_processors,
                            scale=target.scale, seed=target.seed)
        system = build_system(target.config)
        num = workload.num_cpus
        clocks, cursors = [0] * num, [0] * num
        counters = new_counters(num)
        _run_loop(system, workload, clocks, cursors, counters,
                  stop_accesses=chunk)
        return capture(system, workload, target, clocks, cursors,
                       counters, tag=f"c{chunk}"), workload

    def test_validates_against_larger_scale_of_same_family(self):
        snapshot, _ = self.make_snapshot(point(scale=0.02))
        bigger = generate("radix", 2, scale=0.06, seed=0)
        assert validates_against(snapshot.meta, bigger)

    def test_rejects_divergent_prefixes(self):
        """A snapshot whose consumed prefix is not literally a prefix
        of the target's traces must fail validation — simulated here
        by tampering with one digest, since every registry workload
        happens to be prefix-stable across scale today. If a future
        workload generator reshapes traces with scale, this is the
        check that keeps forks sound."""
        snapshot, _ = self.make_snapshot(point())
        bigger = generate("radix", 2, scale=0.06, seed=0)
        assert validates_against(snapshot.meta, bigger)
        snapshot.meta["digests"] = list(snapshot.meta["digests"])
        snapshot.meta["digests"][0] = "0" * 64
        assert not validates_against(snapshot.meta, bigger)

    def test_rejects_wrong_seed_and_wrong_cpus(self):
        snapshot, _ = self.make_snapshot(point())
        assert not validates_against(
            snapshot.meta, generate("radix", 2, scale=0.06, seed=1))
        assert not validates_against(
            snapshot.meta, generate("radix", 4, scale=0.06, seed=0))

    def test_digests_cover_the_consumed_prefix_only(self):
        workload = generate("radix", 2, scale=0.04, seed=0)
        assert trace_digests(workload, [0, 0]) \
            == trace_digests(workload, [0, 0])
        assert trace_digests(workload, [5, 9]) \
            != trace_digests(workload, [5, 10])

    def test_mismatched_fork_falls_back_to_cold(self):
        snapshot, _ = self.make_snapshot(point())
        snapshot.meta["digests"] = ["0" * 64] * 2
        bigger = point(scale=0.06)
        outcome = fork_point(bigger, snapshot)
        assert not outcome.forked
        assert_same_result(outcome.result, run_point(bigger))


class TestCheckpointStore:
    def test_roundtrip_and_best_prefers_deepest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        family = family_key(point())
        workload = generate("radix", 2, scale=0.08, seed=0)
        for scale, chunk in [(0.02, 150), (0.04, 400)]:
            snapshot, _ = TestValidation().make_snapshot(
                point(scale=scale), chunk=chunk)
            store.store(snapshot)
        assert len(store) == 2
        best = store.best(family, workload)
        assert best is not None
        assert best.accesses >= 400

    def test_corrupt_entry_is_quarantined_not_fatal(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snapshot, _ = TestValidation().make_snapshot(point())
        path = store.store(snapshot)
        path.write_bytes(path.read_bytes()[:40])  # torn write
        assert store.load(snapshot.family, snapshot.tag) is None
        assert list(tmp_path.glob("*.corrupt"))
        # and best() falls through to cold, not an exception
        workload = generate("radix", 2, scale=0.06, seed=0)
        assert store.best(snapshot.family, workload) is None

    def test_max_mb_evicts_least_recently_used(self, tmp_path):
        probe = CheckpointStore(tmp_path / "probe")
        snapshot, _ = TestValidation().make_snapshot(point())
        one_size = probe.store(snapshot).stat().st_size
        store = CheckpointStore(tmp_path / "bounded",
                                max_mb=2.5 * one_size / 1e6)
        tags = []
        for index, scale in enumerate([0.02, 0.03, 0.04, 0.05]):
            shot, _ = TestValidation().make_snapshot(
                point(scale=scale), chunk=100 + index)
            store.store(shot)
            tags.append(shot.tag)
        assert store.evicted > 0
        assert len(store) < 4
        survivors = {p.name
                     for p in (tmp_path / "bounded").glob("*.ckpt")}
        # newest entries survive; the oldest was evicted first
        assert any(tags[-1] in name for name in survivors)
        assert not any(tags[0] in name for name in survivors)

    def test_stats_track_hits_misses_stores(self, tmp_path):
        store = CheckpointStore(tmp_path)
        snapshot, _ = TestValidation().make_snapshot(point())
        store.store(snapshot)
        assert store.load(snapshot.family, snapshot.tag) is not None
        assert store.load(snapshot.family, "nope") is None
        stats = store.stats()
        assert stats["count"] == 1
        assert stats["bytes"] > 0
        assert stats["stores"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestResultCacheBound:
    def test_max_mb_evicts_lru_entries(self, tmp_path):
        cache = ResultCache(tmp_path, max_mb=0.0)  # evict everything
        target = point()
        cache.store(target, run_point(target))
        assert cache.evicted >= 1
        assert len(cache) == 0

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        cache.store(target, run_point(target))
        assert cache.gc() == 0
        assert len(cache) == 1


class TestForkChain:
    SCALES = [0.02, 0.04, 0.06]

    def test_chain_results_identical_to_cold(self, tmp_path):
        points = [point(scale=scale) for scale in self.SCALES]
        cold = [run_point(target) for target in points]
        outcomes = run_chain(points, CheckpointStore(tmp_path))
        assert all(error is None for _, _, error in outcomes)
        for reference, (result, _, _) in zip(cold, outcomes):
            assert_same_result(reference, result)

    def test_second_chain_forks_from_the_store(self, tmp_path):
        points = [point(scale=scale) for scale in self.SCALES]
        store = CheckpointStore(tmp_path)
        first = run_chain(points, store)
        again = run_chain(points, store)
        assert store.stats()["hits"] > 0
        for (a, _, _), (b, _, _) in zip(first, again):
            assert_same_result(a, b)

    def test_forked_recordings_equal_cold_recordings(self, tmp_path):
        points = [point(scale=scale) for scale in self.SCALES]
        record_dir = tmp_path / "rec"
        outcomes = run_chain(points, CheckpointStore(tmp_path / "c"),
                             record_dir=record_dir)
        assert all(error is None for _, _, error in outcomes)
        for target in points:
            cold_path = tmp_path / f"cold-{target.scale:g}.json"
            record_run(target).save(cold_path)
            forked_path = record_dir \
                / f"{point_key(target)}.rec.json"
            assert hashlib.sha256(
                cold_path.read_bytes()).hexdigest() \
                == hashlib.sha256(
                    forked_path.read_bytes()).hexdigest()

    def test_run_sweep_checkpoint_dir_serial_and_parallel(
            self, tmp_path):
        points = [point(scale=scale) for scale in self.SCALES]
        cold = run_sweep(points, parallel=False)
        serial = run_sweep(points,
                           cache=ResultCache(tmp_path / "c1"),
                           checkpoint_dir=tmp_path / "k1",
                           parallel=False)
        parallel = run_sweep(points,
                             cache=ResultCache(tmp_path / "c2"),
                             checkpoint_dir=tmp_path / "k2",
                             parallel=True, max_workers=2)
        for reference, a, b in zip(cold, serial, parallel):
            assert_same_result(reference, a)
            assert_same_result(reference, b)

    def test_mixed_families_stay_separate(self, tmp_path):
        """Points from different families interleaved in one sweep
        each chain within their own family only."""
        points = [point(scale=0.02), point(seed=1, scale=0.02),
                  point(scale=0.04), point(seed=1, scale=0.04)]
        cold = [run_point(target) for target in points]
        results = run_sweep(points, checkpoint_dir=tmp_path,
                            parallel=False)
        for reference, result in zip(cold, results):
            assert_same_result(reference, result)


class TestChaosMidFork:
    def test_worker_killed_mid_chain_retries_identically(
            self, tmp_path, monkeypatch):
        """A worker SIGKILLed while executing a chain point dies with
        snapshots already on disk; the retried chain must fork from
        them and still produce bit-identical results."""
        from repro.chaos.plan import ChaosPlan
        points = [point(scale=scale)
                  for scale in TestForkChain.SCALES]
        cold = [run_point(target) for target in points]
        plan = ChaosPlan(
            seed=0, marker_dir=str(tmp_path / "markers"),
            faults=[{"kind": "worker-kill",
                     "point": point_key(points[1])}])
        monkeypatch.setenv("REPRO_CHAOS_PLAN",
                           str(plan.save(tmp_path / "plan.json")))
        # One family -> one chain -> one worker executes it; the pool
        # needs >1 workers or run_sweep degrades to in-process serial
        # (and the SIGKILL would hit the test process itself).
        results = run_sweep(points,
                            cache=ResultCache(tmp_path / "cache"),
                            checkpoint_dir=tmp_path / "ckpt",
                            parallel=True, max_workers=2, retries=2)
        assert os.listdir(tmp_path / "markers")  # the kill fired
        for reference, result in zip(cold, results):
            assert_same_result(reference, result)


class TestCampaignFork:
    STRIP = ("fork", "forked", "forked_cells")

    def stripped(self, report):
        clean = {key: value for key, value in report.items()
                 if key not in self.STRIP}
        clean["entries"] = [
            {key: value for key, value in entry.items()
             if key not in self.STRIP}
            for entry in report["entries"]]
        return clean

    def test_fork_matches_cold_at_deep_trigger(self):
        kwargs = dict(kinds=("drop", "merkle-flip"),
                      policies=("halt",), workload="radix",
                      cpus=2, scale=0.02, trigger=40)
        forked = run_campaign(fork=True, **kwargs)
        cold = run_campaign(fork=False, **kwargs)
        assert forked["forked_cells"] > 0
        assert self.stripped(forked) == self.stripped(cold)

    def test_fork_matches_cold_at_default_triggers(self):
        kwargs = dict(kinds=("drop",), policies=("halt",),
                      workload="radix", cpus=2, scale=0.02)
        forked = run_campaign(fork=True, **kwargs)
        cold = run_campaign(fork=False, **kwargs)
        assert self.stripped(forked) == self.stripped(cold)

    def test_record_diff_reuses_the_forked_prefix(self):
        kwargs = dict(kinds=("drop", "merkle-flip"),
                      policies=("halt",), workload="radix",
                      cpus=2, scale=0.02, trigger=40,
                      record_diff=True)
        forked = run_campaign(fork=True, **kwargs)
        cold = run_campaign(fork=False, **kwargs)
        assert forked["forked_cells"] > 0
        assert self.stripped(forked) == self.stripped(cold)


class TestServeRunner:
    def test_second_call_forks_and_reports_counters(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setattr("repro.sim.checkpoint._HOT", None)
        target_a = point(scale=0.02, seed=7)
        target_b = point(scale=0.04, seed=7)
        cold_b = run_point(target_b)
        result_a, _, counters_a = serve_checkpoint_runner(
            str(tmp_path), 4, target_a)
        result_b, _, counters_b = serve_checkpoint_runner(
            str(tmp_path), 4, target_b)
        assert counters_a["serve.checkpoint_misses"] == 1
        assert counters_a["serve.checkpoint_stores"] == 1
        assert counters_b["serve.checkpoint_hits"] == 1
        assert_same_result(cold_b, result_b)

    def test_resubmit_then_larger_scale_is_bit_identical(
            self, tmp_path, monkeypatch):
        """Snapshot-poisoning regression, the serve-plane pattern: one
        scale submitted twice (the second forks from the first's seam
        snapshot, so a cursor starts already at its trace end), then a
        larger scale of the same family. The resumed run's *later*
        exhaustion must not be re-emitted under the same scale tag —
        its machine state is unreachable by a cold run of the larger
        scale (one CPU idled at a trace end the larger trace extends),
        and the larger fork would silently diverge (lu exposes this;
        the per-CPU prefix digests alone cannot catch it)."""
        monkeypatch.setattr("repro.sim.checkpoint._HOT", None)
        small = point(name="lu", scale=0.02)
        big = point(name="lu", scale=0.06)
        cold_small = run_point(small)
        cold_big = run_point(big)
        first, _, _ = serve_checkpoint_runner(str(tmp_path), 4, small)
        second, _, counters = serve_checkpoint_runner(
            str(tmp_path), 4, small)
        assert counters["serve.checkpoint_hits"] == 1
        # The seam snapshot for this scale is already stored; the
        # resumed run must emit nothing, not overwrite it.
        assert counters["serve.checkpoint_stores"] == 0
        forked_big, _, _ = serve_checkpoint_runner(
            str(tmp_path), 4, big)
        assert_same_result(cold_small, first)
        assert_same_result(cold_small, second)
        assert_same_result(cold_big, forked_big)

    def test_hot_lru_bounds_and_prefers_deepest(self):
        lru = HotSnapshotLRU(capacity=2)
        shots = []
        for scale, chunk in [(0.02, 100), (0.03, 200), (0.04, 300)]:
            shot, workload = TestValidation().make_snapshot(
                point(scale=scale), chunk=chunk)
            shots.append(shot)
            lru.put(shot)
        assert len(lru) == 2  # oldest evicted
        bigger = generate("radix", 2, scale=0.08, seed=0)
        best = lru.best(shots[0].family, bigger)
        assert best is not None
        assert best.accesses == shots[-1].accesses
