"""Deterministic RNG tests."""

from repro.sim.rng import DeterministicRng


def test_same_seed_same_stream():
    a = DeterministicRng(5)
    b = DeterministicRng(5)
    assert [a.randint(0, 100) for _ in range(20)] == \
           [b.randint(0, 100) for _ in range(20)]


def test_different_seed_different_stream():
    a = DeterministicRng(5)
    b = DeterministicRng(6)
    assert [a.randint(0, 1 << 30) for _ in range(5)] != \
           [b.randint(0, 1 << 30) for _ in range(5)]


def test_fork_independent_and_stable():
    root = DeterministicRng(9)
    child_a = root.fork(1)
    child_b = root.fork(2)
    again = DeterministicRng(9).fork(1)
    seq_a = [child_a.randint(0, 1000) for _ in range(5)]
    assert seq_a == [again.randint(0, 1000) for _ in range(5)]
    assert seq_a != [child_b.randint(0, 1000) for _ in range(5)]


def test_random_bytes_length_and_determinism():
    assert len(DeterministicRng(1).random_bytes(16)) == 16
    assert (DeterministicRng(1).random_bytes(16)
            == DeterministicRng(1).random_bytes(16))


def test_geometric_mean_is_roughly_right():
    rng = DeterministicRng(3)
    samples = [rng.geometric(8.0) for _ in range(4000)]
    mean = sum(samples) / len(samples)
    assert 6.5 < mean < 9.5
    assert min(samples) >= 1


def test_geometric_degenerate_mean():
    rng = DeterministicRng(3)
    assert all(rng.geometric(1.0) == 1 for _ in range(10))


def test_choice_and_sample():
    rng = DeterministicRng(4)
    population = list(range(10))
    assert rng.choice(population) in population
    picked = rng.sample(population, 3)
    assert len(set(picked)) == 3
