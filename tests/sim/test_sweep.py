"""The sweep runner and its content-addressed result cache."""

import json
import time

import pytest

from repro.config import e6000_config
from repro.sim.sweep import (ENGINE_VERSION, ResultCache, SweepPoint,
                             SweepTimings, point_key, run_cached,
                             run_point, run_sweep)


def point(name="fft", seed=0, scale=0.05, **config_kwargs):
    config = e6000_config(num_processors=2, l2_mb=1, **config_kwargs)
    return SweepPoint(name, config, scale=scale, seed=seed)


class TestPointKey:
    def test_stable(self):
        assert point_key(point()) == point_key(point())

    def test_sensitive_to_every_input(self):
        base = point_key(point())
        assert point_key(point(name="lu")) != base
        assert point_key(point(seed=1)) != base
        assert point_key(point(scale=0.1)) != base
        assert point_key(point(senss_enabled=False)) != base
        assert point_key(point(auth_interval=10)) != base

    def test_engine_version_is_part_of_the_key(self, monkeypatch):
        before = point_key(point())
        monkeypatch.setattr("repro.sim.sweep.ENGINE_VERSION",
                            ENGINE_VERSION + 1)
        assert point_key(point()) != before

    def test_engine_version_covers_memprotect_rewrite(self):
        """The flattened hash tree / fused memprotect node path shipped
        as engine 3; any cache written by an older engine must miss.
        (Floor, not equality: later bumps must not un-bust this one.)"""
        assert ENGINE_VERSION >= 3


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        assert cache.load(target) is None
        result = run_point(target)
        cache.store(target, result)
        assert len(cache) == 1
        loaded = cache.load(target)
        assert loaded.cycles == result.cycles
        assert list(loaded.per_cpu_cycles) == list(result.per_cpu_cycles)
        assert loaded.stats == result.stats

    def test_torn_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        cache.store(target, run_point(target))
        path = cache._path(point_key(target))
        path.write_text(path.read_text()[:20])  # simulate a torn write
        assert cache.load(target) is None

    def test_wrong_shape_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        cache._path(point_key(target)).parent.mkdir(parents=True,
                                                    exist_ok=True)
        cache._path(point_key(target)).write_text(json.dumps({"x": 1}))
        assert cache.load(target) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(point(), run_point(point()))
        assert cache.clear() == 1
        assert len(cache) == 0


class TestRunSweep:
    def test_results_in_input_order_with_duplicates(self, tmp_path):
        points = [point(seed=0), point(seed=1), point(seed=0)]
        results = run_sweep(points, cache=ResultCache(tmp_path),
                            parallel=False)
        assert len(results) == 3
        assert results[0].cycles == results[2].cycles
        assert results[0].stats == results[2].stats

    def test_second_sweep_hits_the_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        first = run_sweep([point()], cache=cache, parallel=False)
        assert len(cache) == 1
        # Poison run_point: a cache hit must not simulate again.
        monkeypatch.setattr(
            "repro.sim.sweep.run_point",
            lambda _: (_ for _ in ()).throw(AssertionError("re-ran")))
        second = run_sweep([point()], cache=cache, parallel=False)
        assert second[0].cycles == first[0].cycles
        assert second[0].stats == first[0].stats

    def test_engine_version_bump_misses_the_cache(self, tmp_path,
                                                  monkeypatch):
        """Results cached under an older engine are never returned."""
        cache = ResultCache(tmp_path)
        run_sweep([point()], cache=cache, parallel=False)
        assert len(cache) == 1
        monkeypatch.setattr("repro.sim.sweep.ENGINE_VERSION",
                            ENGINE_VERSION + 1)
        reran = []
        real_run_point = run_point
        monkeypatch.setattr(
            "repro.sim.sweep.run_point",
            lambda target: (reran.append(target),
                            real_run_point(target))[1])
        run_sweep([point()], cache=cache, parallel=False)
        assert reran, "old-version cache entry was wrongly reused"
        assert len(cache) == 2  # stored under the new version's key

    def test_cache_miss_reruns(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        run_sweep([point()], cache=cache, parallel=False)
        cache.clear()
        assert run_sweep([point()], cache=cache,
                         parallel=False)[0].cycles > 0
        assert len(cache) == 1

    def test_run_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_cached(point(), cache)
        second = run_cached(point(), cache)
        assert first.cycles == second.cycles

    def test_parallel_env_opt_out(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SWEEP_PARALLEL", "0")
        results = run_sweep([point(seed=0), point(seed=1)],
                            cache=ResultCache(tmp_path))
        assert len(results) == 2


def test_empty_sweep():
    assert run_sweep([]) == []


class TestSweepTimings:
    def test_fresh_run_accounts_worker_seconds(self, tmp_path):
        timings = SweepTimings()
        run_sweep([point(seed=0), point(seed=1)],
                  cache=ResultCache(tmp_path), parallel=False,
                  timings=timings)
        assert timings.points_run == 2
        assert timings.points_cached == 0
        assert timings.workers == 1
        assert timings.run_s > 0
        assert timings.wall_s >= timings.run_s
        assert 0 < timings.slowest_point_s <= timings.run_s

    def test_cached_run_skips_simulation_time(self, tmp_path,
                                              monkeypatch):
        cache = ResultCache(tmp_path)
        run_sweep([point()], cache=cache, parallel=False)
        monkeypatch.setattr(
            "repro.sim.sweep.run_point",
            lambda _: (_ for _ in ()).throw(AssertionError("re-ran")))
        timings = SweepTimings()
        run_sweep([point()], cache=cache, parallel=False,
                  timings=timings)
        assert timings.points_run == 0
        assert timings.points_cached == 1
        assert timings.run_s == 0.0
        assert timings.wall_s > 0

    def test_timed_wrapper_honors_monkeypatched_run_point(
            self, tmp_path, monkeypatch):
        """Per-point timing goes through the module-global run_point
        so test doubles (and profiling wrappers) still intercept."""
        calls = []
        real = run_point
        monkeypatch.setattr(
            "repro.sim.sweep.run_point",
            lambda target: (calls.append(target), real(target))[1])
        timings = SweepTimings()
        run_sweep([point()], parallel=False, timings=timings)
        assert len(calls) == 1
        assert timings.points_run == 1

    def test_accumulates_across_sweeps(self, tmp_path):
        timings = SweepTimings()
        cache = ResultCache(tmp_path)
        run_sweep([point()], cache=cache, parallel=False,
                  timings=timings)
        run_sweep([point()], cache=cache, parallel=False,
                  timings=timings)
        assert timings.points_run == 1
        assert timings.points_cached == 1

    def test_as_dict_is_json_ready(self, tmp_path):
        import json
        timings = SweepTimings()
        run_sweep([point()], cache=ResultCache(tmp_path),
                  parallel=False, timings=timings)
        as_dict = timings.as_dict()
        assert json.loads(json.dumps(as_dict)) == as_dict
        assert as_dict["sweep.points_run"] == 1
        assert as_dict["sweep.wall_s"] > 0


class TestSweepCrashes:
    """Worker failures must not abort the sweep or lose results."""

    def test_serial_crash_returns_partial_results(self, tmp_path,
                                                  monkeypatch):
        real = run_point
        def crashy(target):
            if target.seed == 1:
                raise ValueError("simulated point crash")
            return real(target)
        monkeypatch.setattr("repro.sim.sweep.run_point", crashy)
        cache = ResultCache(tmp_path)
        timings = SweepTimings()
        results = run_sweep([point(seed=0), point(seed=1)],
                            cache=cache, parallel=False, retries=0,
                            on_error="none", timings=timings)
        assert results[0] is not None and results[0].cycles > 0
        assert results[1] is None
        assert timings.points_failed == 1
        assert timings.points_run == 1
        assert len(cache) == 1  # the good point was cached anyway

    def test_serial_crash_raises_sweep_error(self, tmp_path,
                                             monkeypatch):
        from repro.errors import SweepError
        monkeypatch.setattr(
            "repro.sim.sweep.run_point",
            lambda target: (_ for _ in ()).throw(
                ValueError("simulated point crash")))
        with pytest.raises(SweepError) as excinfo:
            run_sweep([point()], parallel=False, retries=0)
        failures = excinfo.value.failures
        assert len(failures) == 1
        assert failures[0].workload == "fft"
        assert "simulated point crash" in failures[0].error
        assert failures[0].attempts == 1

    def test_crash_retried_with_backoff_then_succeeds(self, tmp_path,
                                                      monkeypatch):
        real = run_point
        attempts = []
        def flaky(target):
            attempts.append(target)
            if len(attempts) == 1:
                raise ValueError("transient")
            return real(target)
        monkeypatch.setattr("repro.sim.sweep.run_point", flaky)
        timings = SweepTimings()
        results = run_sweep([point()], parallel=False, retries=1,
                            backoff_s=0.001, timings=timings)
        assert results[0].cycles > 0
        assert len(attempts) == 2
        assert timings.points_retried == 1
        assert timings.points_failed == 0

    def test_parallel_worker_crash_is_captured(self, monkeypatch,
                                               tmp_path):
        """A crash inside a worker process surfaces as a failure
        record, not an aborted pool (run with REPRO_SWEEP_PARALLEL=1
        in CI)."""
        monkeypatch.setenv("REPRO_SWEEP_PARALLEL", "1")
        bad = SweepPoint("no-such-workload", point().config,
                         scale=0.05)
        timings = SweepTimings()
        results = run_sweep([point(seed=0), bad, point(seed=1)],
                            cache=ResultCache(tmp_path),
                            parallel=True, max_workers=2, retries=0,
                            on_error="none", timings=timings)
        assert results[0] is not None
        assert results[1] is None
        assert results[2] is not None
        assert timings.points_failed == 1

    def test_invalid_on_error_rejected(self):
        from repro.errors import ConfigError
        with pytest.raises(ConfigError):
            run_sweep([point()], on_error="explode")


def _sleep_point_runner(seconds):
    """Fake point runner: the 'point' is its own sleep duration."""
    time.sleep(seconds)
    return "done", 0.01


def _sleep_chain_runner(points):
    """Fake chain runner: the unit's first 'point' is the sleep."""
    time.sleep(points[0])
    return [("done", 0.01, None)] * len(points)


class TestDeadlineCollection:
    """Per-future deadlines run from submission, not from each
    future's sequential collection turn — a hung chain/point must not
    grant later ones unbounded wall-clock, and its abandoned worker
    must be terminated rather than left running."""

    def test_units_hung_chains_time_out_others_succeed(self):
        from repro.sim.sweep import _units_parallel
        start = time.perf_counter()
        outcomes = _units_parallel([[30.0], [0.01], [30.0]],
                                   workers=3, timeout=0.5,
                                   runner=_sleep_chain_runner)
        elapsed = time.perf_counter() - start
        assert elapsed < 10  # nobody waited on the 30s sleepers
        assert outcomes[0][0].timed_out
        assert "chain timed out" in outcomes[0][0].error
        assert outcomes[1][0].result == "done"
        assert outcomes[1][0].error is None
        assert outcomes[2][0].timed_out

    def test_round_hung_points_time_out_others_succeed(self):
        from repro.sim.sweep import _round_parallel
        start = time.perf_counter()
        outcomes = _round_parallel([30.0, 0.01], workers=2,
                                   timeout=0.5,
                                   runner=_sleep_point_runner)
        elapsed = time.perf_counter() - start
        assert elapsed < 10
        assert outcomes[0].timed_out
        assert "timed out" in outcomes[0].error
        assert outcomes[1].result == "done"

    def test_queued_chains_get_packing_allowance_not_false_timeouts(
            self):
        """More chains than workers: queued chains must not burn
        their budget while waiting for a slot (the deadline carries
        the earlier chains' budgets spread across the pool)."""
        from repro.sim.sweep import _units_parallel
        outcomes = _units_parallel([[0.05]] * 6, workers=2,
                                   timeout=2.0,
                                   runner=_sleep_chain_runner)
        assert all(unit[0].error is None for unit in outcomes)


class TestCacheQuarantine:
    def test_corrupt_entry_quarantined_not_retried(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        cache.store(target, run_point(target))
        path = cache._path(point_key(target))
        path.write_text("{ not json")
        assert cache.load(target) is None
        assert cache.quarantined == 1
        assert not path.exists()
        corrupt = path.with_name(path.name + ".corrupt")
        assert corrupt.exists()
        assert corrupt.read_text() == "{ not json"
        # A second probe is a plain miss, not another quarantine.
        assert cache.load(target) is None
        assert cache.quarantined == 1

    def test_checksum_tamper_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        cache.store(target, run_point(target))
        path = cache._path(point_key(target))
        payload = json.loads(path.read_text())
        payload["cycles"] += 1  # bit-rot / tampering
        path.write_text(json.dumps(payload, sort_keys=True))
        assert cache.load(target) is None
        assert cache.quarantined == 1
        assert path.with_name(path.name + ".corrupt").exists()

    def test_missing_entry_is_not_quarantined(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(point()) is None
        assert cache.quarantined == 0

    def test_sweep_counts_quarantines_and_reruns_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        target = point()
        run_sweep([target], cache=cache, parallel=False)
        cache._path(point_key(target)).write_text("garbage")
        timings = SweepTimings()
        results = run_sweep([target], cache=cache, parallel=False,
                            timings=timings)
        assert results[0].cycles > 0
        assert timings.cache_quarantined == 1
        assert timings.points_run == 1  # re-simulated and re-cached
        assert len(cache) == 1
