"""ResultCache under concurrent writers and readers.

The serving path (repro.serve) shares one cache between an asyncio
loop, completion-callback threads and sweep worker processes, so
store/load must be torn-read-free: writers stage into uniquely-named
temp files and publish with atomic ``os.replace``. These tests hammer
one cache directory from many threads and assert readers only ever
see absent or complete, checksum-valid entries — never quarantine a
file a concurrent writer was publishing.
"""

import threading

from repro.sim.sweep import ResultCache, SweepPoint, point_key
from repro.smp.metrics import SimulationResult

from repro.config import e6000_config


def _point(seed=0):
    return SweepPoint("fft", e6000_config(num_processors=2),
                      scale=0.05, seed=seed)


def _result(cycles=1234):
    return SimulationResult(workload="fft", num_cpus=2, cycles=cycles,
                            per_cpu_cycles=[cycles, cycles - 7],
                            stats={"bus.transactions": 42,
                                   "l2.misses": 7})


class TestConcurrentWriters:
    def test_same_key_many_threads_never_torn(self, tmp_path):
        """N threads storing the same key: every interleaved load is
        either a miss or a complete entry; nothing gets quarantined."""
        cache = ResultCache(tmp_path)
        target = _point()
        result = _result()
        errors = []
        stop = threading.Event()

        def writer():
            try:
                for _ in range(50):
                    cache.store(target, result)
            except Exception as exc:  # pragma: no cover - fail path
                errors.append(exc)

        def reader():
            try:
                while not stop.is_set():
                    loaded = cache.load(target)
                    if loaded is not None:
                        assert loaded.cycles == result.cycles
                        assert loaded.stats == result.stats
            except Exception as exc:  # pragma: no cover - fail path
                errors.append(exc)

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join()
        stop.set()
        for thread in readers:
            thread.join()
        assert not errors
        assert cache.quarantined == 0
        assert not list(tmp_path.glob("*.corrupt"))
        # No scratch litter left behind by any writer.
        assert not list(tmp_path.glob("*.tmp.*"))
        assert cache.load(target).cycles == result.cycles

    def test_distinct_keys_many_threads(self, tmp_path):
        cache = ResultCache(tmp_path)
        points = [_point(seed=seed) for seed in range(16)]

        def writer(chunk):
            for target in chunk:
                cache.store(target, _result(cycles=1000 + target.seed))

        threads = [threading.Thread(target=writer,
                                    args=(points[i::4],))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == len(points)
        for target in points:
            assert cache.load(target).cycles == 1000 + target.seed

    def test_scratch_names_unique_within_process(self, tmp_path):
        """Successive stores use distinct scratch names (the serial
        suffix), so same-thread and same-pid writers cannot collide
        on a staging file the way the old bare-pid suffix could."""
        cache = ResultCache(tmp_path)
        first = next(cache._scratch_serial)
        second = next(cache._scratch_serial)
        assert first != second
        cache.store(_point(), _result())
        assert cache.load(_point()) is not None


class TestConcurrentQuarantine:
    def test_concurrent_quarantine_counts_once(self, tmp_path):
        """Many threads loading one corrupt entry quarantine it exactly
        once (the rename race is benign) and count it exactly once."""
        cache = ResultCache(tmp_path)
        target = _point()
        cache.store(target, _result())
        path = cache._path(point_key(target))
        path.write_text("{ torn json")

        threads = [threading.Thread(target=cache.load, args=(target,))
                   for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert cache.quarantined == 1
        assert len(list(tmp_path.glob("*.corrupt"))) == 1
        assert cache.load(target) is None  # miss after quarantine

    def test_clear_races_are_benign(self, tmp_path):
        cache = ResultCache(tmp_path)
        for seed in range(8):
            cache.store(_point(seed=seed), _result())
        removed = []
        threads = [threading.Thread(
            target=lambda: removed.append(cache.clear()))
            for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert sum(removed) == 8
        assert len(cache) == 0
