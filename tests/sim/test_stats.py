"""Statistics registry tests."""

from repro.sim.stats import Counter, Histogram, StatsRegistry


def test_counter_increments():
    counter = Counter("x")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5


def test_counter_reset():
    counter = Counter("x")
    counter.increment(3)
    counter.reset()
    assert counter.value == 0


def test_registry_creates_on_demand():
    stats = StatsRegistry()
    assert stats.get("missing") == 0
    stats.add("bus.transactions")
    assert stats.get("bus.transactions") == 1


def test_registry_counter_identity():
    stats = StatsRegistry()
    first = stats.counter("a")
    second = stats.counter("a")
    assert first is second


def test_registry_prefix_totals():
    stats = StatsRegistry()
    stats.add("bus.tx.BusRd", 3)
    stats.add("bus.tx.BusRdX", 2)
    stats.add("cpu0.l1_hit", 10)
    assert stats.total("bus.tx.") == 5
    assert stats.total("cpu") == 10


def test_registry_as_dict_sorted():
    stats = StatsRegistry()
    stats.add("zeta")
    stats.add("alpha", 2)
    assert list(stats.as_dict()) == ["alpha", "zeta"]


def test_registry_reset():
    stats = StatsRegistry()
    stats.add("a", 7)
    stats.reset()
    assert stats.get("a") == 0


class TestFlushers:
    def test_flusher_runs_before_any_read(self):
        stats = StatsRegistry()
        pending = {"events": 5}

        def flush():
            stats.add("layer.events", pending.pop("events", 0))

        stats.register_flusher(flush)
        assert stats.get("layer.events") == 5

    def test_reentrant_read_during_drain_does_not_recurse(self):
        """A flusher may itself read the registry (e.g. to branch on a
        counter); the nested read must not re-enter the flusher list."""
        stats = StatsRegistry()
        calls = []

        def flush():
            calls.append("flush")
            # Nested read mid-drain: must return without re-draining.
            stats.get("whatever")
            stats.add("layer.flushed", 1)

        stats.register_flusher(flush)
        assert stats.get("layer.flushed") == 1
        assert calls == ["flush"]

    def test_drain_is_idempotent(self):
        """Back-to-back reads drain once each but observe identical
        values: a well-behaved flusher moves pending counts exactly
        once."""
        stats = StatsRegistry()
        pending = {"value": 3}

        def flush():
            stats.add("layer.count", pending.pop("value", 0))

        stats.register_flusher(flush)
        first = stats.as_dict()
        second = stats.as_dict()
        third = stats.as_dict()
        assert first == second == third == {"layer.count": 3}

    def test_reset_drains_registered_flushers_first(self):
        """reset() must not leak pre-reset pending counts into
        post-reset reads: the pending raw count is drained, then
        zeroed with everything else."""
        stats = StatsRegistry()
        pending = {"value": 9}

        def flush():
            stats.add("layer.count", pending.pop("value", 0))

        stats.register_flusher(flush)
        stats.reset()
        assert stats.get("layer.count") == 0
        # The flusher fired during reset, not on the later read.
        assert "value" not in pending

    def test_flusher_after_reset_keeps_working(self):
        stats = StatsRegistry()
        box = {"value": 0}

        def flush():
            value, box["value"] = box["value"], 0
            if value:
                stats.add("layer.count", value)

        stats.register_flusher(flush)
        box["value"] = 2
        assert stats.get("layer.count") == 2
        stats.reset()
        box["value"] = 4
        assert stats.get("layer.count") == 4


class TestHistogram:
    def test_empty(self):
        histogram = Histogram("h")
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert summary["buckets"] == []
        assert histogram.percentile(0.99) == 0

    def test_moments_are_exact(self):
        histogram = Histogram("h")
        for value in (0, 1, 2, 3, 100):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 5
        assert summary["sum"] == 106
        assert summary["min"] == 0
        assert summary["max"] == 100
        assert summary["mean"] == round(106 / 5, 3)

    def test_power_of_two_buckets(self):
        histogram = Histogram("h")
        histogram.record_many([0, 1, 2, 3, 4, 7, 8, 1023])
        assert histogram.buckets() == [
            (0, 0, 1),      # 0
            (1, 1, 1),      # 1
            (2, 3, 2),      # 2, 3
            (4, 7, 2),      # 4, 7
            (8, 15, 1),     # 8
            (512, 1023, 1),  # 1023
        ]

    def test_negative_values_clamp_to_zero(self):
        histogram = Histogram("h")
        histogram.record(-5)
        assert histogram.buckets() == [(0, 0, 1)]
        assert histogram.summary()["min"] == 0

    def test_percentile_is_bucket_bounded(self):
        histogram = Histogram("h")
        histogram.record_many([1] * 99 + [1000])
        assert histogram.percentile(0.50) == 1
        # p100 lands in 1000's bucket [512, 1023], capped at max.
        assert histogram.percentile(1.0) == 1000

    def test_recording_is_deferred_until_read(self):
        histogram = Histogram("h")
        histogram.record(42)
        assert histogram._pending == [42]  # not yet bucketed
        assert histogram.count == 0
        assert histogram.summary()["count"] == 1
        assert histogram._pending == []

    def test_reset(self):
        histogram = Histogram("h")
        histogram.record_many([1, 2, 3])
        histogram.summary()
        histogram.record(4)  # pending at reset time
        histogram.reset()
        assert histogram.summary()["count"] == 0


class TestRegistryHistograms:
    def test_get_or_create_identity(self):
        stats = StatsRegistry()
        assert stats.histogram("h") is stats.histogram("h")

    def test_separate_namespace_from_counters(self):
        """Histograms must never appear in as_dict(): golden stats
        digests are pinned on the counter snapshot alone."""
        stats = StatsRegistry()
        stats.add("counter", 1)
        stats.histogram("dist").record(7)
        assert stats.as_dict() == {"counter": 1}
        assert stats.get("dist") == 0

    def test_histograms_read_drains_flushers(self):
        stats = StatsRegistry()
        histogram = stats.histogram("dist")
        stats.register_flusher(lambda: histogram.record(11))
        summaries = stats.histogram_summaries()
        assert summaries["dist"]["count"] == 1
        assert summaries["dist"]["max"] == 11

    def test_summaries_skip_empty(self):
        stats = StatsRegistry()
        stats.histogram("empty")
        stats.histogram("full").record(1)
        assert list(stats.histogram_summaries()) == ["full"]

    def test_reset_covers_histograms(self):
        stats = StatsRegistry()
        stats.histogram("dist").record_many([5, 6])
        stats.reset()
        assert stats.histogram_summaries() == {}
