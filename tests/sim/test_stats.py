"""Statistics registry tests."""

from repro.sim.stats import Counter, StatsRegistry


def test_counter_increments():
    counter = Counter("x")
    counter.increment()
    counter.increment(4)
    assert counter.value == 5


def test_counter_reset():
    counter = Counter("x")
    counter.increment(3)
    counter.reset()
    assert counter.value == 0


def test_registry_creates_on_demand():
    stats = StatsRegistry()
    assert stats.get("missing") == 0
    stats.add("bus.transactions")
    assert stats.get("bus.transactions") == 1


def test_registry_counter_identity():
    stats = StatsRegistry()
    first = stats.counter("a")
    second = stats.counter("a")
    assert first is second


def test_registry_prefix_totals():
    stats = StatsRegistry()
    stats.add("bus.tx.BusRd", 3)
    stats.add("bus.tx.BusRdX", 2)
    stats.add("cpu0.l1_hit", 10)
    assert stats.total("bus.tx.") == 5
    assert stats.total("cpu") == 10


def test_registry_as_dict_sorted():
    stats = StatsRegistry()
    stats.add("zeta")
    stats.add("alpha", 2)
    assert list(stats.as_dict()) == ["alpha", "zeta"]


def test_registry_reset():
    stats = StatsRegistry()
    stats.add("a", 7)
    stats.reset()
    assert stats.get("a") == 0
