"""Event queue tests."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import EventQueue


def test_fires_in_time_order():
    queue = EventQueue()
    fired = []
    queue.schedule(30, lambda: fired.append(30))
    queue.schedule(10, lambda: fired.append(10))
    queue.schedule(20, lambda: fired.append(20))
    queue.run_all()
    assert fired == [10, 20, 30]


def test_fifo_tie_breaking():
    queue = EventQueue()
    fired = []
    for tag in range(5):
        queue.schedule(7, lambda tag=tag: fired.append(tag))
    queue.run_all()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_partial():
    queue = EventQueue()
    fired = []
    queue.schedule(5, lambda: fired.append(5))
    queue.schedule(15, lambda: fired.append(15))
    count = queue.run_until(10)
    assert count == 1
    assert fired == [5]
    assert queue.now == 10
    assert len(queue) == 1


def test_schedule_after():
    queue = EventQueue()
    fired = []
    queue.schedule(10, lambda: queue.schedule_after(
        5, lambda: fired.append("later")))
    queue.run_all()
    assert fired == ["later"]
    assert queue.now == 15


def test_cannot_schedule_in_the_past():
    queue = EventQueue()
    queue.schedule(10, lambda: None)
    queue.run_all()
    with pytest.raises(SimulationError):
        queue.schedule(5, lambda: None)


def test_runaway_loop_guard():
    queue = EventQueue()

    def reschedule():
        queue.schedule_after(1, reschedule)

    queue.schedule(0, reschedule)
    with pytest.raises(SimulationError):
        queue.run_all(limit=100)
