"""Tests for tools/collect_results.py."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).parents[1] / "tools"))
import collect_results  # noqa: E402


def test_collect_orders_and_concatenates(tmp_path):
    (tmp_path / "fig9_interval.txt").write_text("FIG9 TABLE")
    (tmp_path / "table1_bus_encryption.txt").write_text("TABLE1")
    (tmp_path / "zzz_custom.txt").write_text("CUSTOM")
    report = collect_results.collect(tmp_path)
    assert report.index("TABLE1") < report.index("FIG9 TABLE")
    assert report.index("FIG9 TABLE") < report.index("CUSTOM")
    assert "3 tables" in report


def test_collect_reports_missing(tmp_path):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    report = collect_results.collect(tmp_path)
    assert "missing" in report
    assert "fig6_slowdown_1mb.txt" in report


def test_main_writes_report(tmp_path, capsys):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    code = collect_results.main(["--results-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "REPORT.txt").exists()
    assert "FIG9" in capsys.readouterr().out


def test_main_quiet(tmp_path, capsys):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    collect_results.main(["--results-dir", str(tmp_path), "--quiet"])
    assert capsys.readouterr().out == ""


def test_main_missing_directory(tmp_path):
    code = collect_results.main(["--results-dir",
                                 str(tmp_path / "nowhere")])
    assert code == 1


def test_report_excludes_itself(tmp_path):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    (tmp_path / "REPORT.txt").write_text("OLD REPORT")
    report = collect_results.collect(tmp_path)
    assert "OLD REPORT" not in report


def _write_report(path, workload, cpus=2, scale=0.1, slowdown=5.0,
                  base_cycles=1000, senss_cycles=1050):
    import json
    payload = {
        "kind": "repro-report",
        "schema_version": 1,
        "workload": workload,
        "num_cpus": cpus,
        "scale": scale,
        "slowdown_percent": slowdown,
        "traffic_increase_percent": 2.0,
        "configs": {
            "baseline": {"cycles": base_cycles},
            "secured": {"cycles": senss_cycles},
        },
    }
    path.write_text(json.dumps(payload))
    return path


class TestMergeReports:
    def test_merges_rows_sorted_by_workload(self, tmp_path):
        second = _write_report(tmp_path / "b.json", "ocean", cpus=4)
        first = _write_report(tmp_path / "a.json", "fft")
        table = collect_results.merge_reports([second, first])
        assert "Merged run reports (2 runs)" in table
        assert table.index("fft") < table.index("ocean")
        assert "a.json" in table and "b.json" in table

    def test_headline_numbers_present(self, tmp_path):
        report = _write_report(tmp_path / "r.json", "fft",
                               slowdown=7.25, base_cycles=123456,
                               senss_cycles=130000)
        table = collect_results.merge_reports([report])
        assert "+7.250" in table
        assert "123,456" in table

    def test_rejects_non_report_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"kind": "something-else"}')
        import pytest
        with pytest.raises(ValueError, match="repro report"):
            collect_results.merge_reports([bogus])

    def test_main_reports_flag(self, tmp_path, capsys):
        report = _write_report(tmp_path / "r.json", "lu")
        code = collect_results.main(["--reports", str(report)])
        assert code == 0
        assert "Merged run reports" in capsys.readouterr().out

    def test_main_reports_flag_bad_file(self, tmp_path, capsys):
        code = collect_results.main(
            ["--reports", str(tmp_path / "missing.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_merge_against_real_cli_output(self, tmp_path):
        """End-to-end: `repro report --json` output merges cleanly."""
        from repro.cli import main as repro_main
        json_path = tmp_path / "real.json"
        assert repro_main(["report", "lu", "--cpus", "2", "--scale",
                           "0.05", "--json", str(json_path)]) == 0
        table = collect_results.merge_reports([json_path])
        assert "lu" in table
        assert "real.json" in table


def _write_bench(path, hit, miss):
    """A minimal BENCH_engine.json: {config: accesses/s} per section."""
    import json
    payload = {
        "configs": {kind: {"accesses_per_second": rate}
                    for kind, rate in hit.items()},
        "missheavy": {
            "configs": {kind: {"accesses_per_second": rate}
                        for kind, rate in miss.items()}},
    }
    path.write_text(json.dumps(payload))
    return path


class TestBenchDiff:
    def test_speedups_per_config_and_section(self, tmp_path):
        old = _write_bench(tmp_path / "old.json",
                           {"baseline": 100_000, "integrated": 50_000},
                           {"integrated": 41_895})
        new = _write_bench(tmp_path / "new.json",
                           {"baseline": 100_000, "integrated": 100_000},
                           {"integrated": 83_790})
        table = collect_results.bench_diff(old, new)
        assert "baseline" in table and "1.00x" in table
        assert "missheavy/integrated" in table
        assert table.count("2.00x") == 2  # both integrated sections
        assert "+100.0%" in table

    def test_config_missing_from_one_side(self, tmp_path):
        old = _write_bench(tmp_path / "old.json",
                           {"baseline": 100_000}, {})
        new = _write_bench(tmp_path / "new.json",
                           {"baseline": 110_000, "senss": 90_000}, {})
        table = collect_results.bench_diff(old, new)
        assert "senss" in table  # listed, not dropped
        assert "1.10x" in table
        assert "-" in table  # the missing old-side senss cell

    def test_rejects_non_bench_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"kind": "repro-report"}')
        import pytest
        with pytest.raises(ValueError, match="engine bench"):
            collect_results.bench_diff(bogus, bogus)

    def test_main_bench_diff_flag(self, tmp_path, capsys):
        old = _write_bench(tmp_path / "old.json",
                           {"baseline": 100_000}, {})
        new = _write_bench(tmp_path / "new.json",
                           {"baseline": 120_000}, {})
        code = collect_results.main(["--bench-diff", str(old),
                                     str(new)])
        assert code == 0
        assert "1.20x" in capsys.readouterr().out

    def test_main_bench_diff_bad_file(self, tmp_path, capsys):
        code = collect_results.main(
            ["--bench-diff", str(tmp_path / "a.json"),
             str(tmp_path / "b.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_against_committed_report(self, tmp_path):
        """The real BENCH_engine.json diffs cleanly against itself."""
        committed = Path(__file__).parents[1] / "BENCH_engine.json"
        table = collect_results.bench_diff(committed, committed)
        assert "missheavy/integrated" in table
        assert "1.00x" in table


class TestMergeDiffs:
    def _write_diff(self, path, workload="fft", perturbation=None,
                    identical=False):
        import json
        payload = {
            "kind": "repro-recording-diff",
            "schema_version": 1,
            "workload": {"name": workload, "cpus": 2},
            "perturbation": perturbation,
            "identical": identical,
            "first_divergence": None if identical else {
                "index": 10,
                "a": {"name": "miss", "cycle": 900},
                "b": {"name": "auth", "cycle": 1_000}},
            "cycles": {"a": 50_000, "b": 51_000, "delta": 1_000},
            "counters": {} if identical
            else {"bus.tx.Auth00": {"a": 4, "b": 7, "delta": 3}},
        }
        path.write_text(json.dumps(payload))
        return path

    def test_merges_sorted_by_workload_and_perturbation(
            self, tmp_path):
        ocean = self._write_diff(tmp_path / "o.json",
                                 workload="ocean")
        fft = self._write_diff(
            tmp_path / "f.json",
            perturbation={"name": "auth_interval", "value": "32"})
        table = collect_results.merge_diffs([ocean, fft])
        assert table.index("fft") < table.index("ocean")
        assert "auth_interval=32" in table
        assert "@1,000 (auth)" in table
        assert "+1,000" in table

    def test_identical_row(self, tmp_path):
        diff = self._write_diff(tmp_path / "same.json",
                                identical=True)
        table = collect_results.merge_diffs([diff])
        assert "identical" in table

    def test_rejects_non_diff_json(self, tmp_path):
        bogus = tmp_path / "x.json"
        bogus.write_text('{"kind": "repro-report"}')
        import pytest
        with pytest.raises(ValueError, match="recording diff"):
            collect_results.merge_diffs([bogus])

    def test_main_diffs_flag(self, tmp_path, capsys):
        diff = self._write_diff(tmp_path / "d.json")
        assert collect_results.main(["--diffs", str(diff)]) == 0
        assert "Merged recording diffs" in capsys.readouterr().out

    def test_main_diffs_bad_file(self, tmp_path, capsys):
        code = collect_results.main(
            ["--diffs", str(tmp_path / "missing.json")])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_against_real_cli_output(self, tmp_path):
        """repro record → replay → diff --json merges cleanly."""
        from repro.cli import main as repro_main
        rec = tmp_path / "run.rec.json"
        assert repro_main(["record", "fft", "--cpus", "2",
                           "--scale", "0.05", "--interval", "10",
                           "--out", str(rec)]) == 0
        replayed = tmp_path / "p.replay.json"
        assert repro_main(["replay", str(rec), "--perturb",
                           "auth_interval=50",
                           "--out", str(replayed)]) == 0
        diff_json = tmp_path / "d.json"
        assert repro_main(["diff", str(rec), str(replayed),
                           "--json", str(diff_json)]) == 1
        table = collect_results.merge_diffs([diff_json])
        assert "auth_interval=50" in table
        assert "fft" in table
