"""Tests for tools/collect_results.py."""

import sys
from pathlib import Path


sys.path.insert(0, str(Path(__file__).parents[1] / "tools"))
import collect_results  # noqa: E402


def test_collect_orders_and_concatenates(tmp_path):
    (tmp_path / "fig9_interval.txt").write_text("FIG9 TABLE")
    (tmp_path / "table1_bus_encryption.txt").write_text("TABLE1")
    (tmp_path / "zzz_custom.txt").write_text("CUSTOM")
    report = collect_results.collect(tmp_path)
    assert report.index("TABLE1") < report.index("FIG9 TABLE")
    assert report.index("FIG9 TABLE") < report.index("CUSTOM")
    assert "3 tables" in report


def test_collect_reports_missing(tmp_path):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    report = collect_results.collect(tmp_path)
    assert "missing" in report
    assert "fig6_slowdown_1mb.txt" in report


def test_main_writes_report(tmp_path, capsys):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    code = collect_results.main(["--results-dir", str(tmp_path)])
    assert code == 0
    assert (tmp_path / "REPORT.txt").exists()
    assert "FIG9" in capsys.readouterr().out


def test_main_quiet(tmp_path, capsys):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    collect_results.main(["--results-dir", str(tmp_path), "--quiet"])
    assert capsys.readouterr().out == ""


def test_main_missing_directory(tmp_path):
    code = collect_results.main(["--results-dir",
                                 str(tmp_path / "nowhere")])
    assert code == 1


def test_report_excludes_itself(tmp_path):
    (tmp_path / "fig9_interval.txt").write_text("FIG9")
    (tmp_path / "REPORT.txt").write_text("OLD REPORT")
    report = collect_results.collect(tmp_path)
    assert "OLD REPORT" not in report
