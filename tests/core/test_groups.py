"""Group-processor bit matrix and group information table tests."""

import pytest

from repro.core.groups import GroupInfoTable, GroupProcessorBitMatrix
from repro.errors import GroupTableFull, ReproError


class TestBitMatrix:
    def test_membership_lookup(self):
        matrix = GroupProcessorBitMatrix()
        matrix.set_membership(5, {0, 2, 3})
        assert matrix.is_member(5, 0)
        assert not matrix.is_member(5, 1)
        assert matrix.members_of(5) == {0, 2, 3}

    def test_non_member_owner_learns_nothing(self):
        """Section 5.1: a processor not in group g keeps row g zero."""
        matrix = GroupProcessorBitMatrix(owner_pid=7)
        matrix.set_membership(5, {0, 2, 3})
        assert matrix.members_of(5) == set()
        assert not matrix.is_member(5, 0)

    def test_member_owner_gets_the_row(self):
        matrix = GroupProcessorBitMatrix(owner_pid=2)
        matrix.set_membership(5, {0, 2, 3})
        assert matrix.members_of(5) == {0, 2, 3}

    def test_clear_group(self):
        matrix = GroupProcessorBitMatrix()
        matrix.set_membership(5, {1})
        matrix.clear_group(5)
        assert not matrix.is_member(5, 1)

    def test_range_validation(self):
        matrix = GroupProcessorBitMatrix(max_groups=4, max_processors=2)
        with pytest.raises(ReproError):
            matrix.is_member(4, 0)
        with pytest.raises(ReproError):
            matrix.set_membership(0, {5})

    def test_storage_matches_section_71(self):
        """1024 entries x 5 bits = 640 bytes."""
        matrix = GroupProcessorBitMatrix(max_groups=1024,
                                         max_processors=32)
        assert matrix.storage_bits() == 1024 * 5
        assert matrix.storage_bits() / 8 == 640


class TestGroupInfoTable:
    def test_allocate_returns_free_gids(self):
        table = GroupInfoTable(max_groups=3)
        assert table.allocate() == 0
        assert table.allocate() == 1
        assert table.occupied_count() == 2

    def test_full_table_raises(self):
        """Section 5.2: the application waits for a reclaimed GID."""
        table = GroupInfoTable(max_groups=2)
        table.allocate()
        table.allocate()
        with pytest.raises(GroupTableFull):
            table.allocate()

    def test_release_recycles_gid(self):
        table = GroupInfoTable(max_groups=1)
        gid = table.allocate()
        table.release(gid)
        assert table.allocate() == gid

    def test_install_stores_secrets(self):
        table = GroupInfoTable()
        table.install(3, bytes(16), [bytes(16)] * 2, auth_interval=32)
        entry = table.entry(3)
        assert entry.occupied and entry.is_member
        assert entry.session_key == bytes(16)
        assert entry.auth_interval == 32

    def test_non_member_mark_occupied_without_secrets(self):
        """Section 5.2: non-members set the occupied bit but hold no
        key or masks."""
        table = GroupInfoTable()
        table.mark_occupied(9)
        entry = table.entry(9)
        assert entry.occupied
        assert not entry.is_member
        assert entry.session_key is None
        assert entry.masks == []

    def test_storage_matches_section_71(self):
        """1 + 128 + 8 + 8*128 = 1161 bits; 148.6 KB per 1024 entries."""
        table = GroupInfoTable(max_groups=1024)
        assert table.storage_bits_per_entry() == 1161
        # The paper's "148.6KB" is decimal kilobytes: 148,608 bytes.
        assert table.storage_bytes_total() == 1024 * 1161 / 8
        assert table.storage_bytes_total() / 1000 == pytest.approx(
            148.6, abs=0.1)

    def test_gid_range_checked(self):
        table = GroupInfoTable(max_groups=4)
        with pytest.raises(ReproError):
            table.entry(4)


class TestGidWaitQueue:
    """Section 5.2: "the application is put into a queue waiting for
    the next available GID which is reclaimed upon completion"."""

    def test_waiters_queue_when_full(self):
        table = GroupInfoTable(max_groups=1)
        assert table.allocate_or_wait("app-a") == 0
        assert table.allocate_or_wait("app-b") is None
        assert table.waiting_count() == 1

    def test_release_hands_gid_to_oldest_waiter(self):
        table = GroupInfoTable(max_groups=1)
        table.allocate_or_wait("app-a")
        table.allocate_or_wait("app-b")
        table.allocate_or_wait("app-c")
        handoff = table.release(0)
        assert handoff == ("app-b", 0)
        assert table.entry(0).occupied  # immediately re-occupied
        assert table.waiting_count() == 1
        assert table.release(0) == ("app-c", 0)

    def test_release_without_waiters_frees_the_entry(self):
        table = GroupInfoTable(max_groups=2)
        gid = table.allocate()
        assert table.release(gid) is None
        assert not table.entry(gid).occupied
