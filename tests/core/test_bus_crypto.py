"""Bus encryption tests: Table 1 algorithm, member lock step, and the
section 3.1 break of naive pad reuse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.otp import xor_bytes
from repro.core.bus_crypto import (GroupChannel, MESSAGE_BYTES,
                                   channels_in_sync, pid_block)
from repro.errors import CryptoError

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])


def make_pair(num_masks=2):
    sender = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks)
    receiver = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks)
    return sender, receiver


def message(tag: int) -> bytes:
    return bytes([tag] * MESSAGE_BYTES)


def test_encrypt_decrypt_roundtrip():
    sender, receiver = make_pair()
    wire = sender.encrypt_message(0, message(0x42))
    assert receiver.decrypt_message(0, wire) == message(0x42)


def test_wire_is_not_plaintext():
    sender, _ = make_pair()
    assert sender.encrypt_message(0, message(0x42)) != message(0x42)


def test_members_stay_in_lock_step():
    """All replicas hold identical mask and MAC state after each
    message, whichever member sent it."""
    channels = [GroupChannel(KEY, ENC_IV, AUTH_IV) for _ in range(4)]
    for round_index in range(10):
        sender = round_index % 4
        wire = channels[sender].encrypt_message(sender,
                                                message(round_index))
        for pid, channel in enumerate(channels):
            if pid != sender:
                assert channel.decrypt_message(sender, wire) == \
                    message(round_index)
        assert channels_in_sync(channels)


def test_same_plaintext_twice_yields_different_wire():
    """CBC chaining: repeated data never repeats on the bus — the
    property the naive scheme of section 3.1 lacks."""
    sender, receiver = make_pair(num_masks=1)
    wire_1 = sender.encrypt_message(0, message(7))
    receiver.decrypt_message(0, wire_1)
    wire_2 = sender.encrypt_message(0, message(7))
    assert wire_1 != wire_2
    assert receiver.decrypt_message(0, wire_2) == message(7)


def test_section_31_break_of_static_pad_reuse():
    """The attack the paper opens with: if the bus reused a FIXED pad,
    XOR of two ciphertexts = XOR of the two plaintexts. Our channel
    must not have that property."""
    static_pad = AES(KEY).encrypt_block(bytes(16)) * 2
    d1, d2 = message(0x11), message(0x22)
    naive_1 = xor_bytes(d1, static_pad)
    naive_2 = xor_bytes(d2, static_pad)
    # The break: attacker learns D1 XOR D2 without the key.
    assert xor_bytes(naive_1, naive_2) == xor_bytes(d1, d2)
    # SENSS: chained masks make the same XOR useless.
    sender, _ = make_pair(num_masks=1)
    senss_1 = sender.encrypt_message(0, d1)
    senss_2 = sender.encrypt_message(0, d2)
    assert xor_bytes(senss_1, senss_2) != xor_bytes(d1, d2)


def test_table1_wire_is_aes_input_not_output():
    """Table 1: the bus carries B = D XOR M (computable in one XOR),
    and the mask update is AES_K(B XOR PID)."""
    channel = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=1)
    initial_mask = channel.mask_snapshot()[0]
    data = message(0x33)
    wire = channel.encrypt_message(5, data)
    # B = D XOR M holds per 16-byte block.
    assert wire == xor_bytes(data, initial_mask)
    # The new mask is the AES of (B XOR PID), blockwise.
    aes = AES(KEY)
    tweak = pid_block(5)
    expected = b"".join(
        aes.encrypt_block(xor_bytes(wire[i:i + 16], tweak))
        for i in (0, 16))
    assert channel.mask_snapshot()[0] == expected


def test_mask_slots_rotate_round_robin():
    channel = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=2)
    masks_before = channel.mask_snapshot()
    channel.encrypt_message(0, message(1))  # consumes slot 0
    masks_after = channel.mask_snapshot()
    assert masks_after[0] != masks_before[0]
    assert masks_after[1] == masks_before[1]  # slot 1 untouched


def test_pid_is_bound_into_the_state():
    """Same data sent under different claimed PIDs diverges the
    receivers — the hook the Type-3 defence relies on."""
    receiver_a = GroupChannel(KEY, ENC_IV, AUTH_IV)
    receiver_b = GroupChannel(KEY, ENC_IV, AUTH_IV)
    sender = GroupChannel(KEY, ENC_IV, AUTH_IV)
    wire = sender.encrypt_message(1, message(9))
    receiver_a.decrypt_message(1, wire)  # honest PID
    receiver_b.decrypt_message(2, wire)  # spoofed PID
    assert receiver_a.mac_digest() != receiver_b.mac_digest()
    assert receiver_a.mask_snapshot() != receiver_b.mask_snapshot()


def test_mac_advances_with_every_message():
    channel = GroupChannel(KEY, ENC_IV, AUTH_IV)
    first = channel.mac_digest()
    channel.encrypt_message(0, message(1))
    second = channel.mac_digest()
    channel.encrypt_message(0, message(1))
    assert len({first, second, channel.mac_digest()}) == 3


def test_ivs_must_differ():
    """Section 4.3: reusing the encryption IV for authentication lets
    swap attacks self-heal; the constructor forbids it."""
    with pytest.raises(CryptoError):
        GroupChannel(KEY, ENC_IV, ENC_IV)


def test_iv_length_checked():
    with pytest.raises(CryptoError):
        GroupChannel(KEY, b"short", AUTH_IV)
    with pytest.raises(CryptoError):
        GroupChannel(KEY, ENC_IV, b"short")


def test_message_size_enforced():
    channel = GroupChannel(KEY, ENC_IV, AUTH_IV)
    with pytest.raises(CryptoError):
        channel.encrypt_message(0, b"tiny")
    with pytest.raises(CryptoError):
        channel.decrypt_message(0, b"tiny")


def test_different_ivs_give_different_traces():
    """Fresh IVs per invocation -> different mask traces every run
    (section 4.2 'Initialization')."""
    run_1 = GroupChannel(KEY, ENC_IV, AUTH_IV)
    other_iv = bytes([0xB0 + i for i in range(16)])
    run_2 = GroupChannel(KEY, other_iv, AUTH_IV)
    assert (run_1.encrypt_message(0, message(5))
            != run_2.encrypt_message(0, message(5)))


def test_clone_snapshots_state():
    channel = GroupChannel(KEY, ENC_IV, AUTH_IV)
    channel.encrypt_message(0, message(1))
    twin = channel.clone()
    assert twin.mac_digest() == channel.mac_digest()
    channel.encrypt_message(0, message(2))
    assert twin.mac_digest() != channel.mac_digest()
    assert twin.sequence == channel.sequence - 1


@settings(max_examples=20, deadline=None)
@given(payloads=st.lists(st.binary(min_size=32, max_size=32), min_size=1,
                         max_size=10),
       num_masks=st.integers(min_value=1, max_value=8))
def test_property_lock_step_roundtrip(payloads, num_masks):
    sender = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks)
    receiver = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks)
    for index, payload in enumerate(payloads):
        wire = sender.encrypt_message(index % 4, payload)
        assert receiver.decrypt_message(index % 4, wire) == payload
    assert channels_in_sync([sender, receiver])
