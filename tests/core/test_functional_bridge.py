"""Functional-security bridge tests: real crypto under the timing sim."""


from repro.config import e6000_config
from repro.core.functional_bridge import (FunctionalSecurityBridge,
                                          attach_functional_bridge,
                                          synthesize_payload)
from repro.core.senss import build_secure_system
from repro.workloads.micro import false_sharing, ping_pong
from repro.workloads.registry import generate


def run_bridged(workload, num_cpus=2, auth_interval=10):
    config = e6000_config(num_processors=num_cpus,
                          auth_interval=auth_interval)
    system = build_secure_system(config)
    bridge = attach_functional_bridge(system)
    result = system.run(workload)
    return system, bridge, result


def test_payload_synthesis_is_deterministic():
    assert synthesize_payload(0x1000, 5) == synthesize_payload(0x1000, 5)
    assert synthesize_payload(0x1000, 5) != synthesize_payload(0x1000, 6)
    assert len(synthesize_payload(0x40, 0)) == 32


def test_ping_pong_end_to_end():
    system, bridge, result = run_bridged(ping_pong(rounds=60))
    summary = bridge.verify_against_layer(system.bus.security_layer)
    assert summary["protected_transfers"] > 0
    assert summary["auth_rounds"] == \
        summary["protected_transfers"] // 10
    assert result.cache_to_cache_transfers == \
        summary["protected_transfers"]


def test_false_sharing_end_to_end():
    system, bridge, _ = run_bridged(false_sharing(2, rounds=50),
                                    auth_interval=7)
    bridge.verify_against_layer(system.bus.security_layer)


def test_splash_workload_end_to_end():
    """A reduced lu run: the timing layer's books must match the
    functional SHUs exactly, and every MAC round must pass."""
    workload = generate("lu", 4, scale=0.1)
    system, bridge, _ = run_bridged(workload, num_cpus=4,
                                    auth_interval=25)
    summary = bridge.verify_against_layer(system.bus.security_layer)
    assert summary["protected_transfers"] > 100


def test_members_stay_in_lock_step_throughout():
    system, bridge, _ = run_bridged(ping_pong(rounds=30))
    from repro.core.bus_crypto import channels_in_sync
    channels = [shu.channel(0) for shu in bridge.shus
                if shu.is_member(0)]
    assert channels_in_sync(channels)
    assert channels[0].sequence == bridge.protected_transfers


def test_bridge_with_member_subset():
    """Non-member processors discard group traffic; members decrypt."""
    bridge = FunctionalSecurityBridge(4, auth_interval=5,
                                      member_pids=[0, 1, 2])
    assert not bridge.shus[3].is_member(0)
    assert bridge.shus[3].group_table.entry(0).occupied
