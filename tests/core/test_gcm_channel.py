"""GCM bus channel tests (the section 4.3 alternative)."""

import pytest

from repro.core.bus_crypto import GroupChannel
from repro.core.gcm_channel import GcmGroupChannel, gcm_channels_in_sync
from repro.errors import CryptoError

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])


def make_pair():
    return (GcmGroupChannel(KEY, ENC_IV, AUTH_IV),
            GcmGroupChannel(KEY, ENC_IV, AUTH_IV))


def message(tag):
    return bytes([tag] * 32)


def test_roundtrip():
    sender, receiver = make_pair()
    wire = sender.encrypt_message(0, message(5))
    assert wire != message(5)
    assert receiver.decrypt_message(0, wire) == message(5)


def test_lock_step_over_many_messages():
    channels = [GcmGroupChannel(KEY, ENC_IV, AUTH_IV) for _ in range(3)]
    for index in range(9):
        sender = index % 3
        wire = channels[sender].encrypt_message(sender, message(index))
        for pid, channel in enumerate(channels):
            if pid != sender:
                assert channel.decrypt_message(sender, wire) == \
                    message(index)
        assert gcm_channels_in_sync(channels)


def test_repeated_plaintext_never_repeats_on_wire():
    sender, receiver = make_pair()
    first = sender.encrypt_message(0, message(7))
    receiver.decrypt_message(0, first)
    second = sender.encrypt_message(0, message(7))
    assert first != second


def test_digest_chains_history():
    a, b = make_pair()
    wire = a.encrypt_message(0, message(1))
    b.decrypt_message(0, wire)
    assert a.mac_digest() == b.mac_digest()
    # Divergent histories diverge the digest.
    a.encrypt_message(0, message(2))
    assert a.mac_digest() != b.mac_digest()


def test_spoofed_pid_diverges_digest():
    sender, honest = make_pair()
    victim = GcmGroupChannel(KEY, ENC_IV, AUTH_IV)
    wire = sender.encrypt_message(1, message(3))
    honest.decrypt_message(1, wire)
    victim.decrypt_message(2, wire)  # adversary claims PID 2
    assert honest.mac_digest() != victim.mac_digest()


def test_drop_diverges_digest():
    sender, receiver = make_pair()
    sender.encrypt_message(0, message(1))  # receiver never sees it
    wire = sender.encrypt_message(0, message(2))
    receiver.decrypt_message(0, wire)
    assert sender.mac_digest() != receiver.mac_digest()


def test_swap_diverges_digest():
    sender, receiver = make_pair()
    first = sender.encrypt_message(0, message(1))
    second = sender.encrypt_message(0, message(2))
    receiver.decrypt_message(0, second)
    receiver.decrypt_message(0, first)
    assert sender.mac_digest() != receiver.mac_digest()


def test_fewer_aes_invocations_than_cbc_channel():
    """The section 4.3 claim: GCM needs one AES invocation per block
    where the CBC scheme needs two (mask + MAC)."""
    cbc = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=2)
    gcm = GcmGroupChannel(KEY, ENC_IV, AUTH_IV)
    cbc_start, gcm_start = cbc.aes_invocations, gcm.aes_invocations
    for index in range(50):
        cbc.encrypt_message(0, message(index % 200))
        gcm.encrypt_message(0, message(index % 200))
    cbc_spent = cbc.aes_invocations - cbc_start
    gcm_spent = gcm.aes_invocations - gcm_start
    assert gcm_spent == cbc_spent / 2


def test_iv_validation():
    with pytest.raises(CryptoError):
        GcmGroupChannel(KEY, ENC_IV, ENC_IV)
    with pytest.raises(CryptoError):
        GcmGroupChannel(KEY, b"short", AUTH_IV)
    channel = GcmGroupChannel(KEY, ENC_IV, AUTH_IV)
    with pytest.raises(CryptoError):
        channel.encrypt_message(0, b"tiny")
