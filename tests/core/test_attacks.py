"""Attack detection tests — the section 4.3 security arguments.

Every Type 1/2/3 attack must raise an alarm in SENSS (at the latest at
the next authentication round); the honest fabric must never alarm.
"""

import pytest

from repro.core.attacks import (BusAttacker, DropAttack, SecureBusFabric,
                                SpoofAttack, SwapAttack)
from repro.errors import AuthenticationFailure, SpoofDetected

from tests.conftest import make_group

GID = 3


def make_fabric(attacker=None, num_members=4, interval=100):
    shus, manager = make_group(num_members=num_members,
                               auth_interval=interval, group_id=GID)
    return SecureBusFabric(shus, GID, manager, attacker)


def payload(tag):
    return bytes([tag] * 32)


def drive(fabric, count, start=0):
    """Send `count` transfers round-robin from the group members."""
    for index in range(start, start + count):
        sender = index % len(fabric.shus)
        fabric.transmit(sender, payload(index & 0xFF))


class TestHonestOperation:
    def test_no_alarm_over_many_auth_rounds(self):
        fabric = make_fabric(interval=10)
        drive(fabric, 55)
        assert fabric.auth.rounds_completed == 5
        assert fabric.alarms == []

    def test_receivers_get_plaintext(self):
        fabric = make_fabric()
        received = fabric.transmit(0, payload(9))
        assert received == {1: payload(9), 2: payload(9), 3: payload(9)}

    def test_finish_runs_final_check(self):
        fabric = make_fabric(interval=1000)
        drive(fabric, 7)
        fabric.finish()
        assert fabric.auth.rounds_completed == 1


class TestType1Dropping:
    def test_simple_drop_detected(self):
        """One receiver misses one message -> MAC divergence."""
        fabric = make_fabric(DropAttack({2: [3]}), interval=10)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 10)
        assert fabric.alarms

    def test_split_group_drop_detected(self):
        """The hard case of section 4.3: message n blocked from half
        the group, n+1 from the other half. Counts stay equal on every
        member, yet the chained MACs split."""
        fabric = make_fabric(DropAttack({4: [2, 3], 5: [0, 1]}),
                             interval=10)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 10)

    def test_inconsistency_persists_until_detection(self):
        """'This inconsistency will propagate until the next
        authentication' — detection happens even when the drop occurred
        long before the check."""
        fabric = make_fabric(DropAttack({0: [1]}), interval=50)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 50)

    def test_drop_all_receivers(self):
        fabric = make_fabric(DropAttack({1: [1, 2, 3]}), interval=5)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 5)


class TestType2Reordering:
    def test_swap_detected(self):
        """Swapping two consecutive transfers diverges receivers from
        the senders' chains (the equation-(1) argument)."""
        fabric = make_fabric(SwapAttack(first_index=2), interval=10)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 10)
        assert fabric.attacker.swapped

    def test_swap_detected_even_across_interval(self):
        fabric = make_fabric(SwapAttack(first_index=0), interval=4)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 4)


class TestType3Spoofing:
    def test_spoof_with_own_pid_detected_immediately(self):
        """A forged message reaching the processor whose PID it claims
        raises the alarm on the spot (no waiting for the MAC round)."""
        attack = SpoofAttack(after_index=1, group_id=GID, claimed_pid=2,
                             payload=bytes(32), victims=[2])
        fabric = make_fabric(attack, interval=100)
        with pytest.raises(SpoofDetected):
            drive(fabric, 3)

    def test_spoof_with_other_members_pid_detected_at_auth(self):
        """The 'intelligent adversary': victim 3 receives a message
        claiming valid member PID 2. No one can reject it on sight,
        but victim 3's MAC digests the spoofed block and diverges."""
        attack = SpoofAttack(after_index=1, group_id=GID, claimed_pid=2,
                             payload=bytes(32), victims=[3])
        fabric = make_fabric(attack, interval=10)
        with pytest.raises(AuthenticationFailure) as excinfo:
            drive(fabric, 10)
        assert "3" in str(excinfo.value)

    def test_spoof_with_invalid_pid_detected_immediately(self):
        attack = SpoofAttack(after_index=0, group_id=GID, claimed_pid=6,
                             payload=bytes(32), victims=[1])
        fabric = make_fabric(attack, interval=100)
        with pytest.raises(SpoofDetected):
            drive(fabric, 2)


class TestAttackerPlumbing:
    def test_identity_attacker_is_transparent(self):
        fabric = make_fabric(BusAttacker(), interval=5)
        drive(fabric, 20)
        assert fabric.alarms == []

    def test_flush_of_trailing_held_message_is_clean(self):
        """Holding the LAST message and releasing it at flush delivers
        everything in order — no divergence, no alarm."""
        attack = SwapAttack(first_index=3)
        fabric = make_fabric(attack, interval=1000)
        drive(fabric, 4)  # message 3 held; nothing follows
        fabric.finish()
        assert fabric.auth.rounds_completed == 1
        assert fabric.alarms == []

    def test_delay_across_an_auth_round_is_detected(self):
        """If the adversary delays a message past a MAC round, the
        sender has chained it but the receivers have not: alarm."""
        attack = SwapAttack(first_index=3)
        fabric = make_fabric(attack, interval=4)
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 4)

    def test_drop_attack_counts(self):
        attack = DropAttack({0: [1, 2]})
        fabric = make_fabric(attack, interval=1000)
        fabric.transmit(0, payload(1))
        assert attack.dropped == 2


class TestMacBroadcastTampering:
    def test_tampered_broadcast_raises_alarm(self):
        """Section 4.3: corrupting the authentication message itself
        is self-defeating — the comparison fails immediately."""
        from repro.core.attacks import MacTamperAttack
        attack = MacTamperAttack(target=0)
        fabric = make_fabric(attack, interval=5)
        with pytest.raises(AuthenticationFailure) as excinfo:
            drive(fabric, 5)
        assert attack.tampered
        assert "broadcast" in str(excinfo.value)
        assert fabric.alarms == ["tampered MAC broadcast"]

    def test_later_broadcast_can_be_targeted(self):
        from repro.core.attacks import MacTamperAttack
        attack = MacTamperAttack(target=2)
        fabric = make_fabric(attack, interval=4)
        drive(fabric, 8)  # rounds 0 and 1 pass untouched
        assert fabric.auth.rounds_completed == 2
        with pytest.raises(AuthenticationFailure):
            drive(fabric, 4, start=8)

    def test_untampered_rounds_pass(self):
        from repro.core.attacks import MacTamperAttack
        attack = MacTamperAttack(target=99)
        fabric = make_fabric(attack, interval=5)
        drive(fabric, 20)
        assert fabric.auth.rounds_completed == 4
        assert not attack.tampered
