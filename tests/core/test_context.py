"""Group swap-out/swap-in tests (section 4.2)."""

import pytest

from repro.core.context import GroupContextManager
from repro.core.bus_crypto import channels_in_sync
from repro.errors import IntegrityViolation
from repro.memory.dram import MainMemory
from repro.sim.rng import DeterministicRng

from tests.conftest import make_group

GID = 3


def exercised_group(messages=7):
    """A group with some traffic behind it (non-trivial state)."""
    shus, manager = make_group(num_members=3, group_id=GID)
    for index in range(messages):
        sender = index % 3
        wire = shus[sender].send(GID, bytes([index] * 32))
        for shu in shus:
            if shu.pid != sender:
                shu.snoop(wire)
    return shus, manager


def test_swap_roundtrip_restores_lock_step():
    shus, _ = exercised_group()
    snapshots = [shu.channel(GID).export_state() for shu in shus]
    memory = MainMemory(64)
    manager = GroupContextManager(memory, DeterministicRng(1))
    contexts = manager.swap_out(shus, GID)
    assert len(contexts) == 3
    assert manager.swapped_out_count() == 3
    restored = manager.swap_in(shus, GID)
    assert restored == 3
    assert [shu.channel(GID).export_state() for shu in shus] == snapshots
    assert channels_in_sync([shu.channel(GID) for shu in shus])


def test_group_continues_after_swap():
    shus, _ = exercised_group()
    memory = MainMemory(64)
    manager = GroupContextManager(memory, DeterministicRng(2))
    manager.swap_out(shus, GID)
    manager.swap_in(shus, GID)
    wire = shus[0].send(GID, bytes([0xEE] * 32))
    assert shus[1].snoop(wire) == bytes([0xEE] * 32)
    assert shus[2].snoop(wire) == bytes([0xEE] * 32)


def test_swapped_state_is_scrubbed_on_chip():
    shus, _ = exercised_group()
    before = shus[0].channel(GID).mask_snapshot()
    manager = GroupContextManager(MainMemory(64), DeterministicRng(3))
    manager.swap_out(shus, GID)
    scrubbed = shus[0].channel(GID).mask_snapshot()
    assert scrubbed != before
    assert all(mask == bytes(32) for mask in scrubbed)
    assert shus[0].channel(GID).sequence == 0


def test_context_in_memory_is_ciphertext():
    shus, _ = exercised_group()
    plain_state = shus[0].channel(GID).export_state()
    memory = MainMemory(64)
    manager = GroupContextManager(memory, DeterministicRng(4))
    contexts = manager.swap_out(shus, GID)
    stored = b"".join(
        memory.read_line(contexts[0].base_address + index * 64)
        for index in range(contexts[0].num_lines))
    assert plain_state not in stored


def test_tampered_context_detected_at_swap_in():
    shus, _ = exercised_group()
    memory = MainMemory(64)
    manager = GroupContextManager(memory, DeterministicRng(5))
    contexts = manager.swap_out(shus, GID)
    memory.corrupt_line(contexts[1].base_address)
    with pytest.raises(IntegrityViolation) as excinfo:
        manager.swap_in(shus, GID)
    assert "tampered" in str(excinfo.value)


def test_fresh_ivs_per_swap():
    """Two swap-outs of the same state must not produce identical
    ciphertexts (fresh IV each time)."""
    shus, _ = exercised_group()
    memory = MainMemory(64)
    manager = GroupContextManager(memory, DeterministicRng(6))
    first = manager.swap_out(shus, GID)
    blob_1 = memory.read_line(first[0].base_address)
    manager.swap_in(shus, GID)
    second = manager.swap_out(shus, GID)
    blob_2 = memory.read_line(second[0].base_address)
    assert blob_1 != blob_2


def test_non_members_are_skipped():
    shus, _ = exercised_group()
    from repro.core.shu import SecurityHardwareUnit
    outsider = SecurityHardwareUnit(7, max_processors=8)
    outsider.observe_group(GID)
    manager = GroupContextManager(MainMemory(64), DeterministicRng(7))
    contexts = manager.swap_out(shus + [outsider], GID)
    assert {context.pid for context in contexts} == {0, 1, 2}
