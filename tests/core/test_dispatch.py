"""Program dispatch and group establishment tests (section 4.1)."""

import pytest

from repro.core.dispatch import (ProgramDistributor, decrypt_program,
                                 establish_group, recover_session_key)
from repro.core.bus_crypto import channels_in_sync
from repro.core.shu import SecurityHardwareUnit
from repro.errors import ReproError
from repro.sim.rng import DeterministicRng

PROGRAM = b"int main() { return 42; }  /* banking workload */"
GID = 2


@pytest.fixture(scope="module")
def machine():
    return [SecurityHardwareUnit(pid, max_processors=8,
                                 rng=DeterministicRng(100 + pid))
            for pid in range(4)]


def test_package_encrypts_program(machine):
    distributor = ProgramDistributor(DeterministicRng(1))
    package = distributor.package("app", PROGRAM, machine, [0, 1, 2])
    assert PROGRAM not in package.encrypted_program
    assert package.member_pids == [0, 1, 2]


def test_members_recover_the_same_key(machine):
    distributor = ProgramDistributor(DeterministicRng(2))
    package = distributor.package("app", PROGRAM, machine, [0, 1])
    key_0 = recover_session_key(machine[0], package)
    key_1 = recover_session_key(machine[1], package)
    assert key_0 == key_1
    assert len(key_0) == 16


def test_program_decrypts_with_recovered_key(machine):
    distributor = ProgramDistributor(DeterministicRng(3))
    package = distributor.package("app", PROGRAM, machine, [0, 1])
    key = recover_session_key(machine[0], package)
    assert decrypt_program(key, package) == PROGRAM


def test_non_member_cannot_get_a_wrapped_key(machine):
    distributor = ProgramDistributor(DeterministicRng(4))
    package = distributor.package("app", PROGRAM, machine, [0, 1])
    with pytest.raises(ReproError):
        package.key_for(3)


def test_establish_group_synchronizes_members(machine):
    """After establishment every member holds identical channel state
    (the broadcast IV protocol of section 4.2)."""
    distributor = ProgramDistributor(DeterministicRng(5))
    package = distributor.package("app", PROGRAM, machine, [0, 1, 2],
                                  num_masks=4, auth_interval=10)
    members = establish_group(machine, GID, package,
                              DeterministicRng(55))
    assert members == [0, 1, 2]
    channels = [machine[pid].channel(GID) for pid in members]
    assert channels_in_sync(channels)
    assert channels[0].num_masks == 4
    # Non-member: GID marked occupied, no channel.
    assert machine[3].group_table.entry(GID).occupied
    assert not machine[3].is_member(GID)
    for pid in members:
        machine[pid].leave_group(GID)


def test_fresh_ivs_each_invocation(machine):
    """Re-running the same program must produce different masks
    (section 4.2: different mask traces per invocation)."""
    distributor = ProgramDistributor(DeterministicRng(6))
    package = distributor.package("app", PROGRAM, machine, [0, 1])
    establish_group(machine, 5, package, DeterministicRng(71))
    first = machine[0].channel(5).mask_snapshot()
    machine[0].leave_group(5)
    machine[1].leave_group(5)
    establish_group(machine, 5, package, DeterministicRng(72))
    second = machine[0].channel(5).mask_snapshot()
    assert first != second
    machine[0].leave_group(5)
    machine[1].leave_group(5)


def test_distributor_validates_members(machine):
    distributor = ProgramDistributor(DeterministicRng(7))
    with pytest.raises(ReproError):
        distributor.package("app", PROGRAM, machine, [])
    with pytest.raises(ReproError):
        distributor.package("app", PROGRAM, machine, [0, 42])


def test_grouping_excludes_untrusted_processors(machine):
    """Figure 1's scenario: the distributor picks a trusted subset."""
    distributor = ProgramDistributor(DeterministicRng(8))
    package = distributor.package("app", PROGRAM, machine, [1, 3])
    establish_group(machine, 6, package, DeterministicRng(9))
    assert machine[1].is_member(6) and machine[3].is_member(6)
    assert not machine[0].is_member(6)
    # The untrusted processor has no way to decrypt group traffic.
    wire = machine[1].send(6, bytes([1] * 32))
    assert machine[0].snoop(wire) is None
    assert machine[3].snoop(wire) == bytes([1] * 32)
    machine[1].leave_group(6)
    machine[3].leave_group(6)
