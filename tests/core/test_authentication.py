"""Authentication manager and non-chained baseline tests."""

import pytest

from repro.core.authentication import (AuthenticationManager,
                                       NonChainedAuthenticator)
from repro.core.bus_crypto import GroupChannel, MESSAGE_BYTES
from repro.errors import AuthenticationFailure, CryptoError

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])


def make_channels(count=4):
    return {pid: GroupChannel(KEY, ENC_IV, AUTH_IV)
            for pid in range(count)}


def message(tag):
    return bytes([tag] * MESSAGE_BYTES)


class TestAuthenticationManager:
    def test_counter_triggers_at_interval(self):
        manager = AuthenticationManager([0, 1], interval=3)
        assert not manager.record_transfer()
        assert not manager.record_transfer()
        assert manager.record_transfer()
        assert manager.counter == 0  # reset after trigger

    def test_interval_one_triggers_every_transfer(self):
        manager = AuthenticationManager([0, 1], interval=1)
        assert manager.record_transfer()
        assert manager.record_transfer()

    def test_round_robin_initiator(self):
        """Section 4.3: rotate the initiator to avoid depending on a
        single member."""
        manager = AuthenticationManager([0, 1, 2], interval=1)
        channels = make_channels(3)
        initiators = [manager.run_check(channels) for _ in range(6)]
        assert initiators == [0, 1, 2, 0, 1, 2]

    def test_consistent_members_pass(self):
        channels = make_channels(2)
        wire = channels[0].encrypt_message(0, message(1))
        channels[1].decrypt_message(0, wire)
        manager = AuthenticationManager([0, 1], interval=1)
        manager.run_check(channels)
        assert manager.rounds_completed == 1

    def test_diverged_member_raises_global_alarm(self):
        channels = make_channels(3)
        wire = channels[0].encrypt_message(0, message(1))
        channels[1].decrypt_message(0, wire)
        # channel 2 never saw the message: its MAC is stale.
        manager = AuthenticationManager([0, 1, 2], interval=1)
        with pytest.raises(AuthenticationFailure) as excinfo:
            manager.run_check(channels, cycle=123)
        assert "2" in str(excinfo.value)
        assert excinfo.value.cycle == 123
        assert manager.failures == 1

    def test_validation(self):
        with pytest.raises(CryptoError):
            AuthenticationManager([0], interval=0)
        with pytest.raises(CryptoError):
            AuthenticationManager([], interval=5)


class TestNonChainedBaseline:
    """The Shi et al. [20]-style scheme (related work, section 8)."""

    def test_honest_roundtrip(self):
        auth = NonChainedAuthenticator(KEY)
        wire, mac = auth.send(message(5))
        assert auth.receive(1, wire, mac) == message(5)

    def test_per_message_tamper_detected(self):
        auth = NonChainedAuthenticator(KEY)
        wire, mac = auth.send(message(5))
        tampered = bytes([wire[0] ^ 1]) + wire[1:]
        assert auth.receive(1, tampered, mac) is None
        assert auth.per_message_failures == 1

    def test_receivers_track_local_sequences(self):
        auth = NonChainedAuthenticator(KEY)
        for tag in range(3):
            wire, mac = auth.send(message(tag))
            auth.receive(1, wire, mac)
        assert auth.receiver_sequence(1) == 3
        assert auth.receiver_sequence(2) == 0

    def test_split_drop_goes_undetected(self):
        """The paper's Type-1 scenario: receiver B misses message n but
        gets n+1; every per-message MAC still verifies (no alarm), and
        B silently decrypts garbage — the integrity failure SENSS's
        chained MAC catches."""
        auth = NonChainedAuthenticator(KEY)
        wire_n, mac_n = auth.send(message(1))
        wire_n1, mac_n1 = auth.send(message(2))
        # Receiver A gets both; receiver B only the second.
        assert auth.receive(0, wire_n, mac_n) == message(1)
        assert auth.receive(0, wire_n1, mac_n1) == message(2)
        got = auth.receive(1, wire_n1, mac_n1)
        assert got is not None          # MAC verified: NO alarm raised
        assert got != message(2)        # ...but the data is garbage
        assert auth.per_message_failures == 0

    def test_replay_goes_undetected_when_sequences_align(self):
        """Type 3 (replay/spoof): an old (wire, MAC) pair re-injected
        at the position where the victim's local sequence matches the
        original passes both the MAC check AND decrypts cleanly."""
        auth = NonChainedAuthenticator(KEY)
        wire_0, mac_0 = auth.send(message(1))
        # The victim never saw message 0; the adversary replays it as
        # the victim's first message: sequence 0 matches -> accepted
        # as a perfectly valid, correctly decrypted message it was
        # never supposed to act on twice / at this time.
        got = auth.receive(1, wire_0, mac_0)
        assert got == message(1)
        got_again_elsewhere = auth.receive(2, wire_0, mac_0)
        assert got_again_elsewhere == message(1)
        assert auth.per_message_failures == 0

    def test_message_size_enforced(self):
        auth = NonChainedAuthenticator(KEY)
        with pytest.raises(CryptoError):
            auth.send(b"tiny")
