"""SENSS bus timing layer tests (the +3 cycles, masks, MAC injection)."""

import pytest

from repro.bus.bus import SharedBus
from repro.bus.transaction import BusTransaction, TransactionType
from repro.config import e6000_config
from repro.core.senss import SenssBusLayer, build_secure_system
from repro.errors import ConfigError
from repro.smp.system import SmpSystem
from repro.smp.trace import MemoryAccess, Workload


def make_layer(auth_interval=100, num_masks=None, processors=4):
    config = e6000_config(num_processors=processors,
                          auth_interval=auth_interval)
    config = config.with_masks(num_masks)
    bus = SharedBus(config.bus)
    layer = SenssBusLayer(config)
    layer.attach(bus)
    return layer, bus


def c2c_tx(pid=0, address=0x1000):
    return BusTransaction(TransactionType.BUS_READ, address, pid,
                          supplied_by_cache=True)


def memory_tx():
    return BusTransaction(TransactionType.BUS_READ, 0x1000, 0,
                          supplied_by_cache=False)


def test_protected_message_pays_three_cycles():
    layer, bus = make_layer()
    tx = bus.issue(c2c_tx(), 0, 64)
    assert tx.complete_cycle == 120 + 3
    assert layer.protected_messages == 1


def test_memory_traffic_not_masked():
    """Cache-to-memory data uses the section-6 path, not bus masks."""
    layer, bus = make_layer()
    tx = bus.issue(memory_tx(), 0, 64)
    assert tx.complete_cycle == 180  # no +3
    assert layer.protected_messages == 0


def test_address_only_messages_not_masked():
    layer, bus = make_layer()
    bus.issue(BusTransaction(TransactionType.BUS_UPGRADE, 0x40, 0), 0, 0)
    assert layer.protected_messages == 0


def test_mac_broadcast_injected_at_interval():
    layer, bus = make_layer(auth_interval=5)
    for index in range(10):
        bus.issue(c2c_tx(address=0x1000 + index * 64), index * 200, 64)
    assert layer.auth_broadcasts == 2
    assert bus.stats.get("bus.tx.Auth00") == 2


def test_mac_broadcast_occupies_the_bus():
    layer, bus = make_layer(auth_interval=1)
    bus.issue(c2c_tx(), 0, 64)
    # Data tx occupies 30 cycles, then the MAC broadcast 20 more.
    assert bus.free_at == 30 + 20
    assert layer.auth_broadcasts == 1


def test_mac_initiator_rotates_round_robin():
    layer, bus = make_layer(auth_interval=1, processors=3)
    initiators = []
    bus.add_observer(lambda tx: initiators.append(tx.source_pid)
                     if tx.type is TransactionType.AUTH_MAC else None)
    for index in range(6):
        bus.issue(c2c_tx(address=index * 64), index * 500, 64)
    assert initiators == [0, 1, 2, 0, 1, 2]


def test_mask_stall_charged_with_single_mask():
    layer, bus = make_layer(num_masks=1)
    first = bus.issue(c2c_tx(), 0, 64)
    second = bus.issue(c2c_tx(address=0x2000), 0, 64)
    # Second grant at cycle 30 (occupancy); mask ready at 80:
    # stall = 50, total latency = 120 + 3 + 50.
    assert first.complete_cycle == 123
    assert second.complete_cycle == 30 + 120 + 3 + 50
    assert bus.stats.get("senss.mask_stalls") == 1
    assert bus.stats.get("senss.mask_wait_cycles") == 50


def test_perfect_masks_never_stall():
    layer, bus = make_layer(num_masks=None)
    for index in range(16):
        bus.issue(c2c_tx(address=index * 64), 0, 64)
    assert bus.stats.get("senss.mask_stalls") == 0


def test_layer_requires_enabled_config():
    config = e6000_config(senss_enabled=False)
    with pytest.raises(ConfigError):
        SenssBusLayer(config)


def test_build_secure_system_wires_the_layer():
    config = e6000_config(num_processors=2)
    system = build_secure_system(config)
    assert isinstance(system.bus.security_layer, SenssBusLayer)
    disabled = build_secure_system(config.with_senss(False)) \
        if False else SmpSystem(config.with_senss(False))
    assert disabled.bus.security_layer is None


def test_end_to_end_sharing_pays_overhead():
    """Same trace on baseline vs SENSS machine: secured is slower by
    exactly the per-message overhead when there is no contention."""
    trace = Workload("pair", [
        [MemoryAccess(False, 0x1000, 0)],
        [MemoryAccess(False, 0x1000, 1000)],
    ])
    config = e6000_config(num_processors=2)
    base = SmpSystem(config.with_senss(False)).run(trace)
    secured = build_secure_system(config).run(trace)
    assert secured.cycles - base.cycles == 3


def test_auth_interval_one_counts_every_transfer():
    config = e6000_config(num_processors=2, auth_interval=1)
    trace = Workload("pingpong", [
        [MemoryAccess(True, 0x1000, 500 * i) for i in range(1, 5)],
        [MemoryAccess(True, 0x1000, 250 + 500 * i) for i in range(1, 5)],
    ])
    secured = build_secure_system(config).run(trace)
    assert secured.auth_messages == secured.cache_to_cache_transfers
