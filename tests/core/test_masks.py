"""Mask pair/array timing tests (section 4.4, Figure 3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.masks import MaskTimingArray, max_useful_masks
from repro.errors import ConfigError

AES = 80
BUS = 10


def test_max_useful_masks_figure5():
    """80-cycle AES / 10-cycle bus = 8 masks (section 4.4)."""
    assert max_useful_masks(AES, BUS) == 8


def test_single_mask_stalls_back_to_back():
    array = MaskTimingArray(1, AES)
    assert array.consume(0) == 0
    # Next message 10 cycles later must wait for the 80-cycle update.
    assert array.consume(10) == 70


def test_mask_pair_avoids_alternating_stall():
    """Figure 3: with a pair, alternating messages spaced one bus
    cycle... still stall with AES >> bus, but far less than one mask."""
    pair = MaskTimingArray(2, AES)
    single = MaskTimingArray(1, AES)
    pair_wait = sum(pair.consume(t) for t in range(0, 100, 10))
    single_wait = sum(single.consume(t) for t in range(0, 100, 10))
    assert pair_wait < single_wait


def test_figure3_pair_with_matched_latency():
    """The paper's Figure 3 case: AES latency == bus cycle time means
    a PAIR of masks removes all waiting."""
    array = MaskTimingArray(2, aes_latency=BUS)
    waits = [array.consume(t) for t in range(0, 200, BUS)]
    assert all(wait == 0 for wait in waits)


def test_eight_masks_sustain_peak_rate():
    """At one message per bus cycle, ceil(80/10)=8 masks = no stalls."""
    array = MaskTimingArray(8, AES)
    waits = [array.consume(t) for t in range(0, 400, BUS)]
    assert all(wait == 0 for wait in waits)


def test_seven_masks_do_not():
    array = MaskTimingArray(7, AES)
    waits = [array.consume(t) for t in range(0, 400, BUS)]
    assert any(wait > 0 for wait in waits)


def test_perfect_masks_never_stall():
    array = MaskTimingArray(None, AES)
    assert array.is_perfect
    assert all(array.consume(t) == 0 for t in range(0, 50, 1))


def test_idle_traffic_never_stalls_single_mask():
    array = MaskTimingArray(1, AES)
    assert array.consume(0) == 0
    assert array.consume(1000) == 0  # update long finished


def test_peek_does_not_consume():
    array = MaskTimingArray(1, AES)
    array.consume(0)
    assert array.peek_wait(10) == 70
    assert array.peek_wait(10) == 70  # unchanged
    assert array.consume(10) == 70


def test_statistics():
    array = MaskTimingArray(1, AES)
    array.consume(0)
    array.consume(10)
    messages, stalled, waited = array.utilisation()
    assert (messages, stalled, waited) == (2, 1, 70)


def test_reset():
    array = MaskTimingArray(1, AES)
    array.consume(0)
    array.reset()
    assert array.consume(0) == 0
    assert array.messages == 1


def test_validation():
    with pytest.raises(ConfigError):
        MaskTimingArray(0, AES)
    with pytest.raises(ConfigError):
        MaskTimingArray(2, 0)
    with pytest.raises(ConfigError):
        max_useful_masks(AES, 0)


@settings(max_examples=30, deadline=None)
@given(num_masks=st.integers(min_value=1, max_value=8),
       gaps=st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                     max_size=50))
def test_property_more_masks_never_hurt(num_masks, gaps):
    """Monotonicity: k+1 masks total wait <= k masks total wait, for
    the identical arrival pattern."""
    fewer = MaskTimingArray(num_masks, AES)
    more = MaskTimingArray(num_masks + 1, AES)
    time = 0
    fewer_wait = more_wait = 0
    for gap in gaps:
        time += gap
        fewer_wait += fewer.consume(time)
        more_wait += more.consume(time)
    assert more_wait <= fewer_wait
