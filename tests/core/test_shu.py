"""Security Hardware Unit tests (sections 4-5)."""

import pytest

from repro.core.shu import SecurityHardwareUnit, WireMessage
from repro.errors import ReproError, SpoofDetected

from tests.conftest import AUTH_IV, ENC_IV, SESSION_KEY, make_group

GID = 3


def test_member_roundtrip(group):
    shus, _ = group
    wire = shus[0].send(GID, bytes([9] * 32))
    assert wire.group_id == GID and wire.pid == 0
    assert shus[1].snoop(wire) == bytes([9] * 32)
    assert shus[1].messages_received == 1


def test_non_member_discards_message():
    shus, _ = make_group(num_members=2)
    outsider = SecurityHardwareUnit(7, max_processors=8)
    outsider.observe_group(GID)
    wire = shus[0].send(GID, bytes(32))
    assert outsider.snoop(wire) is None
    assert outsider.messages_discarded == 1
    # The outsider's table knows the GID is taken but holds no key.
    assert outsider.group_table.entry(GID).occupied
    assert outsider.group_table.entry(GID).session_key is None


def test_own_pid_on_bus_is_immediate_spoof_alarm(group):
    """Section 4.3: p should not receive its own message."""
    shus, _ = group
    forged = WireMessage(GID, pid=1, payload=bytes(32))
    with pytest.raises(SpoofDetected):
        shus[1].snoop(forged)


def test_foreign_pid_with_valid_gid_is_spoof(group):
    """A PID that is not a group member cannot speak for the group."""
    shus, _ = group
    forged = WireMessage(GID, pid=6, payload=bytes(32))
    with pytest.raises(SpoofDetected):
        shus[0].snoop(forged)


def test_mac_broadcast_not_decrypted(group):
    shus, _ = group
    mac_message = shus[0].build_mac_broadcast(GID)
    assert mac_message.kind == "mac"
    assert shus[1].snoop(mac_message) is None
    # Snooping a MAC must not advance the channel state.
    assert shus[1].channel(GID).sequence == 0


def test_mac_digest_matches_channel(group):
    shus, _ = group
    assert shus[0].mac_digest(GID) == shus[0].channel(GID).mac_digest()


def test_join_requires_membership():
    shu = SecurityHardwareUnit(5, max_processors=8)
    with pytest.raises(ReproError):
        shu.join_group(GID, {0, 1}, SESSION_KEY, ENC_IV, AUTH_IV)


def test_leave_group_scrubs_state(group):
    shus, _ = group
    shus[0].leave_group(GID)
    assert not shus[0].is_member(GID)
    with pytest.raises(ReproError):
        shus[0].channel(GID)
    assert not shus[0].group_table.entry(GID).occupied


def test_unknown_channel_rejected():
    shu = SecurityHardwareUnit(0, max_processors=8)
    with pytest.raises(ReproError):
        shu.send(GID, bytes(32))


def test_pid_range_checked():
    with pytest.raises(ReproError):
        SecurityHardwareUnit(99, max_processors=8)


def test_two_groups_are_isolated():
    """A message in group A must not perturb group B's channel."""
    members_a, members_b = {0, 1}, {1, 2}
    shus = [SecurityHardwareUnit(pid, max_processors=8)
            for pid in range(3)]
    iv_b = bytes([0xC0 + i for i in range(16)])
    for shu in shus:
        if shu.pid in members_a:
            shu.join_group(1, members_a, SESSION_KEY, ENC_IV, AUTH_IV)
        if shu.pid in members_b:
            shu.join_group(2, members_b, bytes(reversed(SESSION_KEY)),
                           iv_b, AUTH_IV)
    before = shus[1].channel(2).mac_digest()
    wire = shus[0].send(1, bytes([5] * 32))
    shus[1].snoop(wire)
    assert shus[1].channel(2).mac_digest() == before
    # And shu 2 (not in group 1) discards the message entirely.
    assert shus[2].snoop(wire) is None


def test_tampered_copy_helper():
    message = WireMessage(1, 2, bytes(32), sequence=9)
    twin = message.tampered_copy(pid=3)
    assert twin.pid == 3 and twin.group_id == 1
    assert message.pid == 2  # original untouched
