"""MMO hashing and multiset-hash tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.hashes import (DIGEST_BYTES, MultisetHash, hash_leaf,
                                 hash_node, mmo_hash)
from repro.errors import CryptoError


def test_digest_length():
    assert len(mmo_hash(b"")) == DIGEST_BYTES
    assert len(mmo_hash(b"x" * 1000)) == DIGEST_BYTES


def test_deterministic():
    assert mmo_hash(b"SENSS") == mmo_hash(b"SENSS")


def test_different_messages_differ():
    assert mmo_hash(b"message a") != mmo_hash(b"message b")


def test_length_extension_strengthening():
    """Padding binds the length: m and m||0 hash differently."""
    assert mmo_hash(b"abc") != mmo_hash(b"abc\x00")
    assert mmo_hash(b"") != mmo_hash(b"\x00")


def test_bad_iv_rejected():
    with pytest.raises(CryptoError):
        mmo_hash(b"data", iv=b"short")


def test_hash_leaf_binds_address():
    """The same data at two addresses must hash differently, defeating
    block relocation attacks."""
    data = bytes(64)
    assert hash_leaf(0x1000, data) != hash_leaf(0x2000, data)


def test_hash_node_orders_children():
    children = [mmo_hash(b"a"), mmo_hash(b"b")]
    assert hash_node(children) != hash_node(list(reversed(children)))


def test_hash_node_rejects_empty():
    with pytest.raises(CryptoError):
        hash_node([])


def test_multiset_order_independence():
    """The defining property: insertion order does not matter."""
    forward = MultisetHash()
    backward = MultisetHash()
    items = [(0x100 * i, i, bytes([i] * 16)) for i in range(6)]
    for address, seq, data in items:
        forward.add(address, seq, data)
    for address, seq, data in reversed(items):
        backward.add(address, seq, data)
    assert forward.matches(backward)
    assert forward.count == backward.count == 6


def test_multiset_detects_changed_item():
    clean = MultisetHash()
    dirty = MultisetHash()
    clean.add(0x40, 1, bytes(16))
    dirty.add(0x40, 1, bytes([1]) + bytes(15))
    assert not clean.matches(dirty)


def test_multiset_detects_replay():
    """Same data at an older sequence number != current sequence."""
    clean = MultisetHash()
    replayed = MultisetHash()
    clean.add(0x40, 2, bytes(16))
    replayed.add(0x40, 1, bytes(16))
    assert not clean.matches(replayed)


def test_multiset_empty_matches_empty():
    assert MultisetHash().matches(MultisetHash())


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=1 << 30),
                          st.integers(min_value=0, max_value=1000),
                          st.binary(min_size=8, max_size=8)),
                min_size=0, max_size=8))
def test_property_multiset_permutation_invariant(items):
    import random
    shuffled = list(items)
    random.Random(0).shuffle(shuffled)
    left = MultisetHash()
    right = MultisetHash()
    for address, seq, data in items:
        left.add(address, seq, data)
    for address, seq, data in shuffled:
        right.add(address, seq, data)
    assert left.matches(right)
