"""T-table AES vs the byte-wise reference (DESIGN.md §6c policy).

The production path (``encrypt_block``/``decrypt_block``) folds
SubBytes + ShiftRows + MixColumns into four 32-bit lookup tables per
direction; the byte-wise construction remains the executable
specification (``encrypt_block_reference``/``decrypt_block_reference``).
This suite holds the two implementations equal — on every FIPS-197
appendix vector, on randomized keys of all three sizes, and under the
functional-security bridge at a scale the byte-wise path made
impractically slow.
"""

import random

import pytest

from repro.crypto.aes import AES, _SCHEDULE_CACHE
from repro.crypto import aes as aes_module

# (key, plaintext, ciphertext) from FIPS-197 appendices B and C —
# one vector per key size plus the appendix-B worked example.
FIPS_VECTORS = [
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "3243f6a8885a308d313198a2e0370734",
     "3925841d02dc09fbdc118597196a0b32"),
    ("000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_VECTORS)
def test_table_path_matches_fips_vectors(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() \
        == ciphertext
    assert cipher.decrypt_block(bytes.fromhex(ciphertext)).hex() \
        == plaintext


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_VECTORS)
def test_table_path_matches_reference_on_fips_vectors(key, plaintext,
                                                      ciphertext):
    cipher = AES(bytes.fromhex(key))
    block = bytes.fromhex(plaintext)
    assert cipher.encrypt_block(block) \
        == cipher.encrypt_block_reference(block)
    wire = bytes.fromhex(ciphertext)
    assert cipher.decrypt_block(wire) \
        == cipher.decrypt_block_reference(wire)


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_table_path_matches_reference_randomized(key_len):
    rng = random.Random(0xAE5 + key_len)
    for _ in range(40):
        key = bytes(rng.randrange(256) for _ in range(key_len))
        block = bytes(rng.randrange(256) for _ in range(16))
        cipher = AES(key)
        ciphertext = cipher.encrypt_block(block)
        assert ciphertext == cipher.encrypt_block_reference(block)
        assert cipher.decrypt_block(ciphertext) == block
        assert cipher.decrypt_block_reference(ciphertext) == block


def test_key_schedule_is_cached_and_shared():
    key = bytes(range(16))
    first = AES(key)
    second = AES(key)
    # Same key -> the expanded schedule object is reused, not rebuilt.
    assert first._schedule is second._schedule
    assert key in _SCHEDULE_CACHE


def test_schedule_cache_cap_wipe_is_transparent(monkeypatch):
    monkeypatch.setattr(aes_module, "_SCHEDULE_CACHE_MAX", 4)
    block = b"0123456789abcdef"
    expected = {}
    for k in range(12):  # 3x the cap: forces wipes mid-stream
        key = bytes([k]) + bytes(15)
        expected[key] = AES(key).encrypt_block(block)
    assert len(_SCHEDULE_CACHE) <= 4
    for key, ciphertext in expected.items():
        cipher = AES(key)  # may rebuild the schedule after a wipe
        assert cipher.encrypt_block(block) == ciphertext
        assert cipher.decrypt_block(ciphertext) == block


def test_functional_bridge_at_scale():
    """A bridged SPLASH run at a scale the byte-wise AES made
    impractically slow (~10x the wall time): every protected transfer
    now flows through the T-table path, and the timing layer's books
    must still match the functional SHUs exactly."""
    from repro.config import e6000_config
    from repro.core.functional_bridge import attach_functional_bridge
    from repro.core.senss import build_secure_system
    from repro.workloads.registry import generate

    workload = generate("ocean", 4, scale=0.25, seed=2)
    config = e6000_config(num_processors=4, auth_interval=25)
    system = build_secure_system(config)
    bridge = attach_functional_bridge(system)
    system.run(workload)
    summary = bridge.verify_against_layer(system.bus.security_layer)
    assert summary["protected_transfers"] > 500
    assert summary["auth_rounds"] == \
        summary["protected_transfers"] // 25
