"""Chained CBC-MAC (paper equation (1)) tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.cbcmac import CbcMac, cbc_mac
from repro.crypto.modes import cbc_encrypt
from repro.errors import CryptoError

KEY = bytes(range(16))
IV = bytes([7] * 16)


def test_mac_equals_last_cbc_cipher_block():
    """Equation (1): MAC_n is the last CBC ciphertext block."""
    aes = AES(KEY)
    message = bytes(range(48)) + bytes(16)
    expected = cbc_encrypt(aes, IV, message)[-16:]
    assert cbc_mac(aes, IV, message) == expected


def test_incremental_matches_one_shot():
    aes = AES(KEY)
    mac = CbcMac(aes, IV)
    message = b"0123456789abcdef" * 5
    for offset in range(0, len(message), 16):
        mac.update(message[offset:offset + 16])
    assert mac.digest() == cbc_mac(aes, IV, message)


def test_mac_reflects_entire_history():
    """Chaining: two histories with equal last blocks still differ."""
    aes = AES(KEY)
    mac_a = CbcMac(aes, IV)
    mac_b = CbcMac(aes, IV)
    shared_tail = b"common tail blk!"
    mac_a.update(b"first history a!")
    mac_b.update(b"first history b!")
    mac_a.update(shared_tail)
    mac_b.update(shared_tail)
    assert mac_a.digest() != mac_b.digest()


def test_order_sensitivity():
    """Swapping two absorbed blocks changes the MAC (Type 2 defence)."""
    aes = AES(KEY)
    block_1 = b"block number one"
    block_2 = b"block number two"
    mac_a = CbcMac(aes, IV)
    mac_a.update(block_1)
    mac_a.update(block_2)
    mac_b = CbcMac(aes, IV)
    mac_b.update(block_2)
    mac_b.update(block_1)
    assert mac_a.digest() != mac_b.digest()


def test_different_iv_gives_different_chain():
    """The authentication IV must differ from the encryption IV; with
    a different IV the whole chain differs (section 4.3)."""
    aes = AES(KEY)
    other_iv = bytes([8] * 16)
    message = b"identical block!" * 3
    assert cbc_mac(aes, IV, message) != cbc_mac(aes, other_iv, message)


def test_prefix_bits():
    aes = AES(KEY)
    mac = CbcMac(aes, IV)
    mac.update(bytes(16))
    full = mac.digest(128)
    assert mac.digest(64) == full[:8]
    # Non-byte-aligned prefixes mask the trailing bits.
    prefix_12 = mac.digest(12)
    assert len(prefix_12) == 2
    assert prefix_12[0] == full[0]
    assert prefix_12[1] == full[1] & 0xF0


def test_prefix_bits_range_checked():
    mac = CbcMac(AES(KEY), IV)
    with pytest.raises(CryptoError):
        mac.digest(0)
    with pytest.raises(CryptoError):
        mac.digest(129)


def test_reset_restarts_the_chain():
    aes = AES(KEY)
    mac = CbcMac(aes, IV)
    mac.update(bytes(16))
    first = mac.digest()
    mac.reset()
    assert mac.block_count == 0
    mac.update(bytes(16))
    assert mac.digest() == first


def test_copy_is_independent():
    aes = AES(KEY)
    mac = CbcMac(aes, IV)
    mac.update(bytes(16))
    clone = mac.copy()
    assert clone.digest() == mac.digest()
    mac.update(bytes([1] * 16))
    assert clone.digest() != mac.digest()


def test_update_message_splits_blocks():
    aes = AES(KEY)
    mac_a = CbcMac(aes, IV)
    mac_a.update_message(bytes(32))
    mac_b = CbcMac(aes, IV)
    mac_b.update(bytes(16))
    mac_b.update(bytes(16))
    assert mac_a.digest() == mac_b.digest()
    assert mac_a.block_count == 2


def test_rejects_bad_block():
    mac = CbcMac(AES(KEY), IV)
    with pytest.raises(CryptoError):
        mac.update(b"short")
    with pytest.raises(CryptoError):
        mac.update_message(b"not block aligned")


def test_rejects_bad_iv():
    with pytest.raises(CryptoError):
        CbcMac(AES(KEY), b"tiny")


@settings(max_examples=20, deadline=None)
@given(blocks=st.lists(st.binary(min_size=16, max_size=16), min_size=1,
                       max_size=6))
def test_property_any_block_change_changes_mac(blocks):
    aes = AES(KEY)
    mac_a = CbcMac(aes, IV)
    for block in blocks:
        mac_a.update(block)
    # Flip one bit of one block and recompute.
    tampered = list(blocks)
    tampered[0] = bytes([tampered[0][0] ^ 1]) + tampered[0][1:]
    mac_b = CbcMac(aes, IV)
    for block in tampered:
        mac_b.update(block)
    assert mac_a.digest() != mac_b.digest()
