"""OTP helpers and the crypto engine timing model."""

import pytest

from repro.config import CryptoConfig
from repro.crypto.aes import AES
from repro.crypto.engine import CryptoEngineModel
from repro.crypto.otp import pad_for_address, xor_bytes, xor_into_blocks
from repro.errors import ConfigError, CryptoError


class TestXor:
    def test_self_inverse(self):
        data = b"one-time-pad ok!"
        pad = bytes(range(16))
        assert xor_bytes(xor_bytes(data, pad), pad) == data

    def test_length_mismatch(self):
        with pytest.raises(CryptoError):
            xor_bytes(b"abc", b"ab")

    def test_repeating_pad(self):
        data = bytes(range(32))
        pad = bytes([0xFF] * 16)
        out = xor_into_blocks(data, pad)
        assert out == bytes(b ^ 0xFF for b in data)

    def test_empty_pad_rejected(self):
        with pytest.raises(CryptoError):
            xor_into_blocks(b"data", b"")

    def test_pad_for_address_varies_by_sequence(self):
        aes = AES(bytes(16))
        assert (pad_for_address(aes, 0x1000, 1)
                != pad_for_address(aes, 0x1000, 2))

    def test_pad_for_address_varies_by_address(self):
        aes = AES(bytes(16))
        assert (pad_for_address(aes, 0x1000, 1)
                != pad_for_address(aes, 0x2000, 1))


class TestEngineModel:
    def test_latency(self):
        engine = CryptoEngineModel(latency=80, issue_interval=5)
        assert engine.issue(100) == 180

    def test_pipelining(self):
        """Back-to-back issues are spaced by the issue interval, not
        the latency: N results by start + latency + (N-1)*interval."""
        engine = CryptoEngineModel(latency=80, issue_interval=5)
        ready = [engine.issue(0) for _ in range(4)]
        assert ready == [80, 85, 90, 95]

    def test_idle_gap_resets_issue_pressure(self):
        engine = CryptoEngineModel(latency=80, issue_interval=5)
        engine.issue(0)
        assert engine.issue(1000) == 1080

    def test_aes_from_config_matches_figure5(self):
        """16-byte block at 3.2 GB/s under 1 GHz -> 5-cycle interval;
        a 32-byte bus line streams in one 10-cycle bus cycle."""
        engine = CryptoEngineModel.aes_from_config(CryptoConfig())
        assert engine.latency == 80
        assert engine.issue_interval == 5

    def test_hash_from_config(self):
        engine = CryptoEngineModel.hash_from_config(CryptoConfig())
        assert engine.latency == 160

    def test_validation(self):
        with pytest.raises(ConfigError):
            CryptoEngineModel(latency=0)
        with pytest.raises(ConfigError):
            CryptoEngineModel(latency=10, issue_interval=0)

    def test_reset(self):
        engine = CryptoEngineModel(latency=10, issue_interval=10)
        engine.issue(0)
        engine.reset()
        assert engine.issue(0) == 10
