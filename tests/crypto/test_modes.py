"""CBC / CTR mode tests, including the NIST SP 800-38A CBC vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES
from repro.crypto.modes import (cbc_decrypt, cbc_encrypt, ctr_keystream,
                                ctr_xcrypt)
from repro.errors import CryptoError

# NIST SP 800-38A F.2.1: CBC-AES128 encryption.
NIST_KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
NIST_IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
NIST_PLAIN = bytes.fromhex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710")
NIST_CIPHER = bytes.fromhex(
    "7649abac8119b246cee98e9b12e9197d"
    "5086cb9b507219ee95db113a917678b2"
    "73bed6b8e3c1743b7116e69e22229516"
    "3ff1caa1681fac09120eca307586e1a7")


def test_cbc_nist_vector_encrypt():
    assert cbc_encrypt(AES(NIST_KEY), NIST_IV, NIST_PLAIN) == NIST_CIPHER


def test_cbc_nist_vector_decrypt():
    assert cbc_decrypt(AES(NIST_KEY), NIST_IV, NIST_CIPHER) == NIST_PLAIN


def test_cbc_roundtrip_multiblock():
    aes = AES(bytes(range(16)))
    iv = bytes(16)
    plaintext = bytes(range(64)) + bytes(64)
    assert cbc_decrypt(aes, iv, cbc_encrypt(aes, iv, plaintext)) == plaintext


def test_cbc_chaining_propagates():
    """Flipping one plaintext block changes all later cipher blocks."""
    aes = AES(bytes(range(16)))
    iv = bytes(16)
    original = bytes(64)
    modified = bytes([1]) + bytes(63)
    cipher_a = cbc_encrypt(aes, iv, original)
    cipher_b = cbc_encrypt(aes, iv, modified)
    for block in range(4):
        assert (cipher_a[block * 16:(block + 1) * 16]
                != cipher_b[block * 16:(block + 1) * 16])


def test_cbc_rejects_partial_blocks():
    aes = AES(bytes(16))
    with pytest.raises(CryptoError):
        cbc_encrypt(aes, bytes(16), b"odd length data")
    with pytest.raises(CryptoError):
        cbc_decrypt(aes, bytes(16), b"odd length data")


def test_cbc_rejects_bad_iv():
    aes = AES(bytes(16))
    with pytest.raises(CryptoError):
        cbc_encrypt(aes, b"short iv", bytes(16))


def test_ctr_keystream_is_deterministic_and_extensible():
    aes = AES(bytes(range(16)))
    nonce = bytes(8)
    short = ctr_keystream(aes, nonce, 16)
    long = ctr_keystream(aes, nonce, 48)
    assert long[:16] == short


def test_ctr_xcrypt_is_self_inverse():
    aes = AES(bytes(range(16)))
    nonce = b"\x01" * 8
    data = b"the cache-to-memory traffic can be encrypted as before!"
    assert ctr_xcrypt(aes, nonce, ctr_xcrypt(aes, nonce, data)) == data


def test_ctr_initial_counter_offsets_stream():
    aes = AES(bytes(range(16)))
    nonce = bytes(8)
    assert (ctr_keystream(aes, nonce, 16, initial_counter=1)
            == ctr_keystream(aes, nonce, 32)[16:])


def test_ctr_rejects_bad_nonce():
    with pytest.raises(CryptoError):
        ctr_keystream(AES(bytes(16)), b"bad", 16)


@settings(max_examples=20, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=16, max_size=16),
       blocks=st.integers(min_value=1, max_value=6),
       data=st.data())
def test_property_cbc_roundtrip(key, iv, blocks, data):
    plaintext = data.draw(st.binary(min_size=16 * blocks,
                                    max_size=16 * blocks))
    aes = AES(key)
    assert cbc_decrypt(aes, iv, cbc_encrypt(aes, iv, plaintext)) == plaintext
