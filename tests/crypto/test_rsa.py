"""Textbook RSA (program dispatch key wrapping) tests."""

import random

import pytest

from repro.crypto.rsa import _is_probable_prime, generate_keypair
from repro.errors import CryptoError


@pytest.fixture(scope="module")
def keypair():
    return generate_keypair(bits=256, rng=random.Random(42))


def test_roundtrip_int(keypair):
    message = 0x1234_5678_9ABC
    assert keypair.decrypt_int(keypair.public.encrypt_int(message)) == message


def test_roundtrip_session_key(keypair):
    session_key = bytes(range(16))
    ciphertext = keypair.public.encrypt_bytes(session_key)
    assert keypair.decrypt_bytes(ciphertext, 16) == session_key


def test_ciphertext_hides_message(keypair):
    message = 7
    assert keypair.public.encrypt_int(message) != message


def test_distinct_keypairs(rng=None):
    """Section 4.1: key pairs must be distinct across processors so one
    compromised private key does not cascade."""
    pairs = [generate_keypair(bits=128, rng=random.Random(seed))
             for seed in range(4)]
    moduli = {pair.public.modulus for pair in pairs}
    assert len(moduli) == 4


def test_wrapped_key_only_opens_with_right_private_key():
    pair_a = generate_keypair(bits=256, rng=random.Random(1))
    pair_b = generate_keypair(bits=256, rng=random.Random(2))
    session_key = bytes(range(16))
    wrapped_for_a = pair_a.public.encrypt_bytes(session_key)
    recovered_by_b = pair_b.decrypt_int(
        wrapped_for_a % pair_b.public.modulus)
    assert recovered_by_b != int.from_bytes(session_key, "big")


def test_message_range_enforced(keypair):
    with pytest.raises(CryptoError):
        keypair.public.encrypt_int(keypair.public.modulus)
    with pytest.raises(CryptoError):
        keypair.public.encrypt_int(-1)
    with pytest.raises(CryptoError):
        keypair.decrypt_int(keypair.public.modulus + 5)


def test_minimum_modulus_size():
    with pytest.raises(CryptoError):
        generate_keypair(bits=32)


def test_miller_rabin_known_values():
    rng = random.Random(7)
    for prime in [2, 3, 5, 97, 7919, 104729, (1 << 61) - 1]:
        assert _is_probable_prime(prime, rng)
    for composite in [1, 4, 100, 7917, 561, 41041, (1 << 61) - 3]:
        # 561 and 41041 are Carmichael numbers (fool Fermat, not MR).
        assert not _is_probable_prime(composite, rng)


def test_determinism_with_seeded_rng():
    pair_a = generate_keypair(bits=128, rng=random.Random(99))
    pair_b = generate_keypair(bits=128, rng=random.Random(99))
    assert pair_a.public.modulus == pair_b.public.modulus
