"""AES-GCM tests against the NIST SP 800-38D / GCM-spec vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.gcm import AesGcm, Ghash, _gf_mult
from repro.errors import CryptoError

KEY_96 = bytes.fromhex("feffe9928665731c6d6a8f9467308308")
IV_96 = bytes.fromhex("cafebabefacedbaddecaf888")
PT_60 = bytes.fromhex(
    "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
    "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39")
AAD_20 = bytes.fromhex("feedfacedeadbeeffeedfacedeadbeefabaddad2")


def test_vector_empty():
    """GCM spec test case 1: all-zero key, empty plaintext."""
    ciphertext, tag = AesGcm(bytes(16)).encrypt(bytes(12), b"")
    assert ciphertext == b""
    assert tag.hex() == "58e2fccefa7e3061367f1d57a4e7455a"


def test_vector_single_block():
    """GCM spec test case 2."""
    ciphertext, tag = AesGcm(bytes(16)).encrypt(bytes(12), bytes(16))
    assert ciphertext.hex() == "0388dace60b6a392f328c2b971b2fe78"
    assert tag.hex() == "ab6e47d42cec13bdf53a67b21257bddf"


def test_vector_with_aad():
    """GCM spec test case 4: 60-byte plaintext + 20-byte AAD."""
    ciphertext, tag = AesGcm(KEY_96).encrypt(IV_96, PT_60, AAD_20)
    assert ciphertext.hex() == (
        "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca1"
        "2e21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091")
    assert tag.hex() == "5bc94fbc3221a5db94fae95ae7121a47"


def test_roundtrip_with_verification():
    gcm = AesGcm(KEY_96)
    ciphertext, tag = gcm.encrypt(IV_96, PT_60, AAD_20)
    assert gcm.decrypt(IV_96, ciphertext, tag, AAD_20) == PT_60


def test_tampered_ciphertext_rejected():
    gcm = AesGcm(KEY_96)
    ciphertext, tag = gcm.encrypt(IV_96, PT_60, AAD_20)
    bad = bytes([ciphertext[0] ^ 1]) + ciphertext[1:]
    with pytest.raises(CryptoError):
        gcm.decrypt(IV_96, bad, tag, AAD_20)


def test_tampered_aad_rejected():
    gcm = AesGcm(KEY_96)
    ciphertext, tag = gcm.encrypt(IV_96, PT_60, AAD_20)
    with pytest.raises(CryptoError):
        gcm.decrypt(IV_96, ciphertext, tag, b"different aad")


def test_truncated_tags():
    gcm = AesGcm(KEY_96)
    ciphertext, tag = gcm.encrypt(IV_96, PT_60, AAD_20, tag_bytes=8)
    assert len(tag) == 8
    assert gcm.decrypt(IV_96, ciphertext, tag, AAD_20) == PT_60


def test_iv_and_tag_validation():
    gcm = AesGcm(bytes(16))
    with pytest.raises(CryptoError):
        gcm.encrypt(bytes(8), b"")
    with pytest.raises(CryptoError):
        gcm.encrypt(bytes(12), b"", tag_bytes=3)
    with pytest.raises(CryptoError):
        gcm.decrypt(bytes(8), b"", bytes(16))


class TestGhash:
    def test_gf_mult_identity(self):
        """The GCM field's multiplicative identity is 0x80...0."""
        identity = 1 << 127
        for value in (0x1234 << 100, 0xFFFF, 1):
            assert _gf_mult(value, identity) == value

    def test_gf_mult_commutative(self):
        a, b = 0xDEADBEEF << 64, 0xCAFE << 32
        assert _gf_mult(a, b) == _gf_mult(b, a)

    def test_ghash_zero_subkey_rejected_sizes(self):
        with pytest.raises(CryptoError):
            Ghash(b"short")
        ghash = Ghash(bytes(16))
        with pytest.raises(CryptoError):
            ghash.update(b"short")

    def test_update_padded(self):
        ghash_a = Ghash(bytes([1] * 16))
        ghash_a.update_padded(b"abc")
        ghash_b = Ghash(bytes([1] * 16))
        ghash_b.update(b"abc".ljust(16, b"\x00"))
        assert ghash_a.digest() == ghash_b.digest()


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=12, max_size=12),
       plaintext=st.binary(min_size=0, max_size=64),
       aad=st.binary(min_size=0, max_size=32))
def test_property_roundtrip(key, iv, plaintext, aad):
    gcm = AesGcm(key)
    ciphertext, tag = gcm.encrypt(iv, plaintext, aad)
    assert gcm.decrypt(iv, ciphertext, tag, aad) == plaintext


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       iv=st.binary(min_size=12, max_size=12),
       plaintext=st.binary(min_size=1, max_size=48))
def test_property_gf_distributes_over_xor(key, iv, plaintext):
    """GHASH linearity check: H*(a xor b) == H*a xor H*b."""
    from repro.crypto.gcm import _block_to_int
    subkey = _block_to_int(AesGcm(key)._subkey)
    a = _block_to_int(iv.ljust(16, b"\x01"))
    b = _block_to_int(plaintext[:16].ljust(16, b"\x02"))
    assert _gf_mult(a ^ b, subkey) == (_gf_mult(a, subkey)
                                       ^ _gf_mult(b, subkey))
