"""SHA-256 / HMAC-SHA256 tests against FIPS 180-4 / RFC 4231 vectors."""

import hashlib
import hmac as stdlib_hmac

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.sha256 import hmac_sha256, sha256


def test_empty_message():
    assert sha256(b"").hex() == (
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855")


def test_abc():
    """FIPS 180-4 example 1."""
    assert sha256(b"abc").hex() == (
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad")


def test_two_block_message():
    """FIPS 180-4 example 2 (56 bytes -> two blocks after padding)."""
    message = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
    assert sha256(message).hex() == (
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1")


def test_million_a():
    """FIPS 180-4 example 3."""
    assert sha256(b"a" * 1_000_000).hex() == (
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0")


def test_boundary_lengths_match_hashlib():
    for length in (0, 1, 55, 56, 57, 63, 64, 65, 119, 120, 128):
        message = bytes(range(256))[:length] * 1
        assert sha256(message) == hashlib.sha256(message).digest()


def test_hmac_rfc4231_case_1():
    key = b"\x0b" * 20
    assert hmac_sha256(key, b"Hi There").hex() == (
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7")


def test_hmac_rfc4231_case_2():
    assert hmac_sha256(b"Jefe",
                       b"what do ya want for nothing?").hex() == (
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843")


def test_hmac_long_key_is_hashed_first():
    key = b"k" * 131
    message = b"Test Using Larger Than Block-Size Key"
    expected = stdlib_hmac.new(key, message, hashlib.sha256).digest()
    assert hmac_sha256(key, message) == expected


@settings(max_examples=40, deadline=None)
@given(st.binary(min_size=0, max_size=300))
def test_property_matches_hashlib(message):
    assert sha256(message) == hashlib.sha256(message).digest()


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=1, max_size=80),
       st.binary(min_size=0, max_size=120))
def test_property_hmac_matches_stdlib(key, message):
    expected = stdlib_hmac.new(key, message, hashlib.sha256).digest()
    assert hmac_sha256(key, message) == expected
