"""AES block cipher tests: FIPS-197 vectors, structure, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AES, inv_sbox_value, sbox_value
from repro.errors import CryptoError

# (key, plaintext, ciphertext) from FIPS-197 appendices B and C.
FIPS_VECTORS = [
    ("2b7e151628aed2a6abf7158809cf4f3c",
     "3243f6a8885a308d313198a2e0370734",
     "3925841d02dc09fbdc118597196a0b32"),
    ("000102030405060708090a0b0c0d0e0f",
     "00112233445566778899aabbccddeeff",
     "69c4e0d86a7b0430d8cdb78070b4c55a"),
    ("000102030405060708090a0b0c0d0e0f1011121314151617",
     "00112233445566778899aabbccddeeff",
     "dda97ca4864cdfe06eaf70a0ec0d7191"),
    ("000102030405060708090a0b0c0d0e0f"
     "101112131415161718191a1b1c1d1e1f",
     "00112233445566778899aabbccddeeff",
     "8ea2b7ca516745bfeafc49904b496089"),
]


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_VECTORS)
def test_fips_encrypt_vectors(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.encrypt_block(bytes.fromhex(plaintext)).hex() == ciphertext


@pytest.mark.parametrize("key,plaintext,ciphertext", FIPS_VECTORS)
def test_fips_decrypt_vectors(key, plaintext, ciphertext):
    cipher = AES(bytes.fromhex(key))
    assert cipher.decrypt_block(bytes.fromhex(ciphertext)).hex() == plaintext


def test_sbox_known_entries():
    # Spot values straight from the FIPS-197 S-box table.
    assert sbox_value(0x00) == 0x63
    assert sbox_value(0x01) == 0x7C
    assert sbox_value(0x53) == 0xED
    assert sbox_value(0xFF) == 0x16


def test_sbox_is_a_permutation():
    values = {sbox_value(i) for i in range(256)}
    assert len(values) == 256


def test_inv_sbox_inverts_sbox():
    for value in range(256):
        assert inv_sbox_value(sbox_value(value)) == value


def test_sbox_has_no_fixed_points():
    # AES's S-box famously has no fixed points (and no opposite ones).
    for value in range(256):
        assert sbox_value(value) != value
        assert sbox_value(value) != value ^ 0xFF


@pytest.mark.parametrize("key_len", [16, 24, 32])
def test_roundtrip_all_key_sizes(key_len):
    cipher = AES(bytes(range(key_len)))
    block = b"SENSS HPCA 2005!"
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


def test_rejects_bad_key_length():
    with pytest.raises(CryptoError):
        AES(b"short")


def test_rejects_bad_block_length():
    cipher = AES(bytes(16))
    with pytest.raises(CryptoError):
        cipher.encrypt_block(b"not a block")
    with pytest.raises(CryptoError):
        cipher.decrypt_block(b"tiny")


def test_different_keys_give_different_ciphertexts():
    block = bytes(16)
    outputs = {AES(bytes([k]) + bytes(15)).encrypt_block(block)
               for k in range(8)}
    assert len(outputs) == 8


def test_encryption_is_deterministic():
    cipher = AES(bytes(range(16)))
    block = b"deterministic!!!"
    assert cipher.encrypt_block(block) == cipher.encrypt_block(block)


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
def test_property_roundtrip(key, block):
    cipher = AES(key)
    assert cipher.decrypt_block(cipher.encrypt_block(block)) == block


@settings(max_examples=25, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       block=st.binary(min_size=16, max_size=16))
def test_property_ciphertext_differs_from_plaintext(key, block):
    # A 128-bit permutation mapping a block to itself for a random
    # (key, block) has probability 2^-128; treat it as impossible.
    assert AES(key).encrypt_block(block) != block


@settings(max_examples=15, deadline=None)
@given(key=st.binary(min_size=16, max_size=16),
       a=st.binary(min_size=16, max_size=16),
       b=st.binary(min_size=16, max_size=16))
def test_property_injective(key, a, b):
    cipher = AES(key)
    if a != b:
        assert cipher.encrypt_block(a) != cipher.encrypt_block(b)
