"""MSI protocol variant tests."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mesi import MesiState
from repro.coherence.msi import MsiProtocol, make_protocol
from repro.coherence.protocol import MesiProtocol
from repro.config import CacheConfig, e6000_config
from repro.smp.system import SmpSystem
from repro.smp.trace import MemoryAccess, Workload

LINE = 0x4000


def make_system(protocol_class):
    l1 = CacheConfig(2 * 1024, 2, 32, 2)
    l2 = CacheConfig(8 * 1024, 4, 64, 10)
    hierarchies = [CacheHierarchy(cpu, l1, l2) for cpu in range(2)]
    return hierarchies, protocol_class(hierarchies)


def test_sole_reader_fills_shared_not_exclusive():
    hierarchies, protocol = make_system(MsiProtocol)
    outcome = protocol.bus_read(0, LINE)
    assert outcome.fill_state is MesiState.SHARED


def test_write_paths_unchanged():
    hierarchies, protocol = make_system(MsiProtocol)
    outcome = protocol.bus_read_exclusive(0, LINE)
    assert outcome.fill_state is MesiState.MODIFIED


def test_factory():
    from repro.coherence.moesi import MoesiProtocol
    hierarchies, _ = make_system(MsiProtocol)
    assert isinstance(make_protocol("MESI", hierarchies), MesiProtocol)
    assert isinstance(make_protocol("MSI", hierarchies), MsiProtocol)
    assert isinstance(make_protocol("MOESI", hierarchies),
                      MoesiProtocol)
    with pytest.raises(ValueError):
        make_protocol("DRAGON", hierarchies)


def test_msi_pays_upgrades_mesi_avoids():
    """Read-then-write of a private line: MESI upgrades silently
    (E->M), MSI issues a bus upgrade."""
    trace = Workload("read-modify", [[
        MemoryAccess(False, LINE, 0),
        MemoryAccess(True, LINE, 500),
    ]])
    mesi = SmpSystem(e6000_config(num_processors=1,
                                  senss_enabled=False))
    msi = SmpSystem(e6000_config(num_processors=1, senss_enabled=False)
                    .with_protocol("MSI"))
    mesi_result = mesi.run(trace)
    msi_result = msi.run(Workload("read-modify", [[
        MemoryAccess(False, LINE, 0),
        MemoryAccess(True, LINE, 500),
    ]]))
    assert mesi_result.stat("bus.tx.BusUpgr") == 0
    assert msi_result.stat("bus.tx.BusUpgr") == 1
    assert msi_result.cycles > mesi_result.cycles


def test_config_selects_protocol():
    from repro.coherence.msi import MsiProtocol as Msi
    system = SmpSystem(e6000_config().with_protocol("MSI"))
    assert isinstance(system.protocol, Msi)
