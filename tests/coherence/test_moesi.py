"""MOESI protocol tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mesi import MesiState
from repro.coherence.moesi import MoesiProtocol
from repro.config import CacheConfig, e6000_config
from repro.errors import CoherenceError
from repro.smp.system import SmpSystem
from repro.smp.trace import MemoryAccess, Workload

LINE = 0x4000


def make_system(num_cpus=4):
    l1 = CacheConfig(2 * 1024, 2, 32, 2)
    l2 = CacheConfig(8 * 1024, 4, 64, 10)
    hierarchies = [CacheHierarchy(cpu, l1, l2) for cpu in range(num_cpus)]
    return hierarchies, MoesiProtocol(hierarchies)


def test_dirty_supplier_becomes_owner():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.MODIFIED)
    outcome = protocol.bus_read(1, LINE)
    assert outcome.supplier_cpu == 0
    assert not outcome.had_modified_copy  # memory NOT updated
    assert hierarchies[0].state_of(LINE) is MesiState.OWNED
    hierarchies[1].fill(LINE, outcome.fill_state)
    protocol.check_invariants(LINE)


def test_owner_keeps_supplying_further_readers():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.MODIFIED)
    for reader in (1, 2, 3):
        outcome = protocol.bus_read(reader, LINE)
        assert outcome.supplier_cpu == 0
        hierarchies[reader].fill(LINE, outcome.fill_state)
    assert hierarchies[0].state_of(LINE) is MesiState.OWNED
    protocol.check_invariants(LINE)


def test_owned_eviction_is_a_writeback():
    assert MesiState.OWNED.is_dirty
    assert not MesiState.OWNED.can_write


def test_owner_must_broadcast_before_writing():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.MODIFIED)
    protocol.bus_read(1, LINE)
    hierarchies[1].fill(LINE, MesiState.SHARED)
    # The owner writes again: needs an upgrade (O -> M), invalidating
    # the sharer.
    result = hierarchies[0].access(True, LINE)
    assert result.kind.value == "l2_hit_needs_upgrade"
    outcome = protocol.bus_upgrade(0, LINE)
    assert outcome.invalidated_cpus == [1]
    hierarchies[0].upgrade(LINE)
    assert hierarchies[0].state_of(LINE) is MesiState.MODIFIED
    protocol.check_invariants(LINE)


def test_write_miss_steals_from_owner():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.MODIFIED)
    protocol.bus_read(1, LINE)
    hierarchies[1].fill(LINE, MesiState.SHARED)
    outcome = protocol.bus_read_exclusive(2, LINE)
    assert outcome.supplier_cpu == 0  # the owner, not the sharer
    assert outcome.had_modified_copy
    assert sorted(outcome.invalidated_cpus) == [0, 1]


def test_invariant_rejects_two_owners():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.OWNED)
    hierarchies[1].fill(LINE, MesiState.OWNED)
    with pytest.raises(CoherenceError):
        protocol.check_invariants(LINE)


def test_moesi_avoids_memory_update_on_dirty_sharing():
    """System-level: read-sharing a dirty line produces NO
    dirty-intervention memory update under MOESI (ownership is
    retained), but the O eviction later writes back."""
    trace = [
        [MemoryAccess(True, LINE, 0)],
        [MemoryAccess(False, LINE, 2000)],
    ]
    mesi = SmpSystem(e6000_config(num_processors=2,
                                  senss_enabled=False))
    mesi_result = mesi.run(Workload("share", [list(t) for t in trace]))
    moesi = SmpSystem(e6000_config(num_processors=2,
                                   senss_enabled=False)
                      .with_protocol("MOESI"))
    moesi_result = moesi.run(Workload("share",
                                      [list(t) for t in trace]))
    assert mesi_result.stat("coherence.dirty_interventions") == 1
    assert moesi_result.stat("coherence.dirty_interventions") == 0
    assert moesi.hierarchies[0].state_of(LINE) is MesiState.OWNED
    # Both served the read cache-to-cache.
    assert moesi_result.cache_to_cache_transfers == 1


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.booleans(),
                          st.integers(min_value=0, max_value=2)),
                min_size=1, max_size=40))
def test_property_moesi_invariants_under_random_traffic(operations):
    hierarchies, protocol = make_system()
    lines = [0x1000, 0x2000, 0x3000]
    for cpu, is_write, line_index in operations:
        line = lines[line_index]
        state = hierarchies[cpu].state_of(line)
        if is_write:
            if state in MoesiProtocol.UPGRADABLE_STATES:
                protocol.bus_upgrade(cpu, line)
                hierarchies[cpu].upgrade(line)
            elif not state.can_write:
                outcome = protocol.bus_read_exclusive(cpu, line)
                hierarchies[cpu].fill(line, outcome.fill_state)
            else:
                hierarchies[cpu].access(True, line)
        else:
            if not state.is_valid:
                outcome = protocol.bus_read(cpu, line)
                hierarchies[cpu].fill(line, outcome.fill_state)
        for check_line in lines:
            protocol.check_invariants(check_line)
