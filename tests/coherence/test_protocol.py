"""MESI snooping protocol tests, including the SWMR property check."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mesi import MesiState
from repro.coherence.protocol import MesiProtocol
from repro.config import CacheConfig
from repro.errors import CoherenceError

LINE = 0x4000


def make_system(num_cpus=4):
    l1 = CacheConfig(size_bytes=2 * 1024, associativity=2, line_bytes=32,
                     hit_latency=2)
    l2 = CacheConfig(size_bytes=8 * 1024, associativity=4, line_bytes=64,
                     hit_latency=10)
    hierarchies = [CacheHierarchy(cpu, l1, l2) for cpu in range(num_cpus)]
    return hierarchies, MesiProtocol(hierarchies)


def test_cold_read_fills_exclusive():
    hierarchies, protocol = make_system()
    outcome = protocol.bus_read(0, LINE)
    assert outcome.supplier_cpu is None  # memory supplies
    assert outcome.fill_state is MesiState.EXCLUSIVE


def test_second_reader_gets_shared_from_cache():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, protocol.bus_read(0, LINE).fill_state)
    outcome = protocol.bus_read(1, LINE)
    assert outcome.supplier_cpu == 0  # Illinois: cache supplies
    assert outcome.fill_state is MesiState.SHARED
    assert hierarchies[0].state_of(LINE) is MesiState.SHARED


def test_read_from_modified_owner_flushes():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.MODIFIED)
    outcome = protocol.bus_read(1, LINE)
    assert outcome.supplier_cpu == 0
    assert outcome.had_modified_copy
    assert hierarchies[0].state_of(LINE) is MesiState.SHARED


def test_write_miss_invalidates_all_sharers():
    hierarchies, protocol = make_system()
    for cpu in (0, 1, 2):
        hierarchies[cpu].fill(LINE, MesiState.SHARED)
    outcome = protocol.bus_read_exclusive(3, LINE)
    assert sorted(outcome.invalidated_cpus) == [0, 1, 2]
    assert outcome.fill_state is MesiState.MODIFIED
    for cpu in (0, 1, 2):
        assert hierarchies[cpu].state_of(LINE) is MesiState.INVALID


def test_write_miss_steals_modified_copy():
    hierarchies, protocol = make_system()
    hierarchies[2].fill(LINE, MesiState.MODIFIED)
    outcome = protocol.bus_read_exclusive(0, LINE)
    assert outcome.supplier_cpu == 2
    assert outcome.had_modified_copy
    assert hierarchies[2].state_of(LINE) is MesiState.INVALID


def test_upgrade_invalidates_other_sharers():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.SHARED)
    hierarchies[1].fill(LINE, MesiState.SHARED)
    outcome = protocol.bus_upgrade(0, LINE)
    assert outcome.invalidated_cpus == [1]
    hierarchies[0].upgrade(LINE)
    protocol.check_invariants(LINE)
    assert hierarchies[0].state_of(LINE) is MesiState.MODIFIED


def test_upgrade_requires_shared_state():
    hierarchies, protocol = make_system()
    with pytest.raises(CoherenceError):
        protocol.bus_upgrade(0, LINE)  # not even resident


def test_invariant_checker_catches_violations():
    hierarchies, protocol = make_system()
    hierarchies[0].fill(LINE, MesiState.MODIFIED)
    hierarchies[1].fill(LINE, MesiState.SHARED)  # illegal by hand
    with pytest.raises(CoherenceError):
        protocol.check_invariants(LINE)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                          st.booleans(),
                          st.integers(min_value=0, max_value=3)),
                min_size=1, max_size=40))
def test_property_swmr_holds_under_random_traffic(operations):
    """Single-Writer-Multiple-Reader invariant under arbitrary
    interleavings of reads and writes from 4 CPUs over 4 lines."""
    hierarchies, protocol = make_system()
    lines = [0x1000, 0x2000, 0x3000, 0x4000]
    for cpu, is_write, line_index in operations:
        line = lines[line_index]
        state = hierarchies[cpu].state_of(line)
        if is_write:
            if state is MesiState.SHARED:
                protocol.bus_upgrade(cpu, line)
                hierarchies[cpu].upgrade(line)
            elif not state.can_write:
                outcome = protocol.bus_read_exclusive(cpu, line)
                hierarchies[cpu].fill(line, outcome.fill_state)
            else:
                hierarchies[cpu].access(True, line)
        else:
            if not state.is_valid:
                outcome = protocol.bus_read(cpu, line)
                hierarchies[cpu].fill(line, outcome.fill_state)
        for check_line in lines:
            protocol.check_invariants(check_line)
