"""Shared bus tests: arbitration, occupancy, latency, stats."""

import pytest

from repro.bus.bus import SharedBus
from repro.bus.transaction import BusTransaction, TransactionType
from repro.config import BusConfig
from repro.errors import BusError


@pytest.fixture
def bus():
    return SharedBus(BusConfig())


def make_tx(tx_type=TransactionType.BUS_READ, supplied_by_cache=False,
            address=0x1000, pid=0):
    return BusTransaction(tx_type, address, pid,
                          supplied_by_cache=supplied_by_cache)


def test_uncontended_memory_latency(bus):
    tx = bus.issue(make_tx(), request_cycle=100, data_bytes=64)
    assert tx.grant_cycle == 100
    assert tx.complete_cycle == 100 + 180  # Figure 5 cache-to-memory


def test_uncontended_cache_to_cache_latency(bus):
    tx = bus.issue(make_tx(supplied_by_cache=True), 100, data_bytes=64)
    assert tx.complete_cycle == 100 + 120  # Figure 5 cache-to-cache


def test_address_only_latency(bus):
    tx = bus.issue(make_tx(TransactionType.BUS_UPGRADE), 0, data_bytes=0)
    assert tx.complete_cycle == 2 * bus.config.cycle_cpu_cycles


def test_occupancy_serializes(bus):
    """A 64B line = 1 address + 2 data bus cycles = 30 CPU cycles."""
    first = bus.issue(make_tx(), 0, data_bytes=64)
    second = bus.issue(make_tx(address=0x2000), 0, data_bytes=64)
    assert first.grant_cycle == 0
    assert second.grant_cycle == 30
    assert bus.free_at == 60


def test_occupancy_scales_with_data(bus):
    assert bus.occupancy_cycles(TransactionType.BUS_READ, 32) == 20
    assert bus.occupancy_cycles(TransactionType.BUS_READ, 64) == 30
    assert bus.occupancy_cycles(TransactionType.BUS_UPGRADE, 0) == 10


def test_sequence_numbers_are_global(bus):
    first = bus.issue(make_tx(), 0, 64)
    second = bus.issue(make_tx(), 0, 64)
    assert (first.sequence, second.sequence) == (0, 1)


def test_traffic_accounting(bus):
    bus.issue(make_tx(supplied_by_cache=True), 0, 64)
    bus.issue(make_tx(), 0, 64)
    bus.issue(make_tx(TransactionType.BUS_UPGRADE), 0, 0)
    assert bus.total_transactions == 3
    assert bus.cache_to_cache_transfers == 1
    assert bus.stats.get("bus.with_memory") == 1
    assert bus.stats.get("bus.tx.BusUpgr") == 1


def test_observer_sees_every_grant(bus):
    seen = []
    bus.add_observer(seen.append)
    bus.issue(make_tx(), 0, 64)
    bus.issue(make_tx(TransactionType.WRITEBACK), 0, 64)
    assert [tx.type for tx in seen] == [TransactionType.BUS_READ,
                                        TransactionType.WRITEBACK]


def test_rejects_negative_request_cycle(bus):
    with pytest.raises(BusError):
        bus.issue(make_tx(), -1, 64)


def test_idle_bus_grants_immediately(bus):
    bus.issue(make_tx(), 0, 64)
    late = bus.issue(make_tx(), 1000, 64)
    assert late.grant_cycle == 1000


def test_security_layer_hooks_called(bus):
    calls = []

    class Probe:
        def before_transfer(self, tx, grant):
            calls.append(("before", grant))
            return 7

        def after_transfer(self, tx):
            calls.append(("after", tx.sequence))

    bus.security_layer = Probe()
    tx = bus.issue(make_tx(supplied_by_cache=True), 50, 64)
    assert tx.complete_cycle == 50 + 120 + 7
    assert calls == [("before", 50), ("after", 0)]


def test_reset(bus):
    bus.issue(make_tx(), 0, 64)
    bus.reset()
    assert bus.free_at == 0
    tx = bus.issue(make_tx(), 0, 64)
    assert tx.sequence == 0
