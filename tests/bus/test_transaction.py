"""Bus transaction vocabulary tests."""

from repro.bus.transaction import BusTransaction, TransactionType


def test_data_carrying_types():
    assert TransactionType.BUS_READ.carries_data
    assert TransactionType.BUS_READ_EXCLUSIVE.carries_data
    assert TransactionType.WRITEBACK.carries_data
    assert TransactionType.AUTH_MAC.carries_data
    assert not TransactionType.BUS_UPGRADE.carries_data
    assert not TransactionType.PAD_INVALIDATE.carries_data


def test_senss_command_encodings():
    """Section 7.1's three extra command encodings."""
    assert TransactionType.AUTH_MAC.command_encoding == "00"
    assert TransactionType.PAD_INVALIDATE.command_encoding == "01"
    assert TransactionType.PAD_REQUEST.command_encoding == "10"
    assert TransactionType.BUS_READ.command_encoding is None


def test_cache_to_cache_classification():
    c2c = BusTransaction(TransactionType.BUS_READ, 0x40, 1,
                         supplied_by_cache=True)
    memory = BusTransaction(TransactionType.BUS_READ, 0x40, 1,
                            supplied_by_cache=False)
    upgrade = BusTransaction(TransactionType.BUS_UPGRADE, 0x40, 1,
                             supplied_by_cache=True)
    assert c2c.is_cache_to_cache
    assert not memory.is_cache_to_cache
    assert not upgrade.is_cache_to_cache  # no data block moves
