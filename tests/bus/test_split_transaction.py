"""Split-transaction bus mode tests."""

from dataclasses import replace


from repro.bus.bus import SharedBus
from repro.bus.transaction import BusTransaction, TransactionType
from repro.config import BusConfig


def make_bus(split=True):
    return SharedBus(replace(BusConfig(), split_transaction=split))


def tx(address=0x1000, kind=TransactionType.BUS_READ, cache=False):
    return BusTransaction(kind, address, 0, supplied_by_cache=cache)


def test_address_bus_frees_after_one_cycle():
    bus = make_bus()
    bus.issue(tx(), 0, data_bytes=64)
    # Atomic bus would hold 30 cycles; split holds only the address
    # cycle, so the next request is granted at 10.
    second = bus.issue(tx(0x2000), 0, data_bytes=64)
    assert second.grant_cycle == 10


def test_data_bus_still_serializes_data_phases():
    bus = make_bus()
    first = bus.issue(tx(), 0, data_bytes=64)
    second = bus.issue(tx(0x2000), 0, data_bytes=64)
    # First data phase occupies [0, 20); second starts at 20, adding
    # 10 cycles of queueing on top of its cycle-10 grant.
    assert first.complete_cycle == 180
    assert second.complete_cycle == 10 + 180 + 10


def test_address_only_transactions_skip_the_data_bus():
    bus = make_bus()
    bus.issue(tx(), 0, data_bytes=64)
    upgrade = bus.issue(tx(0x3000, TransactionType.BUS_UPGRADE), 0,
                        data_bytes=0)
    assert upgrade.grant_cycle == 10
    assert upgrade.complete_cycle == 10 + 20


def test_split_beats_atomic_under_contention():
    """Back-to-back data transactions complete earlier on the split
    bus (the address bus stops being the bottleneck)."""
    atomic = make_bus(split=False)
    split = make_bus(split=True)
    atomic_finish = [atomic.issue(tx(i * 64), 0, 64).complete_cycle
                     for i in range(6)]
    split_finish = [split.issue(tx(i * 64), 0, 64).complete_cycle
                    for i in range(6)]
    assert split_finish[-1] < atomic_finish[-1]
    assert split_finish[0] == atomic_finish[0]  # uncontended equal


def test_reset_clears_both_buses():
    bus = make_bus()
    bus.issue(tx(), 0, 64)
    bus.reset()
    again = bus.issue(tx(), 0, 64)
    assert again.grant_cycle == 0
    assert again.complete_cycle == 180
