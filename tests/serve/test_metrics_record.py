"""The live metrics plane and record-job plumbing of the scheduler.

Same injection strategy as test_scheduler.py: a thread-pool executor
plus synchronous runners make queue state and counters deterministic.
The record runner is injected too, writing real recording-shaped
files named by point_key — exactly the contract
``repro.sim.sweep._recorded_runner`` fulfils in production.
"""

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.config import e6000_config
from repro.errors import ServeError
from repro.obs import validate_chrome_trace
from repro.serve.jobs import JobSpec
from repro.serve.scheduler import Scheduler
from repro.sim.sweep import ResultCache, SweepPoint, point_key
from repro.smp.metrics import SimulationResult


def _result(point):
    return SimulationResult(
        workload=point.workload, num_cpus=2,
        cycles=100_000 + point.seed,
        per_cpu_cycles=[100_000 + point.seed, 99_000],
        stats={"bus.transactions": 10 + point.seed})


def plain_runner(point):
    return _result(point), 0.001


class RecordingRunner:
    """Stands in for ``_recorded_runner``: same result contract plus
    a recording artifact named by point_key."""

    def __init__(self, record_dir):
        self.record_dir = Path(record_dir)

    def __call__(self, point):
        self.record_dir.mkdir(parents=True, exist_ok=True)
        path = self.record_dir / f"{point_key(point)}.rec.json"
        path.write_text(json.dumps({"kind": "repro-recording",
                                    "seed": point.seed}))
        return _result(point), 0.001


def spec(tenant, seeds, weight=1, record=False):
    config = e6000_config(num_processors=2)
    return JobSpec(tenant=tenant, weight=weight,
                   points=tuple(SweepPoint("fft", config, scale=0.05,
                                           seed=seed)
                                for seed in seeds),
                   record=record)


async def wait_until(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, \
            "condition never became true"
        await asyncio.sleep(0.005)


def make_scheduler(tmp_path=None, cache=None, **kwargs):
    pool = ThreadPoolExecutor(max_workers=2)
    record_kwargs = {}
    if tmp_path is not None:
        record_dir = tmp_path / "recs"
        record_kwargs = {
            "record_dir": record_dir,
            "record_runner": RecordingRunner(record_dir)}
    scheduler = Scheduler(cache=cache, max_workers=2, executor=pool,
                          runner=plain_runner, **record_kwargs,
                          **kwargs)
    return scheduler, pool


class TestMetrics:
    def test_shape_and_counts(self):
        async def scenario():
            scheduler, pool = make_scheduler()
            try:
                job = scheduler.submit(spec("alice", [0, 1]))
                await wait_until(lambda: job.terminal)
                metrics = scheduler.metrics()
                assert metrics["schema_version"] == 3
                assert metrics["queue"]["depth"] == 0
                assert metrics["workers"]["max"] == 2
                assert metrics["cache"] == {
                    "enabled": False, "hits": 0, "executed": 2,
                    "hit_rate": 0.0}
                assert metrics["recordings"] == {
                    "enabled": False, "written": 0}
                alice = metrics["tenants"]["alice"]
                assert alice["completed"] == 2
                assert alice["failed"] == 0
                assert alice["throughput_per_s"] > 0
                assert metrics["counters"][
                    "serve.points_executed"] == 2
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_cache_hit_rate(self, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            scheduler, pool = make_scheduler(cache=cache)
            try:
                first = scheduler.submit(spec("t", [0]))
                await wait_until(lambda: first.terminal)
                second = scheduler.submit(spec("t", [0]))
                await wait_until(lambda: second.terminal)
                cache_metrics = scheduler.metrics()["cache"]
                assert cache_metrics["hits"] == 1
                assert cache_metrics["executed"] == 1
                assert cache_metrics["hit_rate"] == 0.5
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_counters_event_precedes_job_done(self):
        async def scenario():
            scheduler, pool = make_scheduler()
            try:
                job = scheduler.submit(spec("alice", [0]))
                await wait_until(lambda: job.terminal)
                names = [event["name"] for event in job.events]
                assert names[-1] == "job_done"
                assert names[-2] == "serve.counters"
                counter = job.events[-2]
                assert counter["ph"] == "C"
                assert counter["args"]["executed"] == 1
                validate_chrome_trace({
                    "traceEvents": job.events,
                    "otherData": {"schema_version": 1}})
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestRecordJobs:
    def test_record_job_writes_artifacts(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            try:
                job = scheduler.submit(
                    spec("alice", [0, 1], record=True))
                await wait_until(lambda: job.terminal)
                assert job.state == "done"
                for index in (0, 1):
                    path = scheduler.recording_path(job.id, index)
                    assert json.loads(path.read_text())["kind"] == \
                        "repro-recording"
                metrics = scheduler.metrics()
                assert metrics["recordings"] == {
                    "enabled": True, "written": 2}
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_record_without_record_dir_rejected(self):
        async def scenario():
            scheduler, pool = make_scheduler()
            try:
                with pytest.raises(ServeError, match="record"):
                    scheduler.submit(spec("alice", [0], record=True))
                assert scheduler.counters["serve.jobs_rejected"] == 1
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_plain_job_has_no_recordings(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            try:
                job = scheduler.submit(spec("alice", [0]))
                await wait_until(lambda: job.terminal)
                with pytest.raises(ServeError,
                                   match="did not request"):
                    scheduler.recording_path(job.id, 0)
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_recording_index_out_of_range(self, tmp_path):
        async def scenario():
            scheduler, pool = make_scheduler(tmp_path)
            try:
                job = scheduler.submit(spec("alice", [0], record=True))
                await wait_until(lambda: job.terminal)
                with pytest.raises(ServeError, match="no point"):
                    scheduler.recording_path(job.id, 5)
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_cached_point_reexecutes_until_recording_exists(
            self, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            scheduler, pool = make_scheduler(tmp_path, cache=cache)
            try:
                # A plain job warms the result cache but leaves no
                # recording...
                plain = scheduler.submit(spec("t", [0]))
                await wait_until(lambda: plain.terminal)
                # ...so a record job must execute (not cache-hit).
                recorded = scheduler.submit(spec("t", [0],
                                            record=True))
                await wait_until(lambda: recorded.terminal)
                assert scheduler.counters[
                    "serve.recordings_written"] == 1
                # A second record job now reuses both artifacts.
                again = scheduler.submit(spec("t", [0], record=True))
                await wait_until(lambda: again.terminal)
                assert scheduler.counters[
                    "serve.points_cache_hits"] == 1
                assert scheduler.counters[
                    "serve.recordings_written"] == 1
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())
