"""The job journal: WAL append, replay, torn tails, rotation.

Pure file-level tests — no scheduler, no event loop. The scheduler's
use of the journal (resume semantics, drain-under-fire) is covered in
test_resilience.py.
"""

import json

from repro.serve.journal import (JOURNAL_NAME, JobJournal,
                                 JournaledJob)


def payload(seeds=(0, 1)):
    return {"tenant": "t", "weight": 1,
            "points": [{"workload": "fft", "scale": 0.05,
                        "seed": seed, "config": {}}
                       for seed in seeds]}


class TestAppendReplay:
    def test_replay_reconstructs_incomplete_job(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.point_started("job-000001", 0, "k0", attempt=1)
        journal.point_done("job-000001", 0, source="executed")
        journal.close()

        entries = JobJournal.replay(tmp_path)
        assert len(entries) == 1
        entry = entries[0]
        assert isinstance(entry, JournaledJob)
        assert entry.job_id == "job-000001"
        assert entry.payload == payload()
        assert entry.incomplete
        assert entry.done == {0}
        assert entry.inflight == set()

    def test_terminal_job_not_incomplete(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.point_done("job-000001", 0, source="executed")
        journal.point_done("job-000001", 1, source="cache")
        journal.job_done("job-000001", "done")
        journal.close()

        entries = JobJournal.replay(tmp_path)
        assert entries[0].state == "done"
        assert not entries[0].incomplete

    def test_cancelled_job_not_resumed(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.job_cancelled("job-000001")
        journal.close()
        entries = JobJournal.replay(tmp_path)
        assert entries[0].state == "cancelled"
        assert not entries[0].incomplete

    def test_inflight_is_started_minus_settled(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload((0, 1, 2)))
        journal.point_started("job-000001", 0, "k0", attempt=1)
        journal.point_started("job-000001", 1, "k1", attempt=1)
        journal.point_started("job-000001", 2, "k2", attempt=1)
        journal.point_done("job-000001", 0, source="executed")
        journal.point_failed("job-000001", 1, "boom",
                             quarantined=False)
        journal.close()
        entry = JobJournal.replay(tmp_path)[0]
        assert entry.inflight == {2}
        assert entry.failed == {1}

    def test_replay_preserves_submission_order(self, tmp_path):
        journal = JobJournal(tmp_path)
        for serial in (1, 2, 3):
            journal.job_submitted(f"job-{serial:06d}", payload())
        journal.close()
        ids = [entry.job_id
               for entry in JobJournal.replay(tmp_path)]
        assert ids == ["job-000001", "job-000002", "job-000003"]


class TestDurability:
    def test_torn_tail_is_skipped(self, tmp_path):
        """A crash mid-append leaves a half-written last line; replay
        must keep everything before it."""
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.point_done("job-000001", 0, source="executed")
        journal.close()
        path = tmp_path / JOURNAL_NAME
        with path.open("ab") as handle:
            handle.write(b'{"rec": "point", "kind": "do')  # torn
        entry = JobJournal.replay(tmp_path)[0]
        assert entry.done == {0}
        assert entry.incomplete

    def test_unknown_record_kinds_are_ignored(self, tmp_path):
        """Forward compatibility: a journal written by a newer version
        with extra record kinds still replays."""
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.close()
        path = tmp_path / JOURNAL_NAME
        with path.open("a") as handle:
            handle.write(json.dumps({"rec": "job", "kind": "hover",
                                     "job": "job-000001"}) + "\n")
            handle.write(json.dumps({"rec": "telemetry",
                                     "v": 99}) + "\n")
        entries = JobJournal.replay(tmp_path)
        assert len(entries) == 1
        assert entries[0].incomplete

    def test_replay_of_missing_file_is_empty(self, tmp_path):
        assert JobJournal.replay(tmp_path / "nowhere") == []

    def test_records_flushed_per_append(self, tmp_path):
        """Another process (replay after a SIGKILL) must see every
        record appended so far without a clean close."""
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        # No close(): read the file out from under the writer.
        entries = JobJournal.replay(tmp_path)
        assert [entry.job_id for entry in entries] == ["job-000001"]
        journal.close()


class TestRotation:
    def test_rotate_archives_and_resets(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.rotate()
        assert (tmp_path / (JOURNAL_NAME + ".prev")).exists()
        assert JobJournal.replay(tmp_path) == []
        # The journal keeps working after rotation.
        journal.job_submitted("job-000002", payload())
        assert [entry.job_id
                for entry in JobJournal.replay(tmp_path)] == \
            ["job-000002"]
        journal.close()

    def test_replay_and_rotate_round_trip(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        entries = journal.replay_and_rotate()
        assert [entry.job_id for entry in entries] == ["job-000001"]
        assert JobJournal.replay(tmp_path) == []
        journal.close()


class TestPaths:
    def test_dir_path_appends_journal_name(self, tmp_path):
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.close()
        assert (tmp_path / JOURNAL_NAME).exists()

    def test_explicit_file_path_used_verbatim(self, tmp_path):
        path = tmp_path / "custom.jsonl"
        journal = JobJournal(path)
        journal.job_submitted("job-000001", payload())
        journal.close()
        assert path.exists()

    def test_unborn_state_dir_is_created(self, tmp_path):
        """``--state-dir`` paths that don't exist yet are directories
        to create, not journal file names."""
        state = tmp_path / "state"
        journal = JobJournal(state)
        journal.job_submitted("job-000001", payload())
        journal.close()
        assert state.is_dir()
        assert (state / JOURNAL_NAME).exists()
        assert len(JobJournal.replay(state)) == 1

    def test_header_carries_schema_version(self, tmp_path):
        """A fresh journal opens with a versioned header record."""
        journal = JobJournal(tmp_path)
        journal.job_submitted("job-000001", payload())
        journal.close()
        lines = [json.loads(line) for line in
                 (tmp_path / JOURNAL_NAME).read_text().splitlines()]
        assert lines[0]["rec"] == "open"
        assert lines[0]["v"] == 1
        assert all("ts" in record for record in lines)
