"""WeightedFairQueue: proportional sharing, reactivation, removal."""

import pytest

from repro.serve.fairqueue import WeightedFairQueue


def drain_tenants(queue):
    return [tenant for tenant, _item in queue.drain()]


class TestFairOrder:
    def test_equal_weights_round_robin(self):
        queue = WeightedFairQueue()
        for index in range(3):
            queue.push("a", f"a{index}")
            queue.push("b", f"b{index}")
        assert drain_tenants(queue) == ["a", "b", "a", "b", "a", "b"]

    def test_weighted_tenant_gets_proportional_share(self):
        """Weight 2 drains twice as often as weight 1."""
        queue = WeightedFairQueue()
        for index in range(4):
            queue.push("heavy", index, weight=2)
            queue.push("light", index, weight=1)
        order = drain_tenants(queue)
        # In any prefix the heavy tenant is never behind the light
        # one by more than its weight ratio allows.
        for cut in range(1, len(order) + 1):
            heavy = order[:cut].count("heavy")
            light = order[:cut].count("light")
            assert heavy >= light
        assert order.count("heavy") == order.count("light") == 4

    def test_fifo_within_tenant(self):
        queue = WeightedFairQueue()
        for index in range(5):
            queue.push("a", index)
        assert [item for _, item in queue.drain()] == [0, 1, 2, 3, 4]

    def test_tie_breaks_by_tenant_name(self):
        queue = WeightedFairQueue()
        queue.push("beta", 1)
        queue.push("alpha", 1)
        assert queue.pop()[0] == "alpha"
        assert queue.pop()[0] == "beta"

    def test_late_arrival_does_not_monopolize(self):
        """A tenant joining after others have drained work resumes at
        the global virtual clock — no accumulated idle credit."""
        queue = WeightedFairQueue()
        for index in range(10):
            queue.push("early", index)
        for _ in range(8):
            queue.pop()
        for index in range(3):
            queue.push("late", index)
        order = drain_tenants(queue)
        # The late tenant interleaves; it does not drain all three
        # items before "early" gets a slot.
        assert order[:2] != ["late", "late"]
        assert order.count("late") == 3 and order.count("early") == 2


class TestLifecycle:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            WeightedFairQueue().pop()

    def test_len_and_depths(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push("b", 3)
        assert len(queue) == 3
        assert queue.depth("a") == 2
        assert queue.depth("missing") == 0
        assert queue.depths() == {"a": 2, "b": 1}

    def test_remove_drops_matching_items(self):
        queue = WeightedFairQueue()
        for index in range(4):
            queue.push("a", ("x", index))
            queue.push("b", ("y", index))
        removed = queue.remove(lambda item: item[0] == "x")
        assert removed == 4
        assert len(queue) == 4
        assert drain_tenants(queue) == ["b"] * 4

    def test_remove_then_push_stays_consistent(self):
        """Emptying a tenant via remove() leaves a stale heap entry;
        pushes and pops afterwards must still work and stay fair."""
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.push("b", 2)
        assert queue.remove(lambda item: item == 1) == 1
        queue.push("a", 3)
        popped = [queue.pop(), queue.pop()]
        assert sorted(item for _, item in popped) == [2, 3]
        assert len(queue) == 0

    def test_reactivation_resumes_at_vclock(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.pop()
        vclock = queue.vclock
        queue.push("a", 2)
        tenant, _ = queue.pop()
        assert tenant == "a"
        assert queue.vclock >= vclock

    def test_weight_update_applies_to_later_pops(self):
        queue = WeightedFairQueue()
        for index in range(6):
            queue.push("a", index, weight=1)
            queue.push("b", index, weight=1)
        # Re-pushing with a new weight takes effect for future pops.
        queue.push("a", 6, weight=4)
        assert queue.weight_of("a") == 4


class TestPushFront:
    def test_push_front_jumps_the_tenant_line(self):
        """A retried point re-enters at the head of its tenant's
        queue, ahead of work that arrived after it."""
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.push("a", 2)
        queue.push_front("a", 0)
        assert [item for _, item in queue.drain()] == [0, 1, 2]

    def test_push_front_reactivates_drained_tenant(self):
        queue = WeightedFairQueue()
        queue.push("a", 1)
        queue.pop()
        queue.push_front("a", 2)
        assert queue.pop() == ("a", 2)

    def test_push_front_counts_and_charges_fairly(self):
        """push_front changes position within the tenant, not the
        tenant's fair share against others."""
        queue = WeightedFairQueue()
        for index in range(3):
            queue.push("a", f"a{index}")
            queue.push("b", f"b{index}")
        queue.push_front("a", "retry")
        assert len(queue) == 7
        assert queue.depth("a") == 4
        order = list(queue.drain())
        # The retry is tenant a's first item...
        firsts = [item for tenant, item in order if tenant == "a"]
        assert firsts[0] == "retry"
        # ...but tenant b still interleaves; no starvation.
        tenants = [tenant for tenant, _item in order]
        assert "b" in tenants[:2]
