"""End-to-end service tests: a real server, real warm workers.

One module-scoped server (asyncio loop in a background thread, warm
two-process pool, shared ResultCache) serves every test over
localhost through the blocking :class:`ServeClient` — exactly the
production topology of ``repro serve`` + ``repro submit``. The
load-bearing assertion: results streamed over the wire are
**bit-identical** — cycles, per-CPU clocks, every statistic — to a
direct in-process :func:`run_sweep`.
"""

import asyncio
import threading

import pytest

from repro.config import e6000_config
from repro.errors import BackpressureError, ServeError
from repro.obs.schema import validate_chrome_trace
from repro.serve.client import ServeClient
from repro.serve.http import ServeHTTP
from repro.serve.scheduler import Scheduler
from repro.sim.sweep import ResultCache, SweepPoint, run_sweep

MAX_QUEUED = 8


def points_for(seeds, workload="fft", scale=0.05):
    config = e6000_config(num_processors=2)
    return [SweepPoint(workload, config, scale=scale, seed=seed)
            for seed in seeds]


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    record_dir = tmp_path_factory.mktemp("serve-recs")
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()

    async def boot():
        scheduler = Scheduler(cache=ResultCache(cache_dir),
                              max_workers=2,
                              max_queued_per_tenant=MAX_QUEUED,
                              record_dir=record_dir)
        await scheduler.start()
        server = await ServeHTTP(scheduler, port=0).start()
        return scheduler, server

    scheduler, server = asyncio.run_coroutine_threadsafe(
        boot(), loop).result(timeout=120)
    client = ServeClient(port=server.port)
    yield scheduler, client
    asyncio.run_coroutine_threadsafe(server.drain(),
                                     loop).result(timeout=60)
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)


class TestEndToEnd:
    def test_healthz(self, service):
        _, client = service
        assert client.healthz() == {"status": "ok"}

    def test_results_bit_identical_to_run_sweep(self, service):
        """The tentpole contract: what the service streams back is
        the same simulation, bit for bit."""
        _, client = service
        points = points_for([0, 1, 2])
        job = client.submit(points, tenant="identical")
        final = client.wait(job["id"])
        assert final["state"] == "done"
        served = client.results(job["id"])
        direct = run_sweep(points, cache=None)
        for over_wire, in_process in zip(served, direct):
            assert over_wire.cycles == in_process.cycles
            assert over_wire.per_cpu_cycles == \
                in_process.per_cpu_cycles
            assert over_wire.stats == in_process.stats
            assert over_wire.workload == in_process.workload

    def test_event_stream_is_valid_trace_ndjson(self, service):
        _, client = service
        points = points_for([0, 1])
        job = client.submit(points, tenant="events")
        events = list(client.stream_events(job["id"]))
        assert events[0]["name"] == "job_accepted"
        assert events[-1]["name"] == "job_done"
        names = [event["name"] for event in events]
        assert names.count("point_done") == 2
        # The stream is literally Chrome trace events: wrapping it in
        # a payload envelope must validate against the schema.
        validate_chrome_trace({"traceEvents": events,
                               "otherData": {"schema_version": 1}})

    def test_second_tenant_hits_warm_cache(self, service):
        scheduler, client = service
        points = points_for([0, 1, 2])  # same as the identical test
        before = scheduler.counters["serve.points_cache_hits"]
        job = client.submit(points, tenant="warm")
        final = client.wait(job["id"])
        assert final["state"] == "done"
        after = scheduler.counters["serve.points_cache_hits"]
        assert after - before >= 3
        assert client.results(job["id"])[0] is not None

    def test_backpressure_429(self, service):
        _, client = service
        too_many = points_for(range(MAX_QUEUED + 1))
        with pytest.raises(BackpressureError) as info:
            client.submit(too_many, tenant="greedy")
        assert info.value.status == 429
        assert "budget" in str(info.value)

    def test_cancel_over_http(self, service):
        _, client = service
        job = client.submit(points_for([40, 41, 42, 43], scale=0.4),
                            tenant="cancel")
        cancelled = client.cancel(job["id"])
        assert cancelled["state"] == "cancelled"
        assert client.job(job["id"])["state"] == "cancelled"
        # The stream of a terminal job replays and closes.
        events = list(client.stream_events(job["id"]))
        assert events[-1]["args"]["state"] == "cancelled"

    def test_jobs_listing_filters_by_tenant(self, service):
        _, client = service
        listed = client.jobs(tenant="identical")
        assert listed and all(job["tenant"] == "identical"
                              for job in listed)
        assert len(client.jobs()) >= len(listed)

    def test_stats_counters(self, service):
        _, client = service
        stats = client.stats()
        assert stats["serve.jobs_accepted"] >= 4
        assert stats["serve.points_executed"] >= 3
        assert stats["serve.workers"] == 2
        assert stats["serve.draining"] is False

    def test_unknown_job_404(self, service):
        _, client = service
        with pytest.raises(ServeError) as info:
            client.job("job-999999")
        assert info.value.status == 404

    def test_malformed_body_400(self, service):
        _, client = service
        with pytest.raises(ServeError) as info:
            client.submit_raw({"points": [{"workload": "fft",
                                           "bogus": 1}]})
        assert info.value.status == 400

    def test_unknown_path_404(self, service):
        _, client = service
        with pytest.raises(ServeError) as info:
            client._request("GET", "/v2/nothing")
        assert info.value.status == 404

    def test_metrics_endpoint(self, service):
        _, client = service
        metrics = client.metrics()
        assert metrics["schema_version"] == 3
        assert metrics["workers"]["max"] == 2
        assert metrics["cache"]["enabled"] is True
        assert 0.0 <= metrics["cache"]["hit_rate"] <= 1.0
        assert metrics["recordings"]["enabled"] is True
        assert "identical" in metrics["tenants"]
        assert metrics["counters"]["serve.jobs_accepted"] >= 1

    def test_record_job_streams_recording(self, service):
        """A record job's artifact fetched over the wire is a valid,
        checksum-intact recording of the requested point."""
        import json as json_module
        from repro.obs import Recording
        from repro.sim.sweep import point_key
        _, client = service
        points = points_for([7], scale=0.02)
        job = client.submit(points, tenant="recorder", record=True)
        final = client.wait(job["id"])
        assert final["state"] == "done"
        payload = client.recording(job["id"], 0)
        # checksum is over the canonical core, so validation survives
        # the wire round-trip through the client's JSON parse
        recording = Recording.loads(json_module.dumps(payload))
        assert recording.fingerprint == point_key(points[0])
        assert recording.to_result().cycles == \
            client.results(job["id"])[0].cycles

    def test_recording_404_for_plain_job(self, service):
        _, client = service
        job = client.submit(points_for([0]), tenant="plain")
        client.wait(job["id"])
        with pytest.raises(ServeError) as info:
            client.recording(job["id"], 0)
        assert info.value.status == 404

    def test_unknown_workload_fails_job_not_server(self, service):
        """A point whose workload generation explodes in the worker
        fails that job cleanly; the server keeps serving."""
        _, client = service
        job = client.submit(points_for([0], workload="not-a-kernel"),
                            tenant="broken")
        final = client.wait(job["id"])
        assert final["state"] == "failed"
        errors = client.errors(job["id"])
        assert errors[0] is not None
        assert client.healthz() == {"status": "ok"}
