"""Scheduler semantics: fairness, dedup, backpressure, cancel, drain.

These tests inject a single-threaded executor and a *gated* runner
(every execution blocks until the test releases it), so contention,
queue order and in-flight windows are fully deterministic — no real
worker processes, no timing races.
"""

import asyncio
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.config import e6000_config
from repro.errors import BackpressureError, ServeError
from repro.serve.jobs import JobSpec
from repro.serve.scheduler import Scheduler
from repro.sim.sweep import ResultCache, SweepPoint
from repro.smp.metrics import SimulationResult


class GatedRunner:
    """Executor-side callable that blocks until released; records the
    order executions actually started in."""

    def __init__(self):
        self._gate = threading.Semaphore(0)
        self._lock = threading.Lock()
        self.order = []

    def __call__(self, point):
        with self._lock:
            self.order.append((point.workload, point.seed))
        assert self._gate.acquire(timeout=10), "runner never released"
        result = SimulationResult(
            workload=point.workload, num_cpus=2,
            cycles=100_000 + point.seed,
            per_cpu_cycles=[100_000 + point.seed, 99_000],
            stats={"bus.transactions": 10 + point.seed})
        return result, 0.001

    def release(self, count=1):
        for _ in range(count):
            self._gate.release()


def spec(tenant, seeds, weight=1, workload="fft"):
    config = e6000_config(num_processors=2)
    return JobSpec(tenant=tenant, weight=weight,
                   points=tuple(SweepPoint(workload, config,
                                           scale=0.05, seed=seed)
                                for seed in seeds))


async def wait_until(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, \
            "condition never became true"
        await asyncio.sleep(0.005)


def make_scheduler(runner, cache=None, max_workers=1, **kwargs):
    pool = ThreadPoolExecutor(max_workers=max_workers)
    scheduler = Scheduler(cache=cache, max_workers=max_workers,
                          executor=pool, runner=runner, **kwargs)
    return scheduler, pool


class TestFairness:
    def test_weighted_share_under_contention(self):
        async def scenario():
            runner = GatedRunner()
            scheduler, pool = make_scheduler(runner, max_workers=1)
            try:
                # One point occupies the single slot, so both
                # tenants' work queues up entirely behind it.
                blocker = scheduler.submit(spec("zz", [99]))
                light = scheduler.submit(spec("light", [0, 1, 2, 3]))
                heavy = scheduler.submit(
                    spec("heavy", [10, 11, 12, 13], weight=2))
                runner.release(9)
                await wait_until(lambda: blocker.terminal
                                 and light.terminal and heavy.terminal)
                order = [seed for _, seed in runner.order[1:]]
                # FIFO within each tenant...
                assert [s for s in order if s < 10] == [0, 1, 2, 3]
                assert [s for s in order if s >= 10] == \
                    [10, 11, 12, 13]
                # ...and the weight-2 tenant is never behind: in every
                # prefix it has had at least as many slots.
                for cut in range(1, len(order) + 1):
                    heavy_slots = sum(1 for s in order[:cut]
                                      if s >= 10)
                    assert heavy_slots >= cut - heavy_slots
                assert light.state == heavy.state == "done"
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestDedup:
    def test_inflight_point_shared_across_tenants(self, tmp_path):
        """Two tenants submitting the same point: one execution, two
        completed jobs with identical results."""
        async def scenario():
            runner = GatedRunner()
            cache = ResultCache(tmp_path)
            scheduler, pool = make_scheduler(runner, cache=cache,
                                             max_workers=2)
            try:
                alice = scheduler.submit(spec("alice", [5]))
                await wait_until(lambda: len(runner.order) == 1)
                bob = scheduler.submit(spec("bob", [5]))
                await wait_until(lambda: scheduler.counters[
                    "serve.points_deduped"] == 1)
                runner.release(1)
                await wait_until(lambda: alice.terminal
                                 and bob.terminal)
                assert alice.state == bob.state == "done"
                assert len(runner.order) == 1
                assert scheduler.counters["serve.points_executed"] == 1
                assert alice.results[0] == bob.results[0]
                assert alice.results[0]["cycles"] == 100_005
                # The shared execution was cached exactly once.
                assert len(cache) == 1
                sources = {
                    [event for event in job.events
                     if event["name"] == "point_done"][-1]
                    ["args"]["source"]
                    for job in (alice, bob)}
                assert sources == {"executed", "dedup"}
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_second_job_hits_cache(self, tmp_path):
        async def scenario():
            runner = GatedRunner()
            cache = ResultCache(tmp_path)
            scheduler, pool = make_scheduler(runner, cache=cache)
            try:
                runner.release(2)
                first = scheduler.submit(spec("a", [1, 2]))
                await wait_until(lambda: first.terminal)
                second = scheduler.submit(spec("b", [1, 2]))
                await wait_until(lambda: second.terminal)
                assert second.state == "done"
                assert len(runner.order) == 2  # nothing re-executed
                assert scheduler.counters[
                    "serve.points_cache_hits"] == 2
                assert second.results == first.results
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestBackpressure:
    def test_tenant_budget_rejects_whole_job(self):
        async def scenario():
            runner = GatedRunner()
            scheduler, pool = make_scheduler(
                runner, max_workers=1, max_queued_per_tenant=4)
            try:
                blocker = scheduler.submit(spec("a", [99]))
                accepted = scheduler.submit(spec("a", [0, 1, 2, 3]))
                with pytest.raises(BackpressureError) as info:
                    scheduler.submit(spec("a", [4]))
                assert info.value.status == 429
                # Another tenant still has its full budget.
                other = scheduler.submit(spec("b", [0]))
                assert scheduler.counters["serve.jobs_rejected"] == 1
                runner.release(6)
                await wait_until(lambda: blocker.terminal
                                 and accepted.terminal
                                 and other.terminal)
                assert accepted.state == other.state == "done"
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestCancellation:
    def test_mid_job_cancel_drops_queued_keeps_inflight(self,
                                                        tmp_path):
        async def scenario():
            runner = GatedRunner()
            cache = ResultCache(tmp_path)
            scheduler, pool = make_scheduler(runner, cache=cache,
                                             max_workers=1)
            try:
                job = scheduler.submit(spec("a", [0, 1, 2]))
                await wait_until(lambda: len(runner.order) == 1)
                cancelled = scheduler.cancel(job.id)
                assert cancelled.state == "cancelled"
                assert job.terminal
                assert len(scheduler.queue) == 0
                assert job.events[-1]["args"]["state"] == "cancelled"
                # The in-flight execution runs on; its result is
                # cached (paid-for, deterministic work) but never
                # fanned into the cancelled job.
                runner.release(1)
                await wait_until(lambda: len(cache) == 1)
                assert job.results == [None, None, None]
                assert scheduler.counters[
                    "serve.jobs_cancelled"] == 1
                # A later identical job reuses the salvaged point.
                runner.release(2)
                retry = scheduler.submit(spec("a", [0, 1, 2]))
                await wait_until(lambda: retry.terminal)
                assert retry.state == "done"
                assert [seed for _, seed in runner.order] == \
                    [0, 1, 2]
                assert scheduler.counters[
                    "serve.points_cache_hits"] == 1
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_cancel_unknown_job_404(self):
        async def scenario():
            runner = GatedRunner()
            scheduler, pool = make_scheduler(runner)
            try:
                with pytest.raises(ServeError) as info:
                    scheduler.cancel("job-999999")
                assert info.value.status == 404
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestDrain:
    def test_drain_waits_for_accepted_work_then_rejects(self):
        async def scenario():
            runner = GatedRunner()
            scheduler, pool = make_scheduler(runner, max_workers=1)
            try:
                job = scheduler.submit(spec("a", [0, 1]))
                drainer = asyncio.ensure_future(scheduler.drain())
                await asyncio.sleep(0.02)
                assert not drainer.done()  # still waiting on the job
                with pytest.raises(ServeError) as info:
                    scheduler.submit(spec("b", [0]))
                assert info.value.status == 503
                runner.release(2)
                await asyncio.wait_for(drainer, timeout=10)
                assert job.state == "done"
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestFailures:
    def test_failing_point_fails_only_its_job(self):
        async def scenario():
            def runner(point):
                if point.seed == 1:
                    raise ValueError("boom")
                return SimulationResult(
                    workload=point.workload, num_cpus=2, cycles=7,
                    per_cpu_cycles=[7, 7], stats={}), 0.0

            pool = ThreadPoolExecutor(max_workers=1)
            scheduler = Scheduler(cache=None, max_workers=1,
                                  executor=pool, runner=runner)
            try:
                bad = scheduler.submit(spec("a", [0, 1]))
                good = scheduler.submit(spec("b", [2]))
                await wait_until(lambda: bad.terminal
                                 and good.terminal)
                assert bad.state == "failed"
                assert good.state == "done"
                assert bad.errors[1] == "ValueError: boom"
                assert bad.results[0] is not None
                assert scheduler.counters["serve.points_failed"] == 1
                failed_events = [event for event in bad.events
                                 if event["name"] == "point_failed"]
                assert len(failed_events) == 1
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())
