"""Job wire format: request validation and lossless round-trips."""

import pytest

from repro.config import KB, config_from_dict, config_to_dict, \
    e6000_config
from repro.errors import ConfigError, ServeError
from repro.serve.jobs import job_request_dict, parse_job_request, \
    point_from_dict, point_to_dict, result_from_dict, result_to_dict
from repro.sim.sweep import SweepPoint, point_key
from repro.smp.metrics import SimulationResult


class TestConfigRoundTrip:
    def test_default_round_trips(self):
        config = e6000_config(num_processors=8, l2_mb=4,
                              auth_interval=32)
        assert config_from_dict(config_to_dict(config)) == config

    def test_rich_config_round_trips(self):
        config = e6000_config().with_masks(4).with_l2_size(64 * KB)
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True,
                                        pad_cache_entries=16)
        assert config_from_dict(config_to_dict(config)) == config

    def test_partial_dict_uses_defaults(self):
        config = config_from_dict({"num_processors": 8})
        assert config.num_processors == 8
        assert config == e6000_config(num_processors=8,
                                      auth_interval=100)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fields"):
            config_from_dict({"num_procesors": 8})

    def test_unknown_nested_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            config_from_dict({"senss": {"auth_intervall": 10}})

    def test_invalid_value_rejected(self):
        with pytest.raises(ConfigError):
            config_from_dict({"num_processors": 0})


class TestPointRoundTrip:
    def test_point_round_trips_to_same_key(self):
        point = SweepPoint("ocean", e6000_config(num_processors=4),
                           scale=0.25, seed=7)
        rebuilt = point_from_dict(point_to_dict(point))
        assert rebuilt == point
        assert point_key(rebuilt) == point_key(point)

    def test_minimal_point(self):
        point = point_from_dict({"workload": "fft"})
        assert point.scale == 1.0 and point.seed == 0

    @pytest.mark.parametrize("payload,match", [
        ({}, "workload"),
        ({"workload": "fft", "scale": 0}, "scale"),
        ({"workload": "fft", "seed": "zero"}, "seed"),
        ({"workload": "fft", "extra": 1}, "unknown"),
        ("fft", "object"),
    ])
    def test_bad_points_rejected(self, payload, match):
        with pytest.raises(ServeError, match=match):
            point_from_dict(payload)

    def test_bad_config_maps_to_serve_error(self):
        with pytest.raises(ServeError, match="unknown"):
            point_from_dict({"workload": "fft",
                             "config": {"bogus": 1}})


class TestResultRoundTrip:
    def test_result_round_trips(self):
        result = SimulationResult(workload="fft", num_cpus=2,
                                  cycles=123, per_cpu_cycles=[123, 99],
                                  stats={"bus.transactions": 5})
        rebuilt = result_from_dict(result_to_dict(result))
        assert rebuilt == result

    def test_none_passes_through(self):
        assert result_from_dict(None) is None


class TestJobRequest:
    def _points(self):
        return [{"workload": "fft", "scale": 0.05}]

    def test_valid_request(self):
        spec = parse_job_request({"tenant": "alice", "weight": 2,
                                  "points": self._points()})
        assert spec.tenant == "alice" and spec.weight == 2
        assert len(spec.points) == 1

    def test_defaults(self):
        spec = parse_job_request({"points": self._points()})
        assert spec.tenant == "default" and spec.weight == 1
        assert spec.record is False

    def test_record_flag(self):
        spec = parse_job_request({"points": self._points(),
                                  "record": True})
        assert spec.record is True

    def test_record_must_be_bool(self):
        with pytest.raises(ServeError, match="record"):
            parse_job_request({"points": self._points(),
                               "record": "yes"})

    @pytest.mark.parametrize("payload,match", [
        ([], "object"),
        ({"points": []}, "non-empty"),
        ({"points": "fft"}, "non-empty|points"),
        ({"points": [{"workload": "fft"}], "tenant": ""}, "tenant"),
        ({"points": [{"workload": "fft"}], "tenant": "a/b"}, "tenant"),
        ({"points": [{"workload": "fft"}], "weight": 0}, "weight"),
        ({"points": [{"workload": "fft"}], "weight": True}, "weight"),
        ({"points": [{"workload": "fft"}], "priority": 1}, "unknown"),
    ])
    def test_bad_requests_rejected(self, payload, match):
        with pytest.raises(ServeError, match=match):
            parse_job_request(payload)

    def test_helper_builds_parseable_request(self):
        points = [SweepPoint("fft", e6000_config(), scale=0.1,
                             seed=seed) for seed in range(2)]
        spec = parse_job_request(job_request_dict(
            points, tenant="bob", weight=3))
        assert spec.points == tuple(points)

    def test_helper_carries_record_flag(self):
        points = [SweepPoint("fft", e6000_config(), scale=0.1)]
        plain = job_request_dict(points)
        assert "record" not in plain
        spec = parse_job_request(job_request_dict(points, record=True))
        assert spec.record is True
