"""Self-healing scheduler: retries, quarantine, deadlines, resume.

Most tests inject thread-pool executors and deterministic runners
(same idiom as test_scheduler.py) so failure timing is controlled by
the test. The two supervisor tests at the bottom use a *real*
process pool — a worker genuinely SIGKILLs itself — because fake
executors cannot break the way these paths exist to survive.
"""

import asyncio
import os
import signal
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.config import e6000_config
from repro.serve.jobs import JobSpec
from repro.serve.journal import JobJournal
from repro.serve.scheduler import Scheduler
from repro.serve.supervisor import WorkerSupervisor
from repro.sim.sweep import ResultCache, SweepPoint
from repro.smp.metrics import SimulationResult


def make_result(point):
    return SimulationResult(
        workload=point.workload, num_cpus=2,
        cycles=100_000 + point.seed,
        per_cpu_cycles=[100_000 + point.seed, 99_000],
        stats={"bus.transactions": 10 + point.seed})


class FlakyRunner:
    """Fails each point's first ``fail_times`` executions, then
    succeeds — the transient fault retries exist for."""

    def __init__(self, fail_times=1):
        self.fail_times = fail_times
        self.attempts = {}
        self.order = []

    def __call__(self, point):
        self.order.append(point.seed)
        count = self.attempts.get(point.seed, 0) + 1
        self.attempts[point.seed] = count
        if count <= self.fail_times:
            raise ValueError(f"flaky {point.seed} attempt {count}")
        return make_result(point), 0.001


class PoisonRunner:
    """Fails every time: the poisoned point the circuit breaker is
    for."""

    def __init__(self):
        self.calls = 0

    def __call__(self, point):
        self.calls += 1
        raise ValueError("boom")


class GatedRunner:
    """Blocks until released (copied shape from test_scheduler.py)."""

    def __init__(self):
        self._gate = threading.Semaphore(0)
        self.order = []

    def __call__(self, point):
        self.order.append(point.seed)
        assert self._gate.acquire(timeout=10), "never released"
        return make_result(point), 0.001

    def release(self, count=1):
        for _ in range(count):
            self._gate.release()


def spec(tenant, seeds, weight=1):
    config = e6000_config(num_processors=2)
    return JobSpec(tenant=tenant, weight=weight,
                   points=tuple(SweepPoint("fft", config, scale=0.05,
                                           seed=seed)
                                for seed in seeds))


async def wait_until(predicate, timeout=10.0):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, \
            "condition never became true"
        await asyncio.sleep(0.005)


def make_scheduler(runner, cache=None, max_workers=1, **kwargs):
    pool = ThreadPoolExecutor(max_workers=max_workers)
    scheduler = Scheduler(cache=cache, max_workers=max_workers,
                          executor=pool, runner=runner,
                          backoff_s=0.001, **kwargs)
    return scheduler, pool


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        async def scenario():
            runner = FlakyRunner(fail_times=1)
            scheduler, pool = make_scheduler(runner, retries=2)
            try:
                job = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: job.terminal)
                assert job.state == "done"
                assert job.errors == [None]
                assert runner.attempts[7] == 2
                assert scheduler.counters["serve.retries"] == 1
                # Retry attempts are not final failures.
                assert scheduler.counters["serve.points_failed"] == 0
                retry_events = [event for event in job.events
                                if event["name"] == "point_retry"]
                assert len(retry_events) == 1
                assert retry_events[0]["args"]["attempt"] == 2
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_retry_exhaustion_keeps_original_error(self):
        async def scenario():
            runner = PoisonRunner()
            scheduler, pool = make_scheduler(runner, retries=1,
                                             quarantine_after=50)
            try:
                job = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: job.terminal)
                assert job.state == "failed"
                assert job.errors[0] == "ValueError: boom"
                assert runner.calls == 2  # first try + one retry
                assert scheduler.counters["serve.retries"] == 1
                assert scheduler.counters["serve.points_failed"] == 1
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_backoff_is_seeded_and_jittered(self):
        async def scenario():
            same_a, _ = make_scheduler(PoisonRunner(), seed=1)
            same_b, _ = make_scheduler(PoisonRunner(), seed=1)
            other, _ = make_scheduler(PoisonRunner(), seed=2)
            delays_a = [same_a._backoff_delay("k", n)
                        for n in (1, 2, 3)]
            delays_b = [same_b._backoff_delay("k", n)
                        for n in (1, 2, 3)]
            delays_c = [other._backoff_delay("k", n)
                        for n in (1, 2, 3)]
            assert delays_a == delays_b      # seeded: reproducible
            assert delays_a != delays_c      # ...not constant
            # Exponential floor with bounded jitter per attempt.
            for attempt, delay in enumerate(delays_a, start=1):
                floor = 0.001 * 2 ** (attempt - 1)
                assert floor <= delay <= 2 * floor
            # Decorrelated across points: same attempt, other key.
            assert same_a._backoff_delay("k", 1) != \
                same_a._backoff_delay("j", 1)
        asyncio.run(scenario())


class TestQuarantine:
    def test_poisoned_point_quarantined_after_threshold(self):
        async def scenario():
            runner = PoisonRunner()
            scheduler, pool = make_scheduler(runner, retries=0,
                                             quarantine_after=2)
            try:
                first = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: first.terminal)
                assert first.errors[0] == "ValueError: boom"
                assert first.describe()["quarantined"] == []

                second = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: second.terminal)
                assert second.errors[0].startswith(
                    "quarantined after 2 failed attempts:")
                assert "ValueError: boom" in second.errors[0]
                assert second.describe()["quarantined"] == [0]
                assert scheduler.counters[
                    "serve.quarantined_points"] == 1

                # The breaker fails fast: no third execution.
                third = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: third.terminal)
                assert third.state == "failed"
                assert runner.calls == 2
                assert third.describe()["quarantined"] == [0]
                assert scheduler.metrics()["resilience"][
                    "quarantined_points"] != []
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_success_resets_failure_count(self):
        async def scenario():
            runner = FlakyRunner(fail_times=1)
            scheduler, pool = make_scheduler(runner, retries=1,
                                             quarantine_after=2)
            try:
                job = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: job.terminal)
                assert job.state == "done"
                # One failure happened, but the success wiped the
                # count — the point is nowhere near quarantine.
                again = scheduler.submit(spec("u", [7]))
                await wait_until(lambda: again.terminal)
                assert again.state == "done"
                assert scheduler.counters[
                    "serve.quarantined_points"] == 0
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestPointDeadline:
    def test_hung_point_fails_with_timeout(self):
        async def scenario():
            runner = GatedRunner()  # never released: a hung point
            scheduler, pool = make_scheduler(
                runner, retries=0, point_timeout=0.05,
                heartbeat_s=0.01)
            try:
                job = scheduler.submit(spec("t", [7]))
                await wait_until(lambda: job.terminal)
                assert job.state == "failed"
                assert "TimeoutError" in job.errors[0]
                assert "0.05s deadline" in job.errors[0]
                assert scheduler.counters["serve.points_failed"] == 1
            finally:
                runner.release(5)  # unwedge the pool thread
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_deadline_does_not_fire_for_fast_points(self):
        async def scenario():
            runner = FlakyRunner(fail_times=0)
            scheduler, pool = make_scheduler(
                runner, point_timeout=30.0, heartbeat_s=0.01)
            try:
                job = scheduler.submit(spec("t", [1, 2]))
                await wait_until(lambda: job.terminal)
                assert job.state == "done"
                assert scheduler.counters["serve.points_failed"] == 0
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestResume:
    def test_resume_reexecutes_only_unfinished_points(self, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            journal_dir = tmp_path / "state"

            # First life: finish point 0, then "crash" (no drain —
            # the journal is abandoned mid-job like a SIGKILL).
            crashed = GatedRunner()
            first, first_pool = make_scheduler(
                crashed, cache=cache, journal=journal_dir)
            job = first.submit(spec("t", [0, 1]))
            crashed.release(1)
            await wait_until(lambda: job.completed == 1)
            first_pool.shutdown(wait=False)
            crashed.release(5)  # let the abandoned thread exit

            # Second life: resume from the journal.
            runner = GatedRunner()
            second, second_pool = make_scheduler(
                runner, cache=cache, journal=journal_dir)
            try:
                resumed = second.resume()
                assert [j.id for j in resumed] == [job.id]
                revived = second.get(job.id)
                assert any(event["name"] == "job_resumed"
                           for event in revived.events)
                runner.release(5)
                await wait_until(lambda: revived.terminal)
                assert revived.state == "done"
                # Point 0 came from the shared cache; only point 1
                # re-executed.
                assert runner.order == [1]
                assert second.counters["serve.journal_replays"] == 1
                assert second.counters[
                    "serve.points_cache_hits"] == 1
                # Fresh ids keep counting past the resumed one.
                fresh = second.submit(spec("t", [9]))
                assert fresh.id > job.id
                runner.release(1)
                await wait_until(lambda: fresh.terminal)
            finally:
                second_pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_resume_skips_terminal_jobs(self, tmp_path):
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            journal_dir = tmp_path / "state"
            runner = FlakyRunner(fail_times=0)
            first, first_pool = make_scheduler(
                runner, cache=cache, journal=journal_dir)
            done = first.submit(spec("t", [0]))
            await wait_until(lambda: done.terminal)
            first_pool.shutdown(wait=False)

            second, second_pool = make_scheduler(
                FlakyRunner(fail_times=0), cache=cache,
                journal=journal_dir)
            try:
                assert second.resume() == []
                assert second.list_jobs() == []
            finally:
                second_pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_resume_without_journal_is_noop(self):
        async def scenario():
            scheduler, pool = make_scheduler(FlakyRunner())
            try:
                assert scheduler.resume() == []
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


class TestDrainUnderFire:
    def test_timed_drain_gives_up_and_resume_finishes(self, tmp_path):
        """The satellite scenario: SIGTERM arrives while a worker is
        wedged; drain must not hang, and the journal must carry the
        unfinished job into the next life."""
        async def scenario():
            cache = ResultCache(tmp_path / "cache")
            journal_dir = tmp_path / "state"
            hung = GatedRunner()  # never released until teardown
            first, first_pool = make_scheduler(
                hung, cache=cache, journal=journal_dir)
            job = first.submit(spec("t", [0]))
            await wait_until(lambda: len(hung.order) == 1)
            drained = await first.drain(timeout=0.1)
            assert drained is False  # gave up, did not hang
            assert not first.ready()[0]
            first_pool.shutdown(wait=False)
            hung.release(5)

            runner = GatedRunner()
            second, second_pool = make_scheduler(
                runner, cache=cache, journal=journal_dir)
            try:
                resumed = second.resume()
                assert [j.id for j in resumed] == [job.id]
                runner.release(5)
                await wait_until(
                    lambda: second.get(job.id).terminal)
                assert second.get(job.id).state == "done"
                assert await second.drain(timeout=5.0) is True
            finally:
                second_pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_clean_drain_returns_true(self):
        async def scenario():
            runner = FlakyRunner(fail_times=0)
            scheduler, pool = make_scheduler(runner)
            try:
                job = scheduler.submit(spec("t", [0]))
                assert await scheduler.drain(timeout=5.0) is True
                assert job.state == "done"
                assert scheduler.ready() == (False, "draining")
            finally:
                pool.shutdown(wait=False)
        asyncio.run(scenario())


# -- real worker processes ---------------------------------------------

def _kill_self(_arg):
    """Pool worker target: die the way an OOM kill looks."""
    os.kill(os.getpid(), signal.SIGKILL)


def _echo(value):
    return value


class TestWorkerSupervisor:
    def test_killed_worker_breaks_then_restart_heals(self):
        async def scenario():
            supervisor = WorkerSupervisor(max_workers=1,
                                          warmup=False)
            await supervisor.start()
            try:
                with pytest.raises(BrokenProcessPool):
                    await supervisor.submit(_kill_self, None)
                assert not supervisor.alive
                assert supervisor.restart(reason="test") is True
                assert supervisor.alive
                assert supervisor.restarts == 1
                assert await supervisor.submit(_echo, 42) == 42
            finally:
                supervisor.stop()
        asyncio.run(scenario())

    def test_submit_on_broken_pool_self_heals(self):
        async def scenario():
            supervisor = WorkerSupervisor(max_workers=1,
                                          warmup=False)
            await supervisor.start()
            try:
                with pytest.raises(BrokenProcessPool):
                    await supervisor.submit(_kill_self, None)
                # No explicit restart: submit restores the pool.
                assert await supervisor.submit(_echo, 7) == 7
                assert supervisor.restarts == 1
            finally:
                supervisor.stop()
        asyncio.run(scenario())

    def test_watchdog_fires_once_per_overdue_flight(self):
        async def scenario():
            pool = ThreadPoolExecutor(max_workers=1)
            supervisor = WorkerSupervisor(executor=pool,
                                          heartbeat_s=0.01)
            fired = []
            gate = threading.Semaphore(0)
            try:
                future = supervisor.submit(
                    lambda _arg: gate.acquire(timeout=10), None,
                    deadline_s=0.03,
                    on_timeout=lambda: fired.append(True))
                await asyncio.sleep(0.2)
                assert fired == [True]  # once, not once-per-tick
                gate.release()
                await future
                # Watchdog winds down once nothing has a deadline.
                await asyncio.sleep(0.05)
                assert not supervisor.describe()["watching"]
            finally:
                gate.release()
                supervisor.stop()
                pool.shutdown(wait=False)
        asyncio.run(scenario())

    def test_injected_executor_never_replaced(self):
        async def scenario():
            pool = ThreadPoolExecutor(max_workers=1)
            supervisor = WorkerSupervisor(executor=pool)
            try:
                assert supervisor.restart(force=True) is False
                assert supervisor.executor is pool
            finally:
                supervisor.stop()
                pool.shutdown(wait=False)
        asyncio.run(scenario())
