"""Main memory functional tests."""

import pytest

from repro.errors import SimulationError
from repro.memory.dram import MainMemory


def test_unwritten_lines_read_zero():
    memory = MainMemory(64)
    assert memory.read_line(0x1234) == bytes(64)


def test_write_read_roundtrip():
    memory = MainMemory(64)
    data = bytes(range(64))
    memory.write_line(0x1000, data)
    assert memory.read_line(0x1000) == data
    assert memory.read_line(0x1030) == data  # same line


def test_write_requires_full_line():
    memory = MainMemory(64)
    with pytest.raises(SimulationError):
        memory.write_line(0x1000, b"short")


def test_write_counts_track_legitimate_writes():
    memory = MainMemory(64)
    memory.write_line(0x1000, bytes(64))
    memory.write_line(0x1000, bytes(64))
    assert memory.write_count(0x1000) == 2
    assert memory.write_count(0x2000) == 0


def test_corruption_does_not_bump_write_count():
    """The tampering back door must look like a physical attack: the
    contents change but no legitimate write is recorded."""
    memory = MainMemory(64)
    memory.write_line(0x1000, bytes(64))
    memory.corrupt_line(0x1000)
    assert memory.write_count(0x1000) == 1
    assert memory.read_line(0x1000) != bytes(64)


def test_corrupt_with_explicit_data():
    memory = MainMemory(64)
    payload = bytes([0xAB] * 64)
    memory.corrupt_line(0x40, payload)
    assert memory.read_line(0x40) == payload
    with pytest.raises(SimulationError):
        memory.corrupt_line(0x40, b"wrong size")


def test_line_size_must_be_power_of_two():
    with pytest.raises(SimulationError):
        MainMemory(48)


def test_resident_lines():
    memory = MainMemory(64)
    memory.write_line(0x0, bytes(64))
    memory.write_line(0x40, bytes(64))
    memory.write_line(0x43, bytes(64))  # same line as 0x40
    assert memory.resident_lines() == 2
