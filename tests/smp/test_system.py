"""SMP system integration tests on hand-built traces."""

import pytest

from repro.config import e6000_config
from repro.errors import SimulationError
from repro.smp.system import SmpSystem
from repro.smp.trace import MemoryAccess, Workload


def run(traces, config=None):
    config = config or e6000_config(num_processors=4)
    system = SmpSystem(config)
    return system.run(Workload("hand", traces)), system


def R(addr, gap=0):
    return MemoryAccess(False, addr, gap)


def W(addr, gap=0):
    return MemoryAccess(True, addr, gap)


def test_single_cpu_hit_sequence():
    """Miss (180) then L1 hits (2 each)."""
    result, _ = run([[R(0x1000), R(0x1000), R(0x1008)]])
    assert result.cycles == 180 + 2 + 2
    assert result.total_bus_transactions == 1


def test_read_sharing_is_cache_to_cache():
    """CPU1 reading what CPU0 cached is a 120-cycle c2c transfer."""
    result, system = run([
        [R(0x1000)],
        [R(0x1000, gap=500)],  # starts after CPU0's fill completed
    ])
    assert result.cache_to_cache_transfers == 1
    assert result.memory_transfers == 1
    assert system.hierarchies[0].state_of(0x1000).value == "S"
    assert system.hierarchies[1].state_of(0x1000).value == "S"


def test_write_invalidate_upgrade():
    """Write to a SHARED line issues an address-only upgrade."""
    result, system = run([
        [R(0x1000), W(0x1000, gap=1000)],
        [R(0x1000, gap=500)],
    ])
    assert result.stat("bus.tx.BusUpgr") == 1
    assert system.hierarchies[0].state_of(0x1000).value == "M"
    assert system.hierarchies[1].state_of(0x1000).value == "I"


def test_write_miss_steals_dirty_line():
    result, system = run([
        [W(0x1000)],
        [W(0x1000, gap=500)],
    ])
    # Second write fetched the dirty line cache-to-cache and
    # invalidated the first owner.
    assert result.cache_to_cache_transfers == 1
    assert system.hierarchies[0].state_of(0x1000).value == "I"
    assert system.hierarchies[1].state_of(0x1000).value == "M"
    assert result.stat("coherence.dirty_interventions") == 1


def test_dirty_eviction_posts_writeback():
    """Filling past associativity with dirty lines posts write-backs."""
    config = e6000_config(num_processors=1)
    l2 = config.l2
    step = l2.num_sets * l2.line_bytes
    trace = [W(way * step, gap=10) for way in range(l2.associativity + 1)]
    result, _ = run([trace], config)
    assert result.stat("coherence.writebacks") == 1
    assert result.stat("bus.tx.WB") == 1


def test_bus_contention_delays_requester():
    """Two simultaneous misses: the second pays the queueing delay."""
    result, _ = run([
        [R(0x1000)],
        [R(0x2000)],
    ])
    # First miss: 180. Second granted after 30 cycles occupancy
    # (64B line), so its CPU finishes at 30 + 180 = 210.
    assert sorted(result.per_cpu_cycles) == [180, 210]


def test_workload_cannot_exceed_machine():
    config = e6000_config(num_processors=2)
    system = SmpSystem(config)
    workload = Workload("too-wide", [[R(0)], [R(0)], [R(0)]])
    with pytest.raises(SimulationError):
        system.run(workload)


def test_deterministic_reruns():
    traces = [
        [R(0x1000), W(0x1040, 3), R(0x2000, 2)],
        [R(0x1000, 1), W(0x3000, 4)],
    ]
    first, _ = run(traces)
    second, _ = run(traces)
    assert first.cycles == second.cycles
    assert first.stats == second.stats


def test_gaps_advance_local_clock():
    result, _ = run([[R(0x1000, gap=1000)]])
    assert result.cycles == 1000 + 180


def test_false_sharing_ping_pong():
    """Different words of one line written by two CPUs keep migrating."""
    trace0 = [W(0x1000, 300 * i) for i in range(1, 4)]
    trace1 = [W(0x1008, 150 + 300 * i) for i in range(1, 4)]
    result, _ = run([trace0, trace1])
    # After the cold misses, every access misses due to invalidations.
    assert result.cache_to_cache_transfers >= 4
