"""Simulations are deterministic: same inputs, same result — whether
run inline, twice in a row, or through the parallel sweep runner."""

from repro.config import e6000_config
from repro.sim.sweep import SweepPoint, build_system, run_point, run_sweep
from repro.workloads.registry import generate


def senss_point(seed: int = 5) -> SweepPoint:
    return SweepPoint("barnes", e6000_config(num_processors=4, l2_mb=1),
                      scale=0.1, seed=seed)


def assert_identical(first, second):
    assert first.cycles == second.cycles
    assert list(first.per_cpu_cycles) == list(second.per_cpu_cycles)
    assert first.stats == second.stats


def test_same_config_same_seed_twice():
    config = e6000_config(num_processors=4, l2_mb=1)
    workload = generate("ocean", 4, scale=0.1, seed=11)
    assert_identical(build_system(config).run(workload),
                     build_system(config).run(workload))


def test_regenerated_workload_is_identical():
    """The workload generator itself is seed-deterministic."""
    first = generate("fft", 4, scale=0.1, seed=2)
    second = generate("fft", 4, scale=0.1, seed=2)
    assert first.traces == second.traces
    assert first.total_accesses == second.total_accesses


def test_parallel_sweep_matches_inline_run():
    """Worker-process results match the in-process engine exactly."""
    points = [senss_point(seed) for seed in (0, 1)]
    swept = run_sweep(points, cache=None, parallel=True, max_workers=2)
    for point, result in zip(points, swept):
        assert_identical(result, run_point(point))


def test_serial_sweep_matches_parallel_sweep():
    points = [senss_point(seed) for seed in (0, 1)]
    parallel = run_sweep(points, cache=None, parallel=True,
                         max_workers=2)
    serial = run_sweep(points, cache=None, parallel=False)
    for left, right in zip(parallel, serial):
        assert_identical(left, right)
