"""Cross-backend equivalence and fallback (DESIGN.md §6f).

The vector engine's contract is *bit-identical* simulation: cycles,
per-CPU cycles and the full statistics dict must match the scalar
engine on every machine flavour. Three layers of defence:

- the miss-heavy golden capture (``golden_missheavy.json``) replayed
  under the vector backend — the backend cannot drift from the pinned
  pre-streamlining semantics either;
- hypothesis-randomized traces (unaligned addresses, shared lines,
  mixed read/write) compared scalar-vs-vector across baseline, senss
  and memprotect-integrated machines and across L1 geometries,
  including direct-mapped and associativity > 2;
- registry behaviour: ``auto`` resolution (now a run-time workload
  probe, see ``probe_backend``), the ``REPRO_ENGINE`` override, and
  the no-numpy fallback (``auto`` silently selects scalar, an
  explicit ``vector`` raises ``SimulationError``).
"""

import json
import pathlib
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import KB, CacheConfig, e6000_config
from repro.errors import ConfigError, SimulationError
from repro.sim.sweep import build_system
from repro.smp.engine import (ENGINE_BACKENDS, ENGINE_CHOICES,
                              default_backend, numpy_available,
                              probe_backend, resolve_backend)
from repro.smp.trace import MemoryAccess, Workload
from repro.workloads.registry import generate

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="vector backend requires numpy")

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent.parent / "data"
     / "golden_missheavy.json").read_text())


def golden_config(kind: str):
    config = e6000_config(num_processors=GOLDEN["num_cpus"],
                          senss_enabled=(kind != "baseline"))
    config = config.with_l2_size(GOLDEN["l2_kb"] * KB)
    if kind == "integrated":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    return config


def result_key(result):
    return (result.cycles, tuple(result.per_cpu_cycles),
            tuple(sorted(result.stats.items())))


# -- golden captures under the vector backend ---------------------------

@requires_numpy
@pytest.mark.parametrize("kind", ["baseline", "senss", "integrated"])
def test_golden_missheavy_vector(kind):
    """The vector backend reproduces the pinned goldens exactly."""
    workload = generate(GOLDEN["workload"], GOLDEN["num_cpus"],
                        scale=GOLDEN["scale"], seed=0)
    config = golden_config(kind).with_engine("vector")
    system = build_system(config)
    assert system.engine_backend == "vector"
    result = system.run(workload)
    expected = GOLDEN["runs"][f"{kind}|0"]
    assert result.cycles == expected["cycles"], kind
    assert list(result.per_cpu_cycles) == expected["per_cpu_cycles"]


# -- randomized cross-backend equivalence -------------------------------

GEOMETRIES = {
    "l1_2way": None,                        # default 64K 2-way
    "l1_direct": CacheConfig(32 * KB, 1, 32, 2),
    "l1_4way": CacheConfig(8 * KB, 4, 32, 2),
}

access_strategy = st.builds(
    MemoryAccess,
    is_write=st.booleans(),
    # A small line pool plus unaligned byte offsets: heavy set reuse,
    # shared lines across CPUs, and both L1 geometric aliasing cases.
    address=st.builds(lambda line, off: line * 32 + off,
                      st.integers(0, 255), st.integers(0, 31)),
    gap=st.integers(0, 3))

trace_strategy = st.lists(
    st.lists(access_strategy, min_size=1, max_size=300),
    min_size=1, max_size=3)


@requires_numpy
@pytest.mark.parametrize("geometry", sorted(GEOMETRIES))
@pytest.mark.parametrize("flavour", ["baseline", "senss", "integrated"])
@given(traces=trace_strategy)
@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_backends_bit_identical(geometry, flavour, traces):
    """Scalar and vector agree on cycles, per-CPU cycles and stats."""
    config = e6000_config(num_processors=len(traces),
                          senss_enabled=(flavour != "baseline"))
    if flavour == "integrated":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    if GEOMETRIES[geometry] is not None:
        from dataclasses import replace
        config = replace(config, l1=GEOMETRIES[geometry])
    workload = Workload("randomized", traces, validate=False)
    scalar = build_system(config.with_engine("scalar")).run(workload)
    vector = build_system(config.with_engine("vector")).run(workload)
    assert result_key(scalar) == result_key(vector)


# -- registry resolution ------------------------------------------------

def test_registry_shape():
    assert ENGINE_BACKENDS == ("scalar", "vector")
    assert set(ENGINE_CHOICES) == {"auto", "scalar", "vector"}


def test_explicit_scalar_resolves():
    name, impl = resolve_backend("scalar")
    assert name == "scalar" and callable(impl)


def test_invalid_choice_rejected():
    with pytest.raises(ConfigError):
        resolve_backend("simd")
    with pytest.raises(ConfigError):
        e6000_config().with_engine("simd")


@requires_numpy
def test_auto_defers_to_workload_probe(monkeypatch):
    """auto resolves to the run-time dispatcher, not a fixed backend."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert default_backend() == "vector"   # availability preference
    name, impl = resolve_backend("auto")
    assert name == "auto" and callable(impl)
    system = build_system(e6000_config())
    assert system.engine_backend == "auto"


@requires_numpy
def test_auto_picks_vector_on_hit_heavy(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    workload = generate("fft", 2, scale=0.05, seed=0)
    config = e6000_config(num_processors=2)
    assert probe_backend(config, workload) == "vector"
    system = build_system(config)
    auto = system.run(workload)
    assert system.engine_backend == "vector"
    scalar = build_system(config.with_engine("scalar")).run(workload)
    assert result_key(auto) == result_key(scalar)


@requires_numpy
def test_auto_falls_back_to_scalar_on_miss_heavy(monkeypatch):
    """Capacity-pressured workloads must not pay the window search."""
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    workload = generate("ocean", 2, scale=0.05, seed=0)
    config = e6000_config(num_processors=2).with_l2_size(64 * KB)
    assert probe_backend(config, workload) == "scalar"
    system = build_system(config)
    auto = system.run(workload)
    assert system.engine_backend == "scalar"
    scalar = build_system(config.with_engine("scalar")).run(workload)
    assert result_key(auto) == result_key(scalar)


@requires_numpy
def test_env_override_bypasses_probe(monkeypatch):
    """A pinned REPRO_ENGINE wins over the workload probe (CI)."""
    monkeypatch.setenv("REPRO_ENGINE", "vector")
    config = e6000_config(num_processors=2).with_l2_size(64 * KB)
    system = build_system(config)
    assert system.engine_backend == "vector"
    workload = generate("ocean", 2, scale=0.02, seed=0)
    system.run(workload)
    assert system.engine_backend == "vector"


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "scalar")
    assert default_backend() == "scalar"
    assert resolve_backend("auto")[0] == "scalar"
    # The override steers auto only; explicit choices win.
    if numpy_available():
        assert resolve_backend("vector")[0] == "vector"
    monkeypatch.setenv("REPRO_ENGINE", "bogus")
    with pytest.raises(ConfigError):
        default_backend()


# -- no-numpy fallback --------------------------------------------------

def test_auto_without_numpy_selects_scalar(monkeypatch):
    import repro.smp.engine as engine
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    monkeypatch.setattr(engine, "numpy_available", lambda: False)
    assert engine.default_backend() == "scalar"
    name, _ = engine.resolve_backend("auto")
    assert name == "scalar"
    workload = generate("fft", 2, scale=0.02, seed=0)
    config = e6000_config(num_processors=2)
    system = build_system(config)   # engine: auto
    assert system.engine_backend == "scalar"
    assert system.run(workload).cycles > 0


def test_vector_without_numpy_raises(monkeypatch):
    """An explicit vector request without numpy fails loudly."""
    # Simulate an environment without numpy: evict the vector module
    # so resolve_backend must re-import it, and make ``import numpy``
    # fail (None in sys.modules raises ImportError on import).
    monkeypatch.delitem(sys.modules, "repro.smp.vectorpath",
                        raising=False)
    monkeypatch.setitem(sys.modules, "numpy", None)
    with pytest.raises(SimulationError, match="numpy"):
        resolve_backend("vector")
    # auto degrades silently in the same environment.
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    name, _ = resolve_backend("auto")
    assert name in ENGINE_BACKENDS
