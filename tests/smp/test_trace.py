"""Workload/trace container tests."""

import pytest

from repro.errors import TraceError
from repro.smp.trace import MemoryAccess, Workload


def make_workload():
    traces = [
        [MemoryAccess(False, 0x100, 2), MemoryAccess(True, 0x100, 3)],
        [MemoryAccess(False, 0x200, 1)],
    ]
    return Workload("toy", traces, {"scale": 1})


def test_shape_accessors():
    workload = make_workload()
    assert workload.num_cpus == 2
    assert workload.total_accesses == 3
    assert len(workload.accesses_for(0)) == 2


def test_iter_flat():
    workload = make_workload()
    flattened = list(workload.iter_flat())
    assert flattened[0] == (0, MemoryAccess(False, 0x100, 2))
    assert len(flattened) == 3


def test_truncated_copy():
    workload = make_workload()
    short = workload.truncated(1)
    assert short.total_accesses == 2
    assert workload.total_accesses == 3  # original untouched


def test_rejects_empty():
    with pytest.raises(TraceError):
        Workload("empty", [])


def test_rejects_negative_address():
    with pytest.raises(TraceError):
        Workload("bad", [[MemoryAccess(False, -4, 0)]])


def test_rejects_negative_gap():
    with pytest.raises(TraceError):
        Workload("bad", [[MemoryAccess(False, 4, -1)]])
