"""Evaluation metric tests."""

import pytest

from repro.smp.metrics import (SimulationResult, average, slowdown_percent,
                               traffic_increase_percent)


def result(cycles, transactions, c2c=0, auth=0):
    return SimulationResult(
        workload="w", num_cpus=2, cycles=cycles, per_cpu_cycles=[cycles],
        stats={"bus.transactions": transactions,
               "bus.cache_to_cache": c2c,
               "bus.tx.Auth00": auth})


def test_slowdown_percent():
    assert slowdown_percent(result(1000, 10), result(1020, 10)) == \
        pytest.approx(2.0)


def test_slowdown_can_be_negative():
    """Section 7.8: reordering can make the secured run faster."""
    assert slowdown_percent(result(1000, 10), result(990, 10)) == \
        pytest.approx(-1.0)


def test_traffic_increase():
    assert traffic_increase_percent(result(1, 100), result(1, 146)) == \
        pytest.approx(46.0)


def test_zero_baselines_rejected():
    with pytest.raises(ValueError):
        slowdown_percent(result(0, 10), result(10, 10))
    with pytest.raises(ValueError):
        traffic_increase_percent(result(10, 0), result(10, 5))


def test_result_properties():
    res = result(100, 50, c2c=20, auth=3)
    assert res.total_bus_transactions == 50
    assert res.cache_to_cache_transfers == 20
    assert res.auth_messages == 3
    assert "w:" in res.summary()


def test_average():
    assert average([1.0, 2.0, 3.0]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        average([])
