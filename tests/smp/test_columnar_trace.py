"""ColumnarTrace: the array-backed trace container behind workloads."""

import pytest

from repro.errors import TraceError
from repro.smp.trace import (ColumnarTrace, MemoryAccess, Workload,
                             as_columns)

ACCESSES = [MemoryAccess(False, 0x100, 2),
            MemoryAccess(True, 0x140, 0),
            MemoryAccess(False, 0x100, 5)]


def make_trace() -> ColumnarTrace:
    return ColumnarTrace.from_accesses(ACCESSES)


def test_roundtrip_and_len():
    trace = make_trace()
    assert len(trace) == 3
    assert list(trace) == ACCESSES
    assert trace[1] == MemoryAccess(True, 0x140, 0)
    assert trace[-1] == ACCESSES[-1]


def test_slice_returns_columnar():
    head = make_trace()[:2]
    assert isinstance(head, ColumnarTrace)
    assert list(head) == ACCESSES[:2]


def test_equality_across_representations():
    trace = make_trace()
    assert trace == make_trace()
    assert trace == list(ACCESSES)
    assert trace == tuple(ACCESSES)
    assert trace != ACCESSES[:2]
    assert ColumnarTrace() == []


def test_append():
    trace = ColumnarTrace()
    for access in ACCESSES:
        trace.append(access.is_write, access.address, access.gap)
    assert trace == make_trace()


def test_relocated():
    moved = make_trace().relocated(0x1000)
    assert [access.address for access in moved] == \
        [0x1100, 0x1140, 0x1100]
    assert [access.is_write for access in moved] == \
        [access.is_write for access in ACCESSES]


def test_columns_and_as_columns():
    trace = make_trace()
    writes, addresses, gaps = as_columns(trace)
    assert list(writes) == [0, 1, 0]
    assert list(addresses) == [0x100, 0x140, 0x100]
    assert list(gaps) == [2, 0, 5]
    # Row-major input converts too.
    writes2, addresses2, gaps2 = as_columns(list(ACCESSES))
    assert list(addresses2) == list(addresses)


def test_validate_rejects_bad_records():
    bad = ColumnarTrace.from_accesses([MemoryAccess(False, -4, 0)])
    with pytest.raises(TraceError):
        bad.validate(0)
    with pytest.raises(TraceError):
        ColumnarTrace.from_accesses(
            [MemoryAccess(False, 4, -1)]).validate(0)


def test_workload_validates_columnar_traces():
    with pytest.raises(TraceError):
        Workload("bad",
                 [ColumnarTrace.from_accesses([MemoryAccess(False, -4, 0)])])


def test_workload_validate_flag_skips_the_scan():
    """validate=False admits records the validating path rejects —
    proof that truncated()/combine() copies skip the O(n) re-scan."""
    trace = ColumnarTrace.from_accesses([MemoryAccess(False, -4, 0)])
    workload = Workload("trusted", [trace], validate=False)
    assert workload.total_accesses == 1


def test_truncated_skips_revalidation():
    traces = [ColumnarTrace.from_accesses(ACCESSES)]
    workload = Workload("toy", traces)
    short = workload.truncated(2)
    assert short.total_accesses == 2
    assert isinstance(short.accesses_for(0), ColumnarTrace)
