"""The fast engine must be *bit-identical* to the seed engine.

Two layers of defence:

- ``golden_engine.json`` pins cycles, per-CPU cycles, and a hash of the
  full statistics dict for every SPLASH-2 model x machine flavour x
  seed, captured from the pre-fastpath engine. Any timing drift in the
  rewrite shows up as a golden mismatch.
- ``run()`` (fast path) is compared field-for-field against
  ``run_reference()`` (the original loop, kept as the executable
  specification) on live simulations, including a SENSS machine whose
  bus layer re-enters the miss path.
"""

import hashlib
import json
import pathlib

import pytest

from repro.config import e6000_config
from repro.sim.sweep import build_system
from repro.workloads.registry import SPLASH2_NAMES, generate

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent.parent / "data"
     / "golden_engine.json").read_text())

KINDS = ("baseline", "senss", "integrated")


def config_for(kind: str):
    config = e6000_config(num_processors=GOLDEN["num_cpus"],
                          l2_mb=GOLDEN["l2_mb"],
                          senss_enabled=(kind != "baseline"))
    if kind == "integrated":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    return config


def stats_digest(stats: dict) -> str:
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True).encode()).hexdigest()


@pytest.mark.parametrize("kind", KINDS)
@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_golden_equivalence(name, kind):
    """Every model/flavour/seed reproduces the seed engine exactly."""
    for seed in (0, 1, 2):
        workload = generate(name, GOLDEN["num_cpus"],
                            scale=GOLDEN["scale"], seed=seed)
        result = build_system(config_for(kind)).run(workload)
        expected = GOLDEN["runs"][f"{name}|{kind}|{seed}"]
        assert workload.total_accesses == expected["total_accesses"]
        assert result.cycles == expected["cycles"], (name, kind, seed)
        assert list(result.per_cpu_cycles) == expected["per_cpu_cycles"]
        assert result.stats.get("bus.transactions", 0) == \
            expected["bus_transactions"]
        assert stats_digest(result.stats) == expected["stats_sha256"], (
            name, kind, seed)


@pytest.mark.parametrize("kind", KINDS)
def test_fast_matches_reference_engine(kind):
    """run() and run_reference() agree on every result field."""
    workload = generate("ocean", 4, scale=0.1, seed=7)
    fast = build_system(config_for(kind)).run(workload)
    reference = build_system(config_for(kind)).run_reference(workload)
    assert fast.cycles == reference.cycles
    assert list(fast.per_cpu_cycles) == list(reference.per_cpu_cycles)
    assert fast.stats == reference.stats
    assert fast.workload == reference.workload
    assert fast.num_cpus == reference.num_cpus


def test_fast_matches_reference_two_cpus():
    workload = generate("radix", 2, scale=0.1, seed=3)
    config = e6000_config(num_processors=2, l2_mb=4)
    fast = build_system(config).run(workload)
    reference = build_system(config).run_reference(workload)
    assert fast.cycles == reference.cycles
    assert fast.stats == reference.stats
