"""Slow-path equivalence: miss-heavy runs pin the streamlined pipeline.

The fast-path goldens (``golden_engine.json``) run at >90% hit rates,
so misses, upgrades, write-backs and the security layers behind them
are a sliver of those runs. This suite pins the *slow path* (DESIGN.md
§6c): the ocean model on an 8 KB L2, where every flavour spends the
majority of references off the hit path (<60% hit rate, asserted).

Same two layers of defence as the fast-path suite:

- ``golden_missheavy.json`` pins cycles, per-CPU cycles, and a hash of
  the full statistics dict, captured before the slow-path
  streamlining (pre-bound contexts, deferred stats, transaction
  reuse) landed;
- ``run()`` is compared field-for-field against ``run_reference()``
  on live miss-heavy simulations.
"""

import hashlib
import json
import pathlib

import pytest

from repro.config import KB, e6000_config
from repro.sim.sweep import build_system
from repro.workloads.registry import generate

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent.parent / "data"
     / "golden_missheavy.json").read_text())

KINDS = ("baseline", "senss", "integrated", "integrated-wu",
         "integrated-lazy")


def config_for(kind: str):
    config = e6000_config(num_processors=GOLDEN["num_cpus"],
                          senss_enabled=(kind != "baseline"))
    config = config.with_l2_size(GOLDEN["l2_kb"] * KB)
    if kind == "integrated":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    elif kind == "integrated-wu":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True,
                                        pad_protocol="write-update")
    elif kind == "integrated-lazy":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True,
                                        lazy_verification=True)
    return config


def stats_digest(stats: dict) -> str:
    return hashlib.sha256(
        json.dumps(stats, sort_keys=True).encode()).hexdigest()


def hit_rate(stats: dict) -> float:
    hits = sum(v for k, v in stats.items()
               if k.endswith("l1_hit") or k.endswith("l2_hit"))
    slow = sum(v for k, v in stats.items()
               if k.endswith("l2_miss") or k.endswith("upgrade_needed"))
    return hits / (hits + slow)


@pytest.mark.parametrize("kind", KINDS)
def test_golden_missheavy(kind):
    """Miss-heavy runs reproduce the pre-streamlining engine exactly."""
    for seed in (0, 1):
        workload = generate(GOLDEN["workload"], GOLDEN["num_cpus"],
                            scale=GOLDEN["scale"], seed=seed)
        result = build_system(config_for(kind)).run(workload)
        expected = GOLDEN["runs"][f"{kind}|{seed}"]
        assert workload.total_accesses == expected["total_accesses"]
        assert result.cycles == expected["cycles"], (kind, seed)
        assert list(result.per_cpu_cycles) == expected["per_cpu_cycles"]
        assert result.stats.get("bus.transactions", 0) == \
            expected["bus_transactions"]
        assert stats_digest(result.stats) == expected["stats_sha256"], (
            kind, seed)
        # The whole point of this suite: the runs must actually be
        # miss-heavy, or the slow path is not what is being pinned.
        rate = hit_rate(result.stats)
        assert rate < 0.60, (kind, seed, rate)
        assert abs(rate - expected["hit_rate"]) < 5e-5


@pytest.mark.parametrize("kind", KINDS)
def test_fast_matches_reference_missheavy(kind):
    """run() and run_reference() agree on a miss-heavy machine."""
    workload = generate(GOLDEN["workload"], GOLDEN["num_cpus"],
                        scale=GOLDEN["scale"], seed=5)
    fast = build_system(config_for(kind)).run(workload)
    reference = build_system(config_for(kind)).run_reference(workload)
    assert hit_rate(fast.stats) < 0.60
    assert fast.cycles == reference.cycles
    assert list(fast.per_cpu_cycles) == list(reference.per_cpu_cycles)
    assert fast.stats == reference.stats
    assert fast.workload == reference.workload
    assert fast.num_cpus == reference.num_cpus
