"""Smoke tests: every example script must run cleanly."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parents[2] / "examples").glob("*.py"))
FAST_ARGS = {
    "quickstart.py": ["lu", "2"],
    "figure_sweep.py": ["lu"],
}


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    argv = [str(script)] + FAST_ARGS.get(script.name, [])
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it shows


def test_example_inventory():
    """The README promises at least these examples."""
    names = {script.name for script in EXAMPLES}
    assert {"quickstart.py", "secure_program_dispatch.py",
            "attack_demonstration.py", "break_pad_reuse.py",
            "mask_pipeline.py", "memory_integrity.py",
            "figure_sweep.py", "multiprogramming.py"} <= names
