"""Cross-layer combination tests: every feature pair must compose."""

from dataclasses import replace

import pytest

from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.smp.metrics import slowdown_percent
from repro.smp.system import SmpSystem
from repro.workloads.micro import pad_churn, ping_pong
from repro.workloads.registry import generate


def run_config(config, workload):
    return build_secure_system(config).run(workload)


@pytest.fixture(scope="module")
def workload():
    return generate("ocean", 2, scale=0.1)


def test_senss_plus_memprotect_plus_masks(workload):
    config = e6000_config(num_processors=2, auth_interval=10)
    config = config.with_masks(2).with_memprotect(
        encryption_enabled=True, integrity_enabled=True)
    result = run_config(config, workload)
    assert result.stat("senss.protected_messages") > 0
    assert result.stat("memprotect.hash_fetches") > 0
    assert result.stat("memprotect.decryptions") > 0


def test_split_bus_composes_with_memprotect(workload):
    config = e6000_config(num_processors=2)
    config = replace(config, bus=replace(config.bus,
                                         split_transaction=True))
    config = config.with_memprotect(encryption_enabled=True,
                                    integrity_enabled=True)
    result = run_config(config, workload)
    assert result.stat("memprotect.hash_fetches") > 0
    assert result.cycles > 0


def test_split_bus_composes_with_moesi(workload):
    config = e6000_config(num_processors=2).with_protocol("MOESI")
    config = replace(config, bus=replace(config.bus,
                                         split_transaction=True))
    result = run_config(config, workload)
    assert result.stat("coherence.dirty_interventions") == 0


def test_moesi_composes_with_memprotect():
    """MOESI keeps dirty lines on-chip: fewer memory fetches means
    fewer hash verifications than MESI on a dirty-sharing workload."""
    workload = ping_pong(rounds=100)
    results = {}
    for protocol in ("MESI", "MOESI"):
        config = e6000_config(num_processors=2).with_protocol(protocol)
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
        results[protocol] = run_config(config, workload)
    assert (results["MOESI"].stat("memprotect.hash_fetches")
            <= results["MESI"].stat("memprotect.hash_fetches"))


def test_lazy_plus_direct_mode():
    config = e6000_config(num_processors=2).with_memprotect(
        encryption_enabled=True, encryption_mode="direct",
        integrity_enabled=True, lazy_verification=True)
    result = run_config(config, pad_churn(2, rounds=20))
    assert result.stat("memprotect.direct_decrypt_stalls") > 0
    assert result.stat("memprotect.lazy_hash_updates") > 0
    assert result.stat("memprotect.hash_fetches") == 0


def test_interval_one_with_finite_masks_and_memprotect(workload):
    """The kitchen sink: highest security level everywhere."""
    config = e6000_config(num_processors=2, auth_interval=1)
    config = config.with_masks(1).with_memprotect(
        encryption_enabled=True, integrity_enabled=True)
    base = SmpSystem(config.with_senss(False)).run(workload)
    secured = run_config(config, workload)
    assert secured.auth_messages == secured.cache_to_cache_transfers
    assert slowdown_percent(base, secured) > 0


def test_msi_with_senss_counts_more_unprotected_traffic(workload):
    """MSI's extra upgrades are address-only: they increase bus
    transactions without increasing protected messages."""
    mesi_cfg = e6000_config(num_processors=2)
    msi_cfg = mesi_cfg.with_protocol("MSI")
    mesi = run_config(mesi_cfg, workload)
    msi = run_config(msi_cfg, workload)
    assert msi.stat("bus.tx.BusUpgr") > mesi.stat("bus.tx.BusUpgr")
    # Upgrades carry no data: never counted as protected.
    assert (msi.stat("senss.protected_messages")
            == msi.cache_to_cache_transfers)
