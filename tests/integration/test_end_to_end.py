"""End-to-end shape tests: small-scale versions of the paper's claims.

These check the *direction and rough magnitude* of every headline
result on fast, reduced-scale workloads; the benches regenerate the
full figures.
"""

import pytest

from repro import (SmpSystem, build_secure_system, e6000_config, generate,
                   slowdown_percent, traffic_increase_percent)

SCALE = 0.2


def run_pair(config, workload):
    base = SmpSystem(config.with_senss(False)).run(workload)
    secured = build_secure_system(config).run(workload)
    return base, secured


@pytest.fixture(scope="module")
def lu_workload():
    return generate("lu", 4, scale=SCALE)


def test_senss_slowdown_is_small_at_interval_100(lu_workload):
    """Figure 6 regime: interval-100 slowdown well under a few %."""
    config = e6000_config(num_processors=4, auth_interval=100)
    base, secured = run_pair(config, lu_workload)
    assert abs(slowdown_percent(base, secured)) < 3.0


def test_traffic_increase_is_small_at_interval_100(lu_workload):
    """Figure 8 regime: interval-100 traffic increase ~1% or less."""
    config = e6000_config(num_processors=4, auth_interval=100)
    base, secured = run_pair(config, lu_workload)
    assert abs(traffic_increase_percent(base, secured)) < 5.0


def test_interval_sweep_monotone_traffic(lu_workload):
    """Figure 9: shorter intervals -> strictly more traffic."""
    config = e6000_config(num_processors=4)
    base = SmpSystem(config.with_senss(False)).run(lu_workload)
    increases = []
    for interval in (100, 10, 1):
        secured = build_secure_system(
            config.with_auth_interval(interval)).run(lu_workload)
        increases.append(traffic_increase_percent(base, secured))
    assert increases[0] < increases[1] < increases[2]


def test_interval_one_traffic_matches_c2c_share(lu_workload):
    """At interval 1 every c2c transfer adds one MAC broadcast, so the
    transaction increase ~= the cache-to-cache share of traffic."""
    config = e6000_config(num_processors=4, auth_interval=1)
    base, secured = run_pair(config, lu_workload)
    c2c_share = 100.0 * (secured.cache_to_cache_transfers
                         / base.total_bus_transactions)
    assert traffic_increase_percent(base, secured) == pytest.approx(
        c2c_share, rel=0.25)


def test_mask_count_ordering(lu_workload):
    """Figure 7: one mask is clearly worst; 4 masks ~ perfect.

    Strict monotonicity cannot be asserted: tiny stalls reorder racy
    accesses and occasionally *help* (the section 7.8 variability the
    paper itself observes), so compare with tolerances.
    """
    config = e6000_config(num_processors=4)
    cycles = {}
    stalls = {}
    for masks in (None, 4, 2, 1):
        system = build_secure_system(config.with_masks(masks))
        result = system.run(lu_workload)
        cycles[masks] = result.cycles
        stalls[masks] = result.stat("senss.mask_wait_cycles")
    # Stall cycles ARE monotone (they do not feed back through traces).
    assert stalls[None] == 0
    assert stalls[4] <= stalls[2] <= stalls[1]
    assert stalls[1] > stalls[4]
    # End-to-end: 1 mask visibly slower; 4 masks within noise of perfect.
    assert cycles[1] > cycles[None] * 1.002
    assert abs(cycles[4] - cycles[None]) <= 0.005 * cycles[None]


def test_memprotect_dominates_senss(lu_workload):
    """Figure 10: integrated memory protection costs far more than
    bus protection alone, in both time and traffic."""
    config = e6000_config(num_processors=4)
    base = SmpSystem(config.with_senss(False)).run(lu_workload)
    senss_only = build_secure_system(config).run(lu_workload)
    integrated = build_secure_system(config.with_memprotect(
        encryption_enabled=True, integrity_enabled=True)).run(lu_workload)
    assert (slowdown_percent(base, integrated)
            > slowdown_percent(base, senss_only) + 1.0)
    assert (traffic_increase_percent(base, integrated)
            > traffic_increase_percent(base, senss_only) + 1.0)


def test_lazy_verification_cheaper_than_chash(lu_workload):
    """Section 7.7's LHash remark: lazy verification must beat the
    eager tree walk."""
    config = e6000_config(num_processors=4)
    eager = build_secure_system(config.with_memprotect(
        encryption_enabled=True, integrity_enabled=True)).run(lu_workload)
    lazy = build_secure_system(config.with_memprotect(
        encryption_enabled=True, integrity_enabled=True,
        lazy_verification=True)).run(lu_workload)
    assert lazy.cycles < eager.cycles
    assert lazy.total_bus_transactions < eager.total_bus_transactions


def test_private_workload_sees_no_senss_cost():
    """No sharing -> no protected messages -> (almost) zero overhead."""
    from repro.workloads.micro import private_stream
    workload = private_stream(num_cpus=2, refs_per_cpu=500)
    config = e6000_config(num_processors=2, auth_interval=1)
    base, secured = run_pair(config, workload)
    assert secured.cycles == base.cycles
    assert secured.auth_messages == 0


def test_more_processors_more_relative_overhead():
    """Figure 6's trend: overhead grows with cache-to-cache volume,
    which grows with the processor count (same per-CPU work)."""
    results = {}
    for cpus in (2, 4):
        workload = generate("ocean", cpus, scale=SCALE)
        config = e6000_config(num_processors=cpus, auth_interval=1)
        base, secured = run_pair(config, workload)
        results[cpus] = (secured.cache_to_cache_transfers
                         / base.total_bus_transactions)
    assert results[4] > results[2]


def test_determinism_of_full_pipeline():
    workload = generate("fft", 2, scale=0.1, seed=5)
    config = e6000_config(num_processors=2)
    first = build_secure_system(config).run(workload)
    second = build_secure_system(config).run(workload)
    assert first.cycles == second.cycles
    assert first.stats == second.stats
