"""System-level property tests (hypothesis over random traces)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.mesi import MesiState
from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.smp.system import SmpSystem
from repro.smp.trace import MemoryAccess, Workload

LINES = [0x1000, 0x1040, 0x2000, 0x9000]


def random_workload(operations, num_cpus=2):
    traces = [[] for _ in range(num_cpus)]
    for cpu, is_write, line_index, gap in operations:
        traces[cpu % num_cpus].append(
            MemoryAccess(is_write, LINES[line_index % len(LINES)],
                         gap))
    for trace in traces:
        if not trace:
            trace.append(MemoryAccess(False, LINES[0], 0))
    return Workload("random", traces)


operations_strategy = st.lists(
    st.tuples(st.integers(0, 1), st.booleans(), st.integers(0, 3),
              st.integers(0, 50)),
    min_size=1, max_size=60)


@settings(max_examples=25, deadline=None)
@given(operations_strategy)
def test_post_run_coherence_invariants(operations):
    """After ANY access interleaving, SWMR holds on every line."""
    workload = random_workload(operations)
    system = SmpSystem(e6000_config(num_processors=2,
                                    senss_enabled=False))
    system.run(workload)
    for line in LINES:
        system.protocol.check_invariants(line)


@settings(max_examples=25, deadline=None)
@given(operations_strategy)
def test_miss_accounting_matches_bus_traffic(operations):
    """Every L2 miss produces exactly one BusRd/BusRdX transaction
    (hash/pad traffic excluded: memory protection disabled here)."""
    workload = random_workload(operations)
    system = SmpSystem(e6000_config(num_processors=2,
                                    senss_enabled=False))
    result = system.run(workload)
    misses = sum(result.stat(f"cpu{cpu}.l2_miss") for cpu in range(2))
    fetches = (result.stat("bus.tx.BusRd")
               + result.stat("bus.tx.BusRdX"))
    assert misses == fetches


@settings(max_examples=25, deadline=None)
@given(operations_strategy)
def test_senss_never_reduces_per_message_security_accounting(operations):
    """The secured run's protected-message count equals its own
    cache-to-cache transfer count, and MAC broadcasts are consistent
    with the interval."""
    workload = random_workload(operations)
    config = e6000_config(num_processors=2, auth_interval=3)
    secured = build_secure_system(config).run(workload)
    assert (secured.stat("senss.protected_messages")
            == secured.cache_to_cache_transfers)
    assert secured.auth_messages == \
        secured.cache_to_cache_transfers // 3


@settings(max_examples=20, deadline=None)
@given(operations_strategy)
def test_clocks_monotone_and_final_states_valid(operations):
    workload = random_workload(operations)
    system = SmpSystem(e6000_config(num_processors=2,
                                    senss_enabled=False))
    result = system.run(workload)
    assert all(cycles >= 0 for cycles in result.per_cpu_cycles)
    assert result.cycles == max(result.per_cpu_cycles)
    for hierarchy in system.hierarchies:
        for _, line in hierarchy.l2.iter_lines():
            assert line.state in (MesiState.MODIFIED,
                                  MesiState.EXCLUSIVE,
                                  MesiState.SHARED)


@settings(max_examples=10, deadline=None)
@given(operations_strategy,
       st.integers(min_value=1, max_value=8))
def test_functional_group_survives_random_traffic(operations, masks):
    """Random sender/payload streams keep all SHU replicas in sync and
    pass every authentication round."""
    from repro.core.attacks import SecureBusFabric
    from repro.core.authentication import AuthenticationManager
    from repro.core.bus_crypto import channels_in_sync
    from repro.core.shu import SecurityHardwareUnit

    members = set(range(3))
    shus = [SecurityHardwareUnit(pid, max_processors=4)
            for pid in range(3)]
    for shu in shus:
        shu.join_group(1, members, bytes(range(16)),
                       bytes([0xA0 + i for i in range(16)]),
                       bytes([0x50 + i for i in range(16)]),
                       num_masks=masks, auth_interval=4)
    fabric = SecureBusFabric(
        shus, 1, AuthenticationManager(sorted(members), 4, 1))
    for cpu, is_write, line_index, gap in operations:
        payload = bytes([line_index % 251, gap % 251] * 16)
        fabric.transmit(cpu % 3, payload)
    fabric.finish()
    assert channels_in_sync([shu.channel(1) for shu in shus])
