"""Structural tests of the SPLASH-2 model generators.

These pin the *communication pattern* each generator claims to model —
the property the DESIGN.md substitution argument rests on.
"""


from repro.workloads.base import CONFLICT_BASE, PRIVATE_BASE, SHARED_BASE
from repro.workloads.registry import generate

SCALE = 0.1


def shared_accesses(workload, cpu):
    return [access for access in workload.traces[cpu]
            if SHARED_BASE <= access.address < CONFLICT_BASE]


class TestLu:
    def test_pivot_row_is_written_by_one_and_read_by_all(self):
        workload = generate("lu", 4, scale=SCALE)
        # Find a line that exactly one CPU writes and 3+ CPUs read:
        writers = {}
        readers = {}
        for cpu in range(4):
            for access in shared_accesses(workload, cpu):
                line = access.address // 64
                bucket = writers if access.is_write else readers
                bucket.setdefault(line, set()).add(cpu)
        pivot_lines = [line for line, who in writers.items()
                       if len(who) == 1
                       and len(readers.get(line, ())) >= 3]
        assert pivot_lines, "no single-producer/all-consumer lines"

    def test_producers_rotate(self):
        workload = generate("lu", 4, scale=SCALE)
        writers_per_cpu = [sum(a.is_write for a in
                               shared_accesses(workload, cpu))
                           for cpu in range(4)]
        assert all(count > 0 for count in writers_per_cpu)


class TestOcean:
    def test_boundary_rows_are_shared_with_neighbours_only(self):
        workload = generate("ocean", 4, scale=SCALE)
        touched = [set() for _ in range(4)]
        for cpu in range(4):
            for access in shared_accesses(workload, cpu):
                touched[cpu].add(access.address // 4096)  # row id
        # Adjacent strips overlap (boundary rows)...
        for cpu in range(3):
            assert touched[cpu] & touched[cpu + 1]
        # ...but distant strips do not.
        assert not (touched[0] & touched[3])


class TestBarnes:
    def test_read_mostly(self):
        workload = generate("barnes", 2, scale=SCALE)
        reads = writes = 0
        for cpu in range(2):
            for access in shared_accesses(workload, cpu):
                if access.is_write:
                    writes += 1
                else:
                    reads += 1
        assert reads > 10 * writes

    def test_all_cpus_walk_the_same_tree(self):
        workload = generate("barnes", 2, scale=SCALE)
        lines = [
            {a.address // 64 for a in shared_accesses(workload, cpu)}
            for cpu in range(2)]
        overlap = len(lines[0] & lines[1])
        assert overlap > 0.3 * min(len(lines[0]), len(lines[1]))


class TestRadix:
    def test_private_key_stream_plus_shared_buckets(self):
        workload = generate("radix", 2, scale=SCALE)
        private = shared = 0
        for _, access in workload.iter_flat():
            if access.address >= PRIVATE_BASE:
                private += 1
            else:
                shared += 1
        assert private > 0 and shared > 0

    def test_bucket_writes_are_read_modify_write(self):
        workload = generate("radix", 2, scale=SCALE)
        trace = workload.traces[0]
        rmw = sum(1 for first, second in zip(trace, trace[1:])
                  if (not first.is_write and second.is_write
                      and first.address == second.address
                      and first.address < PRIVATE_BASE))
        assert rmw > 0


class TestFft:
    def test_transpose_reads_other_cpus_chunks(self):
        workload = generate("fft", 2, scale=SCALE)
        # Each CPU's chunk: lines it WRITES; transpose: lines it READS
        # from the other CPU's chunk.
        writes = [
            {a.address // 64 for a in shared_accesses(workload, cpu)
             if a.is_write}
            for cpu in range(2)]
        reads = [
            {a.address // 64 for a in shared_accesses(workload, cpu)
             if not a.is_write}
            for cpu in range(2)]
        assert reads[0] & writes[1]
        assert reads[1] & writes[0]

    def test_tiles_are_revisited(self):
        """The butterfly makes multiple passes per tile: shared lines
        are touched far more often than once."""
        workload = generate("fft", 2, scale=SCALE)
        counts = {}
        for access in shared_accesses(workload, 0):
            counts[access.address // 64] = \
                counts.get(access.address // 64, 0) + 1
        assert max(counts.values()) >= 4
