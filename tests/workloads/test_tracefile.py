"""Trace file I/O tests."""

import pytest

from repro.errors import TraceError
from repro.smp.trace import MemoryAccess
from repro.workloads.registry import generate
from repro.workloads.tracefile import load_workload, save_workload


def test_roundtrip(tmp_path):
    original = generate("lu", 2, scale=0.05)
    path = tmp_path / "lu.trace"
    save_workload(original, path)
    loaded = load_workload(path)
    assert loaded.traces == original.traces
    assert loaded.name == original.name
    assert loaded.metadata["scale"] == "0.05"


def test_hand_written_file(tmp_path):
    path = tmp_path / "hand.trace"
    path.write_text("""
# workload: hand
# cpus: 2
# meta source=manual
0 R 0x1000 3
1 W 4096 0
0 w 0x1040 2
""")
    workload = load_workload(path)
    assert workload.name == "hand"
    assert workload.num_cpus == 2
    assert workload.metadata == {"source": "manual"}
    assert workload.traces[0] == [MemoryAccess(False, 0x1000, 3),
                                  MemoryAccess(True, 0x1040, 2)]
    assert workload.traces[1] == [MemoryAccess(True, 4096, 0)]


def test_name_defaults_to_stem(tmp_path):
    path = tmp_path / "mystery.trace"
    path.write_text("0 R 0x0 0\n")
    assert load_workload(path).name == "mystery"


def test_loaded_trace_runs(tmp_path):
    from repro.config import e6000_config
    from repro.smp.system import SmpSystem
    save_workload(generate("fft", 2, scale=0.05),
                  tmp_path / "fft.trace")
    workload = load_workload(tmp_path / "fft.trace")
    result = SmpSystem(e6000_config(num_processors=2,
                                    senss_enabled=False)).run(workload)
    assert result.total_bus_transactions > 0


def test_missing_file():
    with pytest.raises(TraceError):
        load_workload("/nonexistent/file.trace")


def test_empty_file(tmp_path):
    path = tmp_path / "empty.trace"
    path.write_text("# nothing here\n")
    with pytest.raises(TraceError):
        load_workload(path)


def test_malformed_records(tmp_path):
    for bad in ("0 R 0x1000", "0 X 0x1000 1", "0 R zzz 1",
                "q R 0x1000 1"):
        path = tmp_path / "bad.trace"
        path.write_text(bad + "\n")
        with pytest.raises(TraceError):
            load_workload(path)


def test_declared_cpu_mismatch(tmp_path):
    path = tmp_path / "bad.trace"
    path.write_text("# cpus: 1\n1 R 0x0 0\n")
    with pytest.raises(TraceError):
        load_workload(path)


def test_declared_cpus_pad_idle_processors(tmp_path):
    path = tmp_path / "idle.trace"
    path.write_text("# cpus: 3\n0 R 0x0 0\n")
    workload = load_workload(path)
    assert workload.num_cpus == 3
    assert workload.traces[2] == []
