"""Workload generator tests: determinism, structure, sharing shape."""

import pytest

from repro.config import e6000_config
from repro.errors import TraceError
from repro.smp.system import SmpSystem
from repro.workloads import (SPLASH2_NAMES, false_sharing, generate,
                             ping_pong, private_stream, producer_consumer)
from repro.workloads.base import PRIVATE_BASE, make_builders, private_base

SCALE = 0.05  # keep unit tests fast


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_generators_are_deterministic(name):
    first = generate(name, 2, scale=SCALE, seed=7)
    second = generate(name, 2, scale=SCALE, seed=7)
    assert first.traces == second.traces


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_seed_changes_traces(name):
    first = generate(name, 2, scale=SCALE, seed=7)
    second = generate(name, 2, scale=SCALE, seed=8)
    assert first.traces != second.traces


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_cpu_count_respected(name):
    for num_cpus in (2, 4):
        workload = generate(name, num_cpus, scale=SCALE)
        assert workload.num_cpus == num_cpus
        assert all(len(trace) > 0 for trace in workload.traces)


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_scale_grows_traces(name):
    # Scales chosen above every generator's minimum-work clamp.
    small = generate(name, 2, scale=0.3)
    large = generate(name, 2, scale=1.0)
    assert large.total_accesses > small.total_accesses


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_workloads_mix_shared_and_private(name):
    workload = generate(name, 2, scale=SCALE)
    shared = private = 0
    for _, access in workload.iter_flat():
        if access.address >= PRIVATE_BASE:
            private += 1
        else:
            shared += 1
    assert shared > 0
    assert private >= 0  # some generators are fully shared by design


@pytest.mark.parametrize("name", SPLASH2_NAMES)
def test_workloads_produce_cache_to_cache_traffic(name):
    """Every SPLASH-2 model must exercise the bus SENSS protects."""
    workload = generate(name, 4, scale=0.15)
    system = SmpSystem(e6000_config(num_processors=4).with_senss(False))
    result = system.run(workload)
    assert result.cache_to_cache_transfers > 0


def test_unknown_workload_rejected():
    with pytest.raises(TraceError):
        generate("quicksort", 2)


def test_false_sharing_touches_one_line_from_both_cpus():
    workload = false_sharing(num_cpus=2, rounds=5)
    line_words = set()
    for cpu, access in workload.iter_flat():
        if access.address < PRIVATE_BASE:
            line_words.add((cpu, access.address))
    cpus = {cpu for cpu, _ in line_words}
    lines = {address // 64 for _, address in line_words}
    assert cpus == {0, 1}
    assert len(lines) == 1  # all shared traffic within ONE cache line


def test_false_sharing_needs_two_cpus():
    with pytest.raises(TraceError):
        false_sharing(num_cpus=1)


def test_ping_pong_alternates_writers():
    workload = ping_pong(rounds=10)
    assert workload.num_cpus == 2
    for trace in workload.traces:
        assert all(access.is_write for access in trace)
        assert len({access.address for access in trace}) == 1


def test_producer_consumer_roles():
    workload = producer_consumer(num_cpus=3, items=10)
    producer_writes = sum(a.is_write for a in workload.traces[0])
    consumer_writes = sum(a.is_write for a in workload.traces[1])
    assert producer_writes > 0
    assert consumer_writes == 0


def test_private_stream_has_no_sharing():
    workload = private_stream(num_cpus=2, refs_per_cpu=50)
    for cpu, access in workload.iter_flat():
        base = private_base(cpu)
        assert base <= access.address < base + (1 << 24)


def test_trace_builder_compute_padding():
    builder = make_builders(1, seed=1)[0]
    builder.compute(500)
    accesses = builder.build()
    assert accesses[0].gap == 500


def test_metadata_recorded():
    workload = generate("fft", 2, scale=SCALE, seed=3)
    assert workload.metadata["scale"] == SCALE
    assert "shared_bytes" in workload.metadata
