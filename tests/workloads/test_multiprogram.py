"""Multiprogrammed (multi-group) workload tests."""

import pytest

from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.errors import TraceError
from repro.smp.system import SmpSystem
from repro.workloads.micro import ping_pong, producer_consumer
from repro.workloads.multiprogram import (PROGRAM_ADDRESS_STRIDE, combine,
                                          run_multiprogrammed)


def programs():
    return [ping_pong(rounds=40), producer_consumer(num_cpus=2,
                                                    items=40)]


def test_combine_shapes():
    combined, cpu_groups, placements = combine(programs())
    assert combined.num_cpus == 4
    assert cpu_groups == [0, 0, 1, 1]
    assert placements[1].first_cpu == 2
    assert "+" in combined.name


def test_address_spaces_are_disjoint():
    combined, cpu_groups, _ = combine(programs())
    ranges = {0: set(), 1: set()}
    for cpu, trace in enumerate(combined.traces):
        for access in trace:
            ranges[cpu_groups[cpu]].add(
                access.address // PROGRAM_ADDRESS_STRIDE)
    assert ranges[0].isdisjoint(ranges[1])


def test_custom_group_ids():
    combined, cpu_groups, _ = combine(programs(), group_ids=[5, 9])
    assert cpu_groups == [5, 5, 9, 9]


def test_validation():
    with pytest.raises(TraceError):
        combine([])
    with pytest.raises(TraceError):
        combine(programs(), group_ids=[1])
    # Two programs MAY share one group (Figure 1 allows overlap).
    _, cpu_groups, _ = combine(programs(), group_ids=[2, 2])
    assert cpu_groups == [2, 2, 2, 2]


def test_groups_get_independent_auth_streams():
    """Each group counts its own cache-to-cache transfers and injects
    its own MAC broadcasts (section 4.2 per-group masks/counters)."""
    config = e6000_config(num_processors=4, auth_interval=10)
    system = build_secure_system(config)
    result, placements = run_multiprogrammed(system, programs())
    layer = system.bus.security_layer
    state_0 = layer.group_state(0)
    state_1 = layer.group_state(1)
    assert state_0.protected_messages > 0
    assert state_1.protected_messages > 0
    assert state_0.member_pids == [0, 1]
    assert state_1.member_pids == [2, 3]
    # MAC broadcasts per group track that group's own transfer count.
    assert state_0.auth_broadcasts == state_0.protected_messages // 10
    assert state_1.auth_broadcasts == state_1.protected_messages // 10
    assert result.stat("senss.group0.messages") == \
        state_0.protected_messages
    assert result.stat("senss.group1.messages") == \
        state_1.protected_messages


def test_initiators_rotate_within_group_members_only():
    config = e6000_config(num_processors=4, auth_interval=5)
    system = build_secure_system(config)
    initiators = {0: [], 1: []}
    system.bus.add_observer(
        lambda tx: initiators[tx.group_id].append(tx.source_pid)
        if tx.type.value == "Auth00" else None)
    run_multiprogrammed(system, programs())
    assert set(initiators[0]) <= {0, 1}
    assert set(initiators[1]) <= {2, 3}
    assert initiators[0] and initiators[1]


def test_machine_capacity_enforced():
    config = e6000_config(num_processors=2)
    system = SmpSystem(config)
    with pytest.raises(TraceError):
        run_multiprogrammed(system, programs())


def test_baseline_machine_runs_multiprogram_too():
    """Group plumbing must not require the security layer."""
    config = e6000_config(num_processors=4, senss_enabled=False)
    system = SmpSystem(config)
    result, _ = run_multiprogrammed(system, programs())
    assert result.total_bus_transactions > 0
