"""Preset mix tests."""

import pytest

from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.errors import TraceError
from repro.workloads.mixes import MIXES, mix
from repro.workloads.multiprogram import run_multiprogrammed


@pytest.mark.parametrize("name", sorted(MIXES))
def test_mixes_build_and_fit_four_cpus(name):
    programs = mix(name, scale=0.1)
    assert len(programs) == 2
    assert sum(program.num_cpus for program in programs) == 4
    for program in programs:
        assert program.total_accesses > 0


@pytest.mark.parametrize("name", sorted(MIXES))
def test_mixes_run_under_senss(name):
    programs = mix(name, scale=0.1)
    system = build_secure_system(e6000_config(num_processors=4,
                                              auth_interval=20))
    result, placements = run_multiprogrammed(system, programs)
    assert result.total_bus_transactions > 0
    assert len(placements) == 2
    layer = system.bus.security_layer
    # Both groups carried traffic or at least exist with members.
    for placement in placements:
        state = layer.group_state(placement.group_id)
        assert len(state.member_pids) == 2


def test_unknown_mix_rejected():
    with pytest.raises(TraceError):
        mix("kitchen_sink")


def test_mixes_are_deterministic():
    first = mix("bandwidth_rivals", scale=0.1, seed=3)
    second = mix("bandwidth_rivals", scale=0.1, seed=3)
    assert [program.traces for program in first] == \
        [program.traces for program in second]
