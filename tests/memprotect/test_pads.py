"""Fast memory encryption (OTP pads) tests."""

import pytest

from repro.crypto.otp import xor_bytes
from repro.errors import CryptoError
from repro.memory.dram import MainMemory
from repro.memprotect.pads import FastMemoryEncryption

KEY = bytes(range(16))
LINE = 0x1000


@pytest.fixture
def engine():
    return FastMemoryEncryption(KEY, line_bytes=64)


@pytest.fixture
def memory():
    return MainMemory(64)


def test_store_load_roundtrip(engine, memory):
    data = bytes(range(64))
    engine.store(memory, LINE, data)
    assert engine.load(memory, LINE) == data


def test_memory_holds_ciphertext(engine, memory):
    data = bytes(range(64))
    engine.store(memory, LINE, data)
    assert memory.read_line(LINE) != data


def test_sequence_bumps_on_every_write(engine, memory):
    engine.store(memory, LINE, bytes(64))
    assert engine.sequence_of(LINE) == 1
    engine.store(memory, LINE, bytes(64))
    assert engine.sequence_of(LINE) == 2


def test_rewriting_same_data_changes_ciphertext(engine, memory):
    """Section 2.1: pads must differ per write, else regular data
    changes leak through regular ciphertext."""
    data = bytes([7] * 64)
    engine.store(memory, LINE, data)
    first = memory.read_line(LINE)
    engine.store(memory, LINE, data)
    assert memory.read_line(LINE) != first


def test_xor_of_two_ciphertexts_is_not_xor_of_plaintexts(engine, memory):
    """The section 3.1 break must NOT apply to sequence-keyed pads."""
    d1, d2 = bytes([1] * 64), bytes([2] * 64)
    engine.store(memory, LINE, d1)
    c1 = memory.read_line(LINE)
    engine.store(memory, LINE, d2)
    c2 = memory.read_line(LINE)
    assert xor_bytes(c1, c2) != xor_bytes(d1, d2)


def test_pads_differ_by_address(engine):
    assert engine.pad(0x1000, 1) != engine.pad(0x2000, 1)


def test_decrypt_with_explicit_sequence(engine, memory):
    data = bytes([3] * 64)
    engine.store(memory, LINE, data)
    ciphertext = memory.read_line(LINE)
    assert engine.decrypt_line(LINE, ciphertext, sequence=1) == data
    # The wrong sequence produces garbage — the stale-pad hazard that
    # forces pad coherence in SMPs (section 6.1).
    assert engine.decrypt_line(LINE, ciphertext, sequence=0) != data


def test_two_processors_with_synced_sequences_interoperate(memory):
    """Any group member can decrypt given the same key and the
    current sequence number."""
    writer = FastMemoryEncryption(KEY, 64)
    reader = FastMemoryEncryption(KEY, 64)
    data = bytes([9] * 64)
    writer.store(memory, LINE, data)
    assert reader.decrypt_line(LINE, memory.read_line(LINE),
                               sequence=writer.sequence_of(LINE)) == data


def test_line_size_validation():
    with pytest.raises(CryptoError):
        FastMemoryEncryption(KEY, line_bytes=50)
    engine = FastMemoryEncryption(KEY, 64)
    with pytest.raises(CryptoError):
        engine.encrypt_line(LINE, b"short")
    with pytest.raises(CryptoError):
        engine.decrypt_line(LINE, b"short")
