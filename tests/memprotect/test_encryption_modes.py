"""Direct vs OTP encryption-mode timing tests (section 2.1)."""

import pytest

from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.errors import ConfigError
from repro.smp.trace import MemoryAccess, Workload


def config_for(mode):
    return e6000_config(num_processors=1,
                        senss_enabled=False).with_memprotect(
        encryption_enabled=True, encryption_mode=mode)


def streaming_trace(lines=64):
    return Workload("stream", [[MemoryAccess(False, i * 64, 20)
                                for i in range(lines)]])


def test_direct_mode_stalls_every_fetch():
    direct = build_secure_system(config_for("direct")).run(
        streaming_trace())
    otp = build_secure_system(config_for("otp")).run(streaming_trace())
    assert direct.cycles > otp.cycles
    assert direct.stat("memprotect.direct_decrypt_stalls") > 0
    assert otp.stat("memprotect.direct_decrypt_stalls") == 0


def test_direct_mode_charges_pipelined_aes():
    """Each 64B line = 4 AES blocks through the pipelined unit:
    80 + 3*5 = 95 cycles of critical-path decryption per fetch."""
    result = build_secure_system(config_for("direct")).run(
        Workload("one", [[MemoryAccess(False, 0x1000, 0)]]))
    assert result.cycles == 180 + 95  # fetch, then the AES pipeline


def test_otp_mode_adds_one_cycle():
    result = build_secure_system(config_for("otp")).run(
        Workload("one", [[MemoryAccess(False, 0x1000, 0)]]))
    assert result.cycles == 180 + 1


def test_invalid_mode_rejected():
    with pytest.raises(ConfigError):
        e6000_config().with_memprotect(encryption_enabled=True,
                                       encryption_mode="quantum")


def test_direct_mode_still_detects_with_integrity():
    config = config_for("direct").with_memprotect(
        encryption_enabled=True, encryption_mode="direct",
        integrity_enabled=True)
    result = build_secure_system(config).run(streaming_trace(8))
    assert result.stat("memprotect.hash_fetches") > 0
