"""Integrated memory-protection timing layer tests (section 6)."""

import pytest

from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.errors import SimulationError
from repro.memprotect.integrated import HASH_BASE, MemProtectLayer
from repro.smp.trace import MemoryAccess, Workload


def config_with(encryption=True, integrity=True, lazy=False,
                protocol="write-invalidate", processors=2):
    config = e6000_config(num_processors=processors)
    return config.with_memprotect(encryption_enabled=encryption,
                                  integrity_enabled=integrity,
                                  lazy_verification=lazy,
                                  pad_protocol=protocol)


def R(addr, gap=0):
    return MemoryAccess(False, addr, gap)


def W(addr, gap=0):
    return MemoryAccess(True, addr, gap)


def test_layer_requires_a_mechanism():
    with pytest.raises(SimulationError):
        MemProtectLayer(e6000_config())


def test_geometry_roundtrip():
    layer = MemProtectLayer(config_with())
    level, index = layer.classify(0x12345 * 64)
    assert (level, index) == (0, 0x12345)
    parent = layer.parent_of(0x12345 * 64)
    p_level, p_index = layer.classify(parent)
    assert p_level == 1
    assert p_index == 0x12345 // layer.arity


def test_parent_chain_terminates_at_internal_levels():
    layer = MemProtectLayer(config_with())
    address = 0x1000
    hops = 0
    while True:
        parent = layer.parent_of(address)
        if parent is None:
            break
        assert parent >= HASH_BASE
        address = parent
        hops += 1
        assert hops < 40  # no infinite climb
    assert hops <= layer.internal_level


def test_memory_fetch_triggers_hash_fetches():
    system = build_secure_system(config_with())
    result = system.run(Workload("one", [[R(0x1000)]]))
    assert result.stat("memprotect.hash_fetches") >= 1
    # The data line AND every fetched hash-node line are decrypted.
    assert (result.stat("memprotect.decryptions")
            == 1 + result.stat("memprotect.hash_fetches"))


def test_cached_parent_skips_fetch():
    system = build_secure_system(config_with())
    # Two lines under the same level-1 parent, read back to back.
    result = system.run(Workload("pair", [[R(0x1000), R(0x1040, 500)]]))
    assert result.stat("memprotect.node_cache_hits") >= 1


def test_cache_to_cache_supply_skips_verification():
    """A line supplied by another trusted processor needs no tree walk
    — on_memory_fetch only fires for memory-supplied data."""
    system = build_secure_system(config_with())
    cold = Workload("c2c", [
        [R(0x1000)],
        [R(0x1000, 3000)],  # served cache-to-cache
    ])
    result = system.run(cold)
    fetches_for_two_readers = result.stat("memprotect.hash_fetches")
    single = build_secure_system(config_with())
    baseline = single.run(Workload("solo", [[R(0x1000)]]))
    assert (fetches_for_two_readers
            == baseline.stat("memprotect.hash_fetches"))


def test_writeback_updates_parent_hash():
    config = config_with()
    system = build_secure_system(config)
    l2 = config.l2
    step = l2.num_sets * l2.line_bytes
    trace = [W(way * step, 200 * way)
             for way in range(l2.associativity + 1)]
    result = system.run(Workload("evict", [trace]))
    assert result.stat("coherence.writebacks") >= 1
    assert result.stat("memprotect.hash_updates") >= 1
    assert result.stat("memprotect.encryptions") >= 1


def test_pad_request_on_remote_reread():
    """Writer evicts a dirty line; a second CPU fetching it from
    memory must issue the type-'10' pad request."""
    config = config_with(integrity=False)
    system = build_secure_system(config)
    l2 = config.l2
    step = l2.num_sets * l2.line_bytes
    victim_line = 0x0
    trace0 = [W(victim_line)]
    trace0 += [W(way * step, 100) for way in range(1, l2.associativity + 1)]
    trace1 = [R(victim_line, 50_000)]  # long after the eviction
    result = system.run(Workload("padreq", [trace0, trace1]))
    assert result.stat("memprotect.pad_requests") == 1
    assert result.stat("bus.tx.PadReq10") == 1


def test_pad_invalidate_on_shared_writeback():
    """Both CPUs read a line (both become pad holders); one dirties
    and evicts it -> type-'01' invalidate to the other holder."""
    config = config_with(integrity=False)
    system = build_secure_system(config)
    l2 = config.l2
    step = l2.num_sets * l2.line_bytes
    # Both CPUs read the line from memory at some point; CPU0 then
    # writes it and forces the eviction.
    trace0 = [W(0x0, 10_000)]
    trace0 += [W(way * step, 100) for way in range(1, l2.associativity + 1)]
    trace1 = [R(0x0)]
    # Make CPU1's copy go to memory first: CPU1 reads, CPU0 writes later.
    result = system.run(Workload("padinv", [trace0, trace1]))
    assert result.stat("memprotect.pad_invalidates") >= 1


def test_write_update_protocol_sends_data_updates():
    config = config_with(integrity=False, protocol="write-update")
    system = build_secure_system(config)
    l2 = config.l2
    step = l2.num_sets * l2.line_bytes
    trace0 = [W(0x0, 10_000)]
    trace0 += [W(way * step, 100) for way in range(1, l2.associativity + 1)]
    trace1 = [R(0x0)]
    result = system.run(Workload("padupd", [trace0, trace1]))
    assert result.stat("memprotect.pad_updates") >= 1
    assert result.stat("memprotect.pad_invalidates") == 0


def test_lazy_verification_skips_tree_traffic():
    eager = build_secure_system(config_with())
    lazy = build_secure_system(config_with(lazy=True))
    trace = [[R(index * 64, 100) for index in range(32)]]
    eager_result = eager.run(Workload("eager", trace))
    lazy_result = lazy.run(Workload("lazy", [list(trace[0])]))
    assert lazy_result.stat("memprotect.hash_fetches") == 0
    assert lazy_result.stat("memprotect.lazy_hash_updates") > 0
    assert (lazy_result.total_bus_transactions
            < eager_result.total_bus_transactions)


def test_hash_lines_pollute_the_l2():
    """Tree nodes are cached in the regular L2: after a run with
    integrity on, node addresses are resident in the data cache."""
    system = build_secure_system(config_with())
    system.run(Workload("pollute", [[R(0x1000)]]))
    hierarchy = system.hierarchies[0]
    resident = [addr for addr, _ in hierarchy.l2.iter_lines()
                if addr >= HASH_BASE]
    assert resident
