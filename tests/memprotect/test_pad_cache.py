"""Pad cache and pad coherence directory tests (section 6.1)."""

import pytest

from repro.errors import ConfigError
from repro.memprotect.pad_cache import PadCache, PadCoherenceDirectory


class TestPadCache:
    def test_miss_then_hit(self):
        cache = PadCache(capacity=4)
        assert cache.lookup(0x40) is None
        cache.install(0x40, 3)
        assert cache.lookup(0x40) == 3
        assert (cache.hits, cache.misses) == (1, 1)

    def test_lru_eviction(self):
        cache = PadCache(capacity=2)
        cache.install(0x40, 1)
        cache.install(0x80, 1)
        cache.lookup(0x40)          # refresh
        cache.install(0xC0, 1)      # evicts 0x80
        assert cache.lookup(0x80) is None
        assert cache.lookup(0x40) == 1

    def test_perfect_cache_never_evicts(self):
        cache = PadCache(capacity=None)
        for index in range(1000):
            cache.install(index * 64, index)
        assert len(cache) == 1000

    def test_invalidate(self):
        cache = PadCache(4)
        cache.install(0x40, 1)
        assert cache.invalidate(0x40)
        assert not cache.invalidate(0x40)
        assert cache.invalidations == 1

    def test_update_in_place(self):
        cache = PadCache(4)
        cache.install(0x40, 1)
        assert cache.update(0x40, 9)
        assert cache.lookup(0x40) == 9
        assert not cache.update(0x999, 1)

    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            PadCache(capacity=0)


class TestPadCoherenceDirectory:
    def test_writeback_invalidates_remote_holders(self):
        directory = PadCoherenceDirectory(4, "write-invalidate")
        directory.on_fetch(1, 0x40)
        directory.on_fetch(2, 0x40)
        affected = directory.on_writeback(0, 0x40)
        assert affected == [1, 2]
        assert directory.invalidate_messages == 1
        assert directory.holders_of(0x40) == {0}

    def test_write_update_keeps_holders(self):
        directory = PadCoherenceDirectory(4, "write-update")
        directory.on_fetch(1, 0x40)
        affected = directory.on_writeback(0, 0x40)
        assert affected == [1]
        assert directory.update_messages == 1
        assert directory.holders_of(0x40) == {0, 1}

    def test_first_fetch_of_virgin_line_needs_no_request(self):
        """A line never written under encryption has the derivable
        (address, 0) pad: no bus message."""
        directory = PadCoherenceDirectory(2)
        assert not directory.on_fetch(0, 0x40)
        assert directory.request_messages == 0

    def test_fetch_after_remote_writeback_requests_pad(self):
        directory = PadCoherenceDirectory(2)
        directory.on_writeback(0, 0x40)
        assert directory.on_fetch(1, 0x40)
        assert directory.request_messages == 1
        # Once fetched, the reader is a holder: no second request.
        assert not directory.on_fetch(1, 0x40)

    def test_writer_is_its_own_holder(self):
        directory = PadCoherenceDirectory(2)
        directory.on_writeback(0, 0x40)
        assert not directory.on_fetch(0, 0x40)

    def test_no_message_when_no_remote_holder(self):
        directory = PadCoherenceDirectory(4)
        affected = directory.on_writeback(0, 0x40)
        assert affected == []
        assert directory.invalidate_messages == 0

    def test_protocol_validated(self):
        with pytest.raises(ConfigError):
            PadCoherenceDirectory(2, "write-once")

    def test_invalidate_vs_update_traffic_tradeoff(self):
        """The section 6.1 ablation in miniature: write-update sends a
        message on EVERY remote-held write-back; write-invalidate only
        on the first (holders drop out afterwards)."""
        for protocol, expected in (("write-invalidate", 1),
                                   ("write-update", 3)):
            directory = PadCoherenceDirectory(2, protocol)
            directory.on_fetch(1, 0x40)
            for _ in range(3):
                directory.on_writeback(0, 0x40)
            total = (directory.invalidate_messages
                     + directory.update_messages)
            assert total == expected
