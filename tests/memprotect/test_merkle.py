"""Memory hash tree tests (section 2.2)."""

import pytest

from repro.errors import ConfigError, IntegrityViolation
from repro.memory.dram import MainMemory
from repro.memprotect.merkle import MerkleTree


def make_tree(num_lines=16, arity=4):
    memory = MainMemory(64)
    for index in range(num_lines):
        memory.write_line(index * 64, bytes([index] * 64))
    return memory, MerkleTree(memory, 0, num_lines, arity)


def test_clean_memory_verifies():
    _, tree = make_tree()
    tree.verify_all()


def test_height():
    _, tree = make_tree(num_lines=16, arity=4)
    assert tree.height == 2  # 16 -> 4 -> 1


def test_corruption_detected():
    memory, tree = make_tree()
    memory.corrupt_line(0x40)
    with pytest.raises(IntegrityViolation):
        tree.verify_line(0x40)


def test_corruption_elsewhere_does_not_block_other_lines():
    memory, tree = make_tree()
    memory.corrupt_line(0x40)
    tree.verify_line(0x80)  # untouched line still verifies


def test_legitimate_update_re_verifies():
    memory, tree = make_tree()
    memory.write_line(0x40, bytes([0xEE] * 64))
    touched = tree.update_line(0x40)
    assert touched == tree.height + 1
    tree.verify_all()


def test_replay_attack_detected():
    """Restoring an old (block, leaf-digest) pair fools a flat MAC but
    not the tree: the forged leaf disagrees with its parent."""
    memory, tree = make_tree()
    old_data = memory.read_line(0x40)
    old_digest = tree.levels[0][1]
    # Legitimate update...
    memory.write_line(0x40, bytes([0xEE] * 64))
    tree.update_line(0x40)
    # ...then the adversary replays block AND stored digest.
    memory.corrupt_line(0x40, old_data)
    tree.forge_leaf_digest(0x40, old_digest)
    with pytest.raises(IntegrityViolation) as excinfo:
        tree.verify_line(0x40)
    assert "level 1" in str(excinfo.value)


def test_root_changes_with_any_update():
    memory, tree = make_tree()
    before = tree.root
    memory.write_line(0x80, bytes([1] * 64))
    tree.update_line(0x80)
    assert tree.root != before


def test_rebuild_matches_incremental_updates():
    memory, tree = make_tree()
    memory.write_line(0x00, bytes([5] * 64))
    tree.update_line(0x00)
    incremental_root = tree.root
    tree.rebuild()
    assert tree.root == incremental_root


def test_binary_tree_arity():
    _, tree = make_tree(num_lines=8, arity=2)
    assert tree.height == 3
    tree.verify_all()


def test_non_power_of_arity_line_count():
    memory, tree = make_tree(num_lines=10, arity=4)
    tree.verify_all()
    memory.corrupt_line(9 * 64)
    with pytest.raises(IntegrityViolation):
        tree.verify_line(9 * 64)


def test_out_of_range_address_rejected():
    _, tree = make_tree(num_lines=4)
    with pytest.raises(ConfigError):
        tree.verify_line(4 * 64)


def test_constructor_validation():
    memory = MainMemory(64)
    with pytest.raises(ConfigError):
        MerkleTree(memory, 0, 0)
    with pytest.raises(ConfigError):
        MerkleTree(memory, 0, 4, arity=1)
    with pytest.raises(ConfigError):
        MerkleTree(memory, 3, 4)  # unaligned base
