"""CHash (cached tree) and LHash (lazy multiset) verifier tests."""

import pytest

from repro.errors import ConfigError, IntegrityViolation, ReproError
from repro.memory.dram import MainMemory
from repro.memprotect.chash import CachedHashTreeVerifier
from repro.memprotect.lhash import LazyVerifier
from repro.memprotect.merkle import MerkleTree


def make_chash(num_lines=16, cache_nodes=8):
    memory = MainMemory(64)
    for index in range(num_lines):
        memory.write_line(index * 64, bytes([index] * 64))
    tree = MerkleTree(memory, 0, num_lines, arity=4)
    return memory, CachedHashTreeVerifier(tree, cache_nodes)


class TestCHash:
    def test_verified_read_returns_data(self):
        memory, verifier = make_chash()
        data, fetches = verifier.verified_read(0x40)
        assert data == bytes([1] * 64)
        assert fetches > 0  # cold: climbed toward the root

    def test_cached_nodes_shorten_the_climb(self):
        """'Once a node resides in L2, it is considered secure': the
        second read of the same block stops at the cached leaf node."""
        _, verifier = make_chash()
        _, cold_fetches = verifier.verified_read(0x40)
        _, warm_fetches = verifier.verified_read(0x40)
        assert warm_fetches == 0
        assert verifier.cache_hits >= 1
        assert cold_fetches > warm_fetches

    def test_sibling_shares_ancestors(self):
        """Blocks under the same parent reuse the cached ancestry."""
        _, verifier = make_chash()
        _, first = verifier.verified_read(0x00)
        _, second = verifier.verified_read(0x40)  # same level-1 parent
        assert second < first

    def test_eviction_forces_refetch(self):
        _, verifier = make_chash()
        verifier.verified_read(0x40)
        verifier.flush_cache()
        _, fetches = verifier.verified_read(0x40)
        assert fetches > 0

    def test_corruption_detected_through_cache(self):
        memory, verifier = make_chash()
        verifier.verified_read(0x40)
        memory.corrupt_line(0x40)
        with pytest.raises(IntegrityViolation):
            verifier.verified_read(0x40)

    def test_verified_write_updates_tree(self):
        memory, verifier = make_chash()
        verifier.verified_write(0x40, bytes([0xAA] * 64))
        data, _ = verifier.verified_read(0x40)
        assert data == bytes([0xAA] * 64)
        verifier.tree.verify_all()

    def test_small_cache_thrashes(self):
        """An adversarially small node cache produces more fetches —
        the L2-pollution effect of Figure 10 in miniature."""
        _, generous = make_chash(cache_nodes=64)
        _, tiny = make_chash(cache_nodes=1)
        pattern = [0x00, 0x100, 0x200, 0x300] * 4
        generous_fetches = sum(generous.verified_read(a)[1]
                               for a in pattern)
        tiny_fetches = sum(tiny.verified_read(a)[1] for a in pattern)
        assert tiny_fetches > generous_fetches

    def test_cache_size_validated(self):
        memory, verifier = make_chash()
        with pytest.raises(ConfigError):
            CachedHashTreeVerifier(verifier.tree, cache_nodes=0)


class TestLHash:
    def test_clean_epoch_verifies(self):
        memory = MainMemory(64)
        verifier = LazyVerifier(memory)
        for index in range(8):
            verifier.write_line(index * 64, bytes([index] * 64))
        for index in range(8):
            assert verifier.read_line(index * 64) == bytes([index] * 64)
        verifier.verify_epoch()
        assert verifier.epochs_verified == 1

    def test_tamper_between_write_and_read_detected_at_epoch(self):
        memory = MainMemory(64)
        verifier = LazyVerifier(memory)
        verifier.write_line(0x40, bytes([1] * 64))
        memory.corrupt_line(0x40)
        verifier.read_line(0x40)  # lazy: no alarm yet
        with pytest.raises(IntegrityViolation):
            verifier.verify_epoch()

    def test_tamper_after_last_read_detected_by_readback(self):
        """The epoch check reads back outstanding lines, so corruption
        after the program's final read still surfaces."""
        memory = MainMemory(64)
        verifier = LazyVerifier(memory)
        verifier.write_line(0x40, bytes([1] * 64))
        memory.corrupt_line(0x40)
        with pytest.raises(IntegrityViolation):
            verifier.verify_epoch()

    def test_replay_detected(self):
        """Replaying the previous epoch-version of a line fails: the
        multiset entry carries the version number."""
        memory = MainMemory(64)
        verifier = LazyVerifier(memory)
        verifier.write_line(0x40, bytes([1] * 64))
        old = memory.read_line(0x40)
        verifier.write_line(0x40, bytes([2] * 64))
        memory.corrupt_line(0x40, old)  # replay old ciphertext
        with pytest.raises(IntegrityViolation):
            verifier.verify_epoch()

    def test_epoch_reset_after_failure(self):
        memory = MainMemory(64)
        verifier = LazyVerifier(memory)
        verifier.write_line(0x40, bytes(64))
        memory.corrupt_line(0x40)
        with pytest.raises(IntegrityViolation):
            verifier.verify_epoch()
        # A fresh epoch starts clean.
        verifier.write_line(0x80, bytes(64))
        verifier.verify_epoch()
        assert verifier.outstanding_lines == 0

    def test_read_of_unwritten_line_rejected(self):
        verifier = LazyVerifier(MainMemory(64))
        with pytest.raises(ReproError):
            verifier.read_line(0x40)

    def test_lazy_needs_no_per_access_tree_walk(self):
        """The performance contrast with CHash: per-access work is one
        multiset add, with the tree machinery absent entirely."""
        memory = MainMemory(64)
        verifier = LazyVerifier(memory)
        for index in range(32):
            verifier.write_line(index * 64, bytes(64))
        assert not hasattr(verifier, "node_fetches")
        assert verifier.outstanding_lines == 32
