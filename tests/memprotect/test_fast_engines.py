"""Fast memory-protection engines vs their byte-wise references.

The flattened Merkle tree, the memoized digest engine, the windowed
pad precompute and the integer-XOR OTP path are all throughput
rewrites of executable specifications that stay in the tree (the
DESIGN.md §6c policy, same as the T-table AES): this suite holds each
fast path equal to its reference — on fixed vectors, on randomized
inputs, and at a scale that exercises the memo/batching machinery.
"""

import random

import pytest

from repro.crypto.aes import AES, cached_aes
from repro.crypto.cbcmac import CbcMac
from repro.crypto.hashes import hash_leaf, hash_node, mmo_hash
from repro.crypto.otp import xor_bytes, xor_bytes_reference
from repro.errors import CryptoError, IntegrityViolation
from repro.memory.dram import MainMemory
from repro.memprotect.chash import CachedHashTreeVerifier
from repro.memprotect.merkle import MerkleTree
from repro.memprotect.pads import FastMemoryEncryption
from repro.sim.stats import StatsRegistry


# -- OTP XOR ------------------------------------------------------------


def test_xor_matches_reference_randomized():
    rng = random.Random(0x07F)
    for length in (0, 1, 15, 16, 32, 64, 63):
        for _ in range(20):
            left = bytes(rng.randrange(256) for _ in range(length))
            right = bytes(rng.randrange(256) for _ in range(length))
            assert xor_bytes(left, right) \
                == xor_bytes_reference(left, right)


def test_xor_still_validates_lengths():
    with pytest.raises(CryptoError):
        xor_bytes(b"ab", b"abc")
    with pytest.raises(CryptoError):
        xor_bytes_reference(b"ab", b"abc")


def test_xor_involution():
    rng = random.Random(1)
    data = bytes(rng.randrange(256) for _ in range(64))
    pad = bytes(rng.randrange(256) for _ in range(64))
    assert xor_bytes(xor_bytes(data, pad), pad) == data


# -- cached AES instances / CBC-MAC -------------------------------------


def test_cached_aes_matches_fresh_instances():
    rng = random.Random(2)
    for _ in range(20):
        key = bytes(rng.randrange(256) for _ in range(16))
        block = bytes(rng.randrange(256) for _ in range(16))
        assert cached_aes(key).encrypt_block(block) \
            == AES(key).encrypt_block(block)
    assert cached_aes(bytes(16)) is cached_aes(bytes(16))


def test_cbcmac_for_key_matches_explicit_aes():
    rng = random.Random(3)
    key = bytes(rng.randrange(256) for _ in range(16))
    iv = bytes(rng.randrange(256) for _ in range(16))
    message = bytes(rng.randrange(256) for _ in range(6 * 16))
    fast = CbcMac.for_key(key, iv)
    fast.update_message(message)
    slow = CbcMac(AES(key), iv)
    for offset in range(0, len(message), 16):
        slow.update(message[offset:offset + 16])
    assert fast.digest() == slow.digest()
    assert fast.block_count == slow.block_count


def test_mmo_hash_unchanged_by_fast_xor():
    # Pinned digest: the int-XOR / cached-AES rewrite must not move
    # any tree hash (golden stats digests depend on it).
    assert mmo_hash(b"").hex() == mmo_hash(b"").hex()
    rng = random.Random(4)
    for length in (0, 1, 16, 40, 64):
        message = bytes(rng.randrange(256) for _ in range(length))
        state = bytes(range(16))
        # reference: byte-wise MMO chain
        padded = message + b"\x80"
        while (len(padded) + 8) % 16 != 0:
            padded += b"\x00"
        padded += len(message).to_bytes(8, "big")
        for offset in range(0, len(padded), 16):
            block = padded[offset:offset + 16]
            state = xor_bytes_reference(
                AES(state).encrypt_block(block), block)
        assert mmo_hash(message) == state


# -- windowed pad precompute --------------------------------------------


def test_pad_matches_reference_randomized():
    engine = FastMemoryEncryption(bytes(range(16)))
    rng = random.Random(5)
    for _ in range(30):
        address = rng.randrange(1 << 30) * 64
        sequence = rng.randrange(1 << 20)
        assert engine.pad(address, sequence) \
            == engine.pad_reference(address, sequence)


def test_pad_window_precomputes_ahead():
    engine = FastMemoryEncryption(bytes(16), pad_window=3)
    engine.pad(0x1000, 5)
    # The requested pad plus the 3-sequence window ahead are held.
    assert engine.precomputed_pads == 4
    # The next writes' pads are already there: encrypt_line for
    # sequences 6..8 adds nothing beyond their own windows.
    held = set(engine._pads)
    for expected in (6, 7, 8):
        assert (0x1000, expected) in held


def test_encryption_roundtrip_with_window():
    engine = FastMemoryEncryption(bytes(range(16)), pad_window=2)
    memory = MainMemory(64)
    plaintext = bytes(range(64))
    for _ in range(5):  # repeated writes walk the sequence window
        engine.store(memory, 0x40, plaintext)
        assert engine.load(memory, 0x40) == plaintext
    assert memory.read_line(0x40) != plaintext  # actually encrypted


def test_pad_cache_cap_wipe_is_transparent():
    engine = FastMemoryEncryption(bytes(16), pad_window=0)
    engine._pad_cap = 4
    expected = {}
    for seq in range(12):  # 3x the cap: forces wipes mid-stream
        expected[seq] = engine.pad(0x80, seq)
    for seq, pad in expected.items():
        assert engine.pad(0x80, seq) == pad
        assert engine.pad_reference(0x80, seq) == pad


# -- flattened tree vs recursive reference ------------------------------


def _reference_levels(memory, base, num_lines, arity):
    """The original pointer-style construction, kept as the spec."""
    current = [hash_leaf(base + i * memory.line_bytes,
                         memory.read_line(base + i * memory.line_bytes))
               for i in range(num_lines)]
    levels = [current]
    while len(current) > 1:
        parents = []
        for begin in range(0, len(current), arity):
            parents.append(hash_node(current[begin:begin + arity]))
        current = parents
        levels.append(current)
    return levels


@pytest.mark.parametrize("num_lines,arity", [(1, 2), (5, 2), (16, 4),
                                             (17, 4), (64, 8)])
def test_flat_tree_matches_reference_layout(num_lines, arity):
    memory = MainMemory(64)
    rng = random.Random(num_lines * 31 + arity)
    for index in range(num_lines):
        memory.write_line(index * 64, bytes(rng.randrange(256)
                                            for _ in range(64)))
    tree = MerkleTree(memory, 0, num_lines, arity=arity)
    reference = _reference_levels(memory, 0, num_lines, arity)
    assert tree.height == len(reference) - 1
    for level, expected in enumerate(reference):
        assert len(tree.levels[level]) == len(expected)
        assert list(tree.levels[level]) == expected
    assert tree.root == reference[-1][0]


def test_batched_updates_match_eager_updates():
    rng = random.Random(7)

    def build():
        memory = MainMemory(64)
        for index in range(32):
            memory.write_line(index * 64, bytes([index] * 64))
        return memory, MerkleTree(memory, 0, 32, arity=4)

    eager_memory, eager = build()
    lazy_memory, lazy = build()
    writes = [(rng.randrange(32) * 64,
               bytes(rng.randrange(256) for _ in range(64)))
              for _ in range(40)]
    for address, data in writes:
        eager_memory.write_line(address, data)
        eager.update_line(address)
        lazy_memory.write_line(address, data)
        lazy.update_leaf(address)
    assert lazy.dirty_nodes > 0
    assert lazy.root == eager.root  # root read cleans the whole path
    assert lazy.dirty_nodes == 0 or lazy.flush() >= 0
    lazy.flush()
    for level in range(lazy.height + 1):
        assert list(lazy.levels[level]) == list(eager.levels[level])
    lazy.verify_all()


def test_flush_hashes_each_dirty_node_once():
    memory = MainMemory(64)
    for index in range(16):
        memory.write_line(index * 64, bytes([index] * 64))
    tree = MerkleTree(memory, 0, 16, arity=4)
    # A burst touching all 4 leaves under one parent: the batched
    # path hashes that parent once (plus the root), not 4 times.
    for index in range(4):
        memory.write_line(index * 64, bytes([0xF0 | index] * 64))
        tree.update_leaf(index * 64)
    assert tree.dirty_nodes == 2  # the shared parent and the root
    assert tree.flush() == 2
    tree.verify_all()


def test_verify_climb_cleans_batched_siblings():
    memory = MainMemory(64)
    for index in range(16):
        memory.write_line(index * 64, bytes([index] * 64))
    tree = MerkleTree(memory, 0, 16, arity=4)
    memory.write_line(0x40, bytes([0xAA] * 64))
    tree.update_leaf(0x40)
    # Verifying the *sibling* line folds the batched update in; the
    # legitimate state must pass, and the updated line must too.
    tree.verify_line(0x00)
    tree.verify_line(0x40)


def test_forgery_still_detected_with_batching():
    memory = MainMemory(64)
    for index in range(16):
        memory.write_line(index * 64, bytes([index] * 64))
    tree = MerkleTree(memory, 0, 16, arity=4)
    old_digest = tree.levels[0][1]
    memory.write_line(0x40, bytes([0xAA] * 64))
    tree.update_leaf(0x40)
    tree.forge_leaf_digest(0x40, old_digest)
    with pytest.raises(IntegrityViolation):
        tree.verify_line(0x40)


def test_flat_tree_at_scale():
    """1024 lines, mixed batched/eager updates and cached climbs — a
    scale the per-level list walk made slow; every digest must still
    match the recursive reference."""
    memory = MainMemory(64)
    rng = random.Random(9)
    for index in range(1024):
        memory.write_line(index * 64, bytes(rng.randrange(256)
                                            for _ in range(64)))
    tree = MerkleTree(memory, 0, 1024, arity=4)
    verifier = CachedHashTreeVerifier(tree, cache_nodes=64)
    for _ in range(200):
        address = rng.randrange(1024) * 64
        if rng.random() < 0.5:
            verifier.verified_write(
                address, bytes(rng.randrange(256) for _ in range(64)))
        else:
            verifier.verified_read(address)
    tree.flush()
    reference = _reference_levels(memory, 0, 1024, 4)
    assert tree.root == reference[-1][0]
    for level, expected in enumerate(reference):
        assert list(tree.levels[level]) == expected


# -- chash stats registry (flush-on-read) -------------------------------


def test_chash_counters_flush_into_registry():
    memory = MainMemory(64)
    for index in range(16):
        memory.write_line(index * 64, bytes([index] * 64))
    stats = StatsRegistry()
    verifier = CachedHashTreeVerifier(MerkleTree(memory, 0, 16, arity=4),
                                      cache_nodes=2, stats=stats)
    for index in range(8):
        verifier.verified_read(index * 64)
    snapshot = stats.as_dict()
    assert snapshot["chash.verifications"] == verifier.verifications == 8
    assert snapshot["chash.node_fetches"] == verifier.node_fetches > 0
    # The tiny cache evicted during the reads themselves.
    assert snapshot["chash.evictions"] == verifier.evictions > 0


def test_chash_evictions_share_one_namespace():
    """Capacity evictions, explicit evict_node and flush_cache all
    land in chash.evictions, and the registry only ever sees deltas
    (reading twice does not double-count)."""
    memory = MainMemory(64)
    for index in range(16):
        memory.write_line(index * 64, bytes([index] * 64))
    stats = StatsRegistry()
    verifier = CachedHashTreeVerifier(MerkleTree(memory, 0, 16, arity=4),
                                      cache_nodes=8, stats=stats)
    verifier.verified_read(0x00)
    first = stats.as_dict()  # flush mid-run
    assert first["chash.verifications"] == 1
    cached = len(verifier._cache)
    assert cached > 0
    verifier.evict_node(0, 0)  # present: counts
    verifier.evict_node(0, 15)  # absent: does not count
    verifier.flush_cache()  # remaining entries count
    second = stats.as_dict()
    assert second["chash.evictions"] == verifier.evictions == cached
    assert second["chash.verifications"] == 1  # no double count
    third = stats.as_dict()
    assert third == second


def test_chash_without_registry_keeps_plain_counters():
    memory = MainMemory(64)
    for index in range(4):
        memory.write_line(index * 64, bytes([index] * 64))
    verifier = CachedHashTreeVerifier(MerkleTree(memory, 0, 4, arity=4))
    verifier.verified_read(0x00)
    assert verifier.verifications == 1
    assert verifier.stats is None
