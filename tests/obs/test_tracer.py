"""The Tracer: layer hooks, pairing, and the zero-interference rule."""

import pytest

from repro.config import KB, e6000_config
from repro.obs import EventKind, Tracer
from repro.obs.tracer import (AUTH_INTERVAL_GAP, MASK_WAIT, MISS_LATENCY,
                              PAD_REUSE_DISTANCE, UPGRADE_LATENCY)
from repro.sim.sweep import build_system
from repro.workloads.registry import generate


def rich_config():
    """A machine whose runs exercise every instrumented layer: tiny
    L2 (miss-heavy, dirty evictions), one mask (readiness stalls),
    short auth interval (checkpoints), finite pad cache (hits AND
    misses), full memory protection (hash climbs and updates)."""
    config = e6000_config(num_processors=4, senss_enabled=True,
                          auth_interval=8)
    config = config.with_l2_size(8 * KB).with_masks(1)
    return config.with_memprotect(encryption_enabled=True,
                                  integrity_enabled=True,
                                  pad_cache_entries=16)


def rich_workload():
    return generate("fft", 4, scale=0.05, seed=3)


@pytest.fixture(scope="module")
def traced_run():
    system = build_system(rich_config())
    tracer = Tracer(capacity=500_000).attach(system)
    result = system.run(rich_workload())
    return system, tracer, result


class TestEventCoverage:
    def test_every_event_kind_is_emitted(self, traced_run):
        _, tracer, _ = traced_run
        # Fault events only exist when an injected fault fires; their
        # coverage is pinned by tests/faults/test_obs.py.
        expected = set(EventKind.ALL) - {EventKind.FAULT_INJECT,
                                         EventKind.FAULT_DETECT}
        assert set(tracer.kind_totals) == expected
        assert tracer.ring.dropped == 0

    def test_bus_events_match_bus_counter(self, traced_run):
        _, tracer, result = traced_run
        assert tracer.kind_totals[EventKind.BUS_TX] == \
            result.stats["bus.transactions"]

    def test_miss_events_match_miss_counters(self, traced_run):
        _, tracer, result = traced_run
        misses = sum(value for name, value in result.stats.items()
                     if name.endswith("l2_miss"))
        # Hash-node fetches are misses the tracer sees but the per-CPU
        # l2_miss counters attribute to the same slow path.
        assert tracer.kind_totals[EventKind.MISS] == misses
        upgrades = sum(value for name, value in result.stats.items()
                       if name.endswith("upgrade_needed"))
        assert tracer.kind_totals[EventKind.UPGRADE] == upgrades

    def test_auth_checkpoints_match_counter(self, traced_run):
        _, tracer, result = traced_run
        assert tracer.kind_totals[EventKind.AUTH_MAC] == \
            result.stats["bus.tx.Auth00"]

    def test_pad_events_match_counters(self, traced_run):
        _, tracer, result = traced_run
        assert tracer.kind_totals[EventKind.PAD_HIT] == \
            result.stats["memprotect.pad_cache_hits"]
        assert tracer.kind_totals[EventKind.PAD_MISS] == \
            result.stats["memprotect.pad_cache_misses"]

    def test_hash_events_match_counters(self, traced_run):
        _, tracer, result = traced_run
        climbs = (result.stats["memprotect.root_verifications"]
                  + result.stats["memprotect.node_cache_hits"]
                  + result.stats["memprotect.hash_fetches"])
        assert tracer.kind_totals[EventKind.HASH_VERIFY] == climbs
        updates = (result.stats["memprotect.root_updates"]
                   + result.stats["memprotect.hash_updates"]
                   + result.stats.get("memprotect.clipped_updates", 0))
        assert tracer.kind_totals[EventKind.HASH_UPDATE] == updates

    def test_run_span_per_cpu(self, traced_run):
        _, tracer, result = traced_run
        spans = [event for event in tracer.ring
                 if event.kind == EventKind.RUN_SPAN]
        assert len(spans) == result.num_cpus
        assert [span.dur for span in spans] == \
            list(result.per_cpu_cycles)
        assert tracer.workload_name == result.workload

    def test_snoop_stack_fully_consumed(self, traced_run):
        _, tracer, _ = traced_run
        assert tracer._snoops == []

    def test_miss_spans_have_positive_latency(self, traced_run):
        _, tracer, _ = traced_run
        for event in tracer.ring:
            if event.kind in (EventKind.MISS, EventKind.UPGRADE):
                assert event.dur > 0


class TestHistograms:
    def test_all_five_installed(self, traced_run):
        system, _, _ = traced_run
        for name in (MISS_LATENCY, UPGRADE_LATENCY, MASK_WAIT,
                     PAD_REUSE_DISTANCE, AUTH_INTERVAL_GAP):
            assert name in system.stats.histograms()

    def test_miss_latency_counts_every_miss(self, traced_run):
        system, tracer, _ = traced_run
        histogram = system.stats.histogram(MISS_LATENCY)
        assert histogram.summary()["count"] == \
            tracer.kind_totals[EventKind.MISS]

    def test_mask_wait_matches_stall_counter(self, traced_run):
        system, _, result = traced_run
        summary = system.stats.histogram(MASK_WAIT).summary()
        assert summary["count"] == result.stats["senss.mask_stalls"]
        assert summary["sum"] == \
            result.stats["senss.mask_wait_cycles"]

    def test_auth_gap_counts_checkpoints_after_first(self, traced_run):
        system, tracer, _ = traced_run
        summary = system.stats.histogram(AUTH_INTERVAL_GAP).summary()
        # One group: every checkpoint but the first has a gap.
        assert summary["count"] == \
            tracer.kind_totals[EventKind.AUTH_MAC] - 1

    def test_histograms_stay_out_of_stats_dict(self, traced_run):
        _, _, result = traced_run
        assert not any(name.startswith("obs.") for name in result.stats)

    def test_summary_shape(self, traced_run):
        _, tracer, _ = traced_run
        summary = tracer.summary()
        assert summary["workload"] == "fft"
        assert summary["events_dropped"] == 0
        assert summary["events_recorded"] == summary["events_retained"]
        assert summary["by_kind"]["mask_stall"] > 0
        assert MISS_LATENCY in summary["histograms"]


class TestZeroInterference:
    """Attaching a tracer must not change simulated results."""

    def test_traced_run_is_bit_identical(self, traced_run):
        _, _, traced = traced_run
        plain = build_system(rich_config()).run(rich_workload())
        assert traced.cycles == plain.cycles
        assert list(traced.per_cpu_cycles) == list(plain.per_cpu_cycles)
        assert traced.stats == plain.stats

    def test_traced_reference_engine_matches(self, traced_run):
        _, _, traced = traced_run
        system = build_system(rich_config())
        Tracer().attach(system)
        reference = system.run_reference(rich_workload())
        assert reference.cycles == traced.cycles
        assert reference.stats == traced.stats

    def test_unobserved_system_keeps_scratch_route(self):
        system = build_system(rich_config())
        assert system.bus._observers == []
        first = system._next_transaction(
            system._scratch_tx.type, 0, 0, 0, False)
        assert first is system._scratch_tx

    def test_attach_switches_to_fresh_transactions(self):
        system = build_system(rich_config())
        Tracer().attach(system)
        transaction = system._next_transaction(
            system._scratch_tx.type, 0, 0, 0, False)
        assert transaction is not system._scratch_tx


class TestAttachDetach:
    def test_attach_hooks_every_layer(self):
        system = build_system(rich_config())
        tracer = Tracer().attach(system)
        assert system._obs is tracer
        assert system.observer is tracer
        assert tracer._on_bus_tx in system.bus._observers
        assert system.protocol.observer is tracer
        assert system.bus.security_layer.observer is tracer
        assert system.memprotect.observer is tracer

    def test_detach_restores_everything(self):
        system = build_system(rich_config())
        tracer = Tracer().attach(system)
        tracer.detach()
        assert system._obs is None
        assert system.bus._observers == []
        assert system.protocol.observer is None
        assert system.bus.security_layer.observer is None
        assert system.memprotect.observer is None
        # Scratch-transaction route is back.
        assert system._next_transaction(
            system._scratch_tx.type, 0, 0, 0, False) \
            is system._scratch_tx

    def test_detach_is_idempotent(self):
        system = build_system(rich_config())
        tracer = Tracer().attach(system)
        tracer.detach()
        tracer.detach()
        assert system.bus._observers == []

    def test_detach_does_not_clobber_other_tracer(self):
        system = build_system(rich_config())
        first = Tracer().attach(system)
        second = Tracer().attach(system)
        first.detach()
        assert system._obs is second
        assert system.protocol.observer is second
        assert second._on_bus_tx in system.bus._observers

    def test_attach_baseline_system_without_layers(self):
        """A tracer on a security-free baseline still traces bus,
        coherence and run spans."""
        config = e6000_config(num_processors=2,
                              senss_enabled=False)
        system = build_system(config.with_l2_size(8 * KB))
        tracer = Tracer().attach(system)
        system.run(generate("fft", 2, scale=0.05, seed=1))
        assert tracer.kind_totals[EventKind.BUS_TX] > 0
        assert tracer.kind_totals[EventKind.MISS] > 0
        assert EventKind.PAD_MISS not in tracer.kind_totals
        assert EventKind.MASK_STALL not in tracer.kind_totals


class TestModes:
    def test_events_disabled_keeps_totals_and_metrics(self):
        system = build_system(rich_config())
        tracer = Tracer(events=False).attach(system)
        system.run(rich_workload())
        assert len(tracer.ring) == 0
        assert tracer.kind_totals[EventKind.MISS] > 0
        assert system.stats.histogram(
            MISS_LATENCY).summary()["count"] > 0

    def test_metrics_disabled_skips_histograms(self):
        system = build_system(rich_config())
        tracer = Tracer(metrics=False).attach(system)
        system.run(rich_workload())
        assert system.stats.histogram_summaries() == {}
        assert tracer.kind_totals[EventKind.MISS] > 0

    def test_small_ring_wraps_but_totals_are_complete(self):
        system = build_system(rich_config())
        tracer = Tracer(capacity=256).attach(system)
        system.run(rich_workload())
        assert tracer.ring.dropped > 0
        assert len(tracer.ring) == 256
        total = sum(tracer.kind_totals.values())
        assert tracer.ring.total_recorded == total

    def test_uninstrumented_protocol_pops_sentinel(self):
        """on_miss without a paired snoop reports invalidated = -1
        (unknown) rather than desyncing."""
        tracer = Tracer()
        tracer.on_miss(0, 0x40, 100, 300, False)
        events = list(tracer.ring)
        assert events[0].a1 == -1
