"""Perturbation replays and structured recording diffs."""

import pytest

from repro.config import KB, e6000_config
from repro.errors import ConfigError
from repro.obs import (PERTURBATIONS, apply_perturbation,
                       diff_recordings, format_diff,
                       parse_perturbation, record_run,
                       replay_recording)
from repro.sim.sweep import SweepPoint


def _point(scale=0.02):
    config = e6000_config(num_processors=2, auth_interval=10)
    config = config.with_l2_size(64 * KB).with_masks(8)
    config = config.with_memprotect(encryption_enabled=True,
                                    integrity_enabled=True)
    return SweepPoint("fft", config, scale=scale, seed=0)


class TestParsePerturbation:
    def test_accepts_every_knob(self):
        for name in PERTURBATIONS:
            assert parse_perturbation(f"{name}=1") == (name, "1")

    @pytest.mark.parametrize("spec", ["", "=", "auth_interval",
                                      "auth_interval=", "=5"])
    def test_rejects_junk(self, spec):
        with pytest.raises(ConfigError, match="name=value"):
            parse_perturbation(spec)

    def test_rejects_unknown_knob(self):
        with pytest.raises(ConfigError, match="unknown perturbation"):
            parse_perturbation("bogus=1")

    def test_rejects_non_integer(self):
        point = _point()
        with pytest.raises(ConfigError, match="integer"):
            apply_perturbation(point, "auth_interval", "soon")


class TestApplyPerturbation:
    def test_auth_interval(self):
        perturbed, plan = apply_perturbation(_point(),
                                             "auth_interval", "32")
        assert perturbed.config.senss.auth_interval == 32
        assert plan is None

    def test_masks_none_means_perfect(self):
        perturbed, _ = apply_perturbation(_point(), "masks", "none")
        assert perturbed.config.senss.num_masks is None

    def test_fault_yields_plan(self):
        perturbed, plan = apply_perturbation(_point(), "fault",
                                             "drop:5")
        assert perturbed == _point()
        assert len(plan) == 1
        assert plan.specs[0].kind == "drop"
        assert plan.specs[0].trigger == 5

    def test_fault_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            apply_perturbation(_point(), "fault", "gremlin")


class TestDiff:
    def test_unperturbed_replay_diffs_empty(self):
        source = record_run(_point())
        replayed = replay_recording(source)
        report = diff_recordings(source, replayed)
        assert report["identical"] is True
        assert report["first_divergence"] is None
        assert report["counters"] == {}
        assert report["cycles"]["delta"] == 0
        assert report["phases"]["diverged"] == 0
        assert report["histogram"]["zero_skew"] == \
            report["histogram"]["matched"]
        assert "identical" in format_diff(report)

    def test_engine_perturbation_is_determinism_check(self):
        source = record_run(_point())
        replayed = replay_recording(source, perturb="engine=vector")
        report = diff_recordings(source, replayed)
        assert report["identical"] is True
        assert report["perturbation"] == {"name": "engine",
                                          "value": "vector"}

    def test_auth_interval_perturbation_pinpoints_divergence(self):
        source = record_run(_point())
        replayed = replay_recording(source,
                                    perturb="auth_interval=32")
        report = diff_recordings(source, replayed)
        assert report["identical"] is False
        first = report["first_divergence"]
        assert first is not None
        assert first["index"] >= 0
        assert first["a"] != first["b"]
        assert report["cycles"]["delta"] == \
            replayed.cycles - source.cycles
        assert report["counters"], "auth counters must differ"
        rendered = format_diff(report)
        assert "First divergence" in rendered
        assert "auth_interval=32" in rendered

    def test_fault_perturbation_completes_and_diverges(self):
        source = record_run(_point())
        replayed = replay_recording(source, perturb="fault=drop")
        assert replayed.halted is None, \
            "fault replays run under rekey-replay and complete"
        assert replayed.payload["fault_plan"]["policy"] == \
            "rekey-replay"
        report = diff_recordings(source, replayed)
        assert report["identical"] is False
        side = report["first_divergence"]["b"]
        assert side["name"] == "fault_inject"

    def test_diff_survives_length_mismatch(self):
        source = record_run(_point())
        shorter = record_run(_point(scale=1.0))
        assert shorter.events_total != source.events_total
        report = diff_recordings(source, shorter)
        assert report["identical"] is False
        assert report["first_divergence"] is not None
        format_diff(report)  # must render without raising

    def test_snapshot_cadence_override(self):
        source = record_run(_point())
        replayed = replay_recording(source, snapshot_every=4)
        assert replayed.snapshot_every == 4
        # events are unaffected by the snapshot cadence
        assert replayed.payload["events"] == \
            source.payload["events"]
