"""Run reports and wall-clock phase timers."""

import json

from repro.config import e6000_config
from repro.core.senss import build_secure_system
from repro.obs import (REPORT_SCHEMA_VERSION, PhaseTimer, Tracer,
                       build_report, format_report)
from repro.sim.sweep import ENGINE_VERSION
from repro.smp.system import SmpSystem
from repro.workloads.registry import generate


def small_pair():
    config = e6000_config(num_processors=2, auth_interval=10)
    workload = generate("fft", 2, scale=0.05, seed=1)
    baseline = SmpSystem(config.with_senss(False)).run(workload)
    system = build_secure_system(config)
    tracer = Tracer(events=False).attach(system)
    secured = system.run(workload)
    return baseline, secured, tracer


class TestBuildReport:
    def test_shape_and_headline(self):
        baseline, secured, tracer = small_pair()
        report = build_report(baseline, secured, workload="fft",
                              num_cpus=2, scale=0.05,
                              histograms=tracer.histogram_summaries())
        assert report["kind"] == "repro-report"
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["engine_version"] == ENGINE_VERSION
        assert report["workload"] == "fft"
        assert report["configs"]["baseline"]["cycles"] == baseline.cycles
        assert report["configs"]["secured"]["cycles"] == secured.cycles
        assert report["slowdown_percent"] >= 0
        assert "obs.miss_latency" in report["histograms"]

    def test_counters_subset_only(self):
        baseline, secured, _ = small_pair()
        report = build_report(baseline, secured, workload="fft",
                              num_cpus=2, scale=0.05)
        counters = report["configs"]["secured"]["counters"]
        assert "bus.transactions" in counters
        assert "senss.protected_messages" in counters
        # Per-CPU cache counters stay out of the compact block.
        assert not any(name.startswith("cpu") for name in counters)

    def test_hit_rate_present(self):
        baseline, secured, _ = small_pair()
        report = build_report(baseline, secured, workload="fft",
                              num_cpus=2, scale=0.05)
        rate = report["configs"]["baseline"]["hit_rate"]
        assert 0.0 < rate <= 1.0

    def test_is_json_round_trippable(self):
        baseline, secured, tracer = small_pair()
        report = build_report(baseline, secured, workload="fft",
                              num_cpus=2, scale=0.05,
                              histograms=tracer.histogram_summaries(),
                              timings={"simulate": 0.5})
        assert json.loads(json.dumps(report)) == report

    def test_format_renders_all_sections(self):
        baseline, secured, tracer = small_pair()
        timer = PhaseTimer()
        timer.add("simulate", 1.25)
        report = build_report(baseline, secured, workload="fft",
                              num_cpus=2, scale=0.05,
                              histograms=tracer.histogram_summaries(),
                              timings=timer.as_dict())
        text = format_report(report)
        assert "Run report" in text
        assert "slowdown" in text
        assert "obs.miss_latency" in text
        assert "Secured-run counters" in text
        assert "Wall-clock phases" in text

    def test_format_skips_empty_sections(self):
        baseline, secured, _ = small_pair()
        report = build_report(baseline, secured, workload="fft",
                              num_cpus=2, scale=0.05)
        text = format_report(report)
        assert "Latency / distribution" not in text
        assert "Wall-clock phases" not in text


class TestPhaseTimer:
    def test_phase_context_accumulates(self):
        timer = PhaseTimer()
        with timer.phase("work"):
            pass
        with timer.phase("work"):
            pass
        assert timer.seconds("work") >= 0.0
        assert timer._counts["work"] == 2

    def test_add_and_seconds(self):
        timer = PhaseTimer()
        timer.add("generate", 0.5)
        timer.add("generate", 0.25)
        assert timer.seconds("generate") == 0.75
        assert timer.seconds("absent") == 0.0

    def test_merge_from_worker_dict(self):
        timer = PhaseTimer()
        timer.add("simulate", 1.0)
        timer.merge({"simulate": 2.0, "cache": 0.5})
        assert timer.seconds("simulate") == 3.0
        assert timer.seconds("cache") == 0.5

    def test_as_dict_sorted_and_rounded(self):
        timer = PhaseTimer()
        timer.add("zeta", 0.1234567891)
        timer.add("alpha", 1.0)
        as_dict = timer.as_dict()
        assert list(as_dict) == ["alpha", "zeta"]
        assert as_dict["zeta"] == round(0.1234567891, 6)

    def test_exception_inside_phase_still_counts(self):
        timer = PhaseTimer()
        try:
            with timer.phase("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert timer._counts["boom"] == 1
