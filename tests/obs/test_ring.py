"""The columnar event ring buffer."""

import pytest

from repro.errors import ConfigError
from repro.obs.ring import EventKind, EventRing, TraceEvent


def test_capacity_must_be_positive():
    with pytest.raises(ConfigError):
        EventRing(0)


def test_record_and_read_back():
    ring = EventRing(8)
    ring.record(EventKind.MISS, 100, 20, 1, 0xABC0, 2, 3)
    events = list(ring)
    assert events == [TraceEvent(EventKind.MISS, 100, 20, 1,
                                 0xABC0, 2, 3)]
    assert len(ring) == 1
    assert ring.total_recorded == 1
    assert ring.dropped == 0


def test_defaults_for_payload_words():
    ring = EventRing(4)
    ring.record(EventKind.BUS_TX, 5, 0, 0)
    assert list(ring)[0] == TraceEvent(EventKind.BUS_TX, 5, 0, 0,
                                       0, 0, 0)


def test_wraps_overwriting_oldest():
    ring = EventRing(4)
    for index in range(10):
        ring.record(EventKind.BUS_TX, index, 0, 0, index)
    assert ring.total_recorded == 10
    assert ring.dropped == 6
    assert len(ring) == 4
    # Oldest-first iteration over the surviving tail.
    assert [event.cycle for event in ring] == [6, 7, 8, 9]
    assert [event.a0 for event in ring] == [6, 7, 8, 9]


def test_iteration_order_before_wrap():
    ring = EventRing(8)
    for index in range(5):
        ring.record(EventKind.MISS, index * 10, 1, index % 2)
    assert [event.cycle for event in ring] == [0, 10, 20, 30, 40]


def test_counts_by_kind():
    ring = EventRing(16)
    ring.record(EventKind.MISS, 0, 0, 0)
    ring.record(EventKind.MISS, 1, 0, 0)
    ring.record(EventKind.AUTH_MAC, 2, 0, 0)
    assert ring.counts_by_kind() == {EventKind.MISS: 2,
                                     EventKind.AUTH_MAC: 1}


def test_counts_by_kind_reflects_only_retained():
    ring = EventRing(2)
    ring.record(EventKind.MISS, 0, 0, 0)
    ring.record(EventKind.UPGRADE, 1, 0, 0)
    ring.record(EventKind.UPGRADE, 2, 0, 0)
    assert ring.counts_by_kind() == {EventKind.UPGRADE: 2}


def test_clear():
    ring = EventRing(4)
    ring.record(EventKind.MISS, 0, 0, 0)
    ring.clear()
    assert len(ring) == 0
    assert ring.total_recorded == 0
    assert list(ring) == []


def test_every_kind_is_distinct():
    assert len(set(EventKind.ALL)) == len(EventKind.ALL)
