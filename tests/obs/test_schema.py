"""The Chrome trace export and its schema validator.

The acceptance bar: a full secured run exports to valid trace-event
JSON, and the validation covers every emitted event kind — bus
transactions, mask stalls, auth checkpoints, pad-cache events, plus
the miss/upgrade/hash/run spans around them.
"""

import copy
import json

import pytest

from repro.errors import TraceError
from repro.obs import (TRACE_EVENT_SCHEMA, TRACE_SCHEMA_VERSION, Tracer,
                       event_names, to_chrome_trace,
                       validate_chrome_trace)
from repro.obs.schema import validate_event
from repro.sim.sweep import ENGINE_VERSION, build_system

from .test_tracer import rich_config, rich_workload


@pytest.fixture(scope="module")
def payload():
    system = build_system(rich_config())
    tracer = Tracer(capacity=500_000).attach(system)
    system.run(rich_workload())
    return to_chrome_trace(tracer)


class TestExport:
    def test_full_run_validates(self, payload):
        count = validate_chrome_trace(payload)
        assert count == len(payload["traceEvents"])
        assert count > 1000

    def test_every_required_kind_is_emitted_and_validated(self, payload):
        names = set(event_names(payload))
        # The acceptance list: bus tx, mask stall, auth checkpoint,
        # pad-cache events ...
        assert {"BusRd", "BusRdX", "BusUpgr", "WB", "Auth00",
                "PadInv01", "PadReq10"} <= names
        assert "mask_stall" in names
        assert "auth_checkpoint" in names
        assert {"pad_cache_hit", "pad_cache_miss"} <= names
        # ... plus the structural spans around them.
        assert {"miss", "upgrade", "hash_verify", "hash_update",
                "execute"} <= names
        # Everything emitted is in the schema (validated above), and
        # nothing emitted falls outside it.
        assert names <= set(TRACE_EVENT_SCHEMA)

    def test_is_json_serializable(self, payload):
        text = json.dumps(payload)
        assert validate_chrome_trace(json.loads(text)) > 0

    def test_other_data_block(self, payload):
        other = payload["otherData"]
        assert other["schema_version"] == TRACE_SCHEMA_VERSION
        assert other["engine_version"] == ENGINE_VERSION
        assert other["workload"] == "fft"
        assert other["time_unit"] == "cpu_cycles_as_us"
        assert other["events_dropped"] == 0

    def test_track_metadata(self, payload):
        metadata = [event for event in payload["traceEvents"]
                    if event.get("ph") == "M"]
        process = [event for event in metadata
                   if event["name"] == "process_name"]
        threads = [event for event in metadata
                   if event["name"] == "thread_name"]
        assert process[0]["args"]["name"] == "senss-sim:fft"
        assert {event["args"]["name"] for event in threads} == \
            {"cpu0", "cpu1", "cpu2", "cpu3"}

    def test_spans_have_nonnegative_durations(self, payload):
        for event in payload["traceEvents"]:
            if event.get("ph") == "X":
                assert event["dur"] >= 0

    def test_miss_spans_name_their_supplier(self, payload):
        suppliers = {event["args"]["supplier"]
                     for event in payload["traceEvents"]
                     if event["name"] == "miss"}
        assert "memory" in suppliers
        assert any(name.startswith("cpu") for name in suppliers)

    def test_hash_outcomes_are_enumerated(self, payload):
        outcomes = {event["args"]["outcome"]
                    for event in payload["traceEvents"]
                    if event["name"] == "hash_verify"}
        assert outcomes <= {"root", "l2_hit", "fetch"}
        assert "fetch" in outcomes


def _first_named(payload, name):
    for event in payload["traceEvents"]:
        if event["name"] == name:
            return copy.deepcopy(event)
    raise AssertionError(f"no {name} event in payload")


class TestValidatorRejects:
    def test_non_object_payload(self):
        with pytest.raises(TraceError, match="JSON object"):
            validate_chrome_trace([])

    def test_missing_trace_events(self):
        with pytest.raises(TraceError, match="traceEvents"):
            validate_chrome_trace({"otherData": {"schema_version": 1}})

    def test_missing_schema_version(self, payload):
        broken = {"traceEvents": [], "otherData": {}}
        with pytest.raises(TraceError, match="schema_version"):
            validate_chrome_trace(broken)

    def test_unknown_event_name(self):
        with pytest.raises(TraceError, match="unknown event name"):
            validate_event(0, {"name": "bogus", "cat": "bus",
                               "ph": "X", "ts": 0, "dur": 0,
                               "pid": 0, "tid": 0, "args": {}})

    def test_wrong_category(self, payload):
        event = _first_named(payload, "miss")
        event["cat"] = "bus"
        with pytest.raises(TraceError, match="cat"):
            validate_event(0, event)

    def test_wrong_phase(self, payload):
        event = _first_named(payload, "auth_checkpoint")
        event["ph"] = "X"
        with pytest.raises(TraceError, match="ph"):
            validate_event(0, event)

    def test_missing_required_arg(self, payload):
        event = _first_named(payload, "BusRd")
        del event["args"]["address"]
        with pytest.raises(TraceError, match="address"):
            validate_event(0, event)

    def test_wrong_arg_type(self, payload):
        event = _first_named(payload, "BusRd")
        event["args"]["address"] = "0x40"
        with pytest.raises(TraceError, match="must be an int"):
            validate_event(0, event)

    def test_bool_is_not_an_int(self, payload):
        event = _first_named(payload, "BusRd")
        event["args"]["address"] = True
        with pytest.raises(TraceError, match="must be an int"):
            validate_event(0, event)

    def test_negative_duration(self, payload):
        event = _first_named(payload, "miss")
        event["dur"] = -1
        with pytest.raises(TraceError, match="dur"):
            validate_event(0, event)

    def test_instant_needs_scope(self, payload):
        event = _first_named(payload, "auth_checkpoint")
        del event["s"]
        with pytest.raises(TraceError, match="scope"):
            validate_event(0, event)

    def test_out_of_enum_outcome(self, payload):
        event = _first_named(payload, "hash_verify")
        event["args"]["outcome"] = "sideways"
        with pytest.raises(TraceError, match="one of"):
            validate_event(0, event)

    def test_metadata_needs_known_name(self):
        with pytest.raises(TraceError, match="metadata"):
            validate_event(0, {"name": "surprise", "ph": "M",
                               "pid": 0, "tid": 0,
                               "args": {"name": "x"}})

    def test_error_names_the_offending_index(self, payload):
        event = _first_named(payload, "BusRd")
        del event["args"]["address"]
        broken = {"traceEvents": [event],
                  "otherData": {"schema_version": 1}}
        with pytest.raises(TraceError, match=r"\[0\]"):
            validate_chrome_trace(broken)
