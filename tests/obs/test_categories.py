"""Per-category trace filtering (DESIGN 6d, ISSUE 7 satellite).

A tracer built with ``categories={...}`` hooks only those layers at
attach time: filtered-out categories record nothing, leave their
histograms unregistered, and — for ``bus`` — never register a bus
observer, so the engine keeps its scratch-transaction fast route.
Filtering must never change simulated results.
"""

import pytest

from repro.config import KB, e6000_config
from repro.errors import ConfigError
from repro.obs import TRACE_CATEGORIES, EventKind, Tracer, parse_categories
from repro.sim.sweep import build_system
from repro.workloads.registry import generate

KIND_CATEGORY = {
    EventKind.BUS_TX: "bus",
    EventKind.MISS: "mem",
    EventKind.UPGRADE: "mem",
    EventKind.MASK_STALL: "senss",
    EventKind.AUTH_MAC: "senss",
    EventKind.PAD_HIT: "memprotect",
    EventKind.PAD_MISS: "memprotect",
    EventKind.HASH_VERIFY: "memprotect",
    EventKind.HASH_UPDATE: "memprotect",
    EventKind.RUN_SPAN: "run",
    EventKind.FAULT_INJECT: "faults",
    EventKind.FAULT_DETECT: "faults",
}


def rich_config():
    config = e6000_config(num_processors=4, senss_enabled=True,
                          auth_interval=8)
    config = config.with_l2_size(8 * KB).with_masks(1)
    return config.with_memprotect(encryption_enabled=True,
                                  integrity_enabled=True,
                                  pad_cache_entries=16)


def workload():
    return generate("fft", 4, scale=0.05, seed=3)


def run_with(categories):
    system = build_system(rich_config())
    tracer = Tracer(capacity=500_000, categories=categories)
    tracer.attach(system)
    result = system.run(workload())
    return system, tracer, result


@pytest.fixture(scope="module")
def unfiltered():
    return run_with(None)


class TestFiltering:
    @pytest.mark.parametrize("keep", ["bus", "mem", "senss",
                                      "memprotect", "run"])
    def test_only_enabled_kinds_recorded(self, keep):
        _, tracer, _ = run_with({keep})
        recorded = {KIND_CATEGORY[kind] for kind in tracer.kind_totals}
        assert recorded == {keep}

    def test_filtered_counts_match_unfiltered(self, unfiltered):
        """A senss-only tracer sees exactly the senss events a full
        tracer sees — filtering drops categories, not events."""
        _, full, _ = unfiltered
        _, filtered, _ = run_with({"senss"})
        for kind in (EventKind.MASK_STALL, EventKind.AUTH_MAC):
            assert filtered.kind_totals[kind] == full.kind_totals[kind]

    def test_results_bit_identical(self, unfiltered):
        _, _, full = unfiltered
        for categories in ({"senss"}, {"bus", "mem"}, frozenset()):
            _, _, result = run_with(categories)
            assert result.cycles == full.cycles
            assert result.per_cpu_cycles == full.per_cpu_cycles
            assert result.stats == full.stats

    def test_bus_off_keeps_scratch_route(self):
        """Without the bus category no bus observer is registered, so
        the engine keeps its scratch-transaction fast route."""
        system = build_system(rich_config())
        Tracer(categories={"senss", "mem"}).attach(system)
        assert not system.bus._observers

    def test_mem_off_skips_latency_histograms(self):
        system, tracer, _ = run_with({"senss"})
        names = set(system.stats.histogram_summaries())
        assert "obs.mask_wait_cycles" in names
        assert "obs.miss_latency" not in names
        assert "obs.pad_reuse_distance" not in names
        assert tracer._h_miss is None

    def test_run_end_metadata_survives_filtering(self):
        """workload/cycles metadata is kept even with run spans off —
        summaries and reports still need it."""
        _, tracer, result = run_with({"senss"})
        assert tracer.workload_name == "fft"
        assert max(tracer.final_clocks) == result.cycles
        assert EventKind.RUN_SPAN not in tracer.kind_totals


class TestValidation:
    def test_unknown_category_raises(self):
        with pytest.raises(ConfigError, match="unknown trace categ"):
            Tracer(categories={"bogus"})

    def test_default_is_all_categories(self):
        assert Tracer().categories == frozenset(TRACE_CATEGORIES)


class TestParseCategories:
    def test_none_and_all_mean_unfiltered(self):
        assert parse_categories(None) is None
        assert parse_categories("all") is None
        assert parse_categories("bus,all") is None
        assert parse_categories("") is None

    def test_list_parsing(self):
        assert parse_categories("bus, senss") == {"bus", "senss"}
        assert parse_categories("mem,,") == {"mem"}
