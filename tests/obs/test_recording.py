"""Deterministic recordings: byte-identity, checksums, persistence."""

import pytest

from repro.config import KB, e6000_config
from repro.errors import TraceError
from repro.obs import (RECORDING_SCHEMA_VERSION, Recording, record_run)
from repro.sim.sweep import ENGINE_VERSION, SweepPoint, point_key


def _point(engine="auto", scale=0.02, seed=0):
    config = e6000_config(num_processors=2, auth_interval=10)
    config = config.with_l2_size(64 * KB).with_masks(8)
    config = config.with_memprotect(encryption_enabled=True,
                                    integrity_enabled=True)
    config = config.with_engine(engine)
    return SweepPoint("fft", config, scale=scale, seed=seed)


class TestDeterminism:
    def test_same_point_records_byte_identical(self):
        first = record_run(_point())
        second = record_run(_point())
        assert first.to_bytes() == second.to_bytes()

    def test_scalar_and_vector_record_byte_identical(self):
        scalar = record_run(_point(engine="scalar"))
        vector = record_run(_point(engine="vector"))
        assert scalar.to_bytes() == vector.to_bytes()

    def test_fingerprint_matches_point_key(self):
        recording = record_run(_point())
        assert recording.fingerprint == point_key(_point())

    def test_different_seed_differs(self):
        assert record_run(_point(seed=0)).to_bytes() != \
            record_run(_point(seed=1)).to_bytes()


class TestPayloadShape:
    def test_core_fields(self):
        recording = record_run(_point())
        payload = recording.payload
        assert payload["kind"] == "repro-recording"
        assert payload["schema_version"] == RECORDING_SCHEMA_VERSION
        assert payload["engine_version"] == ENGINE_VERSION
        assert payload["workload"]["name"] == "fft"
        assert payload["events_total"] == len(payload["events"]["kind"])
        assert payload["result"]["cycles"] == recording.cycles
        assert payload["halted"] is None
        # the backend choice must not leak into the recording
        assert "engine" not in payload["config"]

    def test_snapshots_delta_encoded_and_cumulative(self):
        recording = record_run(_point())
        assert recording.snapshots, "auth checkpoints must snapshot"
        cycles = [snap["cycle"] for snap in recording.snapshots]
        assert cycles == sorted(cycles)
        # cumulative last-snapshot counters never exceed the final ones
        final = recording.final_stats()
        cumulative = {}
        for snap in recording.snapshots:
            cumulative.update(snap["counters"])
        for name, value in cumulative.items():
            assert value <= final[name]

    def test_snapshot_every_thins_snapshots(self):
        every = record_run(_point())
        thinned = record_run(_point(), snapshot_every=4)
        assert 0 < len(thinned.snapshots) < len(every.snapshots)
        assert thinned.snapshot_every == 4

    def test_events_roundtrip(self):
        recording = record_run(_point())
        events = list(recording.events())
        assert len(events) == recording.events_total
        assert all(event.cycle >= 0 for event in events[:100])

    def test_point_roundtrip(self):
        recording = record_run(_point())
        rebuilt = recording.point()
        assert point_key(rebuilt) == recording.fingerprint

    def test_to_result_matches_plain_run(self):
        from repro.sim.sweep import run_point
        recording = record_run(_point())
        plain = run_point(_point())
        restored = recording.to_result()
        assert restored.cycles == plain.cycles
        assert list(restored.per_cpu_cycles) == \
            list(plain.per_cpu_cycles)
        assert restored.stats == plain.stats


class TestPersistence:
    def test_save_load_roundtrip(self, tmp_path):
        recording = record_run(_point())
        path = recording.save(tmp_path / "nested" / "run.rec.json")
        loaded = Recording.load(path)
        assert loaded.to_bytes() == recording.to_bytes()
        assert loaded.core_equal(recording)

    def test_checksum_detects_tampering(self, tmp_path):
        recording = record_run(_point())
        path = recording.save(tmp_path / "run.rec.json")
        text = path.read_text().replace('"halted":null',
                                        '"halted":"oops"')
        path.write_text(text)
        with pytest.raises(TraceError, match="checksum"):
            Recording.load(path)

    def test_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"kind": "something-else"}')
        with pytest.raises(TraceError, match="repro recording"):
            Recording.load(path)

    def test_rejects_unknown_schema_version(self, tmp_path):
        recording = record_run(_point())
        recording.payload["schema_version"] = \
            RECORDING_SCHEMA_VERSION + 1
        path = recording.save(tmp_path / "future.rec.json")
        with pytest.raises(TraceError, match="schema version"):
            Recording.load(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot read"):
            Recording.load(tmp_path / "absent.rec.json")

    def test_timings_outside_checksum(self, tmp_path):
        recording = record_run(_point(),
                               timings={"record": 1.25})
        path = recording.save(tmp_path / "timed.rec.json")
        loaded = Recording.load(path)
        assert loaded.payload["timings"] == {"record": 1.25}
        # and a timing-free twin is core-equal but not byte-equal
        bare = record_run(_point())
        assert bare.core_equal(loaded)
        assert bare.to_bytes() != loaded.to_bytes()
