#!/usr/bin/env python3
"""Consolidate archived bench tables into one report.

Reads every table under ``benchmarks/results/`` (written by the bench
suite's ``emit`` fixture) and concatenates them — in the paper's
figure order — into ``benchmarks/results/REPORT.txt`` and stdout.

    python tools/collect_results.py [--quiet]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Paper presentation order; anything not listed sorts after, by name.
ORDER = [
    "table1_bus_encryption.txt",
    "sec2_uniprocessor.txt",
    "sec43_attacks.txt",
    "sec44_bus_speed.txt",
    "fig6_slowdown_1mb.txt",
    "fig6_slowdown_4mb.txt",
    "fig7_masks.txt",
    "fig8_traffic_1mb.txt",
    "fig8_traffic_4mb.txt",
    "fig9_interval.txt",
    "fig10_integrated.txt",
    "fig11_variability.txt",
    "sec71_overhead.txt",
    "characterization.txt",
    "sec78_seeds.txt",
    "ablation_gcm.txt",
    "ablation_lhash.txt",
    "ablation_pad_protocol.txt",
    "ablation_protocols.txt",
    "ablation_snc.txt",
    "ext_multiprogram.txt",
    "ext_split_bus.txt",
]


def collect(results_dir: Path) -> str:
    available = {path.name: path
                 for path in results_dir.glob("*.txt")
                 if path.name != "REPORT.txt"}
    ordered = [name for name in ORDER if name in available]
    ordered += sorted(set(available) - set(ORDER))
    sections = []
    for name in ordered:
        sections.append(available[name].read_text().rstrip())
    missing = [name for name in ORDER if name not in available]
    header = ["SENSS reproduction — consolidated bench results",
              f"({len(ordered)} tables; regenerate with "
              "`pytest benchmarks/ --benchmark-only`)"]
    if missing:
        header.append("missing (bench not yet run): "
                      f"{', '.join(missing)}")
    return "\n".join(header) + "\n\n" + "\n\n".join(sections) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quiet", action="store_true",
                        help="write REPORT.txt without printing")
    parser.add_argument("--results-dir", type=Path,
                        default=Path(__file__).parents[1]
                        / "benchmarks" / "results")
    args = parser.parse_args(argv)
    if not args.results_dir.is_dir():
        print(f"no results directory at {args.results_dir}; run the "
              "bench suite first", file=sys.stderr)
        return 1
    report = collect(args.results_dir)
    (args.results_dir / "REPORT.txt").write_text(report)
    if not args.quiet:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
