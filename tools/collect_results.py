#!/usr/bin/env python3
"""Consolidate archived bench tables into one report.

Reads every table under ``benchmarks/results/`` (written by the bench
suite's ``emit`` fixture) and concatenates them — in the paper's
figure order — into ``benchmarks/results/REPORT.txt`` and stdout.

    python tools/collect_results.py [--quiet]

With ``--reports``, instead merges ``python -m repro report --json``
outputs from multiple runs into one comparison table:

    python tools/collect_results.py --reports run1.json run2.json

With ``--bench-diff``, compares two ``BENCH_engine.json`` snapshots
(old first) and prints the per-config throughput speedups — the table
used in PR descriptions and by the CI regression gate:

    python tools/collect_results.py --bench-diff OLD.json NEW.json

With ``--diffs``, merges ``repro diff --json`` recording-diff reports
(docs/record_replay.md) from a perturbation study into one table —
one row per diff: the perturbed knob, first-divergence location,
cycle delta and changed-counter count:

    python tools/collect_results.py --diffs d1.json d2.json ...
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

# Paper presentation order; anything not listed sorts after, by name.
ORDER = [
    "table1_bus_encryption.txt",
    "sec2_uniprocessor.txt",
    "sec43_attacks.txt",
    "sec44_bus_speed.txt",
    "fig6_slowdown_1mb.txt",
    "fig6_slowdown_4mb.txt",
    "fig7_masks.txt",
    "fig8_traffic_1mb.txt",
    "fig8_traffic_4mb.txt",
    "fig9_interval.txt",
    "fig10_integrated.txt",
    "fig11_variability.txt",
    "sec71_overhead.txt",
    "characterization.txt",
    "sec78_seeds.txt",
    "ablation_gcm.txt",
    "ablation_lhash.txt",
    "ablation_pad_protocol.txt",
    "ablation_protocols.txt",
    "ablation_snc.txt",
    "ext_multiprogram.txt",
    "ext_split_bus.txt",
]


def collect(results_dir: Path) -> str:
    available = {path.name: path
                 for path in results_dir.glob("*.txt")
                 if path.name != "REPORT.txt"}
    ordered = [name for name in ORDER if name in available]
    ordered += sorted(set(available) - set(ORDER))
    sections = []
    for name in ordered:
        sections.append(available[name].read_text().rstrip())
    missing = [name for name in ORDER if name not in available]
    header = ["SENSS reproduction — consolidated bench results",
              f"({len(ordered)} tables; regenerate with "
              "`pytest benchmarks/ --benchmark-only`)"]
    if missing:
        header.append("missing (bench not yet run): "
                      f"{', '.join(missing)}")
    return "\n".join(header) + "\n\n" + "\n\n".join(sections) + "\n"


def _format_table(title, headers, rows):
    """Minimal fixed-width table (kept stdlib-only, no repro import)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [max(len(header), *(len(row[i]) for row in cells))
              if cells else len(header)
              for i, header in enumerate(headers)]
    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, rule,
             "  ".join(header.ljust(width)
                       for header, width in zip(headers, widths)),
             rule]
    for row in cells:
        lines.append("  ".join(value.ljust(width)
                               for value, width in zip(row, widths)))
    lines.append(rule)
    return "\n".join(lines)


def merge_reports(paths) -> str:
    """Merge ``repro report --json`` files into one comparison table.

    Each input must be a ``kind: "repro-report"`` dict (any schema
    version — only headline fields are read). Rows are ordered by
    (workload, cpus, scale) so repeated collections are stable.
    """
    reports = []
    for path in paths:
        path = Path(path)
        payload = json.loads(path.read_text())
        if payload.get("kind") != "repro-report":
            raise ValueError(f"{path} is not a repro report "
                             "(missing kind: repro-report)")
        reports.append((path.name, payload))
    reports.sort(key=lambda item: (item[1].get("workload", ""),
                                   item[1].get("num_cpus", 0),
                                   item[1].get("scale", 0.0),
                                   item[0]))
    rows = []
    for name, payload in reports:
        configs = payload.get("configs", {})
        baseline = configs.get("baseline", {})
        secured = configs.get("secured", {})
        rows.append([
            payload.get("workload", "?"),
            payload.get("num_cpus", "?"),
            payload.get("scale", "?"),
            f"{baseline.get('cycles', 0):,}",
            f"{secured.get('cycles', 0):,}",
            f"{payload.get('slowdown_percent', 0):+.3f}",
            f"{payload.get('traffic_increase_percent', 0):+.3f}",
            name,
        ])
    return _format_table(
        f"Merged run reports ({len(reports)} runs)",
        ["workload", "cpus", "scale", "base cycles", "senss cycles",
         "slowdown %", "traffic %", "source"],
        rows)


def _bench_sections(payload):
    """Yield (label-prefix, configs dict) for a BENCH_engine report.

    The per-backend sections (``backends.hit_heavy`` /
    ``backends.miss_heavy``) map backend names straight to measurement
    dicts, alongside scalar annotations — only the dict values are
    comparable rows.
    """
    yield "", payload.get("configs", {})
    yield "missheavy/", payload.get("missheavy", {}).get("configs", {})
    backends = payload.get("backends", {})
    for point in ("hit_heavy", "miss_heavy"):
        section = backends.get(point, {})
        yield f"backends/{point}/", {
            name: row for name, row in section.items()
            if isinstance(row, dict) and "accesses_per_second" in row}


def bench_diff(old_path, new_path) -> str:
    """Per-config speedup table between two BENCH_engine.json files.

    Configs present in only one snapshot are listed with a ``-`` in
    the missing column so renames/additions are visible rather than
    silently dropped.
    """
    payloads = []
    for path in (old_path, new_path):
        path = Path(path)
        payload = json.loads(path.read_text())
        if "configs" not in payload:
            raise ValueError(f"{path} is not an engine bench report "
                             "(missing configs)")
        payloads.append((path.name, payload))
    (old_name, old), (new_name, new) = payloads
    rows = []
    for (prefix, old_configs), (_, new_configs) in zip(
            _bench_sections(old), _bench_sections(new)):
        for kind in dict.fromkeys([*old_configs, *new_configs]):
            old_rate = old_configs.get(kind, {}).get(
                "accesses_per_second")
            new_rate = new_configs.get(kind, {}).get(
                "accesses_per_second")
            if old_rate and new_rate:
                speedup = f"{new_rate / old_rate:.2f}x"
                delta = f"{(new_rate / old_rate - 1) * 100:+.1f}%"
            else:
                speedup = delta = "-"
            rows.append([prefix + kind,
                         f"{old_rate:,}" if old_rate else "-",
                         f"{new_rate:,}" if new_rate else "-",
                         speedup, delta])
    return _format_table(
        f"Engine throughput diff — {old_name} -> {new_name} "
        "(accesses/s)",
        ["config", "old", "new", "speedup", "delta"], rows)


def merge_diffs(paths) -> str:
    """Merge ``repro diff --json`` reports into one divergence table.

    Each input must be a ``kind: "repro-recording-diff"`` dict. Rows
    are ordered by (workload, perturbation, source name) so repeated
    collections are stable.
    """
    reports = []
    for path in paths:
        path = Path(path)
        payload = json.loads(path.read_text())
        if payload.get("kind") != "repro-recording-diff":
            raise ValueError(f"{path} is not a recording diff "
                             "(missing kind: repro-recording-diff)")
        reports.append((path.name, payload))

    def _perturb_label(payload):
        perturbation = payload.get("perturbation")
        if not perturbation:
            return "none"
        return f"{perturbation['name']}={perturbation['value']}"

    reports.sort(key=lambda item: (
        item[1].get("workload", {}).get("name", ""),
        _perturb_label(item[1]), item[0]))
    rows = []
    for name, payload in reports:
        workload = payload.get("workload", {})
        first = payload.get("first_divergence")
        cycles = payload.get("cycles")
        if payload.get("identical"):
            where = "identical"
        elif first is None:
            where = "?"
        else:
            side = first.get("b") or first.get("a") or {}
            where = (f"@{side.get('cycle', 0):,} "
                     f"({side.get('name', '?')})")
        rows.append([
            workload.get("name", "?"),
            workload.get("cpus", "?"),
            _perturb_label(payload),
            where,
            f"{cycles['delta']:+,}" if cycles else "-",
            len(payload.get("counters", {})),
            name,
        ])
    return _format_table(
        f"Merged recording diffs ({len(reports)} runs)",
        ["workload", "cpus", "perturbation", "first divergence",
         "cycles delta", "counters", "source"],
        rows)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quiet", action="store_true",
                        help="write REPORT.txt without printing")
    parser.add_argument("--results-dir", type=Path,
                        default=Path(__file__).parents[1]
                        / "benchmarks" / "results")
    parser.add_argument("--reports", nargs="+", metavar="JSON",
                        help="merge `repro report --json` files into "
                             "one table instead of collecting bench "
                             "tables")
    parser.add_argument("--bench-diff", nargs=2,
                        metavar=("OLD", "NEW"),
                        help="print per-config speedups between two "
                             "BENCH_engine.json snapshots")
    parser.add_argument("--diffs", nargs="+", metavar="JSON",
                        help="merge `repro diff --json` recording "
                             "diffs into one divergence table")
    args = parser.parse_args(argv)
    if args.diffs:
        try:
            table = merge_diffs(args.diffs)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(table)
        return 0
    if args.bench_diff:
        try:
            table = bench_diff(*args.bench_diff)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(table)
        return 0
    if args.reports:
        try:
            table = merge_reports(args.reports)
        except (OSError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(table)
        return 0
    if not args.results_dir.is_dir():
        print(f"no results directory at {args.results_dir}; run the "
              "bench suite first", file=sys.stderr)
        return 1
    report = collect(args.results_dir)
    (args.results_dir / "REPORT.txt").write_text(report)
    if not args.quiet:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
