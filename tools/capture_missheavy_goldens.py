"""Capture the miss-heavy golden runs for the engine equivalence tests.

The fast-path goldens in ``tests/data/golden_engine.json`` exercise the
default 1 MB L2, where >90% of references are cache hits and the slow
path (coherence + bus + security layers) is a sliver of the run. This
companion capture pins the *slow-path* semantics: the ocean model on an
8 KB L2, where every machine flavour spends the majority of references
in misses, upgrades, and write-backs (<60% hit rate — see the
``hit_rate`` fields).

Usage::

    PYTHONPATH=src python tools/capture_missheavy_goldens.py

Rewrites ``tests/data/golden_missheavy.json``. Only run this to
re-baseline after an *intentional* timing/statistics change (bump
``repro.sim.sweep.ENGINE_VERSION`` in the same commit).
"""

import hashlib
import json
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "src"))

from repro.config import KB, e6000_config  # noqa: E402
from repro.sim.sweep import build_system  # noqa: E402
from repro.workloads.registry import generate  # noqa: E402

WORKLOAD = "ocean"
NUM_CPUS = 4
L2_KB = 8
SCALE = 0.05
SEEDS = (0, 1)
# The three bench flavours plus the integrated variants that exercise
# the remaining memprotect paths (write-update pad coherence; lazy
# LHash-style verification) — so a hot-path rewrite of the protection
# layer is pinned on *every* branch it can take.
KINDS = ("baseline", "senss", "integrated", "integrated-wu",
         "integrated-lazy")


def config_for(kind: str):
    config = e6000_config(num_processors=NUM_CPUS,
                          senss_enabled=(kind != "baseline"))
    config = config.with_l2_size(L2_KB * KB)
    if kind == "integrated":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    elif kind == "integrated-wu":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True,
                                        pad_protocol="write-update")
    elif kind == "integrated-lazy":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True,
                                        lazy_verification=True)
    return config


def hit_rate(stats: dict) -> float:
    hits = sum(v for k, v in stats.items()
               if k.endswith("l1_hit") or k.endswith("l2_hit"))
    misses = sum(v for k, v in stats.items() if k.endswith("l2_miss"))
    upgrades = sum(v for k, v in stats.items()
                   if k.endswith("upgrade_needed"))
    return hits / (hits + misses + upgrades)


def main() -> None:
    runs = {}
    for kind in KINDS:
        for seed in SEEDS:
            workload = generate(WORKLOAD, NUM_CPUS, scale=SCALE,
                                seed=seed)
            result = build_system(config_for(kind)).run(workload)
            digest = hashlib.sha256(
                json.dumps(result.stats,
                           sort_keys=True).encode()).hexdigest()
            rate = hit_rate(result.stats)
            assert rate < 0.60, (kind, seed, rate)
            runs[f"{kind}|{seed}"] = {
                "total_accesses": workload.total_accesses,
                "cycles": result.cycles,
                "per_cpu_cycles": list(result.per_cpu_cycles),
                "bus_transactions": result.stats.get(
                    "bus.transactions", 0),
                "hit_rate": round(rate, 4),
                "stats_sha256": digest,
            }
            print(f"{kind}|{seed}: cycles={result.cycles} "
                  f"hit_rate={rate:.3f}")

    payload = {
        "workload": WORKLOAD,
        "num_cpus": NUM_CPUS,
        "l2_kb": L2_KB,
        "scale": SCALE,
        "runs": runs,
    }
    out = (pathlib.Path(__file__).parent.parent / "tests" / "data"
           / "golden_missheavy.json")
    out.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    print(f"wrote {out}")


if __name__ == "__main__":
    main()
