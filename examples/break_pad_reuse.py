#!/usr/bin/env python3
"""The section 3.1 break: why uniprocessor memory encryption cannot be
reused verbatim for the SMP bus.

Scenario from the paper: data D is encrypted in memory as P XOR D
under fast memory encryption. Processor A owns D exclusively and keeps
updating it WITHOUT changing the pad (no memory write-back happens).
Processor B requests the line twice over the bus. If the bus naively
reuses the memory pad, an observer XORs the two bus ciphertexts and
learns D XOR D' — plaintext difference leaks with no key material.

SENSS's chained masks make the two transfers incomparable.
"""

from repro.core.bus_crypto import GroupChannel
from repro.crypto.aes import AES
from repro.crypto.otp import xor_bytes

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])


def main() -> None:
    d_original = b"balance: $100.00  acct 4471-9921"   # 32 bytes
    d_updated = b"balance: $999.99  acct 4471-9921"
    assert len(d_original) == len(d_updated) == 32

    print("Naive scheme: bus reuses the (static) memory pad")
    print("-" * 60)
    aes = AES(KEY)
    static_pad = (aes.encrypt_block(b"pad for address1")
                  + aes.encrypt_block(b"pad for address2"))
    wire_1 = xor_bytes(d_original, static_pad)
    wire_2 = xor_bytes(d_updated, static_pad)
    leaked = xor_bytes(wire_1, wire_2)
    truth = xor_bytes(d_original, d_updated)
    print(f"   observer computes wire1 XOR wire2 = {leaked.hex()}")
    print(f"   actual plaintext difference       = {truth.hex()}")
    print("   -> EQUAL: the adversary learned where and how the "
          "balance changed, with no key.")
    assert leaked == truth

    print()
    print("SENSS: mask re-chained on every transfer (Table 1)")
    print("-" * 60)
    sender = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=1)
    receiver = GroupChannel(KEY, ENC_IV, AUTH_IV, num_masks=1)
    senss_1 = sender.encrypt_message(0, d_original)
    assert receiver.decrypt_message(0, senss_1) == d_original
    senss_2 = sender.encrypt_message(0, d_updated)
    assert receiver.decrypt_message(0, senss_2) == d_updated
    senss_leak = xor_bytes(senss_1, senss_2)
    print(f"   observer computes wire1 XOR wire2 = {senss_leak.hex()}")
    print(f"   actual plaintext difference       = {truth.hex()}")
    assert senss_leak != truth
    print("   -> DIFFERENT: the XOR is keyed by AES_K(B XOR PID); "
          "nothing leaks.")


if __name__ == "__main__":
    main()
