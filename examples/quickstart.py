#!/usr/bin/env python3
"""Quickstart: measure SENSS overhead on the paper's default machine.

Builds the Figure-5 Sun E6000-class SMP twice — once insecure, once
with SENSS bus encryption + authentication — runs the same SPLASH-2
style workload on both, and reports the paper's two headline metrics.

    python examples/quickstart.py [workload] [num_cpus]
"""

import sys

from repro import (SmpSystem, build_secure_system, e6000_config, generate,
                   slowdown_percent, traffic_increase_percent)


def main() -> None:
    workload_name = sys.argv[1] if len(sys.argv) > 1 else "lu"
    num_cpus = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    config = e6000_config(num_processors=num_cpus, l2_mb=1,
                          auth_interval=100)
    print("Machine (Figure 5 parameters)")
    print("-" * 40)
    print(config.describe())
    print()

    workload = generate(workload_name, num_cpus, scale=0.5)
    print(f"Workload: {workload.name}, "
          f"{workload.total_accesses} memory references "
          f"across {workload.num_cpus} CPUs")
    print()

    baseline = SmpSystem(config.with_senss(False)).run(workload)
    secured = build_secure_system(config).run(workload)

    print("Baseline :", baseline.summary())
    print("SENSS    :", secured.summary())
    print()
    print("Performance slowdown : "
          f"{slowdown_percent(baseline, secured):+.3f}%")
    print("Bus traffic increase : "
          f"{traffic_increase_percent(baseline, secured):+.3f}%")
    print(f"MAC broadcasts       : {secured.auth_messages}")
    print(f"Mask stalls          : {secured.stat('senss.mask_stalls')}")
    print()
    print("The paper's Figure 6/8 regime: both numbers well under 1%")
    print("at authentication interval 100.")


if __name__ == "__main__":
    main()
