#!/usr/bin/env python3
"""Mini evaluation sweep: one workload through every paper experiment.

A compact version of the full bench suite (benchmarks/) that sweeps a
single workload through the Figure 6/7/8/9/10 configurations and
prints a one-screen summary. Useful as a smoke test of the whole
reproduction pipeline.

    python examples/figure_sweep.py [workload]
"""

import sys

from repro import (SmpSystem, build_secure_system, e6000_config, generate,
                   slowdown_percent, traffic_increase_percent)
from repro.analysis.overhead import compute_overhead
from repro.analysis.report import format_table


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "ocean"
    workload = generate(name, 4, scale=0.4)
    rows = []

    def measure(label, config):
        base = SmpSystem(config.with_senss(False)).run(workload)
        secured = build_secure_system(config).run(workload)
        rows.append([label,
                     f"{slowdown_percent(base, secured):+.3f}",
                     f"{traffic_increase_percent(base, secured):+.3f}"])

    for l2_mb in (1, 4):
        measure(f"Fig 6/8: interval 100, {l2_mb}M L2",
                e6000_config(4, l2_mb=l2_mb))
    for masks in (4, 2, 1):
        measure(f"Fig 7: {masks} mask(s), 4M L2",
                e6000_config(4, l2_mb=4).with_masks(masks))
    for interval in (32, 10, 1):
        measure(f"Fig 9: interval {interval}, 4M L2",
                e6000_config(4, l2_mb=4, auth_interval=interval))
    measure("Fig 10: +Mem_OTP_CHash, 1M L2",
            e6000_config(4, l2_mb=1).with_memprotect(
                encryption_enabled=True, integrity_enabled=True))

    print(format_table(
        f"SENSS experiment sweep — workload '{name}', 4 processors",
        ["configuration", "slowdown %", "traffic %"], rows))
    print()
    report = compute_overhead(e6000_config())
    print(format_table("Hardware overhead (section 7.1)",
                       ["quantity", "value"], list(report.rows())))


if __name__ == "__main__":
    main()
