#!/usr/bin/env python3
"""Program dispatch walkthrough — section 4.1 / Figure 1 end to end.

A software distributor encrypts a program under a session key K, wraps
K for a trusted *group* of processors (excluding one untrusted CPU),
the group establishes shared bus-crypto state, and the members then
exchange encrypted cache-to-cache messages that the outsider cannot
read — with periodic chained-MAC authentication.
"""

from repro.core.attacks import SecureBusFabric
from repro.core.authentication import AuthenticationManager
from repro.core.dispatch import (ProgramDistributor, decrypt_program,
                                 establish_group, recover_session_key)
from repro.core.shu import SecurityHardwareUnit
from repro.sim.rng import DeterministicRng

PROGRAM = b"""
.text   ; toy banking application
    load  r1, balance
    add   r1, r1, deposit
    store balance, r1
"""

GROUP_ID = 7
TRUSTED = [0, 1, 2]       # processor 3 handles the network stack:
UNTRUSTED = 3             # the distributor does not trust it (sec 4.1)


def main() -> None:
    print("1. Machine: four processors, each with a sealed key pair")
    machine = [SecurityHardwareUnit(pid, rng=DeterministicRng(40 + pid))
               for pid in range(4)]
    for shu in machine:
        modulus = shu.keypair.public.modulus
        print(f"   CPU{shu.pid}: RSA modulus {str(modulus)[:24]}...")

    print("\n2. Distributor packages the program for the trusted group")
    distributor = ProgramDistributor(DeterministicRng(2026))
    package = distributor.package("banking", PROGRAM, machine, TRUSTED,
                                  auth_interval=4, num_masks=2)
    print(f"   encrypted program: {len(package.encrypted_program)} bytes")
    print(f"   wrapped session keys for PIDs {package.member_pids}")

    print("\n3. Members unwrap K and decrypt the program on-chip")
    key = recover_session_key(machine[0], package)
    program = decrypt_program(key, package)
    assert program == PROGRAM
    print(f"   CPU0 recovered K = {key.hex()} and the program text")
    try:
        package.key_for(UNTRUSTED)
    except Exception as error:
        print(f"   CPU{UNTRUSTED} has no wrapped key: {error}")

    print("\n4. Group establishment: smallest PID broadcasts fresh IVs")
    establish_group(machine, GROUP_ID, package, DeterministicRng(99))
    print(f"   GID {GROUP_ID} installed on CPUs {TRUSTED}; "
          f"CPU{UNTRUSTED} only marks the GID occupied")

    print("\n5. Secure cache-to-cache traffic with periodic MAC rounds")
    manager = AuthenticationManager(TRUSTED, interval=4,
                                    group_id=GROUP_ID)
    fabric = SecureBusFabric(machine, GROUP_ID, manager)
    for index in range(12):
        sender = TRUSTED[index % len(TRUSTED)]
        data = bytes([index] * 32)
        received = fabric.transmit(sender, data)
        got = sorted(received)
        assert UNTRUSTED not in received
        if index < 3:
            print(f"   CPU{sender} -> CPUs {got}: "
                  "32B line delivered, outsider saw ciphertext only")
    print(f"   ... {fabric.transmitted} transfers, "
          f"{manager.rounds_completed} MAC rounds, 0 alarms")

    print("\nDone: confidentiality via chained masks, integrity via")
    print("chained CBC-MAC, key distribution via per-processor RSA.")


if __name__ == "__main__":
    main()
