#!/usr/bin/env python3
"""Bring your own traces: the trace-file workflow.

Writes a hand-crafted two-CPU trace to disk in the text format
(``repro.workloads.tracefile``), loads it back, and measures SENSS
overhead on it — the workflow for users with traces captured from
real systems or other simulators.
"""

import tempfile
from pathlib import Path

from repro import (SmpSystem, build_secure_system, e6000_config,
                   slowdown_percent)
from repro.workloads.tracefile import load_workload, save_workload
from repro.workloads.registry import generate

HAND_TRACE = """\
# workload: handoff
# cpus: 2
# meta source=hand-written
# CPU0 produces four cache lines...
0 W 0x10000000 5
0 W 0x10000040 5
0 W 0x10000080 5
0 W 0x100000c0 5
# ...CPU1 consumes them (cache-to-cache transfers)...
1 R 0x10000000 2000
1 R 0x10000040 5
1 R 0x10000080 5
1 R 0x100000c0 5
# ...and hands back a result.
1 W 0x10001000 5
0 R 0x10001000 3000
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. A hand-written trace.
        hand_path = Path(tmp) / "handoff.trace"
        hand_path.write_text(HAND_TRACE)
        workload = load_workload(hand_path)
        print(f"loaded {workload.name!r}: {workload.total_accesses} "
              f"accesses on {workload.num_cpus} CPUs "
              f"(metadata {workload.metadata})")

        config = e6000_config(num_processors=2, auth_interval=1)
        base = SmpSystem(config.with_senss(False)).run(workload)
        secured = build_secure_system(config).run(workload)
        print(f"  baseline: {base.summary()}")
        print(f"  SENSS   : {secured.summary()}")
        print("  slowdown at interval 1: "
              f"{slowdown_percent(base, secured):+.3f}%")

        # 2. Round-trip a generated workload through the format.
        generated = generate("barnes", 2, scale=0.05)
        archive = Path(tmp) / "barnes.trace"
        save_workload(generated, archive)
        reloaded = load_workload(archive)
        assert reloaded.traces == generated.traces
        size_kb = archive.stat().st_size / 1024
        print(f"\narchived {generated.name}: "
              f"{generated.total_accesses} accesses -> "
              f"{size_kb:.0f} KB text file, round-trips exactly")
        print("the same files drive the CLI: "
              "python -m repro run barnes.trace --cpus 2")


if __name__ == "__main__":
    main()
