#!/usr/bin/env python3
"""Mask pair/array pipelining — section 4.4 and Figure 3.

Replays a burst of back-to-back bus messages against mask arrays of
different sizes and prints the stall each message suffers while its
mask slot regenerates (80-cycle AES, 10-cycle bus cycle, per Figure 5).
"""

from repro.config import e6000_config
from repro.core.masks import MaskTimingArray, max_useful_masks

AES_LATENCY = 80
BUS_CYCLE = 10


def burst(array: MaskTimingArray, messages: int = 12):
    """Messages arriving every bus cycle (peak rate); returns stalls."""
    stalls = []
    time = 0
    for _ in range(messages):
        wait = array.consume(time)
        stalls.append(wait)
        time += BUS_CYCLE  # next message one bus cycle later
    return stalls


def main() -> None:
    config = e6000_config()
    print(f"AES latency {AES_LATENCY} cy, bus cycle {BUS_CYCLE} cy")
    print("Section 4.4 bound: masks needed = ceil(AES/bus) = "
          f"{max_useful_masks(AES_LATENCY, BUS_CYCLE)} "
          f"(config.max_masks = {config.max_masks})")
    print()
    print("Per-message stall (cycles) for a 12-message peak-rate burst:")
    header = "  ".join(f"m{i:02d}" for i in range(12))
    print(f"{'masks':>8s}  {header}  total")
    for num_masks in (1, 2, 4, 8, None):
        label = "perfect" if num_masks is None else str(num_masks)
        array = MaskTimingArray(num_masks, AES_LATENCY)
        stalls = burst(array)
        cells = "  ".join(f"{stall:3d}" for stall in stalls)
        print(f"{label:>8s}  {cells}  {sum(stalls):5d}")
    print()
    print("Figure 3's case — AES latency equal to the bus cycle time:")
    pair = MaskTimingArray(2, aes_latency=BUS_CYCLE)
    stalls = burst(pair)
    print(f"   a PAIR of masks removes every stall: {stalls}")
    assert not any(stalls)
    print()
    print("8 masks sustain the peak rate exactly (the paper stores 8")
    print("mask registers per group entry, section 7.1).")


if __name__ == "__main__":
    main()
