#!/usr/bin/env python3
"""Cache-to-memory protection walkthrough — section 6.

Shows the full functional stack the integrated system (Figure 10)
models: fast memory (OTP) encryption with pad coherence, CHash
tree-cached integrity verification, LHash-style lazy verification,
and detection of physical tampering and replay attacks.
"""

from repro.errors import IntegrityViolation
from repro.memory.dram import MainMemory
from repro.memprotect.chash import CachedHashTreeVerifier
from repro.memprotect.lhash import LazyVerifier
from repro.memprotect.merkle import MerkleTree
from repro.memprotect.pad_cache import PadCoherenceDirectory
from repro.memprotect.pads import FastMemoryEncryption

KEY = bytes(range(16))


def encryption_demo() -> None:
    print("1. Fast memory encryption (OTP pads, section 2.1/6.1)")
    memory = MainMemory(64)
    engine = FastMemoryEncryption(KEY, 64)
    secret = b"wire $1,000,000 to account 7781".ljust(64, b".")
    engine.store(memory, 0x1000, secret)
    print(f"   in memory : {memory.read_line(0x1000)[:24].hex()}... "
          "(ciphertext)")
    print(f"   decrypted : {engine.load(memory, 0x1000)[:31]!r}")

    directory = PadCoherenceDirectory(num_processors=2)
    directory.on_fetch(1, 0x1000)          # CPU1 caches the pad
    affected = directory.on_writeback(0, 0x1000)  # CPU0 re-encrypts
    print(f"   CPU0 write-back bumps the pad; stale holders {affected} "
          "get a type-'01' invalidate")
    needs_request = directory.on_fetch(1, 0x1000)
    print("   CPU1's next fetch issues a type-'10' pad request: "
          f"{needs_request}")


def chash_demo() -> None:
    print("\n2. CHash: hash tree cached in L2 (sections 2.2/6.2)")
    memory = MainMemory(64)
    for index in range(64):
        memory.write_line(index * 64, bytes([index] * 64))
    tree = MerkleTree(memory, 0, 64, arity=4)
    verifier = CachedHashTreeVerifier(tree, cache_nodes=16)
    _, cold = verifier.verified_read(0x40)
    _, warm = verifier.verified_read(0x40)
    print(f"   tree height {tree.height}; cold read fetched {cold} "
          f"nodes, warm read {warm} (cached ancestor trusted)")

    memory.corrupt_line(0x40)  # physical tampering
    try:
        verifier.verified_read(0x40)
    except IntegrityViolation as alarm:
        print(f"   tampering detected: {alarm}")

    # Replay: restore old data AND its old leaf digest.
    memory, tree = fresh_replay_setup()
    try:
        tree.verify_line(0x40)
    except IntegrityViolation as alarm:
        print(f"   replay detected at the parent: {alarm}")


def fresh_replay_setup():
    memory = MainMemory(64)
    for index in range(16):
        memory.write_line(index * 64, bytes([index] * 64))
    tree = MerkleTree(memory, 0, 16, arity=4)
    old_data = memory.read_line(0x40)
    old_digest = tree.levels[0][1]
    memory.write_line(0x40, bytes([0xEE] * 64))
    tree.update_line(0x40)
    memory.corrupt_line(0x40, old_data)
    tree.forge_leaf_digest(0x40, old_digest)
    return memory, tree


def lhash_demo() -> None:
    print("\n3. LHash-style lazy verification (section 7.7)")
    memory = MainMemory(64)
    verifier = LazyVerifier(memory)
    for index in range(8):
        verifier.write_line(index * 64, bytes([index] * 64))
    for index in range(8):
        verifier.read_line(index * 64)
    verifier.verify_epoch()
    print("   clean epoch of 16 accesses verified in one deferred "
          f"check ({verifier.epochs_verified} epoch)")

    verifier.write_line(0x40, bytes([9] * 64))
    memory.corrupt_line(0x40)
    try:
        verifier.verify_epoch()
    except IntegrityViolation as alarm:
        print(f"   deferred check still catches tampering: {alarm}")


def main() -> None:
    encryption_demo()
    chash_demo()
    lhash_demo()
    print("\nThe timing side of all three mechanisms drives the")
    print("Figure 10 bench (benchmarks/bench_fig10_integrated.py).")


if __name__ == "__main__":
    main()
