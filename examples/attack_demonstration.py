#!/usr/bin/env python3
"""Bus attack demonstration — sections 3.2 and 4.3.

Launches each attack class against a running group and shows SENSS
raising the alarm, then replays the same attacks against the
non-chained baseline (Shi et al. [20] style) to show what slips
through.
"""

from repro.core.attacks import (DropAttack, SecureBusFabric, SpoofAttack,
                                SwapAttack)
from repro.core.authentication import (AuthenticationManager,
                                       NonChainedAuthenticator)
from repro.core.shu import SecurityHardwareUnit
from repro.errors import AuthenticationFailure, SpoofDetected

KEY = bytes(range(16))
ENC_IV = bytes([0xA0 + i for i in range(16)])
AUTH_IV = bytes([0x50 + i for i in range(16)])
GID = 1


def fresh_fabric(attacker):
    members = set(range(4))
    shus = [SecurityHardwareUnit(pid, max_processors=8)
            for pid in range(4)]
    for shu in shus:
        shu.join_group(GID, members, KEY, ENC_IV, AUTH_IV,
                       num_masks=2, auth_interval=8)
    manager = AuthenticationManager(sorted(members), 8, GID)
    return SecureBusFabric(shus, GID, manager, attacker)


def attack_senss(label, attacker):
    fabric = fresh_fabric(attacker)
    try:
        for index in range(16):
            fabric.transmit(index % 4, bytes([index] * 32))
        fabric.finish()
        print(f"   {label:<42s} NOT DETECTED (!)")
    except SpoofDetected as alarm:
        print(f"   {label:<42s} ALARM (immediate): {alarm}")
    except AuthenticationFailure as alarm:
        print(f"   {label:<42s} ALARM (MAC round): {alarm}")


def main() -> None:
    print("SENSS under attack (4 CPUs, auth every 8 transfers)")
    print("=" * 70)
    attack_senss("Type 1: drop message #3 from CPU2",
                 DropAttack({3: [2]}))
    attack_senss("Type 1: split-group drop (#3 from 2,3; #4 from 0,1)",
                 DropAttack({3: [2, 3], 4: [0, 1]}))
    attack_senss("Type 2: swap messages #2 and #3",
                 SwapAttack(first_index=2))
    attack_senss("Type 3: spoof delivered to the claimed PID",
                 SpoofAttack(1, GID, 2, bytes(32), victims=[2]))
    attack_senss("Type 3: spoof with valid member PID to CPU3",
                 SpoofAttack(1, GID, 2, bytes(32), victims=[3]))

    print()
    print("The non-chained baseline (per-message MAC, local sequences)")
    print("=" * 70)
    baseline = NonChainedAuthenticator(KEY)
    wires = [baseline.send(bytes([tag] * 32)) for tag in range(4)]

    # Split-group drop: every delivered message passes its MAC check.
    for receiver, indices in ((0, (0, 1, 3)), (1, (0, 1, 3)),
                              (2, (0, 1, 2)), (3, (0, 1, 2))):
        for index in indices:
            assert baseline.receive(receiver, *wires[index]) is not None
    print(f"   split-group drop: {baseline.per_message_failures} alarms "
          "raised -> attack NOT DETECTED (receivers silently hold "
          "garbage)")

    # Replay: an old (wire, MAC) pair re-delivered where sequences align.
    replayer = NonChainedAuthenticator(KEY)
    wire, mac = replayer.send(bytes([7] * 32))
    replayer.receive(0, wire, mac)
    replayed = replayer.receive(1, wire, mac)
    print("   replay to a fresh victim: accepted as "
          f"{replayed[:4].hex()}... -> attack NOT DETECTED")

    print()
    print("Conclusion (paper section 4.3): chaining the MAC over the")
    print("whole bus history, with the originator PID folded in, is")
    print("what catches the split drop and the valid-PID spoof.")


if __name__ == "__main__":
    main()
