#!/usr/bin/env python3
"""Verified simulation: real cryptography inside the timing simulator.

The figures are produced by a timing model that charges cycles without
moving bytes. This example attaches the *functional-security bridge*:
one genuine SHU per processor, driven by every cache-to-cache transfer
the simulator grants. At the end we cross-check the timing layer's
accounting against the functional reality — same protected-transfer
count, same MAC-broadcast count, all replicas in cryptographic lock
step, every authentication round passed with real chained CBC-MACs.
"""

from repro import build_secure_system, e6000_config, generate
from repro.core.functional_bridge import attach_functional_bridge


def main() -> None:
    config = e6000_config(num_processors=4, l2_mb=1, auth_interval=25)
    system = build_secure_system(config)
    bridge = attach_functional_bridge(system)

    workload = generate("lu", 4, scale=0.2)
    print(f"Running {workload.name} ({workload.total_accesses} refs) "
          "with REAL AES under the timing model...")
    result = system.run(workload)

    summary = bridge.verify_against_layer(system.bus.security_layer)
    print(f"\nTiming model: {result.cycles} cycles, "
          f"{result.cache_to_cache_transfers} cache-to-cache "
          f"transfers, {result.auth_messages} MAC broadcasts")
    print("Functional cross-check:")
    print("  protected transfers mirrored : "
          f"{summary['protected_transfers']}")
    print(f"  authentication rounds passed : {summary['auth_rounds']}")
    print("  MAC broadcast transactions   : "
          f"{summary['mac_broadcasts']}")
    channel = bridge.shus[0].channel(0)
    print("  final chained MAC            : "
          f"{channel.mac_digest().hex()}")
    print("  AES invocations per member   : "
          f"{channel.aes_invocations}")
    print("\nEvery counter matches and every replica agrees: the")
    print("timing layer's books correspond one-for-one to genuine")
    print("SENSS cryptography on this transaction stream.")


if __name__ == "__main__":
    main()
