#!/usr/bin/env python3
"""Multiprogrammed groups — Figure 1 / section 4.2 in action.

Two programs share a 4-processor SENSS machine, each in its own group
with its own masks and authentication stream. A third scenario swaps a
group's context out to (encrypted, authenticated) memory and back —
the section 4.2 swap-out path — including a tamper attempt while the
context sits in memory.
"""

from repro.config import e6000_config
from repro.core.context import GroupContextManager
from repro.core.senss import build_secure_system
from repro.errors import IntegrityViolation
from repro.memory.dram import MainMemory
from repro.sim.rng import DeterministicRng
from repro.core.shu import SecurityHardwareUnit
from repro.workloads.micro import ping_pong, producer_consumer
from repro.workloads.multiprogram import run_multiprogrammed


def timing_demo() -> None:
    print("1. Two programs, two groups, one machine (timing model)")
    config = e6000_config(num_processors=4, auth_interval=10)
    system = build_secure_system(config)
    programs = [ping_pong(rounds=200),
                producer_consumer(num_cpus=2, items=200)]
    result, placements = run_multiprogrammed(system, programs)
    layer = system.bus.security_layer
    for placement in placements:
        state = layer.group_state(placement.group_id)
        print(f"   group {placement.group_id} "
              f"({placement.workload.name:18s} on CPUs "
              f"{state.member_pids}): "
              f"{state.protected_messages:4d} protected transfers, "
              f"{state.auth_broadcasts:3d} MAC broadcasts")
    print(f"   machine total: {result.total_bus_transactions} bus "
          f"transactions in {result.cycles} cycles")


def swap_demo() -> None:
    print("\n2. Group swap-out / swap-in (functional model)")
    members = {0, 1, 2}
    shus = [SecurityHardwareUnit(pid, max_processors=8)
            for pid in range(3)]
    key = bytes(range(16))
    for shu in shus:
        shu.join_group(4, members, key,
                       bytes([0xA0 + i for i in range(16)]),
                       bytes([0x50 + i for i in range(16)]))
    # Some traffic to give the group non-trivial state.
    for index in range(5):
        wire = shus[index % 3].send(4, bytes([index] * 32))
        for shu in shus:
            if shu.pid != wire.pid:
                shu.snoop(wire)
    memory = MainMemory(64)
    manager = GroupContextManager(memory, DeterministicRng(11))
    contexts = manager.swap_out(shus, 4)
    print(f"   swapped out {len(contexts)} member contexts "
          "(encrypted, MAC'd) to memory at "
          f"{contexts[0].base_address:#x}")
    print("   on-chip masks scrubbed: "
          f"{shus[0].channel(4).mask_snapshot()[0][:8].hex()}...")
    manager.swap_in(shus, 4)
    wire = shus[0].send(4, bytes([0x77] * 32))
    assert shus[1].snoop(wire) == bytes([0x77] * 32)
    print("   swap-in restored lock step; traffic resumes cleanly")

    # Now the adversarial variant: tamper while swapped out.
    manager.swap_out(shus, 4)
    tampered = [context for context in manager._swapped.values()][0]
    memory.corrupt_line(tampered.base_address)
    try:
        manager.swap_in(shus, 4)
    except IntegrityViolation as alarm:
        print("   tampering with the swapped context is caught: "
              f"{alarm}")


def main() -> None:
    timing_demo()
    swap_demo()


if __name__ == "__main__":
    main()
