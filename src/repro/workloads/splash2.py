"""SPLASH-2-like synthetic trace generators.

Each generator models the *communication structure* of its namesake:

- **fft** — tiled butterfly computation over a shared matrix chunk
  punctuated by all-to-all transposes (bursty cache-to-cache traffic).
- **radix** — streaming reads of private keys with writes into dense
  bucket runs of shared histogram space (write invalidations,
  migratory lines).
- **barnes** — irregular, read-mostly walks over a shared tree with a
  hot upper level, strong path reuse, and occasional updates (wide
  read sharing).
- **lu** — blocked dense factorization: a rotating owner produces the
  pivot row that every other processor consumes
  (single-producer, all-consumer sharing).
- **ocean** — nearest-neighbour stencil on a strip-partitioned grid
  (boundary-row sharing between adjacent processors).

``scale`` multiplies the reference count (benches use ~1.0; unit tests
use ~0.05). The generators are tuned for realistic cache behaviour on
the Figure-5 machine: L2 miss rates of a few percent, bus utilisation
well below saturation, and a cache-to-cache share of bus traffic in
the tens of percent — the regime in which the paper's numbers live.
"""

from __future__ import annotations

from ..smp.trace import Workload
from .base import (SHARED_BASE, WORD_BYTES, assemble, conflict_block,
                   make_builders, private_base)


def _words(num_bytes: int) -> int:
    return num_bytes // WORD_BYTES


def fft(num_cpus: int, scale: float = 1.0, seed: int = 1) -> Workload:
    """Tiled butterfly phases + all-to-all transpose of a shared matrix."""
    builders = make_builders(num_cpus, seed * 7919 + 11)
    matrix_bytes = int(1.5 * (1 << 20))          # shared matrix ~1.5 MB
    matrix_words = _words(matrix_bytes)
    chunk_words = matrix_words // num_cpus
    phases = 10
    tiles_per_phase = max(1, int(2.4 * scale))
    tile_words = 256                             # 2 KB tiles
    passes_per_tile = 4

    for phase in range(phases):
        for cpu, builder in enumerate(builders):
            base_private = private_base(cpu) + 4096
            my_chunk = SHARED_BASE + cpu * chunk_words * WORD_BYTES
            # Butterfly compute: several passes over each tile of our
            # chunk (reads of twiddle factors from private memory).
            for tile in range(tiles_per_phase):
                tile_base = (my_chunk
                             + ((phase * tiles_per_phase + tile)
                                * tile_words % chunk_words) * WORD_BYTES)
                for tile_pass in range(passes_per_tile):
                    for word in range(0, tile_words, 2):
                        builder.read(base_private
                                     + (word * WORD_BYTES) % (1 << 14))
                        builder.read(tile_base + word * WORD_BYTES)
                        builder.write(tile_base + word * WORD_BYTES)
            # Rotating twiddle-factor table in the capacity-sensitive
            # region: the owner of this phase refreshed block
            # (phase % 12) earlier; everyone re-reads the previous few
            # blocks. A 4 MB L2 retains them (hits / cache-to-cache);
            # a 1 MB L2 conflict-evicts them (memory refetches).
            if cpu == phase % num_cpus:
                for line in range(8):
                    builder.write(conflict_block(phase % 12) + line * 64)
            if cpu == (phase + 1) % num_cpus:
                block = conflict_block((phase - 6) % 12)
                for line in range(8):
                    builder.read(block + line * 64)
            # Transpose: read a slice of every other CPU's chunk — the
            # words its butterfly just produced — and write into our
            # own chunk (the all-to-all exchange).
            slice_words = max(8, (tiles_per_phase * tile_words)
                              // (4 * num_cpus))
            for other in range(num_cpus):
                if other == cpu:
                    continue
                their_chunk = (SHARED_BASE
                               + other * chunk_words * WORD_BYTES)
                for word in range(slice_words):
                    source = ((phase * tiles_per_phase * tile_words)
                              + cpu * slice_words + word) % chunk_words
                    builder.read(their_chunk + source * WORD_BYTES)
                    builder.write(my_chunk
                                  + ((other * slice_words + word)
                                     % chunk_words) * WORD_BYTES)
    return assemble("fft", builders, scale=scale, seed=seed,
                    shared_bytes=matrix_bytes, phases=phases)


def radix(num_cpus: int, scale: float = 1.0, seed: int = 2) -> Workload:
    """Streaming key reads with dense-run shared-bucket writes."""
    builders = make_builders(num_cpus, seed * 104729 + 13)
    # Dense histogram space: small enough that CPUs collide on bucket
    # lines (the migratory read-modify-write sharing radix is known for)
    # while the streamed key arrays provide the memory-bound traffic.
    bucket_bytes = 256 << 10
    bucket_words = _words(bucket_bytes)
    keys = max(1, int(9000 * scale))
    run_words = 8                                # one line per bucket run
    keys_per_run = 24

    for cpu, builder in enumerate(builders):
        rng = builder._rng
        key_base = private_base(cpu) + 8192
        run_start = 0
        for key_index in range(keys):
            builder.read(key_base + (key_index * WORD_BYTES) % (1 << 20))
            # Radix scatters into bucket runs: a fresh random run every
            # two dozen keys, line-dense read-modify-writes within it.
            if key_index % keys_per_run == 0:
                run_start = rng.randint(
                    0, bucket_words // run_words - 1) * run_words
            bucket = run_start + rng.randint(0, run_words - 1)
            address = SHARED_BASE + bucket * WORD_BYTES
            builder.read(address)
            builder.write(address)
            if key_index % 64 == 63:
                # Rank exchange: peek at a neighbour's dense counters.
                neighbour = (cpu + 1) % num_cpus
                counter = (SHARED_BASE + bucket_bytes
                           + neighbour * 4096
                           + rng.randint(0, 63) * WORD_BYTES)
                builder.read(counter)
    return assemble("radix", builders, scale=scale, seed=seed,
                    shared_bytes=bucket_bytes, keys_per_cpu=keys)


def barnes(num_cpus: int, scale: float = 1.0, seed: int = 3) -> Workload:
    """Read-mostly tree walks with hot upper levels and path reuse."""
    builders = make_builders(num_cpus, seed * 6151 + 17)
    tree_bytes = 2 << 20                         # shared tree ~2 MB
    tree_words = _words(tree_bytes)
    hot_words = tree_words // 256                # upper tree levels
    walks = max(1, int(900 * scale))
    walk_length = 8
    reuse_probability = 0.95

    for cpu, builder in enumerate(builders):
        rng = builder._rng
        body_base = private_base(cpu) + 16384
        recent: list = []
        for walk in range(walks):
            for depth in range(walk_length):
                if depth < 3 or (recent
                                 and rng.random() < reuse_probability):
                    if depth < 3:
                        node = rng.randint(0, hot_words - 1)
                    else:
                        node = rng.choice(recent)
                else:
                    node = rng.randint(0, tree_words - 4)
                    recent.append(node)
                    if len(recent) > 192:
                        recent.pop(0)
                address = SHARED_BASE + node * WORD_BYTES
                # A tree node spans several words: read a few fields.
                builder.read(address)
                builder.read(address + WORD_BYTES)
                builder.read(address + 2 * WORD_BYTES)
            if walk % 64 == 0:
                # Periodic centre-of-mass summary exchange through the
                # capacity-sensitive region (rotating writer).
                epoch = walk // 64
                if cpu == epoch % num_cpus:
                    for line in range(8):
                        builder.write(conflict_block(epoch % 12)
                                      + line * 64)
                if cpu == (epoch + 1) % num_cpus:
                    block = conflict_block((epoch - 6) % 12)
                    for line in range(8):
                        builder.read(block + line * 64)
            # Update our body's fields (private) and occasionally the
            # shared cell the body hangs off (5% of walks).
            body = body_base + (walk % 128) * 64
            builder.read(body)
            builder.write(body)
            if rng.random() < 0.05:
                node = rng.randint(0, hot_words - 1)
                builder.write(SHARED_BASE + node * WORD_BYTES)
    return assemble("barnes", builders, scale=scale, seed=seed,
                    shared_bytes=tree_bytes, walks_per_cpu=walks)


def lu(num_cpus: int, scale: float = 1.0, seed: int = 4) -> Workload:
    """Rotating pivot-row producer with all-consumer readers."""
    builders = make_builders(num_cpus, seed * 3571 + 19)
    matrix_bytes = 2 << 20                       # shared matrix ~2 MB
    row_bytes = 2048
    rows = matrix_bytes // row_bytes
    iterations = max(2, int(55 * scale))
    row_words = _words(row_bytes)
    block_rows = 8                               # each CPU's warm block

    for iteration in range(iterations):
        owner = iteration % num_cpus
        pivot_row = SHARED_BASE + (iteration % rows) * row_bytes
        # Producer updates the pivot row at the head of the iteration.
        for word in range(row_words):
            builders[owner].write(pivot_row + word * WORD_BYTES)
        # Rotating U-diagonal blocks in the capacity-sensitive region:
        # the owner refreshes one block per iteration; consumers later
        # re-read blocks from several iterations back (retained by a
        # 4 MB L2, conflict-evicted from a 1 MB L2).
        for line in range(8):
            builders[owner].write(conflict_block(iteration % 12)
                                  + line * 64)
        consumer = builders[(owner + 1) % num_cpus]
        stale_block = conflict_block((iteration - 6) % 12)
        for line in range(8):
            consumer.read(stale_block + line * 64)
        # Every processor first updates its own (revisited, so warm
        # after the first sweep) block rows — which doubles as the
        # barrier slack that lets the producer finish — then consumes
        # the pivot row.
        for cpu, builder in enumerate(builders):
            block_base = (SHARED_BASE
                          + (rows - (cpu + 1) * block_rows) * row_bytes)
            block_row = block_base + (iteration % block_rows) * row_bytes
            for word in range(0, row_words, 2):
                builder.read(block_row + word * WORD_BYTES)
                builder.write(block_row + word * WORD_BYTES)
            if cpu != owner:
                builder.compute(400)  # barrier slack
                for word in range(0, row_words, 2):
                    builder.read(pivot_row + word * WORD_BYTES)
    return assemble("lu", builders, scale=scale, seed=seed,
                    shared_bytes=matrix_bytes, iterations=iterations)


def ocean(num_cpus: int, scale: float = 1.0, seed: int = 5) -> Workload:
    """Strip-partitioned stencil with boundary-row exchange."""
    builders = make_builders(num_cpus, seed * 2887 + 23)
    row_bytes = 4096
    rows_per_cpu = 32
    grid_rows = rows_per_cpu * num_cpus
    iterations = max(2, int(8 * scale))
    row_words = _words(row_bytes)
    sweep_step = 2

    def row_address(row: int) -> int:
        return SHARED_BASE + (row % grid_rows) * row_bytes

    for iteration in range(iterations):
        for cpu, builder in enumerate(builders):
            first = cpu * rows_per_cpu
            last = first + rows_per_cpu - 1
            for row in range(first, last + 1):
                mine = row_address(row)
                # Neighbour rows: interior rows read within the strip,
                # boundary rows read the adjacent CPU's edge row.
                above = row_address(row - 1) if row > 0 else mine
                below = (row_address(row + 1)
                         if row < grid_rows - 1 else mine)
                for word in range(0, row_words, 4 * sweep_step):
                    builder.read(above + word * WORD_BYTES)
                    builder.read(below + word * WORD_BYTES)
                    builder.read(mine + word * WORD_BYTES)
                    builder.write(mine + word * WORD_BYTES)
    return assemble("ocean", builders, scale=scale, seed=seed,
                    shared_bytes=grid_rows * row_bytes,
                    iterations=iterations)
