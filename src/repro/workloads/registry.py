"""Name-based workload registry used by benches and the CLI examples."""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Tuple

from ..errors import TraceError
from ..smp.trace import Workload
from .splash2 import barnes, fft, lu, ocean, radix

SPLASH2_NAMES = ["fft", "radix", "barnes", "lu", "ocean"]

WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "fft": fft,
    "radix": radix,
    "barnes": barnes,
    "lu": lu,
    "ocean": ocean,
}


#: process-wide memo of generated workloads. Trace synthesis is pure
#: (a seeded RNG walk) but costs more than simulating small points, so
#: repeated generation — every sweep point, every serve submission,
#: every checkpoint-chain fork — would otherwise dominate exactly the
#: runs the prefix-sharing executor speeds up. Generated workloads are
#: immutable by convention (nothing in the tree writes to a trace
#: after assembly), so sharing one object across runs is sound.
_MEMO_CAPACITY = 8
_MEMO: "OrderedDict[Tuple[str, int, float, int], Workload]" \
    = OrderedDict()


def clear_memo() -> None:
    """Drop every memoized workload (frees their trace columns).

    For callers about to run timing-sensitive measurements that the
    retained heap would perturb, and for tests that need cold
    generation."""
    _MEMO.clear()


def generate(name: str, num_cpus: int, scale: float = 1.0,
             seed: int = 0) -> Workload:
    """Build the named workload (paper ordering: fft radix barnes lu
    ocean). Results are memoized per process (bounded LRU) — callers
    must treat the returned workload as read-only."""
    factory = WORKLOADS.get(name)
    if factory is None:
        raise TraceError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}")
    key = (name, int(num_cpus), float(scale), int(seed))
    cached = _MEMO.get(key)
    if cached is not None:
        _MEMO.move_to_end(key)
        return cached
    # Each generator has its own default seed; offset by the caller's.
    workload = factory(num_cpus, scale=scale, seed=seed + 1)
    _MEMO[key] = workload
    while len(_MEMO) > _MEMO_CAPACITY:
        _MEMO.popitem(last=False)
    return workload
