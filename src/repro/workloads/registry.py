"""Name-based workload registry used by benches and the CLI examples."""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import TraceError
from ..smp.trace import Workload
from .splash2 import barnes, fft, lu, ocean, radix

SPLASH2_NAMES = ["fft", "radix", "barnes", "lu", "ocean"]

WORKLOADS: Dict[str, Callable[..., Workload]] = {
    "fft": fft,
    "radix": radix,
    "barnes": barnes,
    "lu": lu,
    "ocean": ocean,
}


def generate(name: str, num_cpus: int, scale: float = 1.0,
             seed: int = 0) -> Workload:
    """Build the named workload (paper ordering: fft radix barnes lu
    ocean)."""
    factory = WORKLOADS.get(name)
    if factory is None:
        raise TraceError(
            f"unknown workload {name!r}; choose from "
            f"{sorted(WORKLOADS)}")
    # Each generator has its own default seed; offset by the caller's.
    return factory(num_cpus, scale=scale, seed=seed + 1)
