"""Workload trace file I/O.

A trace-driven simulator is only as useful as the traces you can feed
it; this module defines a simple, diff-able text format so users can
bring traces captured elsewhere (pin tools, other simulators) or
archive generated ones.

Format (one record per line, ``#`` comments ignored)::

    # workload: my_trace
    # cpus: 2
    # meta key=value            (optional, repeatable)
    0 R 0x10000000 3
    0 W 0x10000040 1
    1 R 0x10000000 12

Columns: CPU id, R/W, byte address (hex or decimal), compute gap.
Records may be interleaved in any order; per-CPU program order is the
order of that CPU's records in the file.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from ..errors import TraceError
from ..smp.trace import ColumnarTrace, Workload


def save_workload(workload: Workload,
                  path: Union[str, Path]) -> None:
    """Write a workload in the text trace format."""
    path = Path(path)
    lines = [f"# workload: {workload.name}",
             f"# cpus: {workload.num_cpus}"]
    for key, value in sorted(workload.metadata.items()):
        lines.append(f"# meta {key}={value}")
    for cpu, trace in enumerate(workload.traces):
        for access in trace:
            op = "W" if access.is_write else "R"
            lines.append(f"{cpu} {op} {access.address:#x} "
                         f"{access.gap}")
    path.write_text("\n".join(lines) + "\n")


def _parse_int(token: str, line_number: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise TraceError(
            f"line {line_number}: bad integer {token!r}") from None


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload from the text trace format."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file {path} does not exist")
    name = path.stem
    declared_cpus = None
    metadata: Dict[str, str] = {}
    traces: Dict[int, ColumnarTrace] = {}

    for line_number, raw in enumerate(path.read_text().splitlines(),
                                      start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("workload:"):
                name = body.split(":", 1)[1].strip()
            elif body.startswith("cpus:"):
                declared_cpus = _parse_int(
                    body.split(":", 1)[1].strip(), line_number)
            elif body.startswith("meta "):
                key, _, value = body[5:].partition("=")
                metadata[key.strip()] = value.strip()
            continue
        fields = line.split()
        if len(fields) != 4:
            raise TraceError(
                f"line {line_number}: expected 'cpu R|W address gap', "
                f"got {raw!r}")
        cpu = _parse_int(fields[0], line_number)
        op = fields[1].upper()
        if op not in ("R", "W"):
            raise TraceError(
                f"line {line_number}: op must be R or W, got "
                f"{fields[1]!r}")
        address = _parse_int(fields[2], line_number)
        gap = _parse_int(fields[3], line_number)
        traces.setdefault(cpu, ColumnarTrace()).append(
            op == "W", address, gap)

    if not traces:
        raise TraceError(f"trace file {path} contains no records")
    num_cpus = max(traces) + 1
    if declared_cpus is not None:
        if declared_cpus < num_cpus:
            raise TraceError(
                f"header declares {declared_cpus} cpus but records "
                f"reference cpu {num_cpus - 1}")
        num_cpus = declared_cpus
    ordered = [traces.get(cpu, ColumnarTrace())
               for cpu in range(num_cpus)]
    # Workload rejects empty machines but tolerates an idle CPU only
    # with at least one access; give idle CPUs an empty list (allowed).
    return Workload(name, ordered, dict(metadata))
