"""Shared plumbing for workload generators.

Address-space layout: one shared region (what SPLASH-2 programs
allocate with G_MALLOC) and one private region per CPU, spaced far
apart so they never share cache lines. All generators draw gaps and
random addresses from forked :class:`DeterministicRng` streams, so a
(name, num_cpus, scale, seed) tuple always produces the identical
workload.
"""

from __future__ import annotations

from typing import List

from ..errors import TraceError
from ..sim.rng import DeterministicRng
from ..smp.trace import ColumnarTrace, Workload

SHARED_BASE = 0x1000_0000
PRIVATE_BASE = 0x8000_0000
PRIVATE_STRIDE = 1 << 24  # 16 MB per CPU
WORD_BYTES = 8

# L2-capacity-sensitive shared region: blocks spaced at 256 KB stride
# all alias to a single set of the paper's 1 MB 4-way L2 (4096 sets x
# 64 B) but spread over four sets of the 4 MB L2. Workloads thread a
# small rotating working set through these blocks, reproducing the
# paper's observation that a LARGER L2 retains shared lines longer and
# therefore sees MORE cache-to-cache transfers (Figures 6 and 8).
CONFLICT_BASE = SHARED_BASE + (0x40 << 20)
CONFLICT_STRIDE = 256 << 10


def conflict_block(index: int) -> int:
    """Line-aligned address of the index-th aliasing block."""
    return CONFLICT_BASE + index * CONFLICT_STRIDE


def private_base(cpu_id: int) -> int:
    return PRIVATE_BASE + cpu_id * PRIVATE_STRIDE


class TraceBuilder:
    """Accumulates one CPU's accesses with randomized compute gaps.

    Appends go directly into a :class:`ColumnarTrace`'s columns —
    workload generation never allocates per-access tuples.
    """

    def __init__(self, cpu_id: int, rng: DeterministicRng,
                 mean_gap: float = 3.0):
        self.cpu_id = cpu_id
        self._rng = rng
        self._mean_gap = mean_gap
        self._trace = ColumnarTrace()
        columns = self._trace.columns()
        self._append_flag = columns[0].append
        self._append_address = columns[1].append
        self._append_gap = columns[2].append

    def __len__(self) -> int:
        return len(self._trace)

    def _gap(self) -> int:
        return self._rng.geometric(self._mean_gap)

    def read(self, address: int, gap: int = -1) -> None:
        self._append_flag(0)
        self._append_address(address)
        self._append_gap(gap if gap >= 0 else self._gap())

    def write(self, address: int, gap: int = -1) -> None:
        self._append_flag(1)
        self._append_address(address)
        self._append_gap(gap if gap >= 0 else self._gap())

    def compute(self, cycles: int) -> None:
        """Model a pure-compute stretch by padding the next access's gap."""
        if cycles < 0:
            raise TraceError("compute stretch must be non-negative")
        self._append_flag(0)
        self._append_address(private_base(self.cpu_id))
        self._append_gap(cycles)

    def build(self) -> ColumnarTrace:
        return self._trace


def assemble(name: str, builders: List[TraceBuilder],
             **metadata) -> Workload:
    return Workload(name, [builder.build() for builder in builders],
                    metadata)


def make_builders(num_cpus: int, seed: int,
                  mean_gap: float = 12.0) -> List[TraceBuilder]:
    if num_cpus < 1:
        raise TraceError("need at least one CPU")
    root = DeterministicRng(seed)
    return [TraceBuilder(cpu, root.fork(cpu + 1), mean_gap)
            for cpu in range(num_cpus)]
