"""Preset multiprogrammed mixes.

Named combinations of the SPLASH-2-style generators and microbenchmarks
for multi-group experiments (Figure 1 scenarios). Each mix returns the
program list ready for
:func:`repro.workloads.multiprogram.run_multiprogrammed`.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import TraceError
from ..smp.trace import Workload
from .micro import ping_pong, producer_consumer
from .registry import generate


def compute_plus_service(scale: float = 0.3,
                         seed: int = 0) -> List[Workload]:
    """A scientific kernel next to a latency-sensitive service: lu on
    two CPUs, producer/consumer messaging on the other two."""
    return [generate("lu", 2, scale=scale, seed=seed),
            producer_consumer(num_cpus=2, items=int(400 * scale + 40))]


def bandwidth_rivals(scale: float = 0.3,
                     seed: int = 0) -> List[Workload]:
    """Two memory-hungry programs contending for the bus."""
    return [generate("radix", 2, scale=scale, seed=seed),
            generate("ocean", 2, scale=scale, seed=seed + 1)]


def sharing_extremes(scale: float = 0.3,
                     seed: int = 0) -> List[Workload]:
    """Maximal line migration next to wide read sharing."""
    return [ping_pong(rounds=int(500 * scale + 50), seed=seed + 12),
            generate("barnes", 2, scale=scale, seed=seed)]


MIXES: Dict[str, Callable[..., List[Workload]]] = {
    "compute_plus_service": compute_plus_service,
    "bandwidth_rivals": bandwidth_rivals,
    "sharing_extremes": sharing_extremes,
}


def mix(name: str, scale: float = 0.3, seed: int = 0) -> List[Workload]:
    factory = MIXES.get(name)
    if factory is None:
        raise TraceError(
            f"unknown mix {name!r}; choose from {sorted(MIXES)}")
    return factory(scale=scale, seed=seed)
