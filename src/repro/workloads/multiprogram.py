"""Multiprogrammed workloads: several SENSS groups on one machine.

Figure 1 shows two applications sharing the SMP with different (even
overlapping) processor groups; section 4.2 requires each group to
maintain its own masks "during the lifetime that the group is active".
This module packs several single-program workloads onto disjoint CPU
sets of one machine and produces the per-CPU group-ID map that
:meth:`repro.smp.system.SmpSystem.set_cpu_groups` consumes.

Programs get disjoint *address spaces* too (each one's addresses are
offset into its own slice of the shared region) so the only coupling
between groups is the shared bus — exactly the isolation SENSS's GID
tagging is meant to preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..errors import TraceError
from ..smp.trace import ColumnarTrace, MemoryAccess, Workload

PROGRAM_ADDRESS_STRIDE = 1 << 30  # 1 GB per program: never collides


@dataclass(frozen=True)
class ProgramPlacement:
    """One program's slot in the multiprogrammed machine."""

    workload: Workload
    group_id: int
    first_cpu: int

    @property
    def num_cpus(self) -> int:
        return self.workload.num_cpus


def _relocate(trace, program_index: int):
    offset = program_index * PROGRAM_ADDRESS_STRIDE
    if isinstance(trace, ColumnarTrace):
        return trace.relocated(offset)
    return [MemoryAccess(access.is_write, access.address + offset,
                         access.gap)
            for access in trace]


def combine(programs: Sequence[Workload],
            group_ids: Sequence[int] = None
            ) -> Tuple[Workload, List[int], List[ProgramPlacement]]:
    """Pack programs onto consecutive CPU ranges of one machine.

    Returns ``(combined_workload, cpu_group_ids, placements)``. Each
    program keeps its internal trace but is relocated into a private
    1 GB address slice. Group IDs default to the program index.
    """
    if not programs:
        raise TraceError("need at least one program")
    if group_ids is None:
        group_ids = list(range(len(programs)))
    if len(group_ids) != len(programs):
        raise TraceError("one group id per program required")

    traces: List = []
    cpu_group_ids: List[int] = []
    placements: List[ProgramPlacement] = []
    first_cpu = 0
    for index, program in enumerate(programs):
        placements.append(ProgramPlacement(program, group_ids[index],
                                           first_cpu))
        for trace in program.traces:
            traces.append(_relocate(trace, index))
            cpu_group_ids.append(group_ids[index])
        first_cpu += program.num_cpus

    name = "+".join(program.name for program in programs)
    # Relocation of already-validated programs cannot introduce bad
    # records; skip the per-access revalidation scan.
    combined = Workload(name, traces,
                        {"programs": [program.name
                                      for program in programs],
                         "group_ids": list(group_ids)},
                        validate=False)
    return combined, cpu_group_ids, placements


def run_multiprogrammed(system, programs: Sequence[Workload],
                        group_ids: Sequence[int] = None):
    """Convenience: combine, configure groups, register them with the
    security layer (if any), run. Returns (result, placements)."""
    combined, cpu_group_ids, placements = combine(programs, group_ids)
    if combined.num_cpus > system.config.num_processors:
        raise TraceError(
            f"programs need {combined.num_cpus} CPUs but the machine "
            f"has {system.config.num_processors}")
    # Idle processors (if any) stay in their own unused group.
    padding = [max(cpu_group_ids) + 1] * (system.config.num_processors
                                          - len(cpu_group_ids))
    system.set_cpu_groups(cpu_group_ids + padding)
    layer = system.bus.security_layer
    if layer is not None:
        members_by_group: dict = {}
        for placement in placements:
            members = range(placement.first_cpu,
                            placement.first_cpu + placement.num_cpus)
            members_by_group.setdefault(placement.group_id,
                                        []).extend(members)
        for group_id, members in members_by_group.items():
            layer.register_group(group_id, sorted(set(members)))
    return system.run(combined), placements
