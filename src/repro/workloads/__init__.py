"""Workload trace generators.

The paper runs five SPLASH-2 programs (fft, radix, barnes, lu, ocean)
on Solaris under Simics. We substitute synthetic trace generators that
model each program's *sharing and communication pattern* — the property
that determines SENSS overhead (see DESIGN.md §2). ``generate`` is the
registry entry point used by the benches.
"""

from .micro import (false_sharing, pad_churn, ping_pong, private_stream,
                    producer_consumer)
from .mixes import MIXES, mix
from .multiprogram import combine, run_multiprogrammed
from .registry import SPLASH2_NAMES, WORKLOADS, generate
from .splash2 import barnes, fft, lu, ocean, radix
from .tracefile import load_workload, save_workload

__all__ = [
    "MIXES",
    "SPLASH2_NAMES",
    "WORKLOADS",
    "barnes",
    "combine",
    "load_workload",
    "mix",
    "run_multiprogrammed",
    "save_workload",
    "false_sharing",
    "fft",
    "generate",
    "lu",
    "ocean",
    "pad_churn",
    "ping_pong",
    "private_stream",
    "producer_consumer",
    "radix",
]
