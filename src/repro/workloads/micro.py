"""Microbenchmark traces.

- :func:`false_sharing` reproduces the Figure 11 scenario: two CPUs
  touching different words of the same cache block, where small timing
  shifts reorder the interleaving and change hit/miss outcomes.
- :func:`ping_pong` migrates one line back and forth (worst case for
  per-message overhead and mask pressure).
- :func:`producer_consumer` and :func:`private_stream` bound the
  sharing spectrum from "all cache-to-cache" to "no sharing at all".
"""

from __future__ import annotations

from ..errors import TraceError
from ..smp.trace import Workload
from .base import SHARED_BASE, WORD_BYTES, assemble, make_builders, private_base


def false_sharing(num_cpus: int = 2, rounds: int = 200,
                  seed: int = 11) -> Workload:
    """Figure 11: CPUs write/read different words of the same block."""
    if num_cpus < 2:
        raise TraceError("false sharing needs at least two CPUs")
    builders = make_builders(num_cpus, seed, mean_gap=2.0)
    block = SHARED_BASE
    for round_index in range(rounds):
        for cpu, builder in enumerate(builders):
            word = block + cpu * WORD_BYTES  # different words, one line
            if cpu == 0:
                # CPU0's pattern from Figure 11: two writes...
                builder.write(word, gap=3)
                builder.write(word, gap=3)
            else:
                # ...while CPU1 issues a burst of reads of its word.
                builder.read(word, gap=2)
                builder.read(word, gap=2)
                builder.read(word, gap=2)
        # Private cooldown so rounds do not fully pipeline.
        for cpu, builder in enumerate(builders):
            builder.read(private_base(cpu) + (round_index % 256) * 64,
                         gap=5)
    return assemble("false_sharing", builders, rounds=rounds, seed=seed)


def ping_pong(rounds: int = 500, seed: int = 12) -> Workload:
    """Two CPUs alternately writing one line: maximal migration."""
    builders = make_builders(2, seed, mean_gap=2.0)
    line = SHARED_BASE + 4096
    for round_index in range(rounds):
        builders[0].write(line, gap=4)
        builders[1].write(line, gap=4)
    return assemble("ping_pong", builders, rounds=rounds, seed=seed)


def producer_consumer(num_cpus: int = 2, items: int = 400,
                      seed: int = 13) -> Workload:
    """CPU0 produces buffer entries; the others consume them."""
    if num_cpus < 2:
        raise TraceError("producer/consumer needs at least two CPUs")
    builders = make_builders(num_cpus, seed, mean_gap=2.5)
    buffer_base = SHARED_BASE + (1 << 16)
    slots = 256
    for item in range(items):
        slot = buffer_base + (item % slots) * 64
        builders[0].write(slot, gap=3)
        builders[0].write(slot + WORD_BYTES, gap=2)
        for consumer in builders[1:]:
            consumer.read(slot, gap=3)
            consumer.read(slot + WORD_BYTES, gap=2)
    return assemble("producer_consumer", builders, items=items,
                    seed=seed)


def private_stream(num_cpus: int = 2, refs_per_cpu: int = 2000,
                   seed: int = 14) -> Workload:
    """No sharing at all: SENSS overhead should be ~zero here."""
    builders = make_builders(num_cpus, seed, mean_gap=3.0)
    for cpu, builder in enumerate(builders):
        base = private_base(cpu) + (1 << 20)
        for ref in range(refs_per_cpu):
            address = base + (ref * 64) % (1 << 21)
            if ref % 4 == 3:
                builder.write(address)
            else:
                builder.read(address)
    return assemble("private_stream", builders,
                    refs_per_cpu=refs_per_cpu, seed=seed)


def pad_churn(num_cpus: int = 2, rounds: int = 60,
              seed: int = 15) -> Workload:
    """Migratory-through-memory lines: the pad-coherence stressor.

    A rotating writer dirties blocks in the capacity-sensitive conflict
    region (so they are evicted to memory almost immediately), and
    another CPU re-reads them a few rounds later — after the write-back
    — forcing the type-"01"/"10" pad coherence traffic of section 6.1.
    """
    from .base import conflict_block
    if num_cpus < 2:
        raise TraceError("pad churn needs at least two CPUs")
    builders = make_builders(num_cpus, seed, mean_gap=6.0)
    blocks = 12
    for round_index in range(rounds):
        writer = builders[round_index % num_cpus]
        reader = builders[(round_index + 1) % num_cpus]
        for line in range(8):
            writer.write(conflict_block(round_index % blocks)
                         + line * 64, gap=4)
        stale = conflict_block((round_index - 6) % blocks)
        for line in range(8):
            reader.read(stale + line * 64, gap=4)
        # Private churn keeps the rounds from fully overlapping.
        for cpu, builder in enumerate(builders):
            builder.read(private_base(cpu) + (round_index % 64) * 64,
                         gap=8)
    return assemble("pad_churn", builders, rounds=rounds, seed=seed)


def snc_stream(passes: int = 30, blocks: int = 12,
               lines_per_block: int = 8, seed: int = 16) -> Workload:
    """Read-only conflict ring: the sequence-number-cache stressor.

    One CPU repeatedly sweeps a ring of conflict-aliasing blocks that
    the L2 cannot retain, so every pass re-fetches every line from
    memory. With memory encryption on, each re-fetch needs the line's
    pad: a sufficiently large SNC turns all but the first pass into
    pad-cache hits, a tiny one keeps regenerating (section 7.7).
    """
    from .base import conflict_block
    builders = make_builders(1, seed, mean_gap=8.0)
    builder = builders[0]
    for _ in range(passes):
        for block in range(blocks):
            base = conflict_block(block)
            for line in range(lines_per_block):
                builder.read(base + line * 64, gap=6)
    return assemble("snc_stream", builders, passes=passes,
                    blocks=blocks, seed=seed)
