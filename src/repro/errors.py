"""Exception hierarchy for the SENSS reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class CryptoError(ReproError):
    """A cryptographic primitive was misused (bad key/block size, etc.)."""


class BusError(ReproError):
    """An illegal bus operation (bad transaction, arbitration misuse)."""


class CoherenceError(ReproError):
    """A cache coherence protocol invariant was violated."""


class SimulationError(ReproError):
    """The simulation kernel detected an inconsistency."""


class AuthenticationFailure(ReproError):
    """Raised when a SENSS bus authentication check fails (global alarm).

    This is the library-level analogue of the paper's "global alarm ...
    and the program is halted" (section 4.3).
    """

    def __init__(self, message: str, cycle: int = -1, group_id: int = -1):
        super().__init__(message)
        self.cycle = cycle
        self.group_id = group_id


class SpoofDetected(AuthenticationFailure):
    """A processor snooped a message carrying its own PID (section 4.3).

    Raised immediately (not at the next authentication interval) because
    a processor "should not receive its own message from the bus".
    """


class IntegrityViolation(ReproError):
    """Memory integrity check (hash tree) mismatch (section 2.2 / 6.2)."""


class PadCoherenceViolation(ReproError):
    """A stale or corrupt pad/sequence-number was consulted (section 6.1).

    Decrypting with the wrong pad yields garbage plaintext; the
    violation surfaces on the next use of the poisoned SNC entry.
    """

    def __init__(self, message: str, cycle: int = -1, cpu: int = -1):
        super().__init__(message)
        self.cycle = cycle
        self.cpu = cpu


class SweepError(ReproError):
    """One or more sweep points failed after retries.

    ``failures`` lists the per-point
    :class:`~repro.sim.sweep.SweepPointFailure` records; completed
    points were already cached before this was raised.
    """

    def __init__(self, message: str, failures=()):
        super().__init__(message)
        self.failures = list(failures)


class CheckpointError(ReproError):
    """A machine checkpoint could not be captured, read, or resumed
    (wrong version, digest mismatch, corrupt blob; see
    docs/checkpointing.md)."""


class GroupTableFull(ReproError):
    """All group information table entries are occupied (section 5.2)."""


class TraceError(ReproError):
    """A malformed access trace was supplied to the simulator."""


class ServeError(ReproError):
    """A sweep-service request failed (repro.serve).

    ``status`` is the HTTP status code the server maps the failure to;
    the client re-raises the service's error body as this type, so
    both sides of the wire speak one exception.
    """

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


class BackpressureError(ServeError):
    """A tenant's queued-point budget is exhausted (HTTP 429).

    The whole job is rejected — the service never admits a job
    partially — and the client should back off and resubmit.
    """

    def __init__(self, message: str):
        super().__init__(message, status=429)
