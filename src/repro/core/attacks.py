"""Bus attack injectors and the functional secure-bus fabric.

Section 3.2 defines three attack classes on the shared bus:

- **Type 1 — message dropping**: a message destined to a processor is
  blocked. The hard variant is the *split-group* drop of section 4.3:
  transaction n is blocked from half the group and transaction n+1 from
  the other half, so every member still receives one valid-looking
  message and per-message checks all pass.
- **Type 2 — message reordering**: e.g. two consecutive bus transfers
  swapped.
- **Type 3 — message spoofing**: a forged message injected with a valid
  GID and a valid member PID, delivered to a strict subset of members.

:class:`SecureBusFabric` is the functional broadcast medium connecting
the SHUs; an attached :class:`BusAttacker` intercepts every wire
message and decides, per receiver, what is actually delivered (possibly
nothing, possibly extra forged messages). The periodic MAC-consistency
round then shows which attacks SENSS detects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import AuthenticationFailure, ReproError
from .authentication import AuthenticationManager
from .shu import SecurityHardwareUnit, WireMessage

Delivery = Tuple[WireMessage, List[int]]  # (message, receiver PIDs)


class BusAttacker:
    """Identity interceptor; subclasses implement real attacks.

    ``process`` sees each transmitted message with its intended
    receiver set and returns the ordered list of actual deliveries.
    ``flush`` releases anything still buffered (reorder attacks).
    ``tamper_mac`` sees every authentication (type-"00") broadcast and
    may corrupt the digest in flight.
    """

    def process(self, message: WireMessage,
                receivers: List[int]) -> List[Delivery]:
        return [(message, receivers)]

    def flush(self) -> List[Delivery]:
        return []

    def tamper_mac(self, digest: bytes) -> bytes:
        return digest


class DropAttack(BusAttacker):
    """Type 1: block selected transactions from selected receivers.

    ``plan`` maps a global message index to the PIDs that must NOT
    receive it. The paper's split-group scenario is two entries:
    {n: [C, D], n+1: [A, B]}.
    """

    def __init__(self, plan: Dict[int, Sequence[int]]):
        self.plan = {index: set(pids) for index, pids in plan.items()}
        self._index = 0
        self.dropped = 0

    def process(self, message: WireMessage,
                receivers: List[int]) -> List[Delivery]:
        blocked = self.plan.get(self._index, set())
        self._index += 1
        kept = [pid for pid in receivers if pid not in blocked]
        self.dropped += len(receivers) - len(kept)
        return [(message, kept)] if kept else []


class SwapAttack(BusAttacker):
    """Type 2: swap transactions ``first_index`` and ``first_index+1``."""

    def __init__(self, first_index: int):
        self.first_index = first_index
        self._index = 0
        self._held: Optional[Delivery] = None
        self.swapped = False

    def process(self, message: WireMessage,
                receivers: List[int]) -> List[Delivery]:
        index = self._index
        self._index += 1
        if index == self.first_index:
            self._held = (message, list(receivers))
            return []
        if index == self.first_index + 1 and self._held is not None:
            held, self._held = self._held, None
            self.swapped = True
            return [(message, list(receivers)), held]
        return [(message, list(receivers))]

    def flush(self) -> List[Delivery]:
        if self._held is not None:
            held, self._held = self._held, None
            return [held]
        return []


class MacTamperAttack(BusAttacker):
    """Corrupt the authentication broadcast itself (section 4.3: "any
    tampering of masks during authentication will also result in
    failure since a mismatch would occur"). Flips one bit of the
    ``target``-th MAC broadcast."""

    def __init__(self, target: int = 0):
        self.target = target
        self._seen = 0
        self.tampered = False

    def tamper_mac(self, digest: bytes) -> bytes:
        index = self._seen
        self._seen += 1
        if index == self.target:
            self.tampered = True
            return bytes([digest[0] ^ 0x80]) + digest[1:]
        return digest


class SpoofAttack(BusAttacker):
    """Type 3: inject a forged message after ``after_index`` transfers.

    The forged message carries a *valid* GID and a valid member PID
    (``claimed_pid``) and is delivered to ``victims`` only — the
    paper's "intelligent adversary" who singles out processor p with a
    message tagged with p' (another valid member).
    """

    def __init__(self, after_index: int, group_id: int, claimed_pid: int,
                 payload: bytes, victims: Sequence[int]):
        self.after_index = after_index
        self.forged = WireMessage(group_id, claimed_pid, payload)
        self.victims = list(victims)
        self._index = 0
        self.injected = False

    def process(self, message: WireMessage,
                receivers: List[int]) -> List[Delivery]:
        deliveries: List[Delivery] = [(message, list(receivers))]
        if self._index == self.after_index and not self.injected:
            deliveries.append((self.forged, list(self.victims)))
            self.injected = True
        self._index += 1
        return deliveries


class SecureBusFabric:
    """Functional broadcast bus connecting the SHUs of one machine.

    ``transmit`` runs one cache-to-cache transfer end to end: the
    sender's SHU encrypts, the (possibly attacked) wire messages are
    snooped by every other SHU, and when the authentication counter
    saturates a MAC round executes. Spoof alarms raised by individual
    SHUs propagate immediately.
    """

    def __init__(self, shus: Sequence[SecurityHardwareUnit],
                 group_id: int, auth_manager: AuthenticationManager,
                 attacker: Optional[BusAttacker] = None):
        self.shus = list(shus)
        self._by_pid = {shu.pid: shu for shu in self.shus}
        self.group_id = group_id
        self.auth = auth_manager
        self.attacker = attacker or BusAttacker()
        self.transmitted = 0
        self.alarms: List[str] = []

    def _member_channels(self):
        return {pid: self._by_pid[pid].channel(self.group_id)
                for pid in self.auth.member_pids}

    def _deliver(self, deliveries: List[Delivery],
                 sender_pid: int) -> Dict[int, bytes]:
        received: Dict[int, bytes] = {}
        for message, receiver_pids in deliveries:
            for pid in receiver_pids:
                if pid == sender_pid and message.pid == sender_pid:
                    continue  # the sender consumed its copy at send time
                shu = self._by_pid.get(pid)
                if shu is None:
                    raise ReproError(f"no SHU for PID {pid}")
                plaintext = shu.snoop(message)
                if plaintext is not None:
                    received[pid] = plaintext
        return received

    def transmit(self, sender_pid: int,
                 plaintext: bytes) -> Dict[int, bytes]:
        """One data transfer; returns {receiver_pid: decrypted bytes}.

        Raises :class:`SpoofDetected` or
        :class:`AuthenticationFailure` when an attack is caught.
        """
        sender = self._by_pid.get(sender_pid)
        if sender is None:
            raise ReproError(f"no SHU for PID {sender_pid}")
        message = sender.send(self.group_id, plaintext)
        receivers = [shu.pid for shu in self.shus
                     if shu.pid != sender_pid]
        deliveries = self.attacker.process(message, receivers)
        received = self._deliver(deliveries, sender_pid)
        self.transmitted += 1
        if self.auth.record_transfer():
            self.run_authentication()
        return received

    def run_authentication(self) -> int:
        """Force a MAC-consistency round now; returns the initiator.

        The initiator's digest travels over the (attackable) bus: the
        attacker may corrupt it, in which case every honest member's
        comparison fails — tampering with the authentication itself is
        self-defeating.
        """
        initiator = self.auth.next_initiator()
        broadcast = self._by_pid[initiator].mac_digest(self.group_id)
        on_the_wire = self.attacker.tamper_mac(broadcast)
        if on_the_wire != broadcast:
            self.auth.failures += 1
            self.alarms.append("tampered MAC broadcast")
            raise AuthenticationFailure(
                "bus authentication failed: broadcast from initiator "
                f"{initiator} does not match any member's chain",
                group_id=self.group_id)
        try:
            return self.auth.run_check(self._member_channels())
        except AuthenticationFailure as failure:
            self.alarms.append(str(failure))
            raise

    def finish(self) -> None:
        """Flush buffered attacker messages and run a final check."""
        received = self._deliver(self.attacker.flush(), sender_pid=-1)
        if received:
            self.transmitted += 1
        self.run_authentication()
