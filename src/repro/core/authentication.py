"""Bus authentication (section 4.3).

SENSS authenticates by *consistency of chained MACs*: every group
member maintains the running CBC-MAC over all group messages (kept by
:class:`~repro.core.bus_crypto.GroupChannel`); every ``interval``
cache-to-cache transfers a round-robin-chosen initiator broadcasts its
MAC and all members compare. Any divergence — caused by a drop, a
reorder, or a spoof anywhere since the *previous* check — raises the
global alarm.

For the ablation benches we also implement the **non-chained** baseline
of Shi et al. [20] (related-work section 8): OTP encryption keyed by a
local bus sequence number, with a per-message MAC over the *wire*
bytes. Its per-message checks pass under the split-group drop and the
replay/spoof attacks that SENSS's chained MAC catches.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..crypto.aes import AES, BLOCK_BYTES
from ..crypto.otp import xor_bytes
from ..crypto.sha256 import hmac_sha256
from ..errors import AuthenticationFailure, CryptoError
from .bus_crypto import MESSAGE_BYTES, GroupChannel


class AuthenticationManager:
    """Coordinates periodic MAC-consistency rounds for one group.

    The manager is deliberately an *oracle over member channels* rather
    than a member itself: in hardware the comparison happens inside
    each SHU; here we centralize the comparison so tests and the attack
    harness can observe exactly which member diverged.
    """

    def __init__(self, member_pids: Sequence[int], interval: int,
                 group_id: int = 0):
        if interval < 1:
            raise CryptoError("authentication interval must be >= 1")
        if not member_pids:
            raise CryptoError("a group needs at least one member")
        self.member_pids = list(member_pids)
        self.interval = interval
        self.group_id = group_id
        self._counter = 0
        self._initiator_index = 0
        self.rounds_completed = 0
        self.failures = 0

    @property
    def counter(self) -> int:
        return self._counter

    def next_initiator(self) -> int:
        """Round-robin initiating processor (single-failure avoidance)."""
        return self.member_pids[self._initiator_index
                                % len(self.member_pids)]

    def record_transfer(self) -> bool:
        """Count one cache-to-cache transfer; True when a check is due."""
        self._counter += 1
        if self._counter >= self.interval:
            self._counter = 0
            return True
        return False

    def run_check(self, channels: Dict[int, GroupChannel],
                  cycle: int = -1) -> int:
        """Broadcast the initiator's MAC; compare at every member.

        Returns the initiating PID. Raises
        :class:`AuthenticationFailure` naming the diverged members.
        """
        initiator = self.next_initiator()
        self._initiator_index += 1
        reference = channels[initiator].mac_digest()
        diverged = [pid for pid in self.member_pids
                    if channels[pid].mac_digest() != reference]
        if diverged:
            self.failures += 1
            raise AuthenticationFailure(
                f"bus authentication failed: members {sorted(diverged)} "
                f"disagree with initiator {initiator}",
                cycle=cycle, group_id=self.group_id)
        self.rounds_completed += 1
        return initiator


class NonChainedAuthenticator:
    """The Shi et al. [20] style scheme SENSS is compared against.

    Encryption: OTP pad = AES_K(local sequence number); each receiver
    tracks its own count of messages it has seen. Authentication: a
    per-message HMAC-SHA256 over the *ciphertext* — the hash Shi et
    al. actually use — carried with the data. There is no chaining and
    no originator PID in the MAC.
    """

    def __init__(self, session_key: bytes):
        self._aes = AES(session_key)
        self._send_sequence = 0
        self._receive_sequences: Dict[int, int] = {}
        self.per_message_failures = 0

    def _pad(self, sequence: int) -> bytes:
        parts = []
        for block_index in range(MESSAGE_BYTES // BLOCK_BYTES):
            material = ((sequence << 8) | block_index).to_bytes(
                BLOCK_BYTES, "little")
            parts.append(self._aes.encrypt_block(material))
        return b"".join(parts)

    def _mac(self, wire: bytes) -> bytes:
        return hmac_sha256(self._aes.key, wire)[:BLOCK_BYTES]

    def send(self, plaintext: bytes) -> tuple:
        """Returns (wire, mac) for the next message."""
        if len(plaintext) != MESSAGE_BYTES:
            raise CryptoError(f"message must be {MESSAGE_BYTES} bytes")
        wire = xor_bytes(plaintext, self._pad(self._send_sequence))
        self._send_sequence += 1
        return wire, self._mac(wire)

    def receive(self, receiver_pid: int, wire: bytes,
                mac: bytes) -> Optional[bytes]:
        """Verify and decrypt at one receiver.

        Returns the plaintext the receiver *believes* it got, or None
        when the per-message MAC check fails (detected tampering).
        Crucially the pad uses the receiver's own local sequence count,
        so a split-group drop silently desynchronizes decryption while
        every per-message MAC still verifies — the undetected Type-1
        failure mode of section 4.3.
        """
        if self._mac(wire) != mac:
            self.per_message_failures += 1
            return None
        sequence = self._receive_sequences.get(receiver_pid, 0)
        self._receive_sequences[receiver_pid] = sequence + 1
        return xor_bytes(wire, self._pad(sequence))

    def receiver_sequence(self, receiver_pid: int) -> int:
        return self._receive_sequences.get(receiver_pid, 0)
