"""Program dispatching and group establishment (section 4.1, Figure 1).

The distributor encrypts the program with a symmetric session key K,
then encrypts K under the public key of every processor in the chosen
*group* (the distributor may exclude processors it does not trust,
e.g. ones dedicated to the network stack). The package ships
(encrypted program, {E_Kp_i(K)}). On load, each member SHU recovers K
with its private key; the smallest-PID member then generates and
broadcasts the random initial vectors — encrypted under K — that seed
the group's masks and MAC chain. Fresh IVs per invocation make every
run's mask trace different (section 4.2 "Initialization").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..crypto.aes import AES, BLOCK_BYTES
from ..crypto.modes import cbc_decrypt, cbc_encrypt
from ..errors import CryptoError, ReproError
from ..sim.rng import DeterministicRng
from .shu import SecurityHardwareUnit


def _pad_to_block(data: bytes) -> bytes:
    """PKCS#7-style padding to the AES block size."""
    fill = BLOCK_BYTES - len(data) % BLOCK_BYTES
    return data + bytes([fill]) * fill


def _unpad(data: bytes) -> bytes:
    if not data or data[-1] == 0 or data[-1] > BLOCK_BYTES:
        raise CryptoError("bad program padding")
    return data[:-data[-1]]


@dataclass
class ProgramPackage:
    """What the distributor ships to the SMP machine (Figure 1)."""

    name: str
    encrypted_program: bytes
    program_iv: bytes
    member_pids: List[int]
    encrypted_session_keys: Dict[int, int]  # pid -> RSA ciphertext
    auth_interval: int = 100
    num_masks: int = 2

    def key_for(self, pid: int) -> int:
        if pid not in self.encrypted_session_keys:
            raise ReproError(
                f"processor {pid} is not a member of this package")
        return self.encrypted_session_keys[pid]


class ProgramDistributor:
    """The software vendor's side of the protocol."""

    def __init__(self, rng: Optional[DeterministicRng] = None):
        self._rng = rng or DeterministicRng(0x5EC0DE)

    def package(self, name: str, program: bytes,
                processors: Sequence[SecurityHardwareUnit],
                member_pids: Sequence[int],
                auth_interval: int = 100,
                num_masks: int = 2) -> ProgramPackage:
        """Encrypt ``program`` and wrap the session key for each member."""
        members = sorted(set(member_pids))
        if not members:
            raise ReproError("a program needs at least one member")
        by_pid = {shu.pid: shu for shu in processors}
        missing = [pid for pid in members if pid not in by_pid]
        if missing:
            raise ReproError(f"unknown member PIDs: {missing}")
        session_key = self._rng.random_bytes(16)
        program_iv = self._rng.random_bytes(BLOCK_BYTES)
        ciphertext = cbc_encrypt(AES(session_key), program_iv,
                                 _pad_to_block(program))
        encrypted_keys = {
            pid: by_pid[pid].keypair.public.encrypt_bytes(session_key)
            for pid in members
        }
        return ProgramPackage(name, ciphertext, program_iv, members,
                              encrypted_keys, auth_interval, num_masks)


def recover_session_key(shu: SecurityHardwareUnit,
                        package: ProgramPackage) -> bytes:
    """A member SHU unwraps K with its sealed private key."""
    return shu.keypair.decrypt_bytes(package.key_for(shu.pid), 16)


def decrypt_program(session_key: bytes, package: ProgramPackage) -> bytes:
    """Decrypt the program text once K is recovered on-chip."""
    plain = cbc_decrypt(AES(session_key), package.program_iv,
                        package.encrypted_program)
    return _unpad(plain)


def establish_group(shus: Sequence[SecurityHardwareUnit],
                    group_id: int, package: ProgramPackage,
                    rng: Optional[DeterministicRng] = None) -> List[int]:
    """Run the group-setup protocol on the machine.

    The designated processor (smallest member PID, section 4.2
    "Initialization") draws the random encryption/authentication IVs
    and broadcasts them to the group encrypted under K; all members
    install identical channel state. Non-members only mark the GID
    occupied. Returns the member PID list.
    """
    rng = rng or DeterministicRng(0x1717 + group_id)
    members = set(package.member_pids)
    encryption_iv = rng.random_bytes(BLOCK_BYTES)
    authentication_iv = rng.random_bytes(BLOCK_BYTES)
    while authentication_iv == encryption_iv:
        authentication_iv = rng.random_bytes(BLOCK_BYTES)

    recovered: Dict[int, bytes] = {}
    for shu in shus:
        if shu.pid in members:
            recovered[shu.pid] = recover_session_key(shu, package)
    keys = set(recovered.values())
    if len(keys) != 1:
        raise CryptoError("members recovered different session keys")
    session_key = keys.pop()

    for shu in shus:
        if shu.pid in members:
            shu.join_group(group_id, members, session_key,
                           encryption_iv, authentication_iv,
                           num_masks=package.num_masks,
                           auth_interval=package.auth_interval)
        else:
            shu.observe_group(group_id)
    return sorted(members)
