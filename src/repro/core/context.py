"""Group context swap-out/swap-in (section 4.2, "Maintaining the mask").

"When an existing group is swapped out, all processes on all
processors are stopped and the contexts are encrypted before being
written out to the memory."

Each member SHU serializes its group channel state (masks, chained MAC
state, message sequence), encrypts it under the group session key with
a fresh IV, appends a CBC-MAC over the ciphertext (so tampering with
the swapped-out context in memory is caught at swap-in), and writes the
blob to main memory. Swap-in reverses the process; a successful restore
leaves every member in the exact lock step it was in at swap-out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..crypto.aes import AES, BLOCK_BYTES
from ..crypto.cbcmac import cbc_mac
from ..crypto.modes import cbc_decrypt, cbc_encrypt
from ..errors import CryptoError, IntegrityViolation, ReproError
from ..memory.dram import MainMemory
from ..sim.rng import DeterministicRng
from .shu import SecurityHardwareUnit

_CONTEXT_MAC_IV = bytes([0x33] * BLOCK_BYTES)


def _pad(blob: bytes) -> bytes:
    fill = BLOCK_BYTES - len(blob) % BLOCK_BYTES
    return blob + bytes([fill]) * fill


def _unpad(blob: bytes) -> bytes:
    if not blob or blob[-1] == 0 or blob[-1] > BLOCK_BYTES:
        raise CryptoError("bad context padding")
    return blob[:-blob[-1]]


@dataclass
class SwappedContext:
    """One member's encrypted, authenticated context in memory."""

    pid: int
    group_id: int
    iv: bytes
    base_address: int
    num_lines: int
    mac: bytes


class GroupContextManager:
    """Coordinates swap-out/swap-in of one group across its members."""

    def __init__(self, memory: MainMemory,
                 rng: Optional[DeterministicRng] = None,
                 context_base: int = 0x7000_0000):
        self.memory = memory
        self._rng = rng or DeterministicRng(0xC70)
        self._context_base = context_base
        self._swapped: Dict[tuple, SwappedContext] = {}
        self._next_slot = 0

    def _write_blob(self, blob: bytes) -> tuple:
        """Store a blob into consecutive memory lines; returns
        (base_address, num_lines)."""
        line = self.memory.line_bytes
        num_lines = -(-len(blob) // line)
        base = self._context_base + self._next_slot * line
        self._next_slot += num_lines
        padded = blob.ljust(num_lines * line, b"\x00")
        for index in range(num_lines):
            self.memory.write_line(base + index * line,
                                   padded[index * line:(index + 1)
                                          * line])
        return base, num_lines

    def _read_blob(self, base: int, num_lines: int) -> bytes:
        line = self.memory.line_bytes
        return b"".join(self.memory.read_line(base + index * line)
                        for index in range(num_lines))

    def swap_out(self, shus: Sequence[SecurityHardwareUnit],
                 group_id: int) -> List[SwappedContext]:
        """Encrypt every member's channel state out to memory.

        The group remains *installed* (occupied GID, bit matrix rows)
        but its live masks are scrubbed until swap-in.
        """
        contexts = []
        for shu in shus:
            if not shu.is_member(group_id):
                continue
            channel = shu.channel(group_id)
            key = shu.group_table.entry(group_id).session_key
            if key is None:
                raise ReproError("member has no session key")
            iv = self._rng.random_bytes(BLOCK_BYTES)
            ciphertext = cbc_encrypt(AES(key), iv,
                                     _pad(channel.export_state()))
            mac = cbc_mac(AES(key), _CONTEXT_MAC_IV, iv + ciphertext)
            base, num_lines = self._write_blob(ciphertext)
            context = SwappedContext(shu.pid, group_id, iv, base,
                                     num_lines, mac)
            self._swapped[(shu.pid, group_id)] = context
            contexts.append(context)
            # Scrub the on-chip copy: a swapped-out group's masks must
            # not linger in the SHU.
            channel.scrub()
        return contexts

    def swap_in(self, shus: Sequence[SecurityHardwareUnit],
                group_id: int) -> int:
        """Decrypt and restore every member's context; returns count.

        Raises :class:`IntegrityViolation` if any context was tampered
        with while in memory.
        """
        restored = 0
        for shu in shus:
            context = self._swapped.get((shu.pid, group_id))
            if context is None:
                continue
            key = shu.group_table.entry(group_id).session_key
            ciphertext = self._read_blob(context.base_address,
                                         context.num_lines)
            # The blob was line-padded on the way out; the MAC covers
            # the exact ciphertext length.
            exact = len(_pad(shu.channel(group_id).export_state()))
            ciphertext = ciphertext[:exact]
            mac = cbc_mac(AES(key), _CONTEXT_MAC_IV,
                          context.iv + ciphertext)
            if mac != context.mac:
                raise IntegrityViolation(
                    f"swapped context of CPU {shu.pid} group "
                    f"{group_id} was tampered with in memory")
            blob = _unpad(cbc_decrypt(AES(key), context.iv,
                                      ciphertext))
            shu.channel(group_id).restore_state(blob)
            del self._swapped[(shu.pid, group_id)]
            restored += 1
        return restored

    def swapped_out_count(self) -> int:
        return len(self._swapped)
