"""Functional-security bridge: real crypto inside the timing simulator.

The timing layer (:mod:`repro.core.senss`) charges cycles without
touching bytes; the functional stack (:mod:`repro.core.shu`) moves
real bytes without a clock. This bridge couples them: attached as a
bus observer, it drives one genuine SHU per processor through every
protected transaction the simulator grants — the sender's replica
encrypts a (synthesized, deterministic) 32-byte payload, every other
member snoops and decrypts, and MAC-consistency rounds run at the same
authentication interval the timing layer uses.

Running a workload with the bridge attached therefore *proves*, for
that exact transaction stream, that:

- all member SHUs stay in lock step (masks and chained MACs),
- every authentication round passes on an honest bus,
- the timing layer's protected-message and MAC-broadcast counters
  match the functional reality one-for-one.

It is deliberately slow (a real AES per block per member) — use it on
reduced-scale workloads, as the validation tests do.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..bus.transaction import BusTransaction, TransactionType
from ..errors import ReproError
from ..sim.rng import DeterministicRng
from .authentication import AuthenticationManager
from .bus_crypto import MESSAGE_BYTES, channels_in_sync
from .shu import SecurityHardwareUnit


def synthesize_payload(address: int, sequence: int) -> bytes:
    """Deterministic 32-byte line contents for a (line, transfer)."""
    material = (address.to_bytes(16, "little", signed=False)
                + sequence.to_bytes(16, "little", signed=False))
    return material[:MESSAGE_BYTES]


class FunctionalSecurityBridge:
    """Bus observer that mirrors protected traffic through real SHUs."""

    def __init__(self, num_processors: int, group_id: int = 0,
                 auth_interval: int = 100,
                 member_pids: Optional[Sequence[int]] = None,
                 rng: Optional[DeterministicRng] = None):
        rng = rng or DeterministicRng(0xB21D6E)
        self.group_id = group_id
        members = (set(member_pids) if member_pids is not None
                   else set(range(num_processors)))
        session_key = rng.random_bytes(16)
        encryption_iv = rng.random_bytes(16)
        authentication_iv = rng.random_bytes(16)
        while authentication_iv == encryption_iv:
            authentication_iv = rng.random_bytes(16)
        self.shus: List[SecurityHardwareUnit] = []
        for pid in range(num_processors):
            shu = SecurityHardwareUnit(
                pid, max_processors=max(32, num_processors),
                rng=rng.fork(pid + 1))
            if pid in members:
                shu.join_group(group_id, members, session_key,
                               encryption_iv, authentication_iv,
                               auth_interval=auth_interval)
            else:
                shu.observe_group(group_id)
            self.shus.append(shu)
        self.auth = AuthenticationManager(sorted(members),
                                          auth_interval, group_id)
        self.protected_transfers = 0
        self.auth_rounds = 0
        self.mac_broadcast_transactions = 0

    # -- bus observation ---------------------------------------------------

    def __call__(self, transaction: BusTransaction) -> None:
        if transaction.type is TransactionType.AUTH_MAC:
            # The timing layer injected a MAC broadcast: run the real
            # comparison at exactly this point in the stream.
            if transaction.group_id == self.group_id:
                self.mac_broadcast_transactions += 1
        elif (transaction.is_cache_to_cache
              and transaction.group_id == self.group_id):
            self._mirror_transfer(transaction)

    def _mirror_transfer(self, transaction: BusTransaction) -> None:
        sender = self.shus[transaction.source_pid]
        if not sender.is_member(self.group_id):
            raise ReproError(
                "protected transfer from non-member PID "
                f"{transaction.source_pid}")
        payload = synthesize_payload(transaction.address,
                                     self.protected_transfers)
        wire = sender.send(self.group_id, payload)
        for shu in self.shus:
            if shu.pid != sender.pid:
                received = shu.snoop(wire)
                if shu.is_member(self.group_id):
                    assert received == payload
        self.protected_transfers += 1
        if self.auth.record_transfer():
            self._run_auth_round()

    def _run_auth_round(self) -> None:
        channels = {pid: self.shus[pid].channel(self.group_id)
                    for pid in self.auth.member_pids}
        self.auth.run_check(channels)
        self.auth_rounds += 1

    # -- validation API ---------------------------------------------------------

    def verify_against_layer(self, layer) -> Dict[str, int]:
        """Cross-check the timing layer's books against functional
        reality; raises AssertionError on any mismatch."""
        state = layer.group_state(self.group_id)
        assert state.protected_messages == self.protected_transfers, (
            state.protected_messages, self.protected_transfers)
        assert state.auth_broadcasts == self.mac_broadcast_transactions
        assert state.auth_broadcasts == self.auth_rounds
        member_channels = [self.shus[pid].channel(self.group_id)
                           for pid in self.auth.member_pids]
        assert channels_in_sync(member_channels)
        return {
            "protected_transfers": self.protected_transfers,
            "auth_rounds": self.auth_rounds,
            "mac_broadcasts": self.mac_broadcast_transactions,
        }


def attach_functional_bridge(system, auth_interval: Optional[int] = None,
                             group_id: int = 0
                             ) -> FunctionalSecurityBridge:
    """Build a bridge matching the system's configuration and attach
    it to the bus. Returns the bridge for post-run verification."""
    interval = (auth_interval if auth_interval is not None
                else system.config.senss.auth_interval)
    bridge = FunctionalSecurityBridge(system.config.num_processors,
                                      group_id=group_id,
                                      auth_interval=interval)
    system.bus.add_observer(bridge)
    return bridge
