"""The Security Hardware Unit (SHU) — functional model (sections 4-5).

One SHU per processor. It owns the processor's sealed RSA key pair, the
group-processor bit matrix, the group information table, and one
:class:`~repro.core.bus_crypto.GroupChannel` replica per group the
processor belongs to. It is "solely controlled by hardware and cannot
be accessed even by the OS" — in the model, nothing outside this class
touches key or mask material.

Message flow: when a processor sends, the SHU tags the wire message
with its GID and PID and encrypts it; when any message appears on the
bus, the SHU indexes the bit matrix with the snooped (GID, PID) and
either picks the message up (decrypt + MAC update) or discards it.
A message carrying the SHU's *own* PID is an immediate spoof alarm —
"p should not receive its own message from the bus" (section 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..crypto.rsa import RsaKeyPair, generate_keypair
from ..errors import ReproError, SpoofDetected
from ..sim.rng import DeterministicRng
from .bus_crypto import GroupChannel
from .groups import GroupInfoTable, GroupProcessorBitMatrix


@dataclass
class WireMessage:
    """What actually travels on the (augmented) bus.

    ``payload`` is the encrypted 32-byte data block for kind="data", or
    a MAC digest for kind="mac" (the section 7.1 type-"00"
    authentication transaction).
    """

    group_id: int
    pid: int
    payload: bytes
    kind: str = "data"
    sequence: int = -1

    def tampered_copy(self, **overrides) -> "WireMessage":
        """Copy with fields overridden (attack helper)."""
        values = dict(group_id=self.group_id, pid=self.pid,
                      payload=self.payload, kind=self.kind,
                      sequence=self.sequence)
        values.update(overrides)
        return WireMessage(**values)


class SecurityHardwareUnit:
    """Per-processor SHU: keys, tables, and group channel replicas."""

    def __init__(self, pid: int, max_groups: int = 1024,
                 max_processors: int = 32,
                 keypair: Optional[RsaKeyPair] = None,
                 rng: Optional[DeterministicRng] = None):
        if not 0 <= pid < max_processors:
            raise ReproError(f"PID {pid} out of range")
        self.pid = pid
        rng = rng or DeterministicRng(0xC0FFEE + pid)
        self.keypair = keypair or generate_keypair(
            bits=256, rng=rng._random)  # small keys: setup-time only
        self.bit_matrix = GroupProcessorBitMatrix(max_groups,
                                                  max_processors,
                                                  owner_pid=pid)
        self.group_table = GroupInfoTable(max_groups)
        self._channels: Dict[int, GroupChannel] = {}
        self.messages_sent = 0
        self.messages_received = 0
        self.messages_discarded = 0

    # -- group management ---------------------------------------------------

    def join_group(self, group_id: int, members: set, session_key: bytes,
                   encryption_iv: bytes, authentication_iv: bytes,
                   num_masks: int = 2, auth_interval: int = 100) -> None:
        """Install a group this processor is a member of."""
        if self.pid not in members:
            raise ReproError(
                f"processor {self.pid} is not in the member set")
        self.bit_matrix.set_membership(group_id, members)
        channel = GroupChannel(session_key, encryption_iv,
                               authentication_iv, num_masks)
        self._channels[group_id] = channel
        self.group_table.install(group_id, session_key,
                                 channel.mask_snapshot(), auth_interval)

    def observe_group(self, group_id: int) -> None:
        """Non-member: mark the GID occupied, learn nothing else."""
        self.group_table.mark_occupied(group_id)

    def leave_group(self, group_id: int) -> None:
        self._channels.pop(group_id, None)
        self.bit_matrix.clear_group(group_id)
        self.group_table.release(group_id)

    def channel(self, group_id: int) -> GroupChannel:
        channel = self._channels.get(group_id)
        if channel is None:
            raise ReproError(
                f"processor {self.pid} holds no channel for GID "
                f"{group_id}")
        return channel

    def is_member(self, group_id: int) -> bool:
        return group_id in self._channels

    # -- bus send/snoop -------------------------------------------------------

    def send(self, group_id: int, plaintext: bytes) -> WireMessage:
        """Encrypt and tag an outgoing cache-to-cache data block."""
        wire = self.channel(group_id).encrypt_message(self.pid, plaintext)
        self.messages_sent += 1
        return WireMessage(group_id, self.pid, wire)

    def snoop(self, message: WireMessage) -> Optional[bytes]:
        """Process a bus message; returns plaintext if picked up.

        - Not my group (bit matrix row empty): discard, return None.
        - My own PID on a message I did not send: raise SpoofDetected.
        - Member message: decrypt, update masks and MAC, return data.
        """
        if message.kind == "mac":
            # MAC broadcasts are compared by the AuthenticationManager;
            # the SHU itself neither decrypts nor chains them.
            return None
        if not self.is_member(message.group_id):
            self.messages_discarded += 1
            return None
        if not self.bit_matrix.is_member(message.group_id, message.pid):
            # Valid GID but a PID outside the group: treat as spoof.
            raise SpoofDetected(
                f"PID {message.pid} is not a member of group "
                f"{message.group_id}")
        if message.pid == self.pid:
            raise SpoofDetected(
                f"processor {self.pid} snooped a message carrying its "
                "own PID")
        plaintext = self.channel(message.group_id).decrypt_message(
            message.pid, message.payload)
        self.messages_received += 1
        return plaintext

    def mac_digest(self, group_id: int) -> bytes:
        return self.channel(group_id).mac_digest()

    def build_mac_broadcast(self, group_id: int) -> WireMessage:
        """The type-"00" authentication transaction (section 7.1)."""
        return WireMessage(group_id, self.pid,
                           self.mac_digest(group_id), kind="mac")
