"""GCM-based bus channel — the section 4.3 alternative, for ablation.

The CBC-based SENSS channel invokes AES twice per 16-byte block (once
to regenerate the encryption mask, once to advance the chained MAC).
Section 4.3 points at GCM as a way to pay only *one* AES invocation
per block, computing the authenticator with GF(2^128) multiplications
instead: cheap dedicated hardware, off the AES unit.

:class:`GcmGroupChannel` mirrors :class:`~repro.core.bus_crypto.
GroupChannel`'s interface (encrypt/decrypt keep all replicas in lock
step; the running tag chains the whole history, so the Type 1-3
arguments carry over) while counting AES invocations so the ablation
bench can quantify the saving.

Per 32-byte message: 2 CTR keystream blocks = 2 AES calls, plus GHASH
multiplies. The CBC channel spends 4 (2 mask + 2 MAC). History
chaining: each message's ciphertext blocks and originator PID are
absorbed into one long-running GHASH, and the broadcast digest is that
GHASH masked with a per-round AES call (amortized over the
authentication interval, not per message).
"""

from __future__ import annotations

from ..crypto.aes import AES, BLOCK_BYTES
from ..crypto.gcm import Ghash
from ..errors import CryptoError
from .bus_crypto import MESSAGE_BYTES, pid_block

BLOCKS_PER_MESSAGE = MESSAGE_BYTES // BLOCK_BYTES


class GcmGroupChannel:
    """Counter-mode bus encryption with a chained GHASH authenticator."""

    def __init__(self, session_key: bytes, encryption_iv: bytes,
                 authentication_iv: bytes):
        if len(encryption_iv) != BLOCK_BYTES:
            raise CryptoError("encryption IV must be one AES block")
        if len(authentication_iv) != BLOCK_BYTES:
            raise CryptoError("authentication IV must be one AES block")
        if encryption_iv == authentication_iv:
            raise CryptoError(
                "authentication IV must differ from encryption IV")
        self._aes = AES(session_key)
        self._nonce = encryption_iv[:12]
        self.aes_invocations = 1  # the GHASH subkey derivation
        subkey = self._aes.encrypt_block(bytes(BLOCK_BYTES))
        self._ghash = Ghash(subkey)
        self._ghash.update(authentication_iv)
        self._sequence = 0

    @property
    def sequence(self) -> int:
        return self._sequence

    def _keystream(self) -> bytes:
        """Per-message CTR keystream: AES_K(nonce || message counter).

        The counter is the global bus message number, known to every
        snooping member, so keystream (like the CBC masks) can be
        precomputed ahead of the transfer.
        """
        parts = []
        for block_index in range(BLOCKS_PER_MESSAGE):
            counter = (self._sequence * BLOCKS_PER_MESSAGE
                       + block_index + 1)
            block_input = self._nonce + counter.to_bytes(4, "big")
            parts.append(self._aes.encrypt_block(block_input))
            self.aes_invocations += 1
        return b"".join(parts)

    def _absorb(self, wire: bytes, pid: int) -> None:
        tweak = pid_block(pid)
        for block_index in range(BLOCKS_PER_MESSAGE):
            begin = block_index * BLOCK_BYTES
            block = wire[begin:begin + BLOCK_BYTES]
            self._ghash.update(bytes(a ^ b for a, b in zip(block,
                                                           tweak)))

    def encrypt_message(self, pid: int, plaintext: bytes) -> bytes:
        if len(plaintext) != MESSAGE_BYTES:
            raise CryptoError(f"message must be {MESSAGE_BYTES} bytes")
        keystream = self._keystream()
        wire = bytes(a ^ b for a, b in zip(plaintext, keystream))
        self._absorb(wire, pid)
        self._sequence += 1
        return wire

    def decrypt_message(self, pid: int, wire: bytes) -> bytes:
        if len(wire) != MESSAGE_BYTES:
            raise CryptoError(f"message must be {MESSAGE_BYTES} bytes")
        keystream = self._keystream()
        plaintext = bytes(a ^ b for a, b in zip(wire, keystream))
        self._absorb(wire, pid)
        self._sequence += 1
        return plaintext

    def mac_digest(self, prefix_bits: int = 128) -> bytes:
        """The broadcast authenticator: GHASH masked by one AES call."""
        mask = self._aes.encrypt_block(
            self._nonce + (0xFFFFFFFF - self._sequence).to_bytes(4,
                                                                 "big"))
        self.aes_invocations += 1
        digest = bytes(a ^ b for a, b in zip(self._ghash.digest(), mask))
        return digest[:(prefix_bits + 7) // 8]


def gcm_channels_in_sync(channels) -> bool:
    if not channels:
        return True
    digests = {channel._ghash.digest() for channel in channels}
    sequences = {channel.sequence for channel in channels}
    return len(digests) == 1 and len(sequences) == 1
