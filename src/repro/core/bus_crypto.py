"""Functional bus encryption — Table 1 and Figure 2 of the paper.

Classic CBC sends the AES *output* C_i = AES_K(D_i XOR C_{i-1}), which
cannot leave the chip until the ~80-cycle AES completes. SENSS instead
sends the AES *input*:

    send    B_i = D_i XOR M          (one XOR, one cycle)
    update  M  <- AES_K(B_i XOR PID) (in the background)

so the mask ``M`` for the *next* transfer is what takes 80 cycles, off
the critical path. The receiver XORs the snooped B_i with its own copy
of M (all group members hold identical mask state because everyone
snoops every message) and performs the same background update.

The PID of the originator is folded into the AES input so that spoofed
messages carrying a *different* valid member's PID still desynchronize
the victim's mask/MAC state (the Type-3 defence of section 4.3).

A bus message is one 32-byte bus line = two AES blocks; each block
consumes one mask block and contributes one block to the running
chained MAC.
"""

from __future__ import annotations

from typing import List

from ..crypto.aes import AES, BLOCK_BYTES
from ..crypto.cbcmac import CbcMac
from ..crypto.otp import xor_bytes
from ..errors import CryptoError

MESSAGE_BYTES = 32  # one bus line (Figure 5)
BLOCKS_PER_MESSAGE = MESSAGE_BYTES // BLOCK_BYTES


def pid_block(pid: int) -> bytes:
    """Encode an originating PID as a 16-byte XOR-able block."""
    if pid < 0:
        raise CryptoError("PID must be non-negative")
    return pid.to_bytes(BLOCK_BYTES, "little")


class GroupChannel:
    """One group member's replica of the group's bus crypto state.

    Every member of a group instantiates a :class:`GroupChannel` from
    the same (session key, encryption IV, authentication IV) triple —
    distributed at program dispatch (section 4.1) — and then keeps it in
    lock step by processing every group message exactly once, either as
    sender (:meth:`encrypt_message`) or as snooping receiver
    (:meth:`decrypt_message`).

    ``num_masks`` mask slots are rotated round-robin by global message
    number, mirroring :class:`repro.core.masks.MaskTimingArray`.
    """

    def __init__(self, session_key: bytes, encryption_iv: bytes,
                 authentication_iv: bytes, num_masks: int = 2,
                 mac_prefix_bits: int = 128):
        if len(encryption_iv) != BLOCK_BYTES:
            raise CryptoError("encryption IV must be one AES block")
        if len(authentication_iv) != BLOCK_BYTES:
            raise CryptoError("authentication IV must be one AES block")
        if encryption_iv == authentication_iv:
            # Section 4.3: reusing the encryption IV for authentication
            # lets swap (Type 2) attacks self-heal; forbid it outright.
            raise CryptoError(
                "authentication IV must differ from encryption IV")
        if num_masks < 1:
            raise CryptoError("need at least one mask slot")
        self._aes = AES(session_key)
        self.num_masks = num_masks
        self.mac_prefix_bits = mac_prefix_bits
        # Initial per-slot masks are derived from the broadcast IV so
        # that every invocation of the program gets fresh mask traces.
        self._masks: List[bytes] = [
            self._derive_initial_mask(encryption_iv, slot)
            for slot in range(num_masks)
        ]
        self._mac = CbcMac(self._aes, authentication_iv)
        self._sequence = 0  # global message number within the group
        # AES invocations spent so far (initial mask derivation), for
        # the CBC-vs-GCM hardware-cost ablation of section 4.3.
        self.aes_invocations = num_masks * BLOCKS_PER_MESSAGE

    def _derive_initial_mask(self, iv: bytes, slot: int) -> bytes:
        """One MESSAGE_BYTES mask per slot: AES(IV XOR slot||block)."""
        parts = []
        for block_index in range(BLOCKS_PER_MESSAGE):
            tweak = (slot * BLOCKS_PER_MESSAGE
                     + block_index + 1).to_bytes(BLOCK_BYTES, "little")
            parts.append(self._aes.encrypt_block(xor_bytes(iv, tweak)))
        return b"".join(parts)

    # -- state inspection ------------------------------------------------

    @property
    def sequence(self) -> int:
        return self._sequence

    def mac_digest(self) -> bytes:
        """The current chained MAC (what the initiator broadcasts)."""
        return self._mac.digest(self.mac_prefix_bits)

    def mask_snapshot(self) -> List[bytes]:
        """Copies of the live masks (tests verify member lock step)."""
        return list(self._masks)

    # -- the Table-1 algorithm --------------------------------------------

    def _mask_update(self, slot: int, wire: bytes, pid: int) -> None:
        """Background path: M_slot <- AES_K(B XOR PID), blockwise."""
        pid_tweak = pid_block(pid)
        parts = []
        for block_index in range(BLOCKS_PER_MESSAGE):
            begin = block_index * BLOCK_BYTES
            block = wire[begin:begin + BLOCK_BYTES]
            parts.append(self._aes.encrypt_block(xor_bytes(block,
                                                           pid_tweak)))
        self.aes_invocations += BLOCKS_PER_MESSAGE
        self._masks[slot] = b"".join(parts)

    def _mac_update(self, plaintext: bytes, pid: int) -> None:
        """MAC absorbs the data block and its originating PID (the
        inputs section 4.3 prescribes for the Type-1/Type-3 defences)."""
        pid_tweak = pid_block(pid)
        for block_index in range(BLOCKS_PER_MESSAGE):
            begin = block_index * BLOCK_BYTES
            block = plaintext[begin:begin + BLOCK_BYTES]
            self._mac.update(xor_bytes(block, pid_tweak))
        self.aes_invocations += BLOCKS_PER_MESSAGE

    def encrypt_message(self, pid: int, plaintext: bytes) -> bytes:
        """Sender path: returns the wire bytes B = D XOR M."""
        if len(plaintext) != MESSAGE_BYTES:
            raise CryptoError(
                f"bus message must be {MESSAGE_BYTES} bytes")
        slot = self._sequence % self.num_masks
        wire = xor_bytes(plaintext, self._masks[slot])
        self._mask_update(slot, wire, pid)
        self._mac_update(plaintext, pid)
        self._sequence += 1
        return wire

    def decrypt_message(self, pid: int, wire: bytes) -> bytes:
        """Receiver path: D = B XOR M, then identical background update."""
        if len(wire) != MESSAGE_BYTES:
            raise CryptoError(
                f"bus message must be {MESSAGE_BYTES} bytes")
        slot = self._sequence % self.num_masks
        plaintext = xor_bytes(wire, self._masks[slot])
        self._mask_update(slot, wire, pid)
        self._mac_update(plaintext, pid)
        self._sequence += 1
        return plaintext

    def scrub(self) -> None:
        """Zero the live secrets (group swapped out, section 4.2)."""
        self._masks = [bytes(MESSAGE_BYTES)] * self.num_masks
        self._mac.reset()
        self._sequence = 0

    def export_state(self) -> bytes:
        """Serialize live state for group swap-out (section 4.2).

        Layout: sequence (8B) || num_masks (2B) || masks || MAC state.
        The caller encrypts this blob before it leaves the chip.
        """
        return (self._sequence.to_bytes(8, "little")
                + self.num_masks.to_bytes(2, "little")
                + b"".join(self._masks)
                + self._mac.export_state())

    def restore_state(self, blob: bytes) -> None:
        """Restore state serialized by :meth:`export_state`."""
        expected = 10 + self.num_masks * MESSAGE_BYTES + BLOCK_BYTES + 8
        if len(blob) != expected:
            raise CryptoError("malformed group channel state blob")
        self._sequence = int.from_bytes(blob[:8], "little")
        num_masks = int.from_bytes(blob[8:10], "little")
        if num_masks != self.num_masks:
            raise CryptoError("mask-count mismatch in channel state")
        offset = 10
        masks = []
        for _ in range(num_masks):
            masks.append(blob[offset:offset + MESSAGE_BYTES])
            offset += MESSAGE_BYTES
        self._masks = masks
        self._mac.restore_state(blob[offset:])

    def clone(self) -> "GroupChannel":
        """Deep copy (attack tests snapshot honest state)."""
        twin = object.__new__(GroupChannel)
        twin._aes = self._aes
        twin.num_masks = self.num_masks
        twin.aes_invocations = self.aes_invocations
        twin.mac_prefix_bits = self.mac_prefix_bits
        twin._masks = list(self._masks)
        twin._mac = self._mac.copy()
        twin._sequence = self._sequence
        return twin


def channels_in_sync(channels: List[GroupChannel]) -> bool:
    """True when all member replicas hold identical (mask, MAC) state."""
    if not channels:
        return True
    reference = channels[0]
    return all(channel._sequence == reference._sequence
               and channel._masks == reference._masks
               and channel.mac_digest() == reference.mac_digest()
               for channel in channels[1:])
