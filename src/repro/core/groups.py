"""SHU group bookkeeping (section 5).

Two hardware tables live in every processor's SHU:

- The **group-processor bit matrix** (section 5.1): bit (g, p) set means
  processor p belongs to group g. A processor snoops a message's GID and
  PID and indexes the matrix in O(1) to decide whether to pick the
  message up. A processor that is *not* a member of group g keeps row g
  all-zero — it must not learn the group's membership.
- The **group information table** (section 5.2): per-GID entry holding
  the occupied bit, the 128-bit session key, the mask array, and the
  authentication-interval counter ("ctr"). Section 7.1 sizes it at 1161
  bits/entry, 148.6 KB for 1024 entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..errors import GroupTableFull, ReproError


class GroupProcessorBitMatrix:
    """The O(1) snoop filter: GID x PID membership bits."""

    def __init__(self, max_groups: int = 1024, max_processors: int = 32,
                 owner_pid: Optional[int] = None):
        self.max_groups = max_groups
        self.max_processors = max_processors
        self.owner_pid = owner_pid
        self._rows: Dict[int, Set[int]] = {}

    def _check(self, group_id: int, pid: int) -> None:
        if not 0 <= group_id < self.max_groups:
            raise ReproError(f"GID {group_id} out of range")
        if not 0 <= pid < self.max_processors:
            raise ReproError(f"PID {pid} out of range")

    def set_membership(self, group_id: int, members: Set[int]) -> None:
        """Install a group's membership row.

        A processor only learns rows for groups it belongs to (the
        "should not know the information about a group which it does
        not belong to" rule): if this matrix has an owner and the owner
        is not a member, the row is left all-zero.
        """
        for pid in members:
            self._check(group_id, pid)
        if self.owner_pid is not None and self.owner_pid not in members:
            self._rows.pop(group_id, None)
            return
        self._rows[group_id] = set(members)

    def is_member(self, group_id: int, pid: int) -> bool:
        self._check(group_id, pid)
        return pid in self._rows.get(group_id, ())

    def members_of(self, group_id: int) -> Set[int]:
        return set(self._rows.get(group_id, ()))

    def clear_group(self, group_id: int) -> None:
        self._rows.pop(group_id, None)

    def storage_bits(self) -> int:
        """Hardware cost: max_groups x ceil(log2(max_processors)) bits.

        Section 7.1: "1024 entries x 5 bits per entry = 640 bytes,
        assuming the maximum number of processors is 32". (The paper
        counts 5 bits of PID index width per group entry.)
        """
        pid_bits = (self.max_processors - 1).bit_length()
        return self.max_groups * pid_bits


@dataclass
class GroupEntry:
    """One group information table entry (section 5.2)."""

    occupied: bool = False
    session_key: Optional[bytes] = None
    masks: List[bytes] = field(default_factory=list)
    auth_counter: int = 0
    auth_interval: int = 100
    is_member: bool = False

    def reset(self) -> None:
        self.occupied = False
        self.session_key = None
        self.masks = []
        self.auth_counter = 0
        self.is_member = False


class GroupInfoTable:
    """Per-processor table of group secrets, indexed by GID."""

    # Section 7.1 field widths used for the storage computation.
    OCCUPIED_BITS = 1
    KEY_BITS = 128
    COUNTER_BITS = 8
    MASK_BITS = 128
    # Section 7.1: "The number of masks we store for each group is 8
    # for encryption and for authentication" — 8 mask registers serving
    # both paths, giving 1 + 128 + 8 + 8*128 = 1161 bits per entry.
    MASKS_PER_ENTRY = 8

    def __init__(self, max_groups: int = 1024):
        self.max_groups = max_groups
        self._entries: List[GroupEntry] = [GroupEntry()
                                           for _ in range(max_groups)]
        # Applications waiting for a reclaimed GID (section 5.2: "the
        # application is put into a queue waiting for the next
        # available GID which is reclaimed upon completion").
        self._waiting: List[object] = []

    def entry(self, group_id: int) -> GroupEntry:
        if not 0 <= group_id < self.max_groups:
            raise ReproError(f"GID {group_id} out of range")
        return self._entries[group_id]

    def allocate(self) -> int:
        """Find a free entry and mark it occupied; the OS-visible GID.

        Raises :class:`GroupTableFull` when every entry is occupied (the
        paper queues the application for the next reclaimed GID).
        """
        for group_id, entry in enumerate(self._entries):
            if not entry.occupied:
                entry.occupied = True
                return group_id
        raise GroupTableFull("all group IDs are occupied")

    def mark_occupied(self, group_id: int) -> None:
        """Non-members also mark the GID occupied (section 5.2) so the
        same GID cannot be reused by a non-trusted application, but they
        get no key or mask material."""
        self.entry(group_id).occupied = True

    def install(self, group_id: int, session_key: bytes,
                masks: List[bytes], auth_interval: int) -> None:
        entry = self.entry(group_id)
        entry.occupied = True
        entry.is_member = True
        entry.session_key = session_key
        entry.masks = list(masks)
        entry.auth_counter = 0
        entry.auth_interval = auth_interval

    def allocate_or_wait(self, application: object) -> Optional[int]:
        """Allocate a GID, or queue the application (section 5.2).

        Returns the GID, or None when every entry is occupied — in
        which case the application is remembered and handed the next
        GID reclaimed by :meth:`release`.
        """
        try:
            return self.allocate()
        except GroupTableFull:
            self._waiting.append(application)
            return None

    def waiting_count(self) -> int:
        return len(self._waiting)

    def release(self, group_id: int) -> Optional[tuple]:
        """Reclaim a GID on program completion.

        If applications are queued, the GID is immediately handed to
        the oldest waiter: returns (application, group_id), else None.
        """
        self.entry(group_id).reset()
        if self._waiting:
            application = self._waiting.pop(0)
            self.entry(group_id).occupied = True
            return application, group_id
        return None

    def occupied_count(self) -> int:
        return sum(1 for entry in self._entries if entry.occupied)

    def storage_bits_per_entry(self) -> int:
        """Bits per entry per section 7.1's accounting (1161 bits)."""
        return (self.OCCUPIED_BITS + self.KEY_BITS + self.COUNTER_BITS
                + self.MASKS_PER_ENTRY * self.MASK_BITS)

    def storage_bytes_total(self) -> float:
        """Total bytes: 1024 x 1161 / 8 = 148,608 — the paper's
        "148.6KB" (decimal kilobytes)."""
        return self.max_groups * self.storage_bits_per_entry() / 8.0
