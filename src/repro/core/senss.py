"""SENSS timing layer and secure-system assembly.

:class:`SenssBusLayer` attaches to :class:`repro.bus.bus.SharedBus` and
charges the security costs of sections 4-5 and 7.1 on every granted
transaction:

- **+3 cycles** per protected message — one sender-side XOR cycle plus
  two receiver-side cycles (GID/mask lookup, XOR) — section 7.1 "Bus
  designs";
- **mask-readiness stalls** when the finite mask array has not finished
  its background AES regeneration (section 4.4, Figure 3);
- a **MAC broadcast** (type-"00" transaction) injected every
  ``auth_interval`` cache-to-cache transfers (section 4.3), occupying
  the bus and thereby adding contention but staying off any single
  processor's critical path.

Only cache-to-cache data transfers go through the mask path: the
cache-to-memory traffic uses the (separately modeled) fast memory
encryption of section 6, and address-only coherence messages carry no
data block to encrypt.

**Multiple groups.** "There are multiple groups running in the SENSS
and each group maintains its own mask" (section 4.2) — the layer keeps
independent per-group state (mask array, authentication counter,
round-robin initiator over that group's members). Groups are created
lazily on first traffic, with membership defaulting to all processors;
``register_group`` narrows it (Figure 1's trusted subsets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..bus.transaction import BusTransaction, TransactionType
from ..config import SystemConfig
from ..errors import ConfigError
from ..smp.system import SmpSystem
from .masks import MaskTimingArray


@dataclass
class _GroupState:
    """Per-group security state inside the timing layer."""

    mask_array: MaskTimingArray
    member_pids: List[int]
    messages_stat: str
    auth_stat: str
    auth_counter: int = 0
    initiator_index: int = 0
    auth_broadcasts: int = 0
    protected_messages: int = 0
    # Deferred stats-registry counts (drained by the layer's flusher).
    pending_messages: int = 0
    pending_auth: int = 0


class SenssBusLayer:
    """Security timing hooks for the shared bus."""

    def __init__(self, config: SystemConfig):
        if not config.senss.enabled:
            raise ConfigError(
                "SenssBusLayer requires senss.enabled=True")
        self.config = config
        self.auth_interval = config.senss.auth_interval
        self._groups: Dict[int, _GroupState] = {}
        self._bus = None
        self.total_mask_wait = 0
        self._overhead = config.senss.per_message_overhead_cycles
        # Optional observability probe (repro.obs.Tracer): notified of
        # mask-readiness stalls and MAC checkpoint broadcasts.
        self.observer = None
        # Deferred aggregate counts (only accumulated while attached,
        # mirroring the registry-only-when-attached semantics).
        self._pending_protected = 0
        self._pending_mask_stalls = 0
        self._pending_mask_wait = 0

    # -- attachment ---------------------------------------------------------

    def attach(self, bus) -> None:
        """Register on the bus; the bus calls back on every grant."""
        self._bus = bus
        bus.security_layer = self
        bus.stats.register_flusher(self._flush_stats)

    def _flush_stats(self) -> None:
        add = self._bus.stats.add
        if self._pending_protected:
            add("senss.protected_messages", self._pending_protected)
            self._pending_protected = 0
        if self._pending_mask_stalls:
            add("senss.mask_stalls", self._pending_mask_stalls)
            add("senss.mask_wait_cycles", self._pending_mask_wait)
            self._pending_mask_stalls = 0
            self._pending_mask_wait = 0
        for state in self._groups.values():
            if state.pending_messages:
                add(state.messages_stat, state.pending_messages)
                state.pending_messages = 0
            if state.pending_auth:
                add(state.auth_stat, state.pending_auth)
                state.pending_auth = 0

    # -- group management ------------------------------------------------------

    def register_group(self, group_id: int,
                       member_pids: Optional[Sequence[int]] = None
                       ) -> _GroupState:
        """Create (or re-scope) a group's timing state.

        Omitting ``member_pids`` enrols every processor — the default
        for single-program runs.
        """
        members = (list(member_pids) if member_pids is not None
                   else list(range(self.config.num_processors)))
        if not members:
            raise ConfigError("a group needs at least one member")
        state = _GroupState(
            MaskTimingArray(self.config.senss.num_masks,
                            self.config.crypto.aes_latency),
            members,
            messages_stat=f"senss.group{group_id}.messages",
            auth_stat=f"senss.group{group_id}.auth")
        self._groups[group_id] = state
        return state

    def group_state(self, group_id: int) -> _GroupState:
        state = self._groups.get(group_id)
        if state is None:
            state = self.register_group(group_id)
        return state

    # -- aggregate statistics (back-compat with single-group callers) -----

    @property
    def mask_array(self) -> MaskTimingArray:
        """Group 0's mask array (the single-program default)."""
        return self.group_state(0).mask_array

    @property
    def protected_messages(self) -> int:
        return sum(state.protected_messages
                   for state in self._groups.values())

    @property
    def auth_broadcasts(self) -> int:
        return sum(state.auth_broadcasts
                   for state in self._groups.values())

    # -- classification ---------------------------------------------------------

    def _is_protected(self, transaction: BusTransaction) -> bool:
        """Which transactions ride the SENSS mask path."""
        return (transaction.type.carries_data
                and transaction.supplied_by_cache
                and transaction.type is not TransactionType.AUTH_MAC)

    # -- bus callbacks ---------------------------------------------------------

    def before_transfer(self, transaction: BusTransaction,
                        grant_cycle: int) -> int:
        """Extra requester-visible latency for this transaction."""
        tx_type = transaction.type
        if not (tx_type.carries_data and transaction.supplied_by_cache
                and tx_type is not TransactionType.AUTH_MAC):
            return 0
        group_id = transaction.group_id
        state = self._groups.get(group_id)
        if state is None:
            state = self.register_group(group_id)
        state.protected_messages += 1
        mask_wait = state.mask_array.consume(grant_cycle)
        self.total_mask_wait += mask_wait
        if self._bus is not None:
            if mask_wait:
                self._pending_mask_stalls += 1
                self._pending_mask_wait += mask_wait
            self._pending_protected += 1
            state.pending_messages += 1
        if mask_wait and self.observer is not None:
            self.observer.on_mask_stall(transaction, grant_cycle,
                                        mask_wait)
        return self._overhead + mask_wait

    def after_transfer(self, transaction: BusTransaction) -> None:
        """Advance the group's counter; broadcast its MAC when due."""
        tx_type = transaction.type
        if not (tx_type.carries_data and transaction.supplied_by_cache
                and tx_type is not TransactionType.AUTH_MAC):
            return
        state = self._groups.get(transaction.group_id)
        if state is None:
            state = self.register_group(transaction.group_id)
        state.auth_counter += 1
        if state.auth_counter < self.auth_interval:
            return
        state.auth_counter = 0
        self._broadcast_mac(transaction.group_id, state,
                            transaction.grant_cycle)

    def _broadcast_mac(self, group_id: int, state: _GroupState,
                       cycle: int) -> None:
        """Inject the type-"00" authentication transaction.

        The initiating processor rotates round-robin over the group's
        members so a single failed member cannot silence
        authentication (section 4.3).
        """
        if self._bus is None:
            return
        initiator = state.member_pids[state.initiator_index
                                      % len(state.member_pids)]
        state.initiator_index += 1
        mac_message = BusTransaction(TransactionType.AUTH_MAC,
                                     address=0, source_pid=initiator,
                                     group_id=group_id)
        # A MAC digest fits one bus line; issue from the current bus
        # horizon. The recursive issue is safe: AUTH_MAC is not a
        # protected message so the callbacks return immediately.
        self._bus.issue(mac_message, max(cycle, self._bus.free_at),
                        data_bytes=16)
        state.auth_broadcasts += 1
        state.pending_auth += 1
        if self.observer is not None:
            self.observer.on_auth_mac(group_id, initiator,
                                      mac_message.grant_cycle)


def build_secure_system(config: SystemConfig) -> SmpSystem:
    """Assemble an SMP machine with the configured security layers.

    - ``config.senss.enabled`` attaches the SENSS bus layer;
    - ``config.memprotect.encryption_enabled`` /
      ``integrity_enabled`` attach the cache-to-memory protection of
      section 6 (see :mod:`repro.memprotect.integrated`).
    """
    system = SmpSystem(config)
    if config.senss.enabled:
        layer = SenssBusLayer(config)
        layer.attach(system.bus)
    memprotect = config.memprotect
    if memprotect.encryption_enabled or memprotect.integrity_enabled:
        from ..memprotect.integrated import MemProtectLayer
        MemProtectLayer(config).attach(system)
    return system
