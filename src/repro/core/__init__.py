"""SENSS core: the paper's primary contribution.

- :mod:`repro.core.groups` — group-processor bit matrix and group
  information table (section 5).
- :mod:`repro.core.masks` — mask pair/array management (section 4.4).
- :mod:`repro.core.bus_crypto` — the OTP/CBC-AES bus encryption of
  Table 1 and Figure 2 (functional).
- :mod:`repro.core.authentication` — chained CBC-MAC bus
  authentication (section 4.3) plus the non-chained baseline of Shi et
  al. [20] for comparison.
- :mod:`repro.core.shu` — the per-processor Security Hardware Unit.
- :mod:`repro.core.dispatch` — program packaging and key distribution
  (section 4.1).
- :mod:`repro.core.attacks` — Type 1/2/3 bus attack injectors
  (section 3.2).
- :mod:`repro.core.senss` — the timing-side SENSS bus layer and secure
  system assembly.
"""

from .authentication import AuthenticationManager, NonChainedAuthenticator
from .bus_crypto import GroupChannel, MESSAGE_BYTES, pid_block
from .context import GroupContextManager, SwappedContext
from .dispatch import ProgramDistributor, ProgramPackage
from .gcm_channel import GcmGroupChannel
from .groups import GroupInfoTable, GroupProcessorBitMatrix
from .masks import MaskTimingArray
from .senss import SenssBusLayer, build_secure_system
from .shu import SecurityHardwareUnit, WireMessage

__all__ = [
    "AuthenticationManager",
    "GcmGroupChannel",
    "GroupChannel",
    "GroupContextManager",
    "GroupInfoTable",
    "GroupProcessorBitMatrix",
    "MESSAGE_BYTES",
    "MaskTimingArray",
    "NonChainedAuthenticator",
    "ProgramDistributor",
    "ProgramPackage",
    "SecurityHardwareUnit",
    "SenssBusLayer",
    "SwappedContext",
    "WireMessage",
    "build_secure_system",
    "pid_block",
]
