"""Memory access traces.

A workload is one access trace per processor. Each access is
``(is_write, address, gap)`` where ``gap`` is the number of
non-memory instructions executed since the previous access (charged at
one cycle each on the 1 GHz core). Traces substitute for the paper's
Simics-executed SPLASH-2 binaries; the generators in
:mod:`repro.workloads` produce them.

Storage is columnar: :class:`ColumnarTrace` keeps the three fields in
flat ``array`` columns instead of one :class:`MemoryAccess` NamedTuple
per access, which cuts workload memory by ~5x and lets the simulation
fast path (:mod:`repro.smp.fastpath`) iterate machine integers without
per-access tuple allocation. Element access still yields
:class:`MemoryAccess`, so existing consumers are unaffected.
"""

from __future__ import annotations

from array import array
from dataclasses import InitVar, dataclass, field
from typing import Iterable, Iterator, List, NamedTuple, Sequence, Tuple

from ..errors import TraceError


class MemoryAccess(NamedTuple):
    is_write: bool
    address: int
    gap: int


class ColumnarTrace(Sequence):
    """One CPU's access trace stored as three parallel columns.

    Columns are ``array('b')`` for the write flags and ``array('q')``
    for addresses and gaps; appends go straight into the columns and
    reads materialize :class:`MemoryAccess` tuples on demand.
    """

    __slots__ = ("_is_write", "_addresses", "_gaps")

    def __init__(self, is_write=None, addresses=None, gaps=None):
        self._is_write = array("b") if is_write is None else is_write
        self._addresses = array("q") if addresses is None else addresses
        self._gaps = array("q") if gaps is None else gaps
        if not (len(self._is_write) == len(self._addresses)
                == len(self._gaps)):
            raise TraceError("trace columns must have equal lengths")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_accesses(cls, accesses: Iterable) -> "ColumnarTrace":
        """Build from any iterable of (is_write, address, gap) records."""
        trace = cls()
        write_flags = trace._is_write.append
        addresses = trace._addresses.append
        gaps = trace._gaps.append
        for is_write, address, gap in accesses:
            write_flags(1 if is_write else 0)
            addresses(address)
            gaps(gap)
        return trace

    def append(self, is_write: bool, address: int, gap: int) -> None:
        self._is_write.append(1 if is_write else 0)
        self._addresses.append(address)
        self._gaps.append(gap)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._addresses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnarTrace(self._is_write[index],
                                 self._addresses[index],
                                 self._gaps[index])
        return MemoryAccess(bool(self._is_write[index]),
                            self._addresses[index], self._gaps[index])

    def __iter__(self) -> Iterator[MemoryAccess]:
        for is_write, address, gap in zip(self._is_write,
                                          self._addresses, self._gaps):
            yield MemoryAccess(bool(is_write), address, gap)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarTrace):
            return (self._is_write == other._is_write
                    and self._addresses == other._addresses
                    and self._gaps == other._gaps)
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarTrace({len(self)} accesses)"

    # -- columnar views ----------------------------------------------------

    def columns(self) -> Tuple[array, array, array]:
        """The raw (is_write, addresses, gaps) columns; do not resize."""
        return self._is_write, self._addresses, self._gaps

    def relocated(self, offset: int) -> "ColumnarTrace":
        """A copy with every address shifted by ``offset``."""
        return ColumnarTrace(self._is_write[:],
                             array("q", (address + offset
                                         for address in self._addresses)),
                             self._gaps[:])

    # -- validation --------------------------------------------------------

    def validate(self, cpu_id: int) -> None:
        """Raise on negative addresses/gaps (C-speed column scans)."""
        if not self._addresses:
            return
        if min(self._addresses) < 0:
            raise TraceError(f"negative address in cpu {cpu_id} trace")
        if min(self._gaps) < 0:
            raise TraceError(f"negative gap in cpu {cpu_id} trace")


def as_columns(trace) -> Tuple[array, array, array]:
    """Columnar view of any trace (converting row storage if needed)."""
    if isinstance(trace, ColumnarTrace):
        return trace.columns()
    return (array("b", (1 if access.is_write else 0 for access in trace)),
            array("q", (access.address for access in trace)),
            array("q", (access.gap for access in trace)))


@dataclass
class Workload:
    """Named per-CPU access traces plus generation metadata.

    ``validate=False`` skips the O(total-accesses) sanity scan for
    traces derived from an already-validated workload (truncation,
    relocation, programmatic copies); generators validate once at
    assembly time.
    """

    name: str
    traces: List[Sequence]
    metadata: dict = field(default_factory=dict)
    validate: InitVar[bool] = True

    def __post_init__(self, validate: bool = True) -> None:
        if not self.traces:
            raise TraceError("workload needs at least one CPU trace")
        if not validate:
            return
        for cpu_id, trace in enumerate(self.traces):
            if isinstance(trace, ColumnarTrace):
                trace.validate(cpu_id)
                continue
            for access in trace:
                if access.address < 0:
                    raise TraceError(
                        f"negative address in cpu {cpu_id} trace")
                if access.gap < 0:
                    raise TraceError(f"negative gap in cpu {cpu_id} trace")

    @property
    def num_cpus(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def accesses_for(self, cpu_id: int) -> Sequence[MemoryAccess]:
        return self.traces[cpu_id]

    def iter_flat(self) -> Iterator[tuple]:
        """Yield (cpu_id, access) pairs, CPU-major (analysis helper)."""
        for cpu_id, trace in enumerate(self.traces):
            for access in trace:
                yield cpu_id, access

    def truncated(self, max_per_cpu: int) -> "Workload":
        """A shortened copy, for quick tests (skips revalidation)."""
        return Workload(self.name + f"[:{max_per_cpu}]",
                        [trace[:max_per_cpu] if isinstance(trace,
                                                           ColumnarTrace)
                         else list(trace[:max_per_cpu])
                         for trace in self.traces],
                        dict(self.metadata), validate=False)
