"""Memory access traces.

A workload is one access trace per processor. Each access is
``(is_write, address, gap)`` where ``gap`` is the number of
non-memory instructions executed since the previous access (charged at
one cycle each on the 1 GHz core). Traces substitute for the paper's
Simics-executed SPLASH-2 binaries; the generators in
:mod:`repro.workloads` produce them.

Storage is columnar: :class:`ColumnarTrace` keeps the three fields in
flat ``array`` columns instead of one :class:`MemoryAccess` NamedTuple
per access, which cuts workload memory by ~5x and lets the simulation
fast path (:mod:`repro.smp.fastpath`) iterate machine integers without
per-access tuple allocation. Element access still yields
:class:`MemoryAccess`, so existing consumers are unaffected.
"""

from __future__ import annotations

from array import array
from dataclasses import InitVar, dataclass, field
from typing import Iterable, Iterator, List, NamedTuple, Sequence, Tuple

from ..errors import TraceError


class MemoryAccess(NamedTuple):
    is_write: bool
    address: int
    gap: int


class ColumnarTrace(Sequence):
    """One CPU's access trace stored as three parallel columns.

    Columns are ``array('b')`` for the write flags and ``array('q')``
    for addresses and gaps; appends go straight into the columns and
    reads materialize :class:`MemoryAccess` tuples on demand.
    """

    __slots__ = ("_is_write", "_addresses", "_gaps", "_np_cache")

    def __init__(self, is_write=None, addresses=None, gaps=None):
        self._is_write = array("b") if is_write is None else is_write
        self._addresses = array("q") if addresses is None else addresses
        self._gaps = array("q") if gaps is None else gaps
        # Memoized numpy views + derived line/set/tag columns, built on
        # first demand by numpy_columns(); see NumpyColumns.
        self._np_cache = None
        if not (len(self._is_write) == len(self._addresses)
                == len(self._gaps)):
            raise TraceError("trace columns must have equal lengths")

    # -- construction ------------------------------------------------------

    @classmethod
    def from_accesses(cls, accesses: Iterable) -> "ColumnarTrace":
        """Build from any iterable of (is_write, address, gap) records."""
        trace = cls()
        write_flags = trace._is_write.append
        addresses = trace._addresses.append
        gaps = trace._gaps.append
        for is_write, address, gap in accesses:
            write_flags(1 if is_write else 0)
            addresses(address)
            gaps(gap)
        return trace

    def append(self, is_write: bool, address: int, gap: int) -> None:
        self._is_write.append(1 if is_write else 0)
        self._addresses.append(address)
        self._gaps.append(gap)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._addresses)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ColumnarTrace(self._is_write[index],
                                 self._addresses[index],
                                 self._gaps[index])
        return MemoryAccess(bool(self._is_write[index]),
                            self._addresses[index], self._gaps[index])

    def __iter__(self) -> Iterator[MemoryAccess]:
        for is_write, address, gap in zip(self._is_write,
                                          self._addresses, self._gaps):
            yield MemoryAccess(bool(is_write), address, gap)

    def __eq__(self, other) -> bool:
        if isinstance(other, ColumnarTrace):
            return (self._is_write == other._is_write
                    and self._addresses == other._addresses
                    and self._gaps == other._gaps)
        if isinstance(other, (list, tuple)):
            return len(self) == len(other) and all(
                a == b for a, b in zip(self, other))
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarTrace({len(self)} accesses)"

    # -- columnar views ----------------------------------------------------

    def columns(self) -> Tuple[array, array, array]:
        """The raw (is_write, addresses, gaps) columns; do not resize."""
        return self._is_write, self._addresses, self._gaps

    def relocated(self, offset: int) -> "ColumnarTrace":
        """A copy with every address shifted by ``offset``."""
        return ColumnarTrace(self._is_write[:],
                             array("q", (address + offset
                                         for address in self._addresses)),
                             self._gaps[:])

    # -- validation --------------------------------------------------------

    def validate(self, cpu_id: int) -> None:
        """Raise on negative addresses/gaps (C-speed column scans)."""
        if not self._addresses:
            return
        if min(self._addresses) < 0:
            raise TraceError(f"negative address in cpu {cpu_id} trace")
        if min(self._gaps) < 0:
            raise TraceError(f"negative gap in cpu {cpu_id} trace")


def as_columns(trace) -> Tuple[array, array, array]:
    """Columnar view of any trace (converting row storage if needed)."""
    if isinstance(trace, ColumnarTrace):
        return trace.columns()
    return (array("b", (1 if access.is_write else 0 for access in trace)),
            array("q", (access.address for access in trace)),
            array("q", (access.gap for access in trace)))


class NumpyColumns:
    """Numpy views over one trace's columns, plus derived geometry columns.

    ``is_write``/``addresses``/``gaps`` are zero-copy ``frombuffer``
    views over the same ``array`` buffers the scalar engine iterates —
    one storage, two backends. ``derived(offset_bits, num_sets)``
    memoizes the (block, set_index, tag) columns for one cache
    geometry, so repeated runs of the same workload (sweeps, repeats,
    both engine backends) never re-derive them.

    Views are built against the columns' current buffers; appending to
    the trace afterwards reallocates those buffers and invalidates the
    views, which is why :func:`numpy_columns` keys its cache on the
    trace length (engines only ever run frozen workloads).
    """

    __slots__ = ("length", "is_write", "addresses", "gaps", "_derived")

    def __init__(self, is_write, addresses, gaps):
        import numpy

        self.length = len(addresses)
        if self.length:
            self.is_write = numpy.frombuffer(is_write, dtype=numpy.int8)
            self.addresses = numpy.frombuffer(addresses,
                                              dtype=numpy.int64)
            self.gaps = numpy.frombuffer(gaps, dtype=numpy.int64)
        else:  # frombuffer rejects empty exports; empty views instead
            self.is_write = numpy.empty(0, dtype=numpy.int8)
            self.addresses = numpy.empty(0, dtype=numpy.int64)
            self.gaps = numpy.empty(0, dtype=numpy.int64)
        self._derived = {}

    def derived(self, offset_bits: int, num_sets: int):
        """(block, set_index, tag) columns for one cache geometry."""
        key = (offset_bits, num_sets)
        cached = self._derived.get(key)
        if cached is None:
            block = self.addresses >> offset_bits
            cached = self._derived[key] = (
                block, block % num_sets, block // num_sets)
        return cached

    def derived_lists(self, offset_bits: int, num_sets: int):
        """``derived(...)`` as plain-int lists (python-loop consumers)."""
        key = (offset_bits, num_sets, "lists")
        cached = self._derived.get(key)
        if cached is None:
            cached = self._derived[key] = tuple(
                column.tolist()
                for column in self.derived(offset_bits, num_sets))
        return cached

    def base_lists(self):
        """(is_write, gaps) as plain-int lists, memoized."""
        cached = self._derived.get("base_lists")
        if cached is None:
            cached = self._derived["base_lists"] = (
                self.is_write.tolist(), self.gaps.tolist())
        return cached

    def run_statics(self, offset_bits: int, num_sets: int):
        """Trace-static run structure of the per-set access sequence.

        For window classification (:mod:`repro.smp.vectorpath`) the
        vector engine needs, per access ``i`` and one cache geometry:

        - ``P1[i]``   — previous access to the same set (-1 if none);
        - ``EQP[i]``  — that previous access used the same tag
          (``i`` continues a *run*: a maximal streak of same-tag
          accesses within one set);
        - ``RUNP[i]`` — last access of the previous run in the set
          (-1 if none); for every access of one run this is the same
          index, which also makes it the run's start minus one step;
        - ``RUNP2[i]``— last access of the run before that (-1 if none);
        - ``EQ2[i]``  — ``i``'s tag equals the tag two runs back.

        These depend only on the trace and the geometry, never on cache
        state, so they are computed once (a handful of vectorized
        passes over a stable set-grouped ordering) and memoized.
        """
        import numpy

        key = (offset_bits, num_sets, "runs")
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        n = self.length
        _, set_idx, tag = self.derived(offset_bits, num_sets)
        if n == 0:
            empty_i = numpy.empty(0, dtype=numpy.int64)
            empty_b = numpy.empty(0, dtype=numpy.bool_)
            cached = (empty_i, empty_b, empty_i, empty_i, empty_b)
            self._derived[key] = cached
            return cached
        order = self.set_order(offset_bits, num_sets)
        so_set = set_idx[order]
        so_tag = tag[order]
        same_set = numpy.empty(n, dtype=numpy.bool_)
        same_set[0] = False
        same_set[1:] = so_set[1:] == so_set[:-1]
        prev_sorted = numpy.full(n, -1, dtype=numpy.int64)
        prev_sorted[1:][same_set[1:]] = order[:-1][same_set[1:]]
        eq_sorted = numpy.zeros(n, dtype=numpy.bool_)
        eq_sorted[1:] = same_set[1:] & (so_tag[1:] == so_tag[:-1])
        # Runs: a new run starts wherever the tag streak (or set) breaks.
        run_start = ~eq_sorted
        rid = numpy.cumsum(run_start) - 1
        nruns = int(rid[-1]) + 1
        is_last = numpy.empty(n, dtype=numpy.bool_)
        is_last[:-1] = rid[:-1] != rid[1:]
        is_last[-1] = True
        run_last = numpy.empty(nruns, dtype=numpy.int64)
        run_last[rid[is_last]] = order[is_last]
        run_set = so_set[run_start]
        prev1 = numpy.full(nruns, -1, dtype=numpy.int64)
        if nruns > 1:
            adj = run_set[1:] == run_set[:-1]
            prev1[1:][adj] = run_last[:-1][adj]
        prev2 = numpy.full(nruns, -1, dtype=numpy.int64)
        if nruns > 2:
            adj2 = ((run_set[2:] == run_set[1:-1])
                    & (run_set[1:-1] == run_set[:-2]))
            prev2[2:][adj2] = run_last[:-2][adj2]
        p1 = numpy.empty(n, dtype=numpy.int64)
        p1[order] = prev_sorted
        eqp = numpy.empty(n, dtype=numpy.bool_)
        eqp[order] = eq_sorted
        runp = numpy.empty(n, dtype=numpy.int64)
        runp[order] = prev1[rid]
        runp2 = numpy.empty(n, dtype=numpy.int64)
        runp2[order] = prev2[rid]
        eq2 = (runp2 >= 0) & (tag == tag[numpy.maximum(runp2, 0)])
        cached = (p1, eqp, runp, runp2, eq2)
        self._derived[key] = cached
        return cached

    def set_order(self, offset_bits: int, num_sets: int):
        """Stable argsort of the set-index column, memoized."""
        import numpy

        key = (offset_bits, num_sets, "set_order")
        cached = self._derived.get(key)
        if cached is None:
            _, set_idx, _ = self.derived(offset_bits, num_sets)
            cached = self._derived[key] = numpy.argsort(set_idx,
                                                        kind="stable")
        return cached

    def block_order(self, offset_bits: int):
        """(stable argsort, sorted values) of the line/block column."""
        import numpy

        key = (offset_bits, "block_order")
        cached = self._derived.get(key)
        if cached is None:
            block = self.addresses >> offset_bits
            order = numpy.argsort(block, kind="stable")
            cached = self._derived[key] = (order, block[order])
        return cached

    def window_statics(self, offset_bits: int, num_sets: int,
                       assoc: int):
        """Global L1 hit-prediction arrays for the vector engine.

        Per access ``i`` (one L1 geometry):

        - ``frun[i]`` — the first access of ``i``'s run;
        - ``hist[i]`` — how far back the run history that ``i``'s
          *static* hit prediction relies on reaches: the prediction is
          exact iff no L1 perturbation (inclusion sweep) happened since
          access ``hist[i]`` executed, so the engine live-probes
          exactly the accesses with ``hist[i] < floor``. In-run
          accesses rely on their predecessor (``P1``); run starts at
          2-way rely on the last-two-runs rule, i.e. back to the start
          of the run two back (or -1: fewer than two completed runs,
          always probe); run starts at direct-mapped rely on the
          previous same-set touch having left a different-tag line
          (``hist = P1`` — a boundary's L2-aligned fill can plant this
          very tag, so the unconditional-miss shortcut is unsound
          under perturbation); above 2-way the last-two-runs rule is
          unavailable and every run start probes (``hist = -1``).
        - ``stat[i]`` — the static prediction itself: in-run accesses
          hit; 2-way run starts hit iff the tag matches two runs back
          (``EQ2``); other run starts miss.
        """
        import numpy

        key = (offset_bits, num_sets, assoc, "window")
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        p1, eqp, runp, runp2, eq2 = self.run_statics(offset_bits,
                                                     num_sets)
        n = self.length
        if n == 0:
            empty_i = numpy.empty(0, dtype=numpy.int64)
            empty_b = numpy.empty(0, dtype=numpy.bool_)
            cached = self._derived[key] = (empty_i, empty_b, empty_i)
            return cached
        order = self.set_order(offset_bits, num_sets)
        # First access of each run: along the set-grouped stable order
        # the latest run-start index seen so far is the current run's
        # start; order-space indices grow globally, so every group's
        # leading run start resets the running maximum.
        starts = numpy.where(~eqp[order], numpy.arange(n), 0)
        acc = numpy.maximum.accumulate(starts)
        frun = numpy.empty(n, dtype=numpy.int64)
        frun[order] = order[acc]
        if assoc == 2:
            hist = numpy.where(
                eqp, p1,
                numpy.where(runp2 >= 0,
                            frun[numpy.maximum(runp2, 0)], -1))
            stat = eqp | eq2
        elif assoc == 1:
            hist = p1.copy()
            stat = eqp.copy()
        else:
            hist = numpy.where(eqp, p1, -1)
            stat = eqp.copy()
        cached = self._derived[key] = (hist, stat, frun)
        return cached

    def window_statics_lists(self, offset_bits: int, num_sets: int,
                             assoc: int):
        """(hist, stat, frun) from ``window_statics`` as plain lists."""
        key = (offset_bits, num_sets, assoc, "window_lists")
        cached = self._derived.get(key)
        if cached is None:
            hist, stat, frun = self.window_statics(offset_bits,
                                                   num_sets, assoc)
            cached = self._derived[key] = (hist.tolist(), stat.tolist(),
                                           frun.tolist())
        return cached

    def latency_cumsums(self, offset_bits: int, num_sets: int,
                        assoc: int, lat1: int, lat2: int):
        """Exclusive-prefix cumsums of predicted latency and hits.

        ``cum_lat[p]`` is the total of ``gap + predicted latency`` over
        accesses ``[0, p)`` and ``cum_hit[p]`` the predicted L1 hits,
        so any window's timing is two subtractions plus its (rare)
        per-probe corrections.
        """
        import numpy

        key = (offset_bits, num_sets, assoc, lat1, lat2, "latcum")
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        _, stat, _ = self.window_statics(offset_bits, num_sets, assoc)
        n = self.length
        cum_lat = numpy.zeros(n + 1, dtype=numpy.int64)
        cum_hit = numpy.zeros(n + 1, dtype=numpy.int64)
        if n:
            lat = numpy.where(stat, lat1, lat2)
            cum_lat[1:] = numpy.cumsum(self.gaps + lat)
            cum_hit[1:] = numpy.cumsum(stat)
        cached = self._derived[key] = (cum_lat, cum_hit)
        return cached

    def latency_cumsums_lists(self, offset_bits: int, num_sets: int,
                              assoc: int, lat1: int, lat2: int):
        """``latency_cumsums`` as plain-int lists, memoized."""
        key = (offset_bits, num_sets, assoc, lat1, lat2, "latcum_lists")
        cached = self._derived.get(key)
        if cached is None:
            cum_lat, cum_hit = self.latency_cumsums(
                offset_bits, num_sets, assoc, lat1, lat2)
            cached = self._derived[key] = (cum_lat.tolist(),
                                           cum_hit.tolist())
        return cached

    def request_times(self, offset_bits: int, num_sets: int, assoc: int,
                      lat1: int, lat2: int):
        """Static request time of each access, relative to trace start.

        ``pend0[i] = cum_lat[i] + gap[i]``: the cycle access ``i``'s
        bus request would be seen at if the trace started at cycle 0
        and every static prediction held — a window's live request
        times are this array plus one scalar offset. Returned as
        (ndarray, list) so windows can binary-search either form.
        """
        key = (offset_bits, num_sets, assoc, lat1, lat2, "pend0")
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        cum_lat, _ = self.latency_cumsums(offset_bits, num_sets, assoc,
                                          lat1, lat2)
        pend0 = cum_lat[:-1] + self.gaps
        cached = self._derived[key] = (pend0, pend0.tolist())
        return cached

    def next_set_occurrence_list(self, offset_bits: int,
                                 num_sets: int):
        """``next_set_occurrence`` as a plain-int list, memoized."""
        key = (offset_bits, num_sets, "next_set_list")
        cached = self._derived.get(key)
        if cached is None:
            cached = self._derived[key] = self.next_set_occurrence(
                offset_bits, num_sets).tolist()
        return cached

    def next_block_occurrence_list(self, offset_bits: int):
        """``next_block_occurrence`` as a plain-int list, memoized."""
        key = (offset_bits, "next_block_list")
        cached = self._derived.get(key)
        if cached is None:
            cached = self._derived[key] = self.next_block_occurrence(
                offset_bits).tolist()
        return cached

    def write_positions_list(self):
        """``write_positions`` as a plain-int list, memoized."""
        cached = self._derived.get("write_positions_list")
        if cached is None:
            cached = self._derived["write_positions_list"] = (
                self.write_positions().tolist())
        return cached

    def next_set_occurrence(self, offset_bits: int, num_sets: int):
        """Next access to the same set (or ``n``), per position."""
        import numpy

        key = (offset_bits, num_sets, "next_set")
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        n = self.length
        nxt = numpy.full(n, n, dtype=numpy.int64)
        if n:
            order = self.set_order(offset_bits, num_sets)
            _, set_idx, _ = self.derived(offset_bits, num_sets)
            grouped = set_idx[order]
            same = grouped[1:] == grouped[:-1]
            nxt[order[:-1][same]] = order[1:][same]
        cached = self._derived[key] = nxt
        return cached

    def next_block_occurrence(self, offset_bits: int):
        """Next access to the same line/block (or ``n``), per position."""
        import numpy

        key = (offset_bits, "next_block")
        cached = self._derived.get(key)
        if cached is not None:
            return cached
        n = self.length
        nxt = numpy.full(n, n, dtype=numpy.int64)
        if n:
            order, grouped = self.block_order(offset_bits)
            same = grouped[1:] == grouped[:-1]
            nxt[order[:-1][same]] = order[1:][same]
        cached = self._derived[key] = nxt
        return cached

    def write_positions(self):
        """Positions of all writes, ascending, memoized."""
        cached = self._derived.get("write_positions")
        if cached is None:
            cached = self._derived["write_positions"] = (
                self.writes_bool.nonzero()[0])
        return cached

    def run_statics_lists(self, offset_bits: int, num_sets: int):
        """``run_statics(...)`` as plain-int/bool lists, memoized."""
        key = (offset_bits, num_sets, "runs_lists")
        cached = self._derived.get(key)
        if cached is None:
            cached = self._derived[key] = tuple(
                column.tolist()
                for column in self.run_statics(offset_bits, num_sets))
        return cached

    @property
    def writes_bool(self):
        """The write flags as a bool array, memoized."""
        cached = self._derived.get("writes_bool")
        if cached is None:
            cached = self._derived["writes_bool"] = self.is_write != 0
        return cached


def numpy_columns(trace) -> NumpyColumns:
    """The memoized :class:`NumpyColumns` for a trace (requires numpy).

    :class:`ColumnarTrace` instances cache the result (invalidated if
    the trace grew since); other sequences are converted columnar
    first and rebuilt on every call.
    """
    if isinstance(trace, ColumnarTrace):
        cached = trace._np_cache
        if cached is not None and cached.length == len(trace):
            return cached
        built = NumpyColumns(*trace.columns())
        trace._np_cache = built
        return built
    return NumpyColumns(*as_columns(trace))


@dataclass
class Workload:
    """Named per-CPU access traces plus generation metadata.

    ``validate=False`` skips the O(total-accesses) sanity scan for
    traces derived from an already-validated workload (truncation,
    relocation, programmatic copies); generators validate once at
    assembly time.
    """

    name: str
    traces: List[Sequence]
    metadata: dict = field(default_factory=dict)
    validate: InitVar[bool] = True

    def __post_init__(self, validate: bool = True) -> None:
        if not self.traces:
            raise TraceError("workload needs at least one CPU trace")
        if not validate:
            return
        for cpu_id, trace in enumerate(self.traces):
            if isinstance(trace, ColumnarTrace):
                trace.validate(cpu_id)
                continue
            for access in trace:
                if access.address < 0:
                    raise TraceError(
                        f"negative address in cpu {cpu_id} trace")
                if access.gap < 0:
                    raise TraceError(f"negative gap in cpu {cpu_id} trace")

    @property
    def num_cpus(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def accesses_for(self, cpu_id: int) -> Sequence[MemoryAccess]:
        return self.traces[cpu_id]

    def iter_flat(self) -> Iterator[tuple]:
        """Yield (cpu_id, access) pairs, CPU-major (analysis helper)."""
        for cpu_id, trace in enumerate(self.traces):
            for access in trace:
                yield cpu_id, access

    def truncated(self, max_per_cpu: int) -> "Workload":
        """A shortened copy, for quick tests (skips revalidation)."""
        return Workload(self.name + f"[:{max_per_cpu}]",
                        [trace[:max_per_cpu] if isinstance(trace,
                                                           ColumnarTrace)
                         else list(trace[:max_per_cpu])
                         for trace in self.traces],
                        dict(self.metadata), validate=False)
