"""Memory access traces.

A workload is one access trace per processor. Each access is
``(is_write, address, gap)`` where ``gap`` is the number of
non-memory instructions executed since the previous access (charged at
one cycle each on the 1 GHz core). Traces substitute for the paper's
Simics-executed SPLASH-2 binaries; the generators in
:mod:`repro.workloads` produce them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, NamedTuple, Sequence

from ..errors import TraceError


class MemoryAccess(NamedTuple):
    is_write: bool
    address: int
    gap: int


@dataclass
class Workload:
    """Named per-CPU access traces plus generation metadata."""

    name: str
    traces: List[List[MemoryAccess]]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.traces:
            raise TraceError("workload needs at least one CPU trace")
        for cpu_id, trace in enumerate(self.traces):
            for access in trace:
                if access.address < 0:
                    raise TraceError(
                        f"negative address in cpu {cpu_id} trace")
                if access.gap < 0:
                    raise TraceError(f"negative gap in cpu {cpu_id} trace")

    @property
    def num_cpus(self) -> int:
        return len(self.traces)

    @property
    def total_accesses(self) -> int:
        return sum(len(trace) for trace in self.traces)

    def accesses_for(self, cpu_id: int) -> Sequence[MemoryAccess]:
        return self.traces[cpu_id]

    def iter_flat(self) -> Iterator[tuple]:
        """Yield (cpu_id, access) pairs, CPU-major (analysis helper)."""
        for cpu_id, trace in enumerate(self.traces):
            for access in trace:
                yield cpu_id, access

    def truncated(self, max_per_cpu: int) -> "Workload":
        """A shortened copy, for quick tests."""
        return Workload(self.name + f"[:{max_per_cpu}]",
                        [list(trace[:max_per_cpu])
                         for trace in self.traces],
                        dict(self.metadata))
