"""Engine backend registry: scalar vs vector execution of ``run()``.

Two interchangeable engines execute a workload on an
:class:`~repro.smp.system.SmpSystem`:

- ``scalar`` — :func:`repro.smp.fastpath.run_fast`, the per-access
  python loop that is the bit-identical specification (DESIGN.md §6b);
- ``vector`` — :func:`repro.smp.vectorpath.run_vector`, which executes
  conflict-free hit windows as batched numpy operations and falls back
  to the scalar single-access semantics at every bus-visible boundary
  (DESIGN.md §6f). Requires numpy (the optional ``repro[vector]``
  extra); results are bit-identical to ``scalar``.

Selection is by :attr:`SystemConfig.engine` (``"auto"`` by default,
also the CLI ``--engine`` flag). ``auto`` resolves to ``vector`` when
numpy is importable and silently falls back to ``scalar`` otherwise;
the ``REPRO_ENGINE`` environment variable overrides the ``auto``
resolution (handy for CI matrices) but never an explicit config
choice. Asking for ``vector`` without numpy raises a
:class:`~repro.errors.SimulationError`.

Because backends are bit-identical, the sweep result cache
(:mod:`repro.sim.sweep`) deliberately excludes the engine choice from
its keys: results computed under either backend are interchangeable.
"""

from __future__ import annotations

import os
from typing import Callable, Tuple

from ..errors import ConfigError, SimulationError

#: concrete engine implementations, in documentation order
ENGINE_BACKENDS = ("scalar", "vector")

#: accepted values for SystemConfig.engine / --engine / REPRO_ENGINE
ENGINE_CHOICES = ("auto",) + ENGINE_BACKENDS


def numpy_available() -> bool:
    """True when the vector backend's only dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def default_backend() -> str:
    """What ``auto`` resolves to right now (env override included)."""
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if env and env != "auto":
        if env not in ENGINE_BACKENDS:
            raise ConfigError(
                f"REPRO_ENGINE must be one of {ENGINE_CHOICES}, "
                f"got {env!r}")
        return env
    return "vector" if numpy_available() else "scalar"


def resolve_backend(name: str = "auto") -> Tuple[str, Callable]:
    """Resolve an engine choice to ``(backend_name, run_callable)``.

    The callable has the engine signature ``run(system, workload) ->
    SimulationResult``. ``auto`` falls back to ``scalar`` silently;
    an explicit ``vector`` without numpy raises ``SimulationError``.
    """
    if name not in ENGINE_CHOICES:
        raise ConfigError(
            f"engine must be one of {ENGINE_CHOICES}, got {name!r}")
    explicit = name != "auto"
    if not explicit:
        name = default_backend()
    if name == "scalar":
        from .fastpath import run_fast
        return "scalar", run_fast
    try:
        from .vectorpath import run_vector
    except ImportError as error:
        if not explicit:  # auto: degrade gracefully
            from .fastpath import run_fast
            return "scalar", run_fast
        raise SimulationError(
            "engine backend 'vector' requires numpy, which is not "
            "installed (pip install 'repro[vector]'), or select "
            "--engine scalar/auto") from error
    return "vector", run_vector
