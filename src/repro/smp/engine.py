"""Engine backend registry: scalar vs vector execution of ``run()``.

Two interchangeable engines execute a workload on an
:class:`~repro.smp.system.SmpSystem`:

- ``scalar`` — :func:`repro.smp.fastpath.run_fast`, the per-access
  python loop that is the bit-identical specification (DESIGN.md §6b);
- ``vector`` — :func:`repro.smp.vectorpath.run_vector`, which executes
  conflict-free hit windows as batched numpy operations and falls back
  to the scalar single-access semantics at every bus-visible boundary
  (DESIGN.md §6f). Requires numpy (the optional ``repro[vector]``
  extra); results are bit-identical to ``scalar``.

Selection is by :attr:`SystemConfig.engine` (``"auto"`` by default,
also the CLI ``--engine`` flag). ``auto`` is *workload-aware*: when
numpy is importable it defers the choice to run time and probes the
workload with :func:`probe_backend` — a prefix sample per CPU
estimating whether conflict-free hit windows will actually form
(footprint vs. L2 capacity, line-reuse fraction). Miss-heavy
workloads, where the vector engine's window search is pure overhead
(the ``backends.miss_heavy`` regression in BENCH_engine.json), fall
back to the scalar engine. Without numpy ``auto`` silently resolves
to ``scalar``. The ``REPRO_ENGINE`` environment variable overrides
the ``auto`` resolution *including the probe* (handy for CI matrices
that need one exact backend) but never an explicit config choice.
Asking for ``vector`` without numpy raises a
:class:`~repro.errors.SimulationError`.

Because backends are bit-identical, the sweep result cache
(:mod:`repro.sim.sweep`) deliberately excludes the engine choice from
its keys: results computed under either backend are interchangeable.
"""

from __future__ import annotations

import os
from typing import Callable, Tuple

from ..errors import ConfigError, SimulationError

#: concrete engine implementations, in documentation order
ENGINE_BACKENDS = ("scalar", "vector")

#: accepted values for SystemConfig.engine / --engine / REPRO_ENGINE
ENGINE_CHOICES = ("auto",) + ENGINE_BACKENDS


def numpy_available() -> bool:
    """True when the vector backend's only dependency is importable."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


def default_backend() -> str:
    """The backend ``auto`` *prefers* right now (env override included).

    With numpy present the actual ``auto`` choice is per-workload
    (:func:`probe_backend`); this is the answer absent a workload —
    what ``--version`` reports and what observability reports fall
    back to when no system is attached.
    """
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if env and env != "auto":
        if env not in ENGINE_BACKENDS:
            raise ConfigError(
                f"REPRO_ENGINE must be one of {ENGINE_CHOICES}, "
                f"got {env!r}")
        return env
    return "vector" if numpy_available() else "scalar"


#: probe geometry (DESIGN.md §6f): accesses sampled per CPU, and the
#: two window-formation conditions the sample must meet for ``auto``
#: to pick the vector backend.
PROBE_SAMPLE = 4096
#: sampled distinct-line footprint must stay under this fraction of
#: L2 capacity — beyond it, capacity misses break windows apart
#: (ocean on a 64 KB L2 samples at ~1.1x; hit-heavy kernels at <0.05).
VECTOR_FOOTPRINT_RATIO = 0.5
#: fraction of sampled accesses that revisit an already-seen line —
#: a cheap stand-in for the hit rate the windows are made of (ocean
#: ~0.72, fft ~0.96; windows barely form below the high-80s).
VECTOR_MIN_REUSE = 0.85


def probe_backend(config, workload) -> str:
    """Pick ``scalar`` or ``vector`` for one workload, cheaply.

    The vector engine only wins when long conflict-free hit runs form
    (DESIGN.md §6f); on miss-heavy traffic its window search is pure
    overhead (~0.4x scalar on the ocean/64K bench point). This probe
    samples the first :data:`PROBE_SAMPLE` accesses of each CPU's
    trace and requires, for *every* CPU, that (a) the sampled
    distinct-line footprint fits in ``VECTOR_FOOTPRINT_RATIO`` of the
    L2 and (b) at least ``VECTOR_MIN_REUSE`` of sampled accesses
    revisit a line already seen. Cost is O(sample) set inserts —
    microseconds against runs that take fractions of a second.
    """
    from .trace import as_columns
    line_bytes = config.l2.line_bytes
    shift = line_bytes.bit_length() - 1
    footprint_budget = config.l2.size_bytes * VECTOR_FOOTPRINT_RATIO
    for cpu in range(workload.num_cpus):
        trace = workload.accesses_for(cpu)
        take = min(len(trace), PROBE_SAMPLE)
        if take == 0:
            continue
        _, addresses, _ = as_columns(trace)
        seen = set()
        add = seen.add
        for address in addresses[:take]:
            add(address >> shift)
        distinct = len(seen)
        if distinct * line_bytes > footprint_budget:
            return "scalar"      # capacity pressure: windows break up
        if take - distinct < VECTOR_MIN_REUSE * take:
            return "scalar"      # low reuse: not enough hits to batch
    return "vector"


def run_auto(system, workload):
    """The deferred ``auto`` engine: probe the workload, then run.

    Stamps the concrete choice on ``system.engine_backend`` so
    profile/report/trace output names the backend that actually
    executed. Degrades to scalar if the vector backend fails to
    import despite numpy appearing available.
    """
    if probe_backend(system.config, workload) == "vector":
        try:
            from .vectorpath import run_vector
        except ImportError:
            pass  # numpy present but vectorpath broken: use scalar
        else:
            system.engine_backend = "vector"
            return run_vector(system, workload)
    from .fastpath import run_fast
    system.engine_backend = "scalar"
    return run_fast(system, workload)


def resolve_backend(name: str = "auto") -> Tuple[str, Callable]:
    """Resolve an engine choice to ``(backend_name, run_callable)``.

    The callable has the engine signature ``run(system, workload) ->
    SimulationResult``. ``auto`` with numpy resolves to the deferred
    :func:`run_auto` dispatcher (name ``"auto"``): the scalar/vector
    decision happens per run, once the workload is known. ``auto``
    without numpy falls back to ``scalar`` silently, and a
    ``REPRO_ENGINE`` override pins ``auto`` to one concrete backend
    (no probe). An explicit ``vector`` without numpy raises
    ``SimulationError``.
    """
    if name not in ENGINE_CHOICES:
        raise ConfigError(
            f"engine must be one of {ENGINE_CHOICES}, got {name!r}")
    explicit = name != "auto"
    if not explicit:
        env = os.environ.get("REPRO_ENGINE", "").strip().lower()
        if env and env != "auto":
            if env not in ENGINE_BACKENDS:
                raise ConfigError(
                    f"REPRO_ENGINE must be one of {ENGINE_CHOICES}, "
                    f"got {env!r}")
            name = env  # pinned by env: bypass the probe
        elif numpy_available():
            return "auto", run_auto
        else:
            name = "scalar"
    if name == "scalar":
        from .fastpath import run_fast
        return "scalar", run_fast
    try:
        from .vectorpath import run_vector
    except ImportError as error:
        if not explicit:  # auto: degrade gracefully
            from .fastpath import run_fast
            return "scalar", run_fast
        raise SimulationError(
            "engine backend 'vector' requires numpy, which is not "
            "installed (pip install 'repro[vector]'), or select "
            "--engine scalar/auto") from error
    return "vector", run_vector
