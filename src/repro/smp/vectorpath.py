"""Vector engine backend: batched execution of conflict-free windows.

``run_vector`` executes the same simulation as the scalar engine
(:mod:`repro.smp.fastpath`) — bit-identical cycles, per-CPU cycles and
statistics — but advances whole *windows* of accesses per python-level
step instead of one access at a time. It is selected through the
backend registry (:mod:`repro.smp.engine`, ``--engine vector``/
``auto``) and is the only part of the simulator that requires numpy.

The window invariant (DESIGN.md §6f)
------------------------------------

An access is *provably bus-invisible* when, against the CPU's current
L2 tag state, it must complete without any bus transaction or remote
state change:

- its L2 line is resident and valid, **and**
- if it is a write, the line's state is MODIFIED or EXCLUSIVE (the
  silent E->M upgrade is a purely local transition).

A *window* is a maximal run of consecutive bus-invisible accesses of
one CPU. Inside a window the only L2 transitions are E->M, no line is
inserted or evicted in either cache level of any *other* CPU, and
nothing the window does is observable on the bus — so windows of
different CPUs commute, and only the *boundaries* (misses, upgrades,
writes to SHARED/OWNED lines, end of trace) must execute in the exact
global scheduler order, which the scalar engine's min-heap defines as
ascending ``(request_cycle, cpu)``.

Static L1 prediction and per-set perturbation watermarks
--------------------------------------------------------

Within windows the CPU's L1 sees exactly the per-set (set, tag)
sequence of the trace — *including* the boundary accesses, which fill
and evict L1 lines like any other access. L1 hit/miss classification
is therefore a pure function of the trace's run structure
(``NumpyColumns.window_statics``):

- an access continuing a same-tag run is a hit;
- at 2-way associativity, once a set has completed two runs its
  contents are exactly the tags of the last two runs (LRU with
  invalid-first eviction preserves this inductively), so a run start
  hits iff its tag equals the tag two runs back;
- at direct-mapped, a run start always misses.

The only events this static model cannot see are boundary-side L1
perturbations: *inclusion sweeps* (L1 lines invalidated because their
L2 parent was evicted or invalidated), misaligned miss fills, upgrade
paths (which never refill L1) and memprotect's direct node inserts.
Each such event raises a *perturbation watermark* on exactly the L1
sets it touched (``_Cpu.pert``, one position per set); an access whose
prediction relies on history at or before its set's watermark
(``hist[i] <= pert[set]``) is live-probed instead, after which the
in-window run structure re-establishes the static rules. Because a
prediction depends only on its own set's history, sets that no event
touched never probe. Probes that contradict the prediction patch the
window's precomputed timing (a sparse correction list). Timing itself
derives from whole-trace prefix-sum arrays
(``NumpyColumns.latency_cumsums``) plus a per-window clock delta —
detection materializes no per-window arrays unless a probe correction
forces it.

Execution model
---------------

Per round: each CPU holds a detected window. The earliest boundary key
``K = (request_cycle, cpu)`` is located and executed through the exact
scalar single-access semantics (shared ``SmpSystem._execute_miss`` /
``_execute_upgrade`` slow path, so coherence, bus, SENSS, memprotect
and fault layers observe identical transactions in identical order).

Commitment is split by what other CPUs can actually observe:

- **advance** (before every boundary): every other window's prefix of
  accesses ordered before ``K`` is marked committed, and the silent
  E->M upgrades of its written lines are applied — the only in-window
  effect a remote snoop can see.
- **commit** (once per window, when it ends): the last touch of each
  L1 set / L2 line lands (located with whole-trace next-occurrence
  arrays), and clock / LRU ticks / hit counters settle from the
  prefix sums. Deferring this is safe because no remote event reads
  L1 state or LRU ages — with one exception, below.

The engine wraps the three ``MesiProtocol`` bus entry points,
``CacheHierarchy.fill`` and ``CacheHierarchy._enforce_inclusion`` for
the duration of the run. The wrappers give it three hooks:

- **pre-body**: an *invalidating* event (fetch-exclusive / upgrade)
  whose line maps into an L1 set some standing window touches forces
  that window to materialize its committed prefix *before* the
  protocol body runs, so the inclusion sweep acts on post-access
  contents exactly as in the scalar order.
- **sweep**: every ``_enforce_inclusion`` call raises the swept L1
  sets' perturbation watermarks to the owner's current position.
- **post-body** (``_fixup``): every line the event touched (requester
  fetch, remote downgrades/invalidations, fill victims) is re-probed,
  per-access safety is repaired at exactly the positions referencing
  it (via cached per-line position lists), and any standing window
  with a flipped position is *truncated* at the first flip — the flip
  position becomes the window's new boundary, everything classified
  before it stays valid, and nothing is ever re-detected.

Equivalence is pinned by tests/smp/test_engine_backends.py (golden
replays + randomized cross-backend comparison) and by running the
tier-1 suite under both backends in CI.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort

import numpy

from ..cache.cache import CacheLine
from ..cache.mesi import MesiState
from ..errors import SimulationError
from .metrics import SimulationResult
from .trace import Workload, numpy_columns

_M = MesiState.MODIFIED
_E = MesiState.EXCLUSIVE
_S = MesiState.SHARED
_I = MesiState.INVALID

#: safety-classification granule (accesses per np.unique batch)
_CHUNK = 2048
#: window length cap: bounds classification work per detection
_CAP = 4096
#: below this window length, plain-python loops beat numpy dispatch
_SMALL = 64

# window boundary kinds
_END, _SLOW, _CAPPED = 0, 1, 2


class _Window:
    """One detected conflict-free window and its deferred accounting."""

    __slots__ = ("s", "e", "length", "kind", "bkey", "delta",
                 "corr", "shadows", "wpos_i", "wpos_hi", "applied",
                 "next_pend", "base_clock", "base1", "base2")

    def __init__(self, s, e, kind, bkey, delta, corr, shadows,
                 wpos_i, wpos_hi, next_pend, base_clock, base1, base2):
        self.s = s                    # [s, e) trace index range
        self.e = e
        self.length = e - s
        self.kind = kind              # _END / _SLOW / _CAPPED
        self.bkey = bkey              # (request_cycle, cpu) or None
        self.delta = delta            # request cycle i = pend0[i]+delta
        self.corr = corr              # [(pos, lat delta, hit delta)];
                                      # each shifts pends strictly after
                                      # pos (see _pend)
        self.shadows = shadows        # L1 set -> probe snapshot/action
        self.wpos_i = wpos_i          # next unapplied index, wpos_list
        self.wpos_hi = wpos_hi        # first write index at/past e
        self.applied = 0              # committed prefix length
        self.next_pend = next_pend
        self.base_clock = base_clock  # clock/ticks at window start
        self.base1 = base1
        self.base2 = base2


class _Cpu:
    """Per-CPU engine state: columns, cache internals, window, safety."""

    __slots__ = ("id", "n", "cursor", "clock", "window",
                 "pert", "pert_np",
                 "cols", "l1", "l2", "l1_sets", "l1_nsets", "l1_assoc",
                 "l1_shift", "lat1", "l2_sets", "l2_nsets", "l2_shift",
                 "lat2", "writes_l", "gaps_l", "set1_l", "tag1_l",
                 "block2_l", "set1_np", "gaps_np", "writes_b",
                 "runp_l", "runp2_l", "frun_l", "hist_np", "hist_l",
                 "stat_l", "cum_lat_l", "cum_hit_l",
                 "pend0_np", "pend0_l",
                 "next1", "next1_l", "next2", "next2_l", "next12_l",
                 "wpos_list", "safe",
                 "safe_upto", "unsafe", "entries", "block_index",
                 "pos_cache", "set_index", "setpos_cache",
                 "n_l1", "n_l2", "n_miss", "n_upg", "fill_line")

    def __init__(self, system, cpu_id, trace):
        columns = numpy_columns(trace)
        hierarchy = system.hierarchies[cpu_id]
        l1, l2 = hierarchy.l1, hierarchy.l2
        self.id = cpu_id
        self.n = columns.length
        self.cursor = 0
        self.clock = 0
        self.window = None
        self.cols = columns
        self.l1 = l1
        self.l2 = l2
        self.l1_sets = l1._sets
        self.l1_nsets = l1._num_sets
        self.l1_assoc = l1._assoc
        self.l1_shift = l1._offset_bits
        self.lat1 = l1.config.hit_latency
        self.l2_sets = l2._sets
        self.l2_nsets = l2._num_sets
        self.l2_shift = l2._offset_bits
        self.lat2 = l2.config.hit_latency
        self.writes_l, self.gaps_l = columns.base_lists()
        self.writes_b = columns.writes_bool
        self.gaps_np = columns.gaps
        self.block2_l, _, _ = columns.derived_lists(self.l2_shift,
                                                    self.l2_nsets)
        _, self.set1_np, _ = columns.derived(self.l1_shift,
                                             self.l1_nsets)
        _, self.set1_l, self.tag1_l = columns.derived_lists(
            self.l1_shift, self.l1_nsets)
        assoc = self.l1_assoc
        self.hist_np, _, _ = columns.window_statics(
            self.l1_shift, self.l1_nsets, assoc)
        self.hist_l, self.stat_l, self.frun_l = \
            columns.window_statics_lists(
                self.l1_shift, self.l1_nsets, assoc)
        self.cum_lat_l, self.cum_hit_l = columns.latency_cumsums_lists(
            self.l1_shift, self.l1_nsets, assoc, self.lat1, self.lat2)
        self.pend0_np, self.pend0_l = columns.request_times(
            self.l1_shift, self.l1_nsets, assoc, self.lat1, self.lat2)
        runs = columns.run_statics_lists(self.l1_shift, self.l1_nsets)
        self.runp_l = runs[2]
        self.runp2_l = runs[3]
        self.next1 = columns.next_set_occurrence(self.l1_shift,
                                                 self.l1_nsets)
        self.next1_l = columns.next_set_occurrence_list(self.l1_shift,
                                                        self.l1_nsets)
        self.next2 = columns.next_block_occurrence(self.l2_shift)
        self.next2_l = columns.next_block_occurrence_list(self.l2_shift)
        self.wpos_list = columns.write_positions_list()
        # Per-L1-set perturbation watermarks: the last trace position
        # whose boundary-time effects this set's static predictions
        # cannot see. Probe exactly the positions whose relied-on
        # history is at or before their set's watermark (-1 = never
        # perturbed: only hist == -1 positions probe).
        self.pert = [-1] * self.l1_nsets
        self.pert_np = numpy.full(self.l1_nsets, -1, dtype=numpy.int64)
        self.next12_l = numpy.maximum(self.next1, self.next2).tolist()
        self.safe = [False] * self.n
        self.safe_upto = 0
        self.unsafe = []             # classified-unsafe positions, asc
        self.entries = {}            # L2 block -> CacheLine (or None)
        self.block_index = None      # lazy sorted block position index
        self.pos_cache = {}          # L2 block -> positions list
        self.set_index = None        # lazy sorted L1-set position index
        self.setpos_cache = {}       # L1 set -> positions list
        self.n_l1 = 0
        self.n_l2 = 0
        self.n_miss = 0
        self.n_upg = 0
        self.fill_line = -1          # boundary's own expected fill


_MISSING = object()


def _perturb(c, set1, pos):
    """Raise an L1 set's perturbation watermark to trace position pos.

    A static prediction at position ``i`` is trusted only while the
    history it relies on (``hist[i]``) is *newer* than every event that
    touched its L1 set outside the run model; predictions with
    ``hist[i] <= pert[set]`` are live-probed instead.
    """
    if pos > c.pert[set1]:
        c.pert[set1] = pos
        c.pert_np[set1] = pos


def _probe_l2(c, block):
    """Current L2 entry for a block, LRU untouched (like snoops)."""
    ways = c.l2_sets.get(block % c.l2_nsets)
    if ways:
        tag = block // c.l2_nsets
        for line in ways:
            if line.tag == tag and line.state is not _I:
                return line
    return None


def _l2_line_any(c, block):
    """The L2 way holding a block's tag, valid *or invalid*."""
    ways = c.l2_sets.get(block % c.l2_nsets)
    if ways:
        tag = block // c.l2_nsets
        for line in ways:
            if line.tag == tag:
                return line
    return None


def _classify_chunk(c):
    """Extend the classified region by one chunk; returns new bound.

    Safety against *current* L2 state: one python tag probe per unique
    line in the chunk, broadcast to per-access (read, write) safety
    through ``np.unique``'s inverse index. Unsafe positions extend the
    CPU's sorted ``unsafe`` list (chunks only ever grow the region, so
    plain appends keep it sorted).
    """
    lo = c.safe_upto
    hi = min(lo + _CHUNK, c.n)
    segment = c.cols.addresses[lo:hi] >> c.l2_shift
    uniq, inverse = numpy.unique(segment, return_inverse=True)
    count = uniq.shape[0]
    ok_read = numpy.empty(count, dtype=numpy.bool_)
    ok_write = numpy.empty(count, dtype=numpy.bool_)
    entries = c.entries
    missing = _MISSING
    for j, block in enumerate(uniq.tolist()):
        # ``entries`` is kept coherent for every known block (_fixup
        # re-probes each event-touched line), so recurring blocks skip
        # the tag scan.
        entry = entries.get(block, missing)
        if entry is missing:
            entry = _probe_l2(c, block)
            entries[block] = entry
        if entry is None:
            ok_read[j] = False
            ok_write[j] = False
        else:
            ok_read[j] = True
            state = entry.state
            ok_write[j] = state is _M or state is _E
    writes = c.writes_b[lo:hi]
    chunk_safe = ok_read[inverse] & (ok_write[inverse] | ~writes)
    c.safe[lo:hi] = chunk_safe.tolist()
    bad = (~chunk_safe).nonzero()[0]
    if bad.size:
        c.unsafe.extend((lo + bad).tolist())
    c.safe_upto = hi
    return hi


def _first_action(c, set1, tag1, pos):
    """Snapshot one live L1 set and compute a run-start's event on it.

    Returns the ``[snapshot, action, pos]`` shadow used by both the
    live probes and the commit-time stitch: action ``(0, line)`` = hit
    an existing line, ``(1, line)`` = revived an invalid same-tag way,
    ``(2, fresh, victim)`` = inserted a new line evicting ``victim``
    (or filling an invalid/empty way when ``victim`` is None). ``pos``
    is the trace position the action belongs to — a window truncated
    below it must ignore the shadow (the event never happened).
    """
    real = c.l1_sets.get(set1)
    snap = list(real) if real else []
    for line in snap:
        if line.tag == tag1 and line.state is not _I:
            return [snap, (0, line), pos]
    for line in snap:
        if line.tag == tag1:
            return [snap, (1, line), pos]
    victim = None
    if len(snap) >= c.l1_assoc:
        victim = snap[0]
        victim_key = (victim.state is not _I, victim.last_used)
        for line in snap:
            key = (line.state is not _I, line.last_used)
            if key < victim_key:
                victim = line
                victim_key = key
    return [snap, (2, CacheLine(tag1, _S, 0), victim), pos]


def _probe_l1(c, w, i, set1, tag1):
    """Live-probe one dynamic position; returns the L1 hit flag.

    Dynamic positions are the accesses whose static prediction relies
    on history at or before their set's perturbation watermark — at
    most each
    set's first in-window touch and (at 2-way) the second in-window
    run start. The first probe snapshots the live set and records the
    first run's action for the commit-time stitch rebuild; the second
    only needs membership against the post-first-run tags. At
    associativity > 2 every run start probes against an evolving
    per-set value shadow.
    """
    shadows = w.shadows
    shadow = shadows.get(set1)
    if c.l1_assoc > 2:
        if shadow is None:
            real = c.l1_sets.get(set1) or ()
            snap = [(line.tag, line.state is not _I, line.last_used,
                     line) for line in real]
            shadow = shadows[set1] = [snap,
                                      [list(entry[:3]) for entry in snap]]
        ways = shadow[1]
        lu = w.base1 + (i - w.s + 1)
        for way in ways:
            if way[0] == tag1 and way[1]:
                way[2] = lu
                return True
        for way in ways:
            if way[0] == tag1:
                way[1] = True
                way[2] = lu
                return False
        if len(ways) >= c.l1_assoc:
            evict = ways[0]
            evict_key = (evict[1], evict[2])
            for way in ways:
                key = (way[1], way[2])
                if key < evict_key:
                    evict = way
                    evict_key = key
            ways.remove(evict)
        ways.append([tag1, True, lu])
        return False

    if shadow is None:
        # First in-window probe of the set: the run's event, recorded
        # against a snapshot of the live (unmaterialized) set.
        shadow = shadows[set1] = _first_action(c, set1, tag1, i)
        return shadow[1][0] == 0
    snap, action = shadow[0], shadow[1]
    # Second in-window run start: membership in the post-first-run
    # tag set (the first run's line is resident whatever its event
    # was). Tags are unique within a set, so scan instead of building
    # a set object.
    kind = action[0]
    if kind != 0 and action[1].tag == tag1:
        return True                   # the revived/inserted line
    if kind == 2 and action[2] is not None and action[2].tag == tag1:
        return False                  # evicted by the first run
    for line in snap:
        if line.tag == tag1:
            return line.state is not _I
    return False


class _WindowStub:
    """Minimal stand-in handed to ``_probe_l1`` during detection."""

    __slots__ = ("s", "base1", "shadows")

    def __init__(self, s, base1, shadows):
        self.s = s
        self.base1 = base1
        self.shadows = shadows


def _detect(c):
    """Detect the next window from the cursor; sets ``c.window``."""
    cursor = c.cursor
    n = c.n
    safe = c.safe
    unsafe = c.unsafe
    lim = cursor + _CAP
    bound = None                      # first unsafe index, if any
    i = bisect_left(unsafe, cursor)
    entries = c.entries
    block2_l = c.block2_l
    writes_l = c.writes_l
    # Safe-making flips are lazy (see _fixup): each unsafe position is
    # revalidated against current L2 state before bounding on it.
    # Consecutive unsafe positions usually share a block (the run behind
    # one future miss), so the probe verdict is memoized per block; no
    # event can change ``entries`` mid-detect, and _classify_chunk only
    # adds blocks, so a memoized verdict never goes stale here.
    # Resolved positions stay in ``unsafe`` (the cursor bisect skips
    # them next time) — deleting mid-list is O(len) per hit.
    memo_block = -1
    ok_read = ok_write = False
    while True:
        while i < len(unsafe):
            p = unsafe[i]
            if safe[p]:               # stale: flipped back to safe
                i += 1
                continue
            b = block2_l[p]
            if b != memo_block:
                memo_block = b
                entry = entries[b]
                ok_read = entry is not None
                ok_write = ok_read and (entry.state is _M
                                        or entry.state is _E)
            if ok_write or (ok_read and not writes_l[p]):
                safe[p] = True
                i += 1
                continue
            bound = p
            break
        if bound is not None or c.safe_upto >= n or c.safe_upto >= lim:
            break
        _classify_chunk(c)
    if bound is not None and bound <= lim:
        e, kind = bound, _SLOW
    elif n <= lim:
        e, kind = n, _END
    else:
        e, kind = lim, _CAPPED

    s = cursor
    base_clock = c.clock
    shadows = {}
    corr = []
    cum_lat_l = c.cum_lat_l
    delta = base_clock - cum_lat_l[s]
    end_clock = cum_lat_l[e] + delta
    pert = c.pert
    hist_l = c.hist_l
    set1_l = c.set1_l
    # Candidate positions: the static prediction relies on history no
    # newer than the set's last perturbation. Watermarks precede the
    # window, so in-run accesses with an in-window predecessor never
    # qualify — candidates are each set's leading touches only.
    if e - s <= _SMALL:
        cand = [i for i in range(s, e)
                if hist_l[i] < s and hist_l[i] <= pert[set1_l[i]]]
    else:
        hist_w = c.hist_np[s:e]
        low = (hist_w < s).nonzero()[0]
        if low.size:
            idxs = low + s
            sel = c.hist_np[idxs] <= c.pert_np[c.set1_np[idxs]]
            cand = idxs[sel].tolist()
        else:
            cand = []
    if cand:
        tag1_l = c.tag1_l
        stat_l = c.stat_l
        runp2_l = c.runp2_l
        two_way = c.l1_assoc == 2
        lat_gap = c.lat2 - c.lat1
        stub = _WindowStub(s, c.l1._tick, shadows)
        for i in cand:
            if two_way and runp2_l[i] >= s:
                # Run start whose last-two-runs history executes
                # entirely in-window: both runs leave their lines
                # resident and valid whatever the pre-window set held,
                # so the static prediction is exact — no probe.
                continue
            hit = _probe_l1(c, stub, i, set1_l[i], tag1_l[i])
            if hit != stat_l[i]:
                if hit:
                    dlat, dhit = -lat_gap, 1
                else:
                    dlat, dhit = lat_gap, -1
                end_clock += dlat
                corr.append((i, dlat, dhit))
    wpos_list = c.wpos_list
    wlo = bisect_left(wpos_list, s)
    whi = bisect_left(wpos_list, e)
    next_pend = c.pend0_l[s] + delta if e > s else None
    bkey = None if kind == _END else (end_clock + c.gaps_l[e], c.id)
    c.window = _Window(s, e, kind, bkey, delta, corr, shadows,
                       wlo, whi, next_pend, base_clock, c.l1._tick,
                       c.l2._tick)


def _rebuild_set(c, w, set1, ilast):
    """Commit one touched L1 set's contents at in-window cutoff.

    ``ilast`` is the set's last committed access. With two or more
    in-window runs completed the last-two-runs rule rebuilds the set
    wholesale (valid L1 lines are always SHARED, so fresh lines are
    indistinguishable from touched ones). Otherwise the first run's
    action — probe-recorded, or synthesized now against the live set,
    which no one touched since the window started — is stitched onto
    it; a run that started before the window moves only its line's
    LRU age.
    """
    s = w.s
    base1 = w.base1
    tag1_l = c.tag1_l
    lu1 = base1 + (ilast - s + 1)
    assoc = c.l1_assoc
    if assoc > 2:
        _replay_set(c, w, set1, ilast)
        return
    j = c.runp_l[ilast]
    if j >= s:
        tag = tag1_l[ilast]
        if assoc == 2:
            c.l1_sets[set1] = [
                CacheLine(tag1_l[j], _S, base1 + (j - s + 1)),
                CacheLine(tag, _S, lu1)]
        else:
            c.l1_sets[set1] = [CacheLine(tag, _S, lu1)]
        return
    shadow = w.shadows.get(set1)
    if shadow is not None and shadow[2] > ilast:
        # The probe that built this shadow sits beyond the commit
        # cutoff (the window was truncated below it): its event never
        # happened, so the committed prefix saw only unprobed touches.
        shadow = None
    if shadow is None:
        rs = c.frun_l[ilast]
        if rs < s:
            # Single straddling run, every access an unprobed hit: the
            # line is resident (no sweep since before the window), so
            # only its LRU age moves.
            tag = tag1_l[ilast]
            for line in c.l1_sets.get(set1) or ():
                if line.tag == tag and line.state is not _I:
                    line.last_used = lu1
                    return
            return
        shadow = _first_action(c, set1, tag1_l[rs], rs)
    snap, action = shadow[0], shadow[1]
    kind = action[0]
    if kind == 0:                     # first run hit an existing line
        action[1].last_used = lu1
    elif kind == 1:                   # revived an invalid same-tag way
        line = action[1]
        line.state = _S
        line.last_used = lu1
    else:                             # inserted (evicting `victim`)
        fresh = action[1]
        fresh.last_used = lu1
        victim = action[2]
        ways = [line for line in snap if line is not victim]
        ways.append(fresh)
        c.l1_sets[set1] = ways


def _replay_set(c, w, set1, ilast):
    """Exact per-access replay of one set (associativity > 2 only).

    The last-two-runs rule needs associativity <= 2; wider L1 sets are
    committed by replaying the set's in-window positions against the
    value snapshot taken at first probe. A set with no shadow saw only
    one straddling run of unprobed hits: its line just ages. O(window
    ∩ set) per commit, acceptable for the non-default geometry.
    """
    s = w.s
    base1 = w.base1
    shadow = w.shadows.get(set1)
    if shadow is None:
        tag = c.tag1_l[ilast]
        for line in c.l1_sets.get(set1) or ():
            if line.tag == tag and line.state is not _I:
                line.last_used = base1 + (ilast - s + 1)
                return
        return
    positions = (c.set1_np[s:ilast + 1] == set1).nonzero()[0]
    snap = shadow[0]
    entries = [[tag, valid, lu, line] for tag, valid, lu, line in snap]
    tag1_l = c.tag1_l
    assoc = c.l1_assoc
    for rel in positions.tolist():
        i = s + rel
        tag = tag1_l[i]
        lu = base1 + rel + 1
        hit = None
        for entry in entries:
            if entry[0] == tag and entry[1]:
                hit = entry
                break
        if hit is not None:
            hit[2] = lu
            continue
        revived = None
        for entry in entries:
            if entry[0] == tag:
                revived = entry
                break
        if revived is not None:
            revived[1] = True
            revived[2] = lu
            continue
        if len(entries) >= assoc:
            evict = entries[0]
            evict_key = (evict[1], evict[2])
            for entry in entries:
                key = (entry[1], entry[2])
                if key < evict_key:
                    evict = entry
                    evict_key = key
            entries.remove(evict)
        entries.append([tag, True, lu, None])
    ways = []
    for tag, valid, lu, line in entries:
        if line is None:
            line = CacheLine(tag, _S, lu)
        else:
            line.last_used = lu
            if valid and line.state is _I:
                line.state = _S
        ways.append(line)
    c.l1_sets[set1] = ways


def _pend(c, w, p):
    """Request cycle of absolute trace position ``p`` inside ``w``."""
    v = c.pend0_l[p] + w.delta
    for pos, dl, _ in w.corr:
        if pos < p:
            v += dl
        else:
            break
    return v


def _search_pend(c, w, cycle, right):
    """Relative index of the first in-window access requested at or
    after ``cycle`` (``right``: strictly after), at least ``applied``.

    Equivalent to a searchsorted over the window's corrected request
    cycles, computed segment-wise against the shared ``pend0`` prefix
    array — corrections partition the window into runs of constant
    offset, and request cycles stay strictly increasing (a negative
    correction is always smaller than the static latency it replaces).
    """
    pend0_l = c.pend0_l
    s = w.s
    lo = s + w.applied
    end = s + w.length
    cut = bisect_right if right else bisect_left
    target = cycle - w.delta
    if not w.corr:
        return cut(pend0_l, target, lo, end) - s
    off = 0
    for pos, dl, _ in w.corr:
        seg_end = pos + 1             # dl applies strictly after pos
        if seg_end > lo:
            hi = seg_end if seg_end < end else end
            k = cut(pend0_l, target - off, lo, hi)
            if k < hi:
                return k - s
            lo = hi
            if lo >= end:
                return w.length
        off += dl
    return cut(pend0_l, target - off, lo, end) - s


def _advance(c, w, k):
    """Mark the prefix up to relative index ``k`` committed.

    Applies only the remotely-observable in-window effect — the silent
    E->M upgrade of each written line — and moves the commit point.
    Everything else (L1 contents, L2 LRU, clock, stats) is invisible to
    other CPUs and lands once, in ``_commit``.
    """
    i = w.wpos_i
    hi_idx = w.wpos_hi
    if i < hi_idx:
        hi = w.s + k
        wpos = c.wpos_list
        entries = c.entries
        block2_l = c.block2_l
        while i < hi_idx:
            p = wpos[i]
            if p >= hi:
                break
            entries[block2_l[p]].state = _M
            i += 1
        w.wpos_i = i
    w.applied = k
    if k >= w.length:
        w.next_pend = None
    elif w.corr:
        w.next_pend = _pend(c, w, w.s + k)
    else:
        w.next_pend = c.pend0_l[w.s + k] + w.delta


def _commit(c, w):
    """Materialize a finished window ``[s, s + length)`` and retire it.

    ``length`` may have been truncated below the detected extent; the
    next-occurrence arrays locate each touched L1 set's / L2 line's
    last committed access for whatever the final cutoff is.
    """
    k = w.length
    s = w.s
    if k:
        if w.applied < k:
            _advance(c, w, k)
        e = s + k
        set1_l = c.set1_l
        block2_l = c.block2_l
        entries = c.entries
        base2 = w.base2
        if k <= _SMALL:
            next1_l = c.next1_l
            next2_l = c.next2_l
            next12_l = c.next12_l
            for i in range(s, e):
                if next12_l[i] < e:   # not the last window touch of
                    continue          # its L1 set or its L2 line
                if next1_l[i] >= e:
                    _rebuild_set(c, w, set1_l[i], i)
                if next2_l[i] >= e:
                    block = block2_l[i]
                    entry = entries[block]
                    if entry is None:
                        # The line was invalidated after the window's
                        # last (committed) touch of it: the scalar
                        # order wrote the LRU age first, on the object
                        # that is now invalid but still resident. Find
                        # it by tag, valid or not.
                        entry = _l2_line_any(c, block)
                        if entry is None:
                            continue
                    entry.last_used = base2 + (i - s) + 1
        else:
            for rel in (c.next1[s:e] >= e).nonzero()[0].tolist():
                i = s + rel
                _rebuild_set(c, w, set1_l[i], i)
            for rel in (c.next2[s:e] >= e).nonzero()[0].tolist():
                block = block2_l[s + rel]
                entry = entries[block]
                if entry is None:
                    entry = _l2_line_any(c, block)
                    if entry is None:
                        continue
                entry.last_used = base2 + rel + 1
        c.l1._tick = w.base1 + k
        c.l2._tick = base2 + k
        dlat = 0
        dhit = 0
        for pos, dl, dh in w.corr:
            if pos < e:
                dlat += dl
                dhit += dh
        cum_lat_l = c.cum_lat_l
        cum_hit_l = c.cum_hit_l
        hits = cum_hit_l[e] - cum_hit_l[s] + dhit
        c.clock = w.base_clock + cum_lat_l[e] - cum_lat_l[s] + dlat
        c.n_l1 += hits
        c.n_l2 += k - hits
    c.cursor = s + k
    c.window = None


def _truncate(c, w, p):
    """Shrink a standing window so position ``p`` becomes its boundary.

    Called when an external event flipped position ``p`` (>= the
    committed prefix) to unsafe, or re-routed through ``_commit`` when
    an invalidation swept a touched L1 set. The prefix classification
    stays valid; last touches are located at commit from whatever the
    final cutoff is.
    """
    k = p - w.s
    w.e = p
    w.length = k
    w.kind = _SLOW
    w.bkey = (_pend(c, w, p) if w.corr
              else c.pend0_l[p] + w.delta, c.id)
    if w.applied >= k:
        w.next_pend = None


def _positions(c, block):
    """All trace positions referencing an L2 block, ascending.

    Backed by the memoized stable argsort of the block column, then
    cached per block as a plain list (the lookups are trace-static and
    hot lines recur across fixups).
    """
    positions = c.pos_cache.get(block)
    if positions is None:
        index = c.block_index
        if index is None:
            index = c.block_index = c.cols.block_order(c.l2_shift)
        order, sorted_blocks = index
        lo = int(sorted_blocks.searchsorted(block, side="left"))
        hi = int(sorted_blocks.searchsorted(block, side="right"))
        positions = c.pos_cache[block] = order[lo:hi].tolist()
    return positions


def _touches_set(c, w, set1):
    """True when window ``w`` has an access to L1 set ``set1``."""
    positions = c.setpos_cache.get(set1)
    if positions is None:
        index = c.set_index
        if index is None:
            order = c.cols.set_order(c.l1_shift, c.l1_nsets)
            index = c.set_index = (order, c.set1_np[order])
        order, sorted_sets = index
        lo = int(sorted_sets.searchsorted(set1, side="left"))
        hi = int(sorted_sets.searchsorted(set1, side="right"))
        positions = c.setpos_cache[set1] = order[lo:hi].tolist()
    a = bisect_left(positions, w.s)
    return a < len(positions) and positions[a] < w.e


def _force_commit_overlaps(cpus, line_address, requester):
    """Pre-body hook for invalidating bus events.

    The protocol body will invalidate ``line_address`` in remote L2s
    and sweep the covering L1 sets (inclusion). Any standing window
    that touches one of those sets must materialize its committed
    prefix *first* so the sweep acts on post-access contents — the
    scalar engine's order. The remainder of the window is discarded
    (its L1 classification is stale); re-detection resumes from the
    commit point with the swept sets' watermarks raised by the sweep
    hook.
    """
    sample = cpus[0]
    ratio = 1 << (sample.l2_shift - sample.l1_shift)
    block1 = line_address >> sample.l1_shift
    for c in cpus:
        if c.id == requester:
            continue
        w = c.window
        if w is None:
            continue
        nsets = c.l1_nsets
        for offset in range(ratio):
            if _touches_set(c, w, (block1 + offset) % nsets):
                if w.applied < w.length:
                    _truncate(c, w, w.s + w.applied)
                _commit(c, w)
                break


def _fixup(cpus, recorded):
    """Reconcile standing classifications with one event's effects.

    ``recorded`` lists the line addresses the boundary event touched
    (requester fetch/upgrade, remote downgrades/invalidations, fill
    victims). For every CPU whose classified region contains such a
    line: re-probe it and recompute the per-access safety at exactly
    the positions that reference it. A standing window with a position
    flipped to unsafe is truncated there — the flip becomes its new
    boundary and executes through the always-correct scalar path.
    """
    sample = cpus[0]
    l2_shift = sample.l2_shift
    for line_address in dict.fromkeys(recorded):
        block = line_address >> l2_shift
        for c in cpus:
            if block not in c.entries:
                continue
            entry = _probe_l2(c, block)
            c.entries[block] = entry
            w = c.window
            lo = w.s + w.applied if w is not None else c.cursor
            hi = c.safe_upto
            if lo >= hi:
                continue
            if entry is not None and (entry.state is _M
                                      or entry.state is _E):
                # The event only made positions *safer*; marks are
                # repaired lazily when detection next meets them.
                continue
            positions = _positions(c, block)
            a = bisect_left(positions, lo)
            b = bisect_left(positions, hi)
            if a == b:
                continue
            safe = c.safe
            unsafe = c.unsafe
            first_flip = None
            if entry is None:
                for p in positions[a:b]:
                    if safe[p]:
                        safe[p] = False
                        insort(unsafe, p)
                        if first_flip is None:
                            first_flip = p
            else:
                # Shared state: writes flipped unsafe now (a standing
                # window may contain them); reads turn safe lazily.
                writes_l = c.writes_l
                for p in positions[a:b]:
                    if writes_l[p] and safe[p]:
                        safe[p] = False
                        insort(unsafe, p)
                        if first_flip is None:
                            first_flip = p
            if (w is not None and first_flip is not None
                    and first_flip < w.e):
                _truncate(c, w, first_flip)


def _execute_boundary(system, c, pending):
    """One access through the exact scalar semantics, on live state."""
    i = c.cursor
    is_write = c.writes_l[i] != 0
    block2 = c.block2_l[i]
    entry = None
    ways2 = c.l2_sets.get(block2 % c.l2_nsets)
    if ways2:
        tag2 = block2 // c.l2_nsets
        for line in ways2:
            if line.tag == tag2 and line.state is not _I:
                entry = line
                break
    if entry is None:
        c.n_miss += 1
        c.fill_line = block2 << c.l2_shift
        clock = system._execute_miss(c.id, pending, is_write,
                                     c.fill_line)
        c.fill_line = -1
        # The fill refilled L1 with the *L2-aligned* line. When the
        # accessed address sits past the L2 line's first L1 block,
        # this access did not leave its own L1 block resident (a
        # neighboring set got a foreign line instead) — the one L1
        # effect the static run model cannot represent. Treat it like
        # a sweep: predictions relying on either touched set get
        # live-probed.
        fblock1 = block2 << (c.l2_shift - c.l1_shift)
        if fblock1 != c.tag1_l[i] * c.l1_nsets + c.set1_l[i]:
            _perturb(c, c.set1_l[i], i)
            _perturb(c, fblock1 % c.l1_nsets, i)
        return clock
    l2 = c.l2
    tick2 = l2._tick + 1
    l2._tick = tick2
    entry.last_used = tick2
    if is_write:
        state = entry.state
        if state is _M or state is _E:
            entry.state = _M          # silent E->M upgrade
        else:
            c.n_upg += 1
            clock = system._execute_upgrade(c.id, pending,
                                            block2 << c.l2_shift)
            # The upgrade path never touches L1 (no refill, no LRU
            # tick) — another boundary effect outside the static run
            # model; probe anything in this set that relies on it.
            _perturb(c, c.set1_l[i], i)
            return clock
    l1 = c.l1
    set1 = c.set1_l[i]
    tag1 = c.tag1_l[i]
    ways1 = c.l1_sets.get(set1)
    tick1 = l1._tick + 1
    l1._tick = tick1
    hit = None
    if ways1:
        for line in ways1:
            if line.tag == tag1 and line.state is not _I:
                hit = line
                break
    if hit is not None:
        hit.last_used = tick1
        c.n_l1 += 1
        return pending + c.lat1
    if ways1 is None:
        ways1 = c.l1_sets[set1] = []
    revived = False
    for line in ways1:
        if line.tag == tag1:
            line.state = _S
            line.last_used = tick1
            revived = True
            break
    if not revived:
        if len(ways1) >= c.l1_assoc:
            evict = None
            evict_key = None
            for line in ways1:
                key = (line.state is not _I, line.last_used)
                if evict_key is None or key < evict_key:
                    evict_key = key
                    evict = line
            ways1.remove(evict)
        ways1.append(CacheLine(tag1, _S, tick1))
    c.n_l2 += 1
    return pending + c.lat2


def _run_rounds(system, cpus, recorded):
    """The round loop; see the module docstring's execution model."""
    while True:
        for c in cpus:
            if c.window is None and c.cursor < c.n:
                _detect(c)
        boundary_key = None
        boundary_cpu = None
        for c in cpus:
            w = c.window
            if w is not None and w.bkey is not None and (
                    boundary_key is None or w.bkey < boundary_key):
                boundary_key = w.bkey
                boundary_cpu = c
        if boundary_key is None:
            # Every remaining window runs to its trace end: no more
            # bus-visible events anywhere, commit everything.
            for c in cpus:
                if c.window is not None:
                    _commit(c, c.window)
            return
        cycle, owner = boundary_key
        for c in cpus:
            w = c.window
            if w is None or c is boundary_cpu:
                continue
            pend = w.next_pend
            if pend is None or pend > cycle or (pend == cycle
                                                and c.id > owner):
                continue
            k = _search_pend(c, w, cycle, c.id < owner)
            if k > w.applied:
                _advance(c, w, k)
        w = boundary_cpu.window
        _commit(boundary_cpu, w)
        if w.kind == _SLOW:
            boundary_cpu.clock = _execute_boundary(system, boundary_cpu,
                                                   cycle)
            boundary_cpu.cursor += 1
            if recorded:
                _fixup(cpus, recorded)
                del recorded[:]
        # _CAPPED: fully committed above; simply re-detect next round.


def run_vector(system, workload: Workload) -> SimulationResult:
    """Execute ``workload`` on ``system``; see module docstring."""
    if workload.num_cpus > system.config.num_processors:
        raise SimulationError(
            f"workload has {workload.num_cpus} traces but the machine "
            f"has {system.config.num_processors} processors")
    num_cpus = workload.num_cpus
    cpus = [_Cpu(system, cpu_id, workload.accesses_for(cpu_id))
            for cpu_id in range(num_cpus)]

    # Record which lines each boundary event touches, so _fixup can
    # reconcile standing windows precisely instead of re-classifying.
    # The three protocol methods cover the requester's own line and
    # every remote downgrade/invalidation (nested memprotect node
    # fetches included, they use the same entry points); the fill
    # wrapper adds L2 eviction victims. Invalidating events force
    # overlapped windows to materialize *before* the body runs (see
    # _force_commit_overlaps), and every inclusion sweep bumps the
    # swept L1 sets' perturbation watermarks. Instance attributes shadow the
    # class methods and are removed in the finally block.
    recorded = []
    record = recorded.append
    protocol = system.protocol
    orig_read = protocol.bus_read
    orig_read_exclusive = protocol.bus_read_exclusive
    orig_upgrade = protocol.bus_upgrade

    def bus_read(requester, line_address):
        record(line_address)
        return orig_read(requester, line_address)

    def bus_read_exclusive(requester, line_address):
        record(line_address)
        _force_commit_overlaps(cpus, line_address, requester)
        return orig_read_exclusive(requester, line_address)

    def bus_upgrade(requester, line_address):
        record(line_address)
        _force_commit_overlaps(cpus, line_address, requester)
        return orig_upgrade(requester, line_address)

    protocol.bus_read = bus_read
    protocol.bus_read_exclusive = bus_read_exclusive
    protocol.bus_upgrade = bus_upgrade
    wrapped = []
    for c in cpus:
        hierarchy = system.hierarchies[c.id]

        def fill(line_address, state, _c=c, _orig=hierarchy.fill):
            victim = _orig(line_address, state)
            if victim is not None:
                # Only the filling CPU's own caches change, and it
                # never holds a window during its own event.
                record(victim[0])
            if line_address != _c.fill_line:
                # A fill the trace does not contain: a nested hash-tree
                # node fetch (memprotect) inserted a foreign L1 line —
                # invisible to the static run model, so live-probe
                # anything in that set relying on state up to this
                # boundary.
                _perturb(_c, (line_address >> _c.l1_shift)
                         % _c.l1_nsets, _c.cursor)
            return victim

        def sweep(l2_line_address, _c=c,
                  _orig=hierarchy._enforce_inclusion):
            # An inclusion sweep invalidates every L1 line covering the
            # L2 line — an effect the trace's run structure cannot
            # predict: raise the swept sets' watermarks so predictions
            # relying on older history get live-probed. With no live
            # window the sweep runs inside the CPU's own boundary — a
            # posted memprotect write-back can evict even the boundary
            # access's own line, so the watermark covers the boundary
            # position itself.
            w = _c.window
            pos = (w.s + w.applied - 1 if w is not None
                   else _c.cursor)
            block1 = l2_line_address >> _c.l1_shift
            nsets = _c.l1_nsets
            for off in range(1 << (_c.l2_shift - _c.l1_shift)):
                _perturb(_c, (block1 + off) % nsets, pos)
            return _orig(l2_line_address)

        def l1_insert(address, state, _c=c, _orig=hierarchy.l1.insert):
            # Only memprotect's node writes refill L1 directly during
            # a vector run (window hits never execute); the inserted
            # node line may evict a data line the run model relies on.
            _perturb(_c, (address >> _c.l1_shift) % _c.l1_nsets,
                     _c.cursor)
            return _orig(address, state)

        hierarchy.fill = fill
        hierarchy._enforce_inclusion = sweep
        hierarchy.l1.insert = l1_insert
        wrapped.append(hierarchy)
    try:
        _run_rounds(system, cpus, recorded)
    finally:
        for name in ("bus_read", "bus_read_exclusive", "bus_upgrade"):
            protocol.__dict__.pop(name, None)
        for hierarchy in wrapped:
            hierarchy.__dict__.pop("fill", None)
            hierarchy.__dict__.pop("_enforce_inclusion", None)
            hierarchy.l1.__dict__.pop("insert", None)

    stats = system.stats
    for c in cpus:
        prefix = system.hierarchies[c.id]._prefix
        if c.n_l1:
            stats.add(prefix + "l1_hit", c.n_l1)
        if c.n_l2:
            stats.add(prefix + "l2_hit", c.n_l2)
        if c.n_miss:
            stats.add(prefix + "l2_miss", c.n_miss)
        if c.n_upg:
            stats.add(prefix + "upgrade_needed", c.n_upg)

    clocks = [c.clock for c in cpus]
    if system._obs is not None:
        system._obs.on_run_end(workload.name, clocks)
    return SimulationResult(
        workload=workload.name,
        num_cpus=num_cpus,
        cycles=max(clocks) if clocks else 0,
        per_cpu_cycles=clocks,
        stats=stats.as_dict(),
    )
