"""Trace-driven SMP system simulator (the Simics substitute)."""

from .metrics import SimulationResult, slowdown_percent, traffic_increase_percent
from .system import SmpSystem
from .trace import MemoryAccess, Workload

__all__ = ["MemoryAccess", "SimulationResult", "SmpSystem", "Workload",
           "slowdown_percent", "traffic_increase_percent"]
