"""Trace-driven SMP system simulator (the Simics substitute)."""

from .engine import ENGINE_BACKENDS, ENGINE_CHOICES, default_backend, resolve_backend
from .metrics import SimulationResult, slowdown_percent, traffic_increase_percent
from .system import SmpSystem
from .trace import MemoryAccess, Workload

__all__ = ["ENGINE_BACKENDS", "ENGINE_CHOICES", "MemoryAccess",
           "SimulationResult", "SmpSystem", "Workload", "default_backend",
           "resolve_backend", "slowdown_percent",
           "traffic_increase_percent"]
