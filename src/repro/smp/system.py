"""The trace-driven SMP system simulator.

``SmpSystem`` assembles the substrates — per-CPU cache hierarchies, the
MESI snooping protocol, the shared bus, main memory — and executes a
:class:`~repro.smp.trace.Workload`, producing a
:class:`~repro.smp.metrics.SimulationResult`.

Timing model (see DESIGN.md §6): per-CPU clocks advance through their
traces; the atomic bus serializes transactions in request order.
Non-memory instructions cost one cycle each; hits cost the Figure-5
cache latencies; misses cost the bus round trip (120 cycles
cache-to-cache, 180 to memory) plus contention. Dirty evictions post a
write-back that occupies the bus without stalling the evicting CPU.

Security layers plug in without the baseline knowing about them:

- A SENSS bus layer attaches to ``bus.security_layer`` and charges the
  per-message crypto overhead, mask-readiness stalls, and MAC
  broadcasts (sections 4-5).
- A memory-protection layer attaches via ``attach_memprotect`` and is
  consulted on memory fetches and write-backs (section 6).

The miss/upgrade/write-back machinery here is the *slow path* shared
by both engines (``run``'s fast path and ``run_reference``): per-CPU
state (hierarchy, group id) is pre-bound, coherence statistics
accumulate in plain ints drained on read, and bus transactions are
reused from a scratch object when nothing on the bus retains them
(DESIGN.md §6c).
"""

from __future__ import annotations

from typing import List, Tuple

from ..bus.bus import SharedBus
from ..bus.transaction import BusTransaction, TransactionType
from ..cache.hierarchy import AccessKind, CacheHierarchy
from ..coherence.msi import make_protocol
from ..config import SystemConfig
from ..errors import SimulationError
from ..memory.dram import MainMemory
from ..sim.stats import StatsRegistry
from .metrics import SimulationResult
from .trace import Workload

_BUS_READ = TransactionType.BUS_READ
_BUS_READ_EXCLUSIVE = TransactionType.BUS_READ_EXCLUSIVE
_BUS_UPGRADE = TransactionType.BUS_UPGRADE
_WRITEBACK = TransactionType.WRITEBACK


class SmpSystem:
    """A complete simulated SMP machine."""

    def __init__(self, config: SystemConfig):
        self.config = config
        self.stats = StatsRegistry()
        self.bus = SharedBus(config.bus, self.stats)
        self.memory = MainMemory(config.l2.line_bytes)
        self.hierarchies: List[CacheHierarchy] = [
            CacheHierarchy(cpu_id, config.l1, config.l2, self.stats)
            for cpu_id in range(config.num_processors)
        ]
        self.protocol = make_protocol(config.coherence_protocol,
                                      self.hierarchies)
        # Engine backend executing run(): resolved once at build time
        # so a misconfigured machine (vector without numpy) fails fast
        # and the resolved name is reportable (profile, obs reports).
        from .engine import resolve_backend
        self.engine_backend, self._run_impl = \
            resolve_backend(config.engine)
        self.memprotect = None  # optional MemProtectLayer
        # Per-CPU group IDs (section 4.1 grouping): default one group.
        self._cpu_groups = [0] * config.num_processors
        # Pre-bound slow-path state: (hierarchy, group_id) per CPU,
        # rebuilt by set_cpu_groups.
        self._slow_ctx: List[Tuple[CacheHierarchy, int]] = [
            (hierarchy, 0) for hierarchy in self.hierarchies]
        self._line_bytes = config.l2.line_bytes
        # Scratch transaction reused across slow-path bus issues when
        # no observer could retain a reference to it.
        self._scratch_tx = BusTransaction(_BUS_READ, 0, 0)
        # Optional observability probe (repro.obs.Tracer): notified of
        # miss/upgrade completion spans. One is-None test per slow-path
        # event when detached; never consulted on the hit fast path.
        self._obs = None
        # Deferred coherence counters; _events tracks how many times
        # the reference semantics would have touched the invalidation
        # counter (it is bumped by zero on snoops that invalidate
        # nobody, which still materializes the counter).
        self._pending_invalidations = 0
        self._pending_invalidation_events = 0
        self._pending_dirty_interventions = 0
        self._pending_writebacks = 0
        self.stats.register_flusher(self._flush_stats)

    def _flush_stats(self) -> None:
        add = self.stats.add
        if self._pending_invalidation_events:
            add("coherence.invalidations", self._pending_invalidations)
            self._pending_invalidations = 0
            self._pending_invalidation_events = 0
        if self._pending_dirty_interventions:
            add("coherence.dirty_interventions",
                self._pending_dirty_interventions)
            self._pending_dirty_interventions = 0
        if self._pending_writebacks:
            add("coherence.writebacks", self._pending_writebacks)
            self._pending_writebacks = 0

    # -- attachment points ------------------------------------------------

    def attach_security_layer(self, layer) -> None:
        """Attach a SENSS bus layer (see repro.core.senss)."""
        self.bus.security_layer = layer

    def attach_memprotect(self, layer) -> None:
        """Attach a cache-to-memory protection layer (repro.memprotect)."""
        self.memprotect = layer

    @property
    def observer(self):
        """The attached observability probe, if any (repro.obs)."""
        return self._obs

    def set_cpu_groups(self, group_ids) -> None:
        """Assign each CPU to a SENSS group (multiprogramming).

        ``group_ids[cpu]`` tags every bus transaction that CPU issues,
        so the security layer maintains per-group masks and counters
        (section 4.2 "Maintaining the mask").
        """
        if len(group_ids) != self.config.num_processors:
            raise SimulationError(
                "need one group id per processor")
        self._cpu_groups = list(group_ids)
        self._slow_ctx = [(hierarchy, group_id)
                          for hierarchy, group_id
                          in zip(self.hierarchies, self._cpu_groups)]

    # -- execution -----------------------------------------------------------

    def run(self, workload: Workload) -> SimulationResult:
        """Execute the workload to completion and return metrics.

        Delegates to the engine backend ``config.engine`` selected
        (:mod:`repro.smp.engine`): the merged scalar fast path
        (:mod:`repro.smp.fastpath`) or the numpy window engine
        (:mod:`repro.smp.vectorpath`). Both are bit-identical to
        :meth:`run_reference` but several times faster; the resolved
        choice is :attr:`engine_backend`.
        """
        return self._run_impl(self, workload)

    def run_reference(self, workload: Workload) -> SimulationResult:
        """The layered reference engine (the pre-fast-path semantics).

        Kept as the executable specification: equivalence tests assert
        ``run`` produces bit-identical results to this implementation.
        """
        if workload.num_cpus > self.config.num_processors:
            raise SimulationError(
                f"workload has {workload.num_cpus} traces but the machine "
                f"has {self.config.num_processors} processors")
        num_cpus = workload.num_cpus
        clocks = [0] * num_cpus
        cursors = [0] * num_cpus
        traces = [workload.accesses_for(cpu) for cpu in range(num_cpus)]
        lengths = [len(trace) for trace in traces]
        active = [length > 0 for length in lengths]

        while True:
            # Next CPU = earliest pending *request* time (clock plus the
            # compute gap preceding its next access) — request order is
            # what the bus arbiter sees.
            cpu = -1
            best = None
            for candidate in range(num_cpus):
                if not active[candidate]:
                    continue
                pending = (clocks[candidate]
                           + traces[candidate][cursors[candidate]].gap)
                if best is None or pending < best:
                    best = pending
                    cpu = candidate
            if cpu < 0:
                break
            access = traces[cpu][cursors[cpu]]
            cursors[cpu] += 1
            if cursors[cpu] >= lengths[cpu]:
                active[cpu] = False
            clocks[cpu] = self._execute(cpu, clocks[cpu] + access.gap,
                                        access.is_write, access.address)

        if self._obs is not None:
            self._obs.on_run_end(workload.name, clocks)
        return SimulationResult(
            workload=workload.name,
            num_cpus=num_cpus,
            cycles=max(clocks) if clocks else 0,
            per_cpu_cycles=clocks,
            stats=self.stats.as_dict(),
        )

    # -- single-access engine ---------------------------------------------

    def _execute(self, cpu: int, clock: int, is_write: bool,
                 address: int) -> int:
        """Run one memory reference to completion; returns the new clock."""
        hierarchy = self.hierarchies[cpu]
        result = hierarchy.access(is_write, address)

        if result.kind in (AccessKind.L1_HIT, AccessKind.L2_HIT):
            return clock + result.latency

        if result.kind is AccessKind.L2_HIT_NEEDS_UPGRADE:
            return self._execute_upgrade(cpu, clock, result.line_address)

        return self._execute_miss(cpu, clock, is_write,
                                  result.line_address)

    def _next_transaction(self, tx_type: TransactionType, address: int,
                          cpu: int, group_id: int,
                          supplied_by_cache: bool) -> BusTransaction:
        """A transaction object for one slow-path bus issue.

        Reuses the scratch object unless a bus observer is attached
        (observers — attackers, the functional bridge, metrics probes —
        may retain transactions, so they get fresh objects).
        """
        if self.bus._observers:
            return BusTransaction(tx_type, address, cpu, group_id,
                                  supplied_by_cache=supplied_by_cache)
        transaction = self._scratch_tx
        transaction.type = tx_type
        transaction.address = address
        transaction.source_pid = cpu
        transaction.group_id = group_id
        transaction.supplied_by_cache = supplied_by_cache
        transaction.payload = None
        return transaction

    def _execute_upgrade(self, cpu: int, clock: int,
                         line_address: int) -> int:
        """S->M upgrade: invalidate remote sharers over the bus."""
        hierarchy, group_id = self._slow_ctx[cpu]
        outcome = self.protocol.bus_upgrade(cpu, line_address)
        transaction = self._next_transaction(_BUS_UPGRADE, line_address,
                                             cpu, group_id, False)
        transaction = self.bus.issue(transaction, clock, data_bytes=0)
        hierarchy.upgrade(line_address)
        self._pending_invalidations += len(outcome.invalidated_cpus)
        self._pending_invalidation_events += 1
        finish = transaction.complete_cycle
        if self._obs is not None:
            self._obs.on_upgrade(cpu, line_address, clock, finish)
        return finish

    def _execute_miss(self, cpu: int, clock: int, is_write: bool,
                      line_address: int) -> int:
        """Miss: consult the protocol, then transfer the line."""
        hierarchy, group_id = self._slow_ctx[cpu]
        if is_write:
            outcome = self.protocol.bus_read_exclusive(cpu, line_address)
            tx_type = _BUS_READ_EXCLUSIVE
        else:
            outcome = self.protocol.bus_read(cpu, line_address)
            tx_type = _BUS_READ
        supplied_by_cache = outcome.supplier_cpu is not None

        transaction = self._next_transaction(tx_type, line_address, cpu,
                                             group_id, supplied_by_cache)
        transaction = self.bus.issue(transaction, clock,
                                     data_bytes=self._line_bytes)
        finish = transaction.complete_cycle
        self._pending_invalidations += len(outcome.invalidated_cpus)
        self._pending_invalidation_events += 1

        if outcome.had_modified_copy:
            # Illinois MESI: the dirty supplier flushes; memory is
            # updated as part of the same transaction (no extra tx).
            self._pending_dirty_interventions += 1

        if not supplied_by_cache and self.memprotect is not None:
            finish += self.memprotect.on_memory_fetch(
                cpu, line_address, finish)

        victim = hierarchy.fill(line_address, outcome.fill_state)
        if victim is not None and victim[1].is_dirty:
            self._post_writeback(cpu, victim[0], finish)

        if self._obs is not None:
            # Notified last so nested fetches (hash-tree climbs, hash
            # write-backs) report before their enclosing miss — the
            # LIFO order the tracer's snoop pairing relies on.
            self._obs.on_miss(cpu, line_address, clock, finish,
                              is_write)
        return finish

    def _post_writeback(self, cpu: int, line_address: int,
                        clock: int) -> None:
        """Posted write-back: occupies the bus, does not stall the CPU."""
        group_id = self._slow_ctx[cpu][1]
        transaction = self._next_transaction(_WRITEBACK, line_address,
                                             cpu, group_id, False)
        self.bus.issue(transaction, clock,
                       data_bytes=self._line_bytes)
        self._pending_writebacks += 1
        if self.memprotect is not None:
            self.memprotect.on_writeback(cpu, line_address, clock)
