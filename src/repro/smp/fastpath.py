"""Merged fast execution path for :meth:`repro.smp.system.SmpSystem.run`.

The reference engine walks three layers per memory reference —
``SmpSystem._execute`` → ``CacheHierarchy.access`` →
``SetAssociativeCache.lookup`` — re-deriving the line address and
set index at every layer, consulting Enum properties for MESI validity,
and bumping a named ``StatsRegistry`` counter per access. At ~90%+ hit
rates that layering dominates wall time (profiling attributes >70% of
a run to it).

``run_fast`` collapses the *hit* path into one loop:

- a **min-heap scheduler** replaces the per-step linear scan over CPUs
  for the earliest pending request, and a CPU keeps executing without
  touching the heap while its next request still precedes the heap
  head (same order as the reference scan, including the lowest-CPU
  tie-break);
- traces are consumed as **columnar arrays** (no per-access NamedTuple);
- L1/L2 lookups are **fused**: the set index and tag are computed once
  from the raw address, MESI checks are identity tests against
  pre-bound state objects, LRU ticks live in locals and are written
  back to the cache objects only around slow-path calls;
- per-access statistics are **plain list bumps** flushed into the
  registry once at run end.

Misses, upgrades, and everything behind them (coherence protocol, bus
arbitration, SENSS security layer, memory protection) go through the
exact reference machinery via ``SmpSystem._execute_miss`` /
``_execute_upgrade``, so security layers observe identical
transactions. The memory-protection layer's hash-node accesses use
the same two entry points from its own fused classification
(``MemProtectLayer._verify_climb`` / ``_node_write``), so nested node
fetches stay on this contract too. Results are bit-identical to the
reference engine:
same ``cycles``, same ``per_cpu_cycles``, same stats dict
(pinned by tests/smp/test_fastpath_equivalence.py against golden
pre-optimization captures).

Resumable slices (docs/checkpointing.md)
----------------------------------------

``run_fast`` is a thin wrapper over :func:`_run_loop` +
:func:`_finish_run`, which together make the engine *resumable*: all
scheduling state lives in ``(clocks, cursors)`` plus the machine
itself, so a run can be paused after an exact global access count
(``stop_accesses``) and continued later — by the same process or a
different one — with bit-identical results. The scheduler heap is
never part of the persisted state: every heap entry is exactly
``(clocks[cpu] + gap[cursors[cpu]], cpu)``, so the heap is rebuilt
from the clocks and cursors at each (re)entry, and because entries
are unique tuples under a total order, pop order — and therefore
execution order — is independent of the heap's internal array layout.

``on_first_exhaustion`` is the scale-chain seam: it fires exactly once,
the moment the first CPU consumes its last trace access (with every
local written back into the machine), which is the last instant a run
at this scale is state-identical to a run of any larger scale of the
same workload family. ``repro.sim.checkpoint`` snapshots there.

The raw hit/miss counters are *not* flushed into the
:class:`~repro.sim.stats.StatsRegistry` at a pause — an uninterrupted
run keeps them in locals until the end, so mid-run observers (recorder
stats snapshots at auth checkpoints) never see them; a pause flushing
them early would make a forked run's recording diverge from a cold
one. They travel alongside the snapshot instead and are materialized
once, in :func:`_finish_run`.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush

from ..cache.cache import CacheLine
from ..cache.mesi import MesiState
from ..errors import SimulationError
from .metrics import SimulationResult
from .trace import Workload, as_columns

_M = MesiState.MODIFIED
_E = MesiState.EXCLUSIVE
_S = MesiState.SHARED
_I = MesiState.INVALID


def new_counters(num_cpus: int):
    """Fresh raw per-access counters: (l1_hits, l2_hits, l2_misses,
    upgrades), one slot per CPU, flushed by :func:`_finish_run`."""
    return ([0] * num_cpus, [0] * num_cpus,
            [0] * num_cpus, [0] * num_cpus)


def _run_loop(system, workload: Workload, clocks, cursors, counters,
              stop_accesses=None, on_first_exhaustion=None) -> bool:
    """Execute ``workload`` from ``(clocks, cursors)`` onward.

    Mutates ``clocks``/``cursors``/``counters`` and the machine in
    place. Returns ``True`` when paused by ``stop_accesses`` with
    work remaining, ``False`` when every trace is exhausted. See the
    module docstring for the resume contract.
    """
    num_cpus = workload.num_cpus
    l1_hits, l2_hits, l2_misses, upgrades = counters

    # Per-CPU execution context: columnar trace plus the hot cache
    # internals, unpacked once per scheduling quantum.
    contexts = []
    for cpu in range(num_cpus):
        writes, addresses, gaps = as_columns(workload.accesses_for(cpu))
        l1 = system.hierarchies[cpu].l1
        l2 = system.hierarchies[cpu].l2
        contexts.append((
            addresses, writes, gaps, len(addresses),
            l1._sets, l1._offset_bits, l1._num_sets,
            l1.config.associativity, l1.config.hit_latency,
            l2._sets, l2._offset_bits, l2._num_sets,
            l2.config.hit_latency,
            l1, l2,
        ))

    execute_miss = system._execute_miss
    execute_upgrade = system._execute_upgrade

    # Heap of (next request cycle, cpu): the reference scheduler picks
    # the earliest pending request, lowest CPU on ties — exactly the
    # tuple ordering of this heap. Rebuilt from (clocks, cursors) so
    # resumed runs see the identical frontier.
    heap = [(clocks[cpu] + contexts[cpu][2][cursors[cpu]], cpu)
            for cpu in range(num_cpus)
            if cursors[cpu] < contexts[cpu][3]]
    heapify(heap)

    remaining = stop_accesses
    if remaining is not None and remaining <= 0:
        return bool(heap)
    fired = on_first_exhaustion is None

    while heap:
        pending, cpu = heappop(heap)
        (addr_col, write_col, gap_col, length,
         l1_sets, l1_shift, l1_nsets, l1_assoc, l1_latency,
         l2_sets, l2_shift, l2_nsets, l2_latency,
         l1, l2) = contexts[cpu]
        index = cursors[cpu]
        start = index
        limit = length if remaining is None \
            else min(length, index + remaining)
        tick1 = l1._tick
        tick2 = l2._tick
        clock = clocks[cpu]

        while True:
            address = addr_col[index]

            # -- fused L2 lookup (touch) ------------------------------
            block2 = address >> l2_shift
            entry = None
            ways2 = l2_sets.get(block2 % l2_nsets)
            if ways2:
                tag2 = block2 // l2_nsets
                for line in ways2:
                    if line.tag == tag2 and line.state is not _I:
                        entry = line
                        break

            if entry is None:
                # MISS — reference bus/protocol/memprotect machinery.
                l2_misses[cpu] += 1
                l1._tick = tick1
                l2._tick = tick2
                clock = execute_miss(cpu, pending, write_col[index] != 0,
                                     block2 << l2_shift)
                tick1 = l1._tick
                tick2 = l2._tick
            else:
                tick2 += 1
                entry.last_used = tick2
                writable = True
                if write_col[index]:
                    state = entry.state
                    if state is _M or state is _E:
                        entry.state = _M  # silent E->M upgrade
                    else:
                        writable = False
                if not writable:
                    # S (or O) write hit: S->M upgrade transaction.
                    upgrades[cpu] += 1
                    l1._tick = tick1
                    l2._tick = tick2
                    clock = execute_upgrade(cpu, pending,
                                            block2 << l2_shift)
                    tick1 = l1._tick
                    tick2 = l2._tick
                else:
                    # -- fused L1 lookup / refill ---------------------
                    block1 = address >> l1_shift
                    index1 = block1 % l1_nsets
                    tag1 = block1 // l1_nsets
                    ways1 = l1_sets.get(index1)
                    hit = None
                    if ways1:
                        for line in ways1:
                            if line.tag == tag1 and line.state is not _I:
                                hit = line
                                break
                    if hit is not None:
                        tick1 += 1
                        hit.last_used = tick1
                        l1_hits[cpu] += 1
                        clock = pending + l1_latency
                    else:
                        # L1 refill from L2 (reference: l1.insert,
                        # SHARED) — revive an invalid same-tag way,
                        # else evict (invalid ways first, then LRU).
                        tick1 += 1
                        if ways1 is None:
                            ways1 = l1_sets[index1] = []
                        revived = False
                        for line in ways1:
                            if line.tag == tag1:
                                line.state = _S
                                line.last_used = tick1
                                revived = True
                                break
                        if not revived:
                            if len(ways1) >= l1_assoc:
                                evict = None
                                evict_key = None
                                for line in ways1:
                                    key = (line.state is not _I,
                                           line.last_used)
                                    if evict_key is None or key < evict_key:
                                        evict_key = key
                                        evict = line
                                ways1.remove(evict)
                            ways1.append(CacheLine(tag1, _S, tick1))
                        l2_hits[cpu] += 1
                        clock = pending + l2_latency

            index += 1
            if index == limit:
                cursors[cpu] = index
                clocks[cpu] = clock
                l1._tick = tick1
                l2._tick = tick2
                if index == length and not fired:
                    # First trace exhaustion: the machine state at
                    # this instant is shared with every larger run of
                    # the same family — the checkpoint seam.
                    fired = True
                    on_first_exhaustion()
                break
            entry_key = (clock + gap_col[index], cpu)
            if heap and heap[0] < entry_key:
                # Another CPU's request now precedes ours: yield.
                cursors[cpu] = index
                clocks[cpu] = clock
                l1._tick = tick1
                l2._tick = tick2
                heappush(heap, entry_key)
                break
            pending = entry_key[0]

        if remaining is not None:
            remaining -= index - start
            if remaining <= 0:
                if cursors[cpu] < length:
                    # Budget pause mid-trace: the heap is discarded
                    # and rebuilt on resume, so no push needed.
                    return True
                return bool(heap)
    return False


def _finish_run(system, workload: Workload, clocks,
                counters) -> SimulationResult:
    """Flush the raw counters, emit run-end spans, build the result."""
    num_cpus = workload.num_cpus
    l1_hits, l2_hits, l2_misses, upgrades = counters

    # Flush the raw counters into the shared registry (names and
    # totals identical to the reference per-access stats.add calls;
    # untouched counters are not materialized, matching lazy creation).
    stats = system.stats
    for cpu in range(num_cpus):
        prefix = system.hierarchies[cpu]._prefix
        if l1_hits[cpu]:
            stats.add(prefix + "l1_hit", l1_hits[cpu])
        if l2_hits[cpu]:
            stats.add(prefix + "l2_hit", l2_hits[cpu])
        if l2_misses[cpu]:
            stats.add(prefix + "l2_miss", l2_misses[cpu])
        if upgrades[cpu]:
            stats.add(prefix + "upgrade_needed", upgrades[cpu])

    # Observability: per-CPU execute spans, emitted once at run end
    # (the hot loop above never consults the observer — misses and
    # upgrades already reported through the shared slow-path hooks).
    if system._obs is not None:
        system._obs.on_run_end(workload.name, clocks)

    return SimulationResult(
        workload=workload.name,
        num_cpus=num_cpus,
        cycles=max(clocks) if clocks else 0,
        per_cpu_cycles=clocks,
        stats=stats.as_dict(),
    )


def run_fast(system, workload: Workload) -> SimulationResult:
    """Execute ``workload`` on ``system``; see module docstring."""
    if workload.num_cpus > system.config.num_processors:
        raise SimulationError(
            f"workload has {workload.num_cpus} traces but the machine "
            f"has {system.config.num_processors} processors")
    num_cpus = workload.num_cpus
    clocks = [0] * num_cpus
    cursors = [0] * num_cpus
    counters = new_counters(num_cpus)
    _run_loop(system, workload, clocks, cursors, counters)
    return _finish_run(system, workload, clocks, counters)
