"""Simulation results and the paper's evaluation metrics.

The paper reports two headline numbers per configuration:

- **Percentage slowdown** — execution-time increase of the secured
  machine over the insecure baseline (Figures 6, 7, 9, 10).
- **Bus activity increase** — growth in total bus transactions
  (Figures 7, 8, 9, 10). Authentication messages are added only on top
  of cache-to-cache transfers, which is why interval-100 numbers sit
  well below 1%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List


@dataclass
class SimulationResult:
    """Everything a bench needs from one simulator run."""

    workload: str
    num_cpus: int
    cycles: int                       # completion time (max over CPUs)
    per_cpu_cycles: List[int]
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bus_transactions(self) -> int:
        return self.stats.get("bus.transactions", 0)

    @property
    def cache_to_cache_transfers(self) -> int:
        return self.stats.get("bus.cache_to_cache", 0)

    @property
    def memory_transfers(self) -> int:
        return self.stats.get("bus.with_memory", 0)

    @property
    def auth_messages(self) -> int:
        return self.stats.get("bus.tx.Auth00", 0)

    def stat(self, name: str) -> int:
        return self.stats.get(name, 0)

    def summary(self) -> str:
        return (f"{self.workload}: {self.cycles} cycles, "
                f"{self.total_bus_transactions} bus tx "
                f"({self.cache_to_cache_transfers} c2c, "
                f"{self.memory_transfers} mem, "
                f"{self.auth_messages} auth)")


def slowdown_percent(baseline: SimulationResult,
                     secured: SimulationResult) -> float:
    """Percentage slowdown of ``secured`` relative to ``baseline``.

    Can be (slightly) negative: section 7.8 explains how small timing
    shifts can reorder accesses and *reduce* misses in a full-system
    run; the trace-driven analogue is contention-shifted sharing.
    """
    if baseline.cycles <= 0:
        raise ValueError("baseline run has no cycles")
    return 100.0 * (secured.cycles - baseline.cycles) / baseline.cycles


def traffic_increase_percent(baseline: SimulationResult,
                             secured: SimulationResult) -> float:
    """Percentage increase in total bus transactions."""
    base = baseline.total_bus_transactions
    if base <= 0:
        raise ValueError("baseline run has no bus transactions")
    return 100.0 * (secured.total_bus_transactions - base) / base


def average(values: List[float]) -> float:
    if not values:
        raise ValueError("cannot average an empty list")
    return sum(values) / len(values)
