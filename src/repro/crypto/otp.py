"""One-time-pad helpers (section 2.1 / 4.2).

OTP-style encryption in SENSS and in the "fast memory encryption" of
Suh/Yang et al. is a single XOR of data with a cryptographically
generated pad. These helpers implement the XOR layer; pad *generation*
is the AES unit's job (see :mod:`repro.crypto.aes` for function and
:mod:`repro.crypto.engine` for timing).
"""

from __future__ import annotations

from ..errors import CryptoError


def xor_bytes(left: bytes, right: bytes) -> bytes:
    """XOR two equal-length byte strings (the OTP en/decrypt primitive).

    Implemented as one arbitrary-precision integer XOR: CPython XORs
    machine words, so a 64-byte line costs a handful of word ops
    instead of 64 generator steps. ``xor_bytes_reference`` keeps the
    byte-wise spec it is cross-checked against.
    """
    length = len(left)
    if length != len(right):
        raise CryptoError(
            f"XOR operands must have equal length ({length} vs "
            f"{len(right)})")
    return (int.from_bytes(left, "big")
            ^ int.from_bytes(right, "big")).to_bytes(length, "big")


def xor_bytes_reference(left: bytes, right: bytes) -> bytes:
    """Byte-wise reference for :func:`xor_bytes` (tests cross-check)."""
    if len(left) != len(right):
        raise CryptoError(
            f"XOR operands must have equal length ({len(left)} vs "
            f"{len(right)})")
    return bytes(a ^ b for a, b in zip(left, right))


def xor_into_blocks(data: bytes, pad: bytes) -> bytes:
    """XOR ``data`` with ``pad`` repeated/truncated to the data length.

    Bus messages are 32-byte lines while AES masks are 16-byte blocks;
    the hardware applies the mask blockwise, which this models.
    """
    if not pad:
        raise CryptoError("pad must be non-empty")
    repeated = (pad * (len(data) // len(pad) + 1))[:len(data)]
    return xor_bytes(data, repeated)


def pad_for_address(aes, address: int, sequence: int,
                    block_bytes: int = 16) -> bytes:
    """Generate a fast-memory-encryption pad for a memory block.

    The pad is a "cryptographic randomization of the address of the
    data" (section 2.1) that must differ on every write of the same
    address, hence the ``sequence`` number: pad = AES_K(address ||
    sequence). Used by :mod:`repro.memprotect.pads`.
    """
    material = address.to_bytes(8, "little") + sequence.to_bytes(8, "little")
    return aes.encrypt_block(material[:block_bytes])
