"""FIPS-197 AES block cipher, implemented from scratch.

This is the functional model of the SHU's hardware AES unit (section
4.2). It supports AES-128/192/256 and is validated against the FIPS-197
appendix vectors in the test suite. The timing model of the unit (80
cycles latency, 3.2 GB/s throughput in Figure 5) lives separately in
:mod:`repro.crypto.engine` — the paper decouples function and timing the
same way, and so do we.

The implementation is a straightforward byte-oriented one (S-box +
column mixing over GF(2^8)); it favours clarity over speed, which is
fine because the *timing* simulator never invokes real encryption.
"""

from __future__ import annotations

from typing import List

from ..errors import CryptoError

BLOCK_BYTES = 16

_SBOX: List[int] = []
_INV_SBOX: List[int] = [0] * 256


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo x^8+x^4+x^3+x+1."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> None:
    """Construct the S-box from first principles (inverse + affine map).

    Building it rather than pasting the 256 literals both documents the
    construction and gives the tests something real to cross-check: the
    test suite verifies spot values against FIPS-197.
    """
    # Multiplicative inverses via exponentiation by generator 3.
    power = 1
    log_table = [0] * 256
    exp_table = [0] * 256
    for exponent in range(255):
        exp_table[exponent] = power
        log_table[power] = exponent
        power = _gf_mul(power, 3)
    def inverse(value: int) -> int:
        if value == 0:
            return 0
        # g^log(v) * g^(255-log(v)) = g^255 = 1, reduced mod 255 because
        # log(1) == 0 would otherwise index past the 0..254 cycle.
        return exp_table[(255 - log_table[value]) % 255]

    for value in range(256):
        inv = inverse(value)
        # Affine transformation over GF(2).
        transformed = 0
        for bit in range(8):
            parity = (
                (inv >> bit) ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        _SBOX.append(transformed)
    for value, sub in enumerate(_SBOX):
        _INV_SBOX[sub] = value


_build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


class AES:
    """The AES block cipher over 16-byte blocks.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"0123456789abcdef"))
    b'0123456789abcdef'
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise CryptoError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self.key = bytes(key)
        self._nk = len(key) // 4
        self._rounds = self._nk + 6
        self._round_keys = self._expand_key(self.key)

    # -- key schedule -------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion into (rounds+1) 16-byte round keys."""
        words = [list(key[4 * i:4 * i + 4]) for i in range(self._nk)]
        for index in range(self._nk, 4 * (self._rounds + 1)):
            word = list(words[index - 1])
            if index % self._nk == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [_SBOX[b] for b in word]  # SubWord
                word[0] ^= _RCON[index // self._nk - 1]
            elif self._nk > 6 and index % self._nk == 4:
                word = [_SBOX[b] for b in word]
            words.append([a ^ b for a, b in zip(words[index - self._nk],
                                                word)])
        round_keys = []
        for round_index in range(self._rounds + 1):
            flat: List[int] = []
            for word in words[4 * round_index:4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    # -- round primitives (operate on a 16-int state, column-major) ----

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # state[col*4 + row]; row r rotates left by r.
        for row in range(1, 4):
            rotated = [state[((col + row) % 4) * 4 + row]
                       for col in range(4)]
            for col in range(4):
                state[col * 4 + row] = rotated[col]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for row in range(1, 4):
            rotated = [state[((col - row) % 4) * 4 + row]
                       for col in range(4)]
            for col in range(4):
                state[col * 4 + row] = rotated[col]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[col * 4:col * 4 + 4]
            state[col * 4 + 0] = (_gf_mul(a[0], 2) ^ _gf_mul(a[1], 3)
                                  ^ a[2] ^ a[3])
            state[col * 4 + 1] = (a[0] ^ _gf_mul(a[1], 2)
                                  ^ _gf_mul(a[2], 3) ^ a[3])
            state[col * 4 + 2] = (a[0] ^ a[1] ^ _gf_mul(a[2], 2)
                                  ^ _gf_mul(a[3], 3))
            state[col * 4 + 3] = (_gf_mul(a[0], 3) ^ a[1] ^ a[2]
                                  ^ _gf_mul(a[3], 2))

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[col * 4:col * 4 + 4]
            state[col * 4 + 0] = (_gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                                  ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9))
            state[col * 4 + 1] = (_gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                                  ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13))
            state[col * 4 + 2] = (_gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                                  ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11))
            state[col * 4 + 3] = (_gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                                  ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14))

    # -- public block API ----------------------------------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_BYTES:
            raise CryptoError(
                f"AES block must be {BLOCK_BYTES} bytes, "
                f"got {len(plaintext)}")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self._rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_BYTES:
            raise CryptoError(
                f"AES block must be {BLOCK_BYTES} bytes, "
                f"got {len(ciphertext)}")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[self._rounds])
        for round_index in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)


def sbox_value(index: int) -> int:
    """Expose S-box entries for tests (e.g. SBOX[0x53] == 0xED)."""
    return _SBOX[index]


def inv_sbox_value(index: int) -> int:
    return _INV_SBOX[index]
