"""FIPS-197 AES block cipher, implemented from scratch.

This is the functional model of the SHU's hardware AES unit (section
4.2). It supports AES-128/192/256 and is validated against the FIPS-197
appendix vectors in the test suite. The timing model of the unit (80
cycles latency, 3.2 GB/s throughput in Figure 5) lives separately in
:mod:`repro.crypto.engine` — the paper decouples function and timing the
same way, and so do we.

Two implementations live here on purpose (DESIGN.md §6c):

- The **byte-wise reference** (``encrypt_block_reference`` /
  ``decrypt_block_reference``) follows FIPS-197 operation by operation
  — S-box built from first principles (GF(2^8) inverse + affine map),
  explicit ShiftRows/MixColumns. It is the executable specification.
- The **T-table path** (``encrypt_block`` / ``decrypt_block``) folds
  SubBytes, ShiftRows and MixColumns into four 256-entry 32-bit
  lookup tables per direction — the classic software formulation —
  and caches expanded key schedules per key. This is what the
  functional bridge and the crypto modes call; the test suite asserts
  it matches the reference byte-for-byte on the FIPS-197 vectors and
  on randomized keys/blocks.

The tables themselves are derived *from* the first-principles S-box
and GF(2^8) multiply, so the reference construction remains the single
source of truth.
"""

from __future__ import annotations

from typing import List

from ..errors import CryptoError

BLOCK_BYTES = 16

_SBOX: List[int] = []
_INV_SBOX: List[int] = [0] * 256


def _xtime(value: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8) modulo x^8+x^4+x^3+x+1."""
    value <<= 1
    if value & 0x100:
        value ^= 0x11B
    return value & 0xFF


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8)."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def _build_sbox() -> None:
    """Construct the S-box from first principles (inverse + affine map).

    Building it rather than pasting the 256 literals both documents the
    construction and gives the tests something real to cross-check: the
    test suite verifies spot values against FIPS-197.
    """
    # Multiplicative inverses via exponentiation by generator 3.
    power = 1
    log_table = [0] * 256
    exp_table = [0] * 256
    for exponent in range(255):
        exp_table[exponent] = power
        log_table[power] = exponent
        power = _gf_mul(power, 3)
    def inverse(value: int) -> int:
        if value == 0:
            return 0
        # g^log(v) * g^(255-log(v)) = g^255 = 1, reduced mod 255 because
        # log(1) == 0 would otherwise index past the 0..254 cycle.
        return exp_table[(255 - log_table[value]) % 255]

    for value in range(256):
        inv = inverse(value)
        # Affine transformation over GF(2).
        transformed = 0
        for bit in range(8):
            parity = (
                (inv >> bit) ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8)) ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8)) ^ (0x63 >> bit)
            ) & 1
            transformed |= parity << bit
        _SBOX.append(transformed)
    for value, sub in enumerate(_SBOX):
        _INV_SBOX[sub] = value


_build_sbox()

_RCON = [0x01]
while len(_RCON) < 14:
    _RCON.append(_xtime(_RCON[-1]))


# -- T-tables (derived from the first-principles S-box) ----------------
#
# Te_r[x] is the 32-bit big-endian column contribution of byte value x
# sitting at row r after SubBytes: MixColumns column r of
# [2 3 1 1; 1 2 3 1; 1 1 2 3; 3 1 1 2] applied to S(x). Td_r likewise
# uses InvS(x) and the InvMixColumns matrix [14 11 13 9; ...].

def _build_tables():
    te = ([], [], [], [])
    td = ([], [], [], [])
    for x in range(256):
        s = _SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = s2 ^ s
        column = [s2, s, s, s3]  # contributions of a row-0 byte
        for r in range(4):
            # A row-r byte's contributions are the row-0 column
            # rotated down by r (the matrix is circulant).
            te[r].append((column[-r % 4] << 24)
                         | (column[(1 - r) % 4] << 16)
                         | (column[(2 - r) % 4] << 8)
                         | column[(3 - r) % 4])
        si = _INV_SBOX[x]
        column = [_gf_mul(si, 14), _gf_mul(si, 9),
                  _gf_mul(si, 13), _gf_mul(si, 11)]
        for r in range(4):
            td[r].append((column[-r % 4] << 24)
                         | (column[(1 - r) % 4] << 16)
                         | (column[(2 - r) % 4] << 8)
                         | column[(3 - r) % 4])
    return te, td


(_TE0, _TE1, _TE2, _TE3), (_TD0, _TD1, _TD2, _TD3) = _build_tables()

# Expanded-schedule cache: key bytes -> [rounds, enc words, dec words
# or None]. Callers like the Matyas-Meyer-Oseas hash rekey per block,
# so the cache is capped; a full wipe is fine (misses just recompute).
_SCHEDULE_CACHE = {}
_SCHEDULE_CACHE_MAX = 4096


class AES:
    """The AES block cipher over 16-byte blocks.

    >>> cipher = AES(bytes(16))
    >>> cipher.decrypt_block(cipher.encrypt_block(b"0123456789abcdef"))
    b'0123456789abcdef'
    """

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise CryptoError(
                f"AES key must be 16, 24 or 32 bytes, got {len(key)}")
        self.key = bytes(key)
        self._nk = len(key) // 4
        self._rounds = self._nk + 6
        cached = _SCHEDULE_CACHE.get(self.key)
        if cached is None:
            self._round_keys = self._expand_key(self.key)
            # Word form of the same schedule for the T-table path:
            # one big-endian 32-bit word per state column.
            enc_words = [
                [(rk[4 * c] << 24) | (rk[4 * c + 1] << 16)
                 | (rk[4 * c + 2] << 8) | rk[4 * c + 3]
                 for c in range(4)]
                for rk in self._round_keys]
            if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
                _SCHEDULE_CACHE.clear()
            cached = [self._round_keys, enc_words, None]
            _SCHEDULE_CACHE[self.key] = cached
        else:
            self._round_keys = cached[0]
        self._schedule = cached

    # -- key schedule -------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        """FIPS-197 key expansion into (rounds+1) 16-byte round keys."""
        words = [list(key[4 * i:4 * i + 4]) for i in range(self._nk)]
        for index in range(self._nk, 4 * (self._rounds + 1)):
            word = list(words[index - 1])
            if index % self._nk == 0:
                word = word[1:] + word[:1]  # RotWord
                word = [_SBOX[b] for b in word]  # SubWord
                word[0] ^= _RCON[index // self._nk - 1]
            elif self._nk > 6 and index % self._nk == 4:
                word = [_SBOX[b] for b in word]
            words.append([a ^ b for a, b in zip(words[index - self._nk],
                                                word)])
        round_keys = []
        for round_index in range(self._rounds + 1):
            flat: List[int] = []
            for word in words[4 * round_index:4 * round_index + 4]:
                flat.extend(word)
            round_keys.append(flat)
        return round_keys

    # -- round primitives (operate on a 16-int state, column-major) ----

    @staticmethod
    def _add_round_key(state: List[int], round_key: List[int]) -> None:
        for i in range(16):
            state[i] ^= round_key[i]

    @staticmethod
    def _sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _SBOX[state[i]]

    @staticmethod
    def _inv_sub_bytes(state: List[int]) -> None:
        for i in range(16):
            state[i] = _INV_SBOX[state[i]]

    @staticmethod
    def _shift_rows(state: List[int]) -> None:
        # state[col*4 + row]; row r rotates left by r.
        for row in range(1, 4):
            rotated = [state[((col + row) % 4) * 4 + row]
                       for col in range(4)]
            for col in range(4):
                state[col * 4 + row] = rotated[col]

    @staticmethod
    def _inv_shift_rows(state: List[int]) -> None:
        for row in range(1, 4):
            rotated = [state[((col - row) % 4) * 4 + row]
                       for col in range(4)]
            for col in range(4):
                state[col * 4 + row] = rotated[col]

    @staticmethod
    def _mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[col * 4:col * 4 + 4]
            state[col * 4 + 0] = (_gf_mul(a[0], 2) ^ _gf_mul(a[1], 3)
                                  ^ a[2] ^ a[3])
            state[col * 4 + 1] = (a[0] ^ _gf_mul(a[1], 2)
                                  ^ _gf_mul(a[2], 3) ^ a[3])
            state[col * 4 + 2] = (a[0] ^ a[1] ^ _gf_mul(a[2], 2)
                                  ^ _gf_mul(a[3], 3))
            state[col * 4 + 3] = (_gf_mul(a[0], 3) ^ a[1] ^ a[2]
                                  ^ _gf_mul(a[3], 2))

    @staticmethod
    def _inv_mix_columns(state: List[int]) -> None:
        for col in range(4):
            a = state[col * 4:col * 4 + 4]
            state[col * 4 + 0] = (_gf_mul(a[0], 14) ^ _gf_mul(a[1], 11)
                                  ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9))
            state[col * 4 + 1] = (_gf_mul(a[0], 9) ^ _gf_mul(a[1], 14)
                                  ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13))
            state[col * 4 + 2] = (_gf_mul(a[0], 13) ^ _gf_mul(a[1], 9)
                                  ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11))
            state[col * 4 + 3] = (_gf_mul(a[0], 11) ^ _gf_mul(a[1], 13)
                                  ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14))

    # -- byte-wise reference implementation ----------------------------

    def encrypt_block_reference(self, plaintext: bytes) -> bytes:
        """FIPS-197 encryption, operation by operation (the spec)."""
        if len(plaintext) != BLOCK_BYTES:
            raise CryptoError(
                f"AES block must be {BLOCK_BYTES} bytes, "
                f"got {len(plaintext)}")
        state = list(plaintext)
        self._add_round_key(state, self._round_keys[0])
        for round_index in range(1, self._rounds):
            self._sub_bytes(state)
            self._shift_rows(state)
            self._mix_columns(state)
            self._add_round_key(state, self._round_keys[round_index])
        self._sub_bytes(state)
        self._shift_rows(state)
        self._add_round_key(state, self._round_keys[self._rounds])
        return bytes(state)

    def decrypt_block_reference(self, ciphertext: bytes) -> bytes:
        """FIPS-197 decryption, operation by operation (the spec)."""
        if len(ciphertext) != BLOCK_BYTES:
            raise CryptoError(
                f"AES block must be {BLOCK_BYTES} bytes, "
                f"got {len(ciphertext)}")
        state = list(ciphertext)
        self._add_round_key(state, self._round_keys[self._rounds])
        for round_index in range(self._rounds - 1, 0, -1):
            self._inv_shift_rows(state)
            self._inv_sub_bytes(state)
            self._add_round_key(state, self._round_keys[round_index])
            self._inv_mix_columns(state)
        self._inv_shift_rows(state)
        self._inv_sub_bytes(state)
        self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    # -- T-table implementation (the production path) ------------------

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != BLOCK_BYTES:
            raise CryptoError(
                f"AES block must be {BLOCK_BYTES} bytes, "
                f"got {len(plaintext)}")
        words = self._schedule[1]
        rk = words[0]
        s0 = (int.from_bytes(plaintext[0:4], "big")) ^ rk[0]
        s1 = (int.from_bytes(plaintext[4:8], "big")) ^ rk[1]
        s2 = (int.from_bytes(plaintext[8:12], "big")) ^ rk[2]
        s3 = (int.from_bytes(plaintext[12:16], "big")) ^ rk[3]
        te0, te1, te2, te3 = _TE0, _TE1, _TE2, _TE3
        for round_index in range(1, self._rounds):
            rk = words[round_index]
            # Output column c gathers ShiftRows sources: row r of
            # column (c + r) mod 4.
            t0 = (te0[s0 >> 24] ^ te1[(s1 >> 16) & 0xFF]
                  ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ rk[0])
            t1 = (te0[s1 >> 24] ^ te1[(s2 >> 16) & 0xFF]
                  ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ rk[1])
            t2 = (te0[s2 >> 24] ^ te1[(s3 >> 16) & 0xFF]
                  ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ rk[2])
            t3 = (te0[s3 >> 24] ^ te1[(s0 >> 16) & 0xFF]
                  ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ rk[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        # Final round: SubBytes + ShiftRows only (no MixColumns).
        sbox = _SBOX
        rk = words[self._rounds]
        t0 = ((sbox[s0 >> 24] << 24) | (sbox[(s1 >> 16) & 0xFF] << 16)
              | (sbox[(s2 >> 8) & 0xFF] << 8) | sbox[s3 & 0xFF]) ^ rk[0]
        t1 = ((sbox[s1 >> 24] << 24) | (sbox[(s2 >> 16) & 0xFF] << 16)
              | (sbox[(s3 >> 8) & 0xFF] << 8) | sbox[s0 & 0xFF]) ^ rk[1]
        t2 = ((sbox[s2 >> 24] << 24) | (sbox[(s3 >> 16) & 0xFF] << 16)
              | (sbox[(s0 >> 8) & 0xFF] << 8) | sbox[s1 & 0xFF]) ^ rk[2]
        t3 = ((sbox[s3 >> 24] << 24) | (sbox[(s0 >> 16) & 0xFF] << 16)
              | (sbox[(s1 >> 8) & 0xFF] << 8) | sbox[s2 & 0xFF]) ^ rk[3]
        return b"".join(t.to_bytes(4, "big") for t in (t0, t1, t2, t3))

    def _decryption_words(self):
        """Equivalent-inverse-cipher round keys (FIPS-197 section 5.3.5):
        encryption schedule reversed, InvMixColumns applied to the
        interior round keys. Computed on first decrypt, then cached
        with the schedule."""
        dec_words = self._schedule[2]
        if dec_words is not None:
            return dec_words
        words = self._schedule[1]
        rounds = self._rounds
        sbox = _SBOX
        td0, td1, td2, td3 = _TD0, _TD1, _TD2, _TD3
        dec_words = [words[rounds]]
        for round_index in range(rounds - 1, 0, -1):
            transformed = []
            for word in words[round_index]:
                # InvMixColumns via the tables: Td_r[S[b]] is the
                # InvMixColumns contribution of byte b at row r
                # (the inner S-box cancels Td's InvS).
                transformed.append(td0[sbox[word >> 24]]
                                   ^ td1[sbox[(word >> 16) & 0xFF]]
                                   ^ td2[sbox[(word >> 8) & 0xFF]]
                                   ^ td3[sbox[word & 0xFF]])
            dec_words.append(transformed)
        dec_words.append(words[0])
        self._schedule[2] = dec_words
        return dec_words

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != BLOCK_BYTES:
            raise CryptoError(
                f"AES block must be {BLOCK_BYTES} bytes, "
                f"got {len(ciphertext)}")
        words = self._decryption_words()
        rk = words[0]
        s0 = (int.from_bytes(ciphertext[0:4], "big")) ^ rk[0]
        s1 = (int.from_bytes(ciphertext[4:8], "big")) ^ rk[1]
        s2 = (int.from_bytes(ciphertext[8:12], "big")) ^ rk[2]
        s3 = (int.from_bytes(ciphertext[12:16], "big")) ^ rk[3]
        td0, td1, td2, td3 = _TD0, _TD1, _TD2, _TD3
        for round_index in range(1, self._rounds):
            rk = words[round_index]
            # InvShiftRows sources: row r of column (c - r) mod 4.
            t0 = (td0[s0 >> 24] ^ td1[(s3 >> 16) & 0xFF]
                  ^ td2[(s2 >> 8) & 0xFF] ^ td3[s1 & 0xFF] ^ rk[0])
            t1 = (td0[s1 >> 24] ^ td1[(s0 >> 16) & 0xFF]
                  ^ td2[(s3 >> 8) & 0xFF] ^ td3[s2 & 0xFF] ^ rk[1])
            t2 = (td0[s2 >> 24] ^ td1[(s1 >> 16) & 0xFF]
                  ^ td2[(s0 >> 8) & 0xFF] ^ td3[s3 & 0xFF] ^ rk[2])
            t3 = (td0[s3 >> 24] ^ td1[(s2 >> 16) & 0xFF]
                  ^ td2[(s1 >> 8) & 0xFF] ^ td3[s0 & 0xFF] ^ rk[3])
            s0, s1, s2, s3 = t0, t1, t2, t3
        inv_sbox = _INV_SBOX
        rk = words[self._rounds]
        t0 = ((inv_sbox[s0 >> 24] << 24)
              | (inv_sbox[(s3 >> 16) & 0xFF] << 16)
              | (inv_sbox[(s2 >> 8) & 0xFF] << 8)
              | inv_sbox[s1 & 0xFF]) ^ rk[0]
        t1 = ((inv_sbox[s1 >> 24] << 24)
              | (inv_sbox[(s0 >> 16) & 0xFF] << 16)
              | (inv_sbox[(s3 >> 8) & 0xFF] << 8)
              | inv_sbox[s2 & 0xFF]) ^ rk[1]
        t2 = ((inv_sbox[s2 >> 24] << 24)
              | (inv_sbox[(s1 >> 16) & 0xFF] << 16)
              | (inv_sbox[(s0 >> 8) & 0xFF] << 8)
              | inv_sbox[s3 & 0xFF]) ^ rk[2]
        t3 = ((inv_sbox[s3 >> 24] << 24)
              | (inv_sbox[(s2 >> 16) & 0xFF] << 16)
              | (inv_sbox[(s1 >> 8) & 0xFF] << 8)
              | inv_sbox[s0 & 0xFF]) ^ rk[3]
        return b"".join(t.to_bytes(4, "big") for t in (t0, t1, t2, t3))


#: instance cache for hot re-keying paths (MMO hashing re-keys per
#: block, CBC-MAC sessions share keys); the schedule cache already
#: makes re-construction cheap — this also skips the object build.
_INSTANCE_CACHE = {}


def cached_aes(key: bytes) -> AES:
    """A shared :class:`AES` instance for ``key``.

    Safe because AES instances are immutable after construction. The
    cache is bounded by wholesale clearing, like the schedule cache.
    """
    aes = _INSTANCE_CACHE.get(key)
    if aes is None:
        if len(_INSTANCE_CACHE) >= _SCHEDULE_CACHE_MAX:
            _INSTANCE_CACHE.clear()
        aes = AES(key)
        _INSTANCE_CACHE[key] = aes
    return aes


def sbox_value(index: int) -> int:
    """Expose S-box entries for tests (e.g. SBOX[0x53] == 0xED)."""
    return _SBOX[index]


def inv_sbox_value(index: int) -> int:
    return _INV_SBOX[index]
