"""Latency/throughput model of the SHU crypto hardware (Figure 5, §4.4).

The timing simulator never runs real AES — just like the paper, whose
Simics model charges an 80-cycle AES latency and a 3.2 GB/s AES
throughput (matched to the bus bandwidth, §7.1 "Encryption unit"). This
model answers the two questions the simulator asks:

1. *When is the result of a crypto operation started at cycle t ready?*
   (latency: start + ``aes_latency``), and
2. *When can the next operation be issued?* (throughput: the unit is
   pipelined, accepting one block per ``issue_interval`` cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CryptoConfig
from ..errors import ConfigError


@dataclass
class CryptoEngineModel:
    """A pipelined crypto unit: fixed latency, bounded issue rate."""

    latency: int
    issue_interval: int = 1

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ConfigError("crypto latency must be >= 1 cycle")
        if self.issue_interval < 1:
            raise ConfigError("issue interval must be >= 1 cycle")
        self._next_issue = 0

    @classmethod
    def aes_from_config(cls, crypto: CryptoConfig,
                        cpu_ghz: float = 1.0,
                        block_bytes: int = 16) -> "CryptoEngineModel":
        """Build the AES unit model from Figure 5 parameters.

        Issue interval = block size / throughput, in CPU cycles. For a
        16-byte block at 3.2 GB/s under a 1 GHz clock this is 5 cycles;
        a full 32-byte bus line therefore streams through in one
        10-cycle bus cycle, matching the paper's "easy to match AES
        throughput with the bus bandwidth".
        """
        bytes_per_cycle = crypto.aes_throughput_gb_s / cpu_ghz
        interval = max(1, round(block_bytes / bytes_per_cycle))
        return cls(latency=crypto.aes_latency, issue_interval=interval)

    @classmethod
    def hash_from_config(cls, crypto: CryptoConfig,
                         cpu_ghz: float = 1.0,
                         block_bytes: int = 64) -> "CryptoEngineModel":
        bytes_per_cycle = crypto.hash_throughput_gb_s / cpu_ghz
        interval = max(1, round(block_bytes / bytes_per_cycle))
        return cls(latency=crypto.hash_latency, issue_interval=interval)

    def issue(self, now: int) -> int:
        """Issue one operation at (or after) cycle ``now``.

        Returns the cycle at which the result is available. Back-to-back
        issues are spaced ``issue_interval`` apart (pipelining), so N
        issues complete by start + latency + (N-1)*issue_interval.
        """
        start = max(now, self._next_issue)
        self._next_issue = start + self.issue_interval
        return start + self.latency

    def reset(self) -> None:
        self._next_issue = 0
