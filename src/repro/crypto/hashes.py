"""Hashing for memory integrity checking (sections 2.2 and 6.2).

The Merkle hash tree (CHash [7]) needs a one-way compression function
over memory blocks and over concatenated child hashes. We build a
Matyas-Meyer-Oseas (MMO) style compression function out of our own AES
implementation so the entire crypto stack is self-contained:

    H_i = AES_{H_{i-1}}(m_i) XOR m_i

MMO over an ideal cipher is a standard one-way construction; it also
mirrors the hardware reality that the SHU's hash unit shares silicon
with the AES datapath.
"""

from __future__ import annotations

from ..errors import CryptoError
from .aes import BLOCK_BYTES, cached_aes
from .otp import xor_bytes

DIGEST_BYTES = BLOCK_BYTES

_DEFAULT_IV = bytes(range(BLOCK_BYTES))


def _pad(message: bytes) -> bytes:
    """Merkle-Damgard strengthening: 0x80, zeros, 8-byte length."""
    length = len(message).to_bytes(8, "big")
    padded = message + b"\x80"
    while (len(padded) + 8) % BLOCK_BYTES != 0:
        padded += b"\x00"
    return padded + length


def mmo_hash(message: bytes, iv: bytes = _DEFAULT_IV) -> bytes:
    """Hash an arbitrary-length message to a 16-byte digest."""
    if len(iv) != BLOCK_BYTES:
        raise CryptoError("hash IV must be one block")
    state = bytes(iv)
    padded = _pad(message)
    # MMO re-keys on every block; cached_aes turns the per-block key
    # schedule into a dict probe (tree hashing revisits the same
    # chaining states constantly), and the XOR is one int op.
    for offset in range(0, len(padded), BLOCK_BYTES):
        block = padded[offset:offset + BLOCK_BYTES]
        encrypted = cached_aes(state).encrypt_block(block)
        state = (int.from_bytes(encrypted, "big")
                 ^ int.from_bytes(block, "big")).to_bytes(BLOCK_BYTES,
                                                          "big")
    return state


def hash_node(children: list[bytes]) -> bytes:
    """Hash a Merkle-tree internal node from its children's digests."""
    if not children:
        raise CryptoError("a tree node needs at least one child")
    return mmo_hash(b"".join(children))


def hash_leaf(address: int, data: bytes) -> bytes:
    """Hash a memory block, binding it to its address.

    Binding the address prevents relocation attacks (copying a valid
    block+hash to a different address).
    """
    return mmo_hash(address.to_bytes(8, "big") + data)


class MultisetHash:
    """XOR-based multiset hash for lazy (LHash-style) verification.

    Suh et al. [25] cluster memory accesses and verify them together
    using a multiset hash kept in small trusted on-chip storage. We
    model it as the XOR of MMO digests of (address, sequence, data)
    triples: XOR is the canonical set-homomorphic combiner, and the
    per-item digests come from the one-way MMO function, preserving the
    scheme's structure (add items in any order; compare READ and WRITE
    multisets at verification time).
    """

    def __init__(self) -> None:
        self._state = bytes(DIGEST_BYTES)
        self._count = 0

    @property
    def count(self) -> int:
        return self._count

    def add(self, address: int, sequence: int, data: bytes) -> None:
        item = (address.to_bytes(8, "big") + sequence.to_bytes(8, "big")
                + data)
        self._state = xor_bytes(self._state, mmo_hash(item))
        self._count += 1

    def digest(self) -> bytes:
        return self._state

    def matches(self, other: "MultisetHash") -> bool:
        return self._state == other._state
