"""AES-GCM — the paper's single-invocation alternative (section 4.3).

"There are also newly developed algorithms that can provide encryption
and fast MACs calculation involving only one invoking of AES such as
the GCM [13] algorithm. In that case, the MACs are calculated using
Galois Field GF(2^128) multiplication that takes the outputs of the
counter mode of AES as inputs."

This module implements GCM per McGrew & Viega / NIST SP 800-38D:
CTR-mode encryption plus a GHASH authenticator over GF(2^128), with
96-bit IVs. It backs the :class:`GcmGroupChannel` ablation in
:mod:`repro.core.gcm_channel`, which quantifies the AES-invocation
saving over the CBC-based SENSS scheme.
"""

from __future__ import annotations

from typing import Tuple

from ..errors import CryptoError
from .aes import AES, BLOCK_BYTES

# GHASH reduction polynomial: x^128 + x^7 + x^2 + x + 1, with the
# GCM bit order (bit 0 = most significant).
_R = 0xE1000000000000000000000000000000


def _gf_mult(x: int, y: int) -> int:
    """Multiply two GF(2^128) elements in GCM bit order."""
    z = 0
    v = x
    for bit_index in range(127, -1, -1):
        if (y >> bit_index) & 1:
            z ^= v
        if v & 1:
            v = (v >> 1) ^ _R
        else:
            v >>= 1
    return z


def _block_to_int(block: bytes) -> int:
    return int.from_bytes(block, "big")


def _int_to_block(value: int) -> bytes:
    return value.to_bytes(BLOCK_BYTES, "big")


class Ghash:
    """Incremental GHASH over 16-byte blocks."""

    def __init__(self, subkey: bytes):
        if len(subkey) != BLOCK_BYTES:
            raise CryptoError("GHASH subkey must be one block")
        self._h = _block_to_int(subkey)
        self._state = 0

    def update(self, block: bytes) -> None:
        if len(block) != BLOCK_BYTES:
            raise CryptoError("GHASH block must be 16 bytes")
        self._state = _gf_mult(self._state ^ _block_to_int(block),
                               self._h)

    def update_padded(self, data: bytes) -> None:
        """Absorb arbitrary-length data, zero-padded to blocks."""
        for offset in range(0, len(data), BLOCK_BYTES):
            chunk = data[offset:offset + BLOCK_BYTES]
            self.update(chunk.ljust(BLOCK_BYTES, b"\x00"))

    def digest(self) -> bytes:
        return _int_to_block(self._state)


class AesGcm:
    """AES-GCM authenticated encryption (96-bit IVs)."""

    def __init__(self, key: bytes):
        self._aes = AES(key)
        self._subkey = self._aes.encrypt_block(bytes(BLOCK_BYTES))

    def _counter_block(self, iv: bytes, counter: int) -> bytes:
        return iv + counter.to_bytes(4, "big")

    def _ctr(self, iv: bytes, data: bytes) -> bytes:
        out = bytearray()
        counter = 2  # counter 1 is reserved for the tag mask
        for offset in range(0, len(data), BLOCK_BYTES):
            keystream = self._aes.encrypt_block(
                self._counter_block(iv, counter))
            chunk = data[offset:offset + BLOCK_BYTES]
            out.extend(a ^ b for a, b in zip(chunk, keystream))
            counter += 1
        return bytes(out)

    def _tag(self, iv: bytes, aad: bytes, ciphertext: bytes,
             tag_bytes: int) -> bytes:
        ghash = Ghash(self._subkey)
        ghash.update_padded(aad)
        ghash.update_padded(ciphertext)
        lengths = ((len(aad) * 8).to_bytes(8, "big")
                   + (len(ciphertext) * 8).to_bytes(8, "big"))
        ghash.update(lengths)
        mask = self._aes.encrypt_block(self._counter_block(iv, 1))
        return bytes(a ^ b for a, b in zip(ghash.digest(),
                                           mask))[:tag_bytes]

    def encrypt(self, iv: bytes, plaintext: bytes, aad: bytes = b"",
                tag_bytes: int = 16) -> Tuple[bytes, bytes]:
        """Returns (ciphertext, tag)."""
        if len(iv) != 12:
            raise CryptoError("GCM IV must be 96 bits")
        if not 4 <= tag_bytes <= 16:
            raise CryptoError("GCM tag must be 4..16 bytes")
        ciphertext = self._ctr(iv, plaintext)
        return ciphertext, self._tag(iv, aad, ciphertext, tag_bytes)

    def decrypt(self, iv: bytes, ciphertext: bytes, tag: bytes,
                aad: bytes = b"") -> bytes:
        """Verify-then-decrypt; raises CryptoError on a bad tag."""
        if len(iv) != 12:
            raise CryptoError("GCM IV must be 96 bits")
        expected = self._tag(iv, aad, ciphertext, len(tag))
        if expected != tag:
            raise CryptoError("GCM authentication tag mismatch")
        return self._ctr(iv, ciphertext)
