"""Chained CBC-MAC — equation (1) of the paper (section 4.3).

For a message of blocks x_1..x_n:

    MAC_n = AES_K( ... AES_K(AES_K(IV XOR x_1) XOR x_2) ... XOR x_n)

and the transmitted MAC is an m-bit prefix of MAC_n. In SENSS every bus
transfer contributes one (or more) blocks, and the running MAC
"reflects the entire history of messages up to time t" — this chaining
is what lets SENSS catch split-group drops (Type 1) and valid-member
spoofs (Type 3) that defeat non-chained per-message schemes like Shi et
al. [20].

The authentication IV must differ from the encryption IV (section 4.3's
Type-2 defence), which callers enforce via distinct ``iv`` arguments.
"""

from __future__ import annotations

from ..errors import CryptoError
from .aes import AES, BLOCK_BYTES, cached_aes


class CbcMac:
    """Incremental chained CBC-MAC over 16-byte blocks.

    Unlike a typical crypto hash that needs the entire message first,
    CBC-MAC absorbs block by block as transfers are generated, which is
    why the paper picked it (benefit 2 in section 4.3).
    """

    def __init__(self, aes: AES, iv: bytes):
        if len(iv) != BLOCK_BYTES:
            raise CryptoError("CBC-MAC IV must be one block")
        self._aes = aes
        self._iv = bytes(iv)
        self._state = bytes(iv)
        self._count = 0

    @classmethod
    def for_key(cls, key: bytes, iv: bytes) -> "CbcMac":
        """A MAC chain over a *cached* key schedule.

        Sessions sharing a group key (every SENSS processor in the
        group runs the same chain) get one shared AES instance
        instead of re-expanding the schedule per chain.
        """
        return cls(cached_aes(key), iv)

    @property
    def block_count(self) -> int:
        """Number of blocks absorbed since construction/reset."""
        return self._count

    def update(self, block: bytes) -> None:
        """Absorb one 16-byte block into the running MAC."""
        if len(block) != BLOCK_BYTES:
            raise CryptoError(
                f"CBC-MAC block must be {BLOCK_BYTES} bytes, "
                f"got {len(block)}")
        # The chaining XOR as one int op (every bus transfer runs
        # through here, two blocks per data line).
        chained = (int.from_bytes(self._state, "big")
                   ^ int.from_bytes(block, "big"))
        self._state = self._aes.encrypt_block(
            chained.to_bytes(BLOCK_BYTES, "big"))
        self._count += 1

    def update_message(self, message: bytes) -> None:
        """Absorb a multi-block message (bus line = 2 AES blocks)."""
        if len(message) % BLOCK_BYTES != 0:
            raise CryptoError("message length must be a block multiple")
        encrypt = self._aes.encrypt_block
        state = int.from_bytes(self._state, "big")
        count = 0
        for offset in range(0, len(message), BLOCK_BYTES):
            block = message[offset:offset + BLOCK_BYTES]
            state = int.from_bytes(
                encrypt((state ^ int.from_bytes(block, "big"))
                        .to_bytes(BLOCK_BYTES, "big")), "big")
            count += 1
        self._state = state.to_bytes(BLOCK_BYTES, "big")
        self._count += count

    def digest(self, prefix_bits: int = 128) -> bytes:
        """Return the m-bit MAC prefix (1 <= m <= 128), as whole bytes.

        The paper transmits an m-bit prefix of MAC_n; we round m up to a
        byte boundary for practicality and mask trailing bits.
        """
        if not 1 <= prefix_bits <= 128:
            raise CryptoError("MAC prefix must be 1..128 bits")
        num_bytes = (prefix_bits + 7) // 8
        prefix = bytearray(self._state[:num_bytes])
        spare_bits = num_bytes * 8 - prefix_bits
        if spare_bits:
            prefix[-1] &= 0xFF << spare_bits & 0xFF
        return bytes(prefix)

    def reset(self) -> None:
        """Restart the chain from the IV (new program invocation)."""
        self._state = self._iv
        self._count = 0

    def copy(self) -> "CbcMac":
        clone = CbcMac(self._aes, self._iv)
        clone._state = self._state
        clone._count = self._count
        return clone

    def export_state(self) -> bytes:
        """Serialize the running chain (for group swap-out, sec 4.2)."""
        return self._state + self._count.to_bytes(8, "little")

    def restore_state(self, blob: bytes) -> None:
        """Restore a chain serialized by :meth:`export_state`."""
        if len(blob) != BLOCK_BYTES + 8:
            raise CryptoError("malformed CBC-MAC state blob")
        self._state = blob[:BLOCK_BYTES]
        self._count = int.from_bytes(blob[BLOCK_BYTES:], "little")


def cbc_mac(aes: AES, iv: bytes, message: bytes,
            prefix_bits: int = 128) -> bytes:
    """One-shot chained CBC-MAC of a block-aligned message."""
    mac = CbcMac(aes, iv)
    mac.update_message(message)
    return mac.digest(prefix_bits)
