"""Block-cipher modes of operation used by SENSS.

- **CBC** (Cipher Block Chaining) is the basis of the paper's bus
  encryption and authentication (section 4.2, Table 1).
- **CTR** (Counter mode) underlies the OTP pad-generation of the fast
  memory encryption schemes the paper integrates (section 6.1), and the
  GCM alternative mentioned in section 4.3.
"""

from __future__ import annotations

from typing import Iterator

from ..errors import CryptoError
from .aes import AES, BLOCK_BYTES
from .otp import xor_bytes


def _check_blocks(data: bytes, name: str) -> None:
    if len(data) % BLOCK_BYTES != 0:
        raise CryptoError(
            f"{name} length must be a multiple of {BLOCK_BYTES} bytes, "
            f"got {len(data)}")


def _blocks(data: bytes) -> Iterator[bytes]:
    for offset in range(0, len(data), BLOCK_BYTES):
        yield data[offset:offset + BLOCK_BYTES]


def cbc_encrypt(aes: AES, iv: bytes, plaintext: bytes) -> bytes:
    """Classic CBC: C_i = AES_K(D_i XOR C_{i-1}), C_0 = IV."""
    if len(iv) != BLOCK_BYTES:
        raise CryptoError("CBC IV must be one block")
    _check_blocks(plaintext, "plaintext")
    previous = iv
    out = bytearray()
    for block in _blocks(plaintext):
        previous = aes.encrypt_block(xor_bytes(block, previous))
        out.extend(previous)
    return bytes(out)


def cbc_decrypt(aes: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """Inverse of :func:`cbc_encrypt`."""
    if len(iv) != BLOCK_BYTES:
        raise CryptoError("CBC IV must be one block")
    _check_blocks(ciphertext, "ciphertext")
    previous = iv
    out = bytearray()
    for block in _blocks(ciphertext):
        out.extend(xor_bytes(aes.decrypt_block(block), previous))
        previous = block
    return bytes(out)


def ctr_keystream(aes: AES, nonce: bytes, num_bytes: int,
                  initial_counter: int = 0) -> bytes:
    """Generate ``num_bytes`` of CTR-mode keystream (OTP pads)."""
    if len(nonce) != 8:
        raise CryptoError("CTR nonce must be 8 bytes")
    stream = bytearray()
    counter = initial_counter
    while len(stream) < num_bytes:
        block_input = nonce + counter.to_bytes(8, "big")
        stream.extend(aes.encrypt_block(block_input))
        counter += 1
    return bytes(stream[:num_bytes])


def ctr_xcrypt(aes: AES, nonce: bytes, data: bytes,
               initial_counter: int = 0) -> bytes:
    """CTR mode en/decryption (self-inverse)."""
    return xor_bytes(data, ctr_keystream(aes, nonce, len(data),
                                         initial_counter))
