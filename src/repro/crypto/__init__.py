"""Cryptographic substrate for SENSS.

Everything here is implemented from scratch on top of the Python
standard library only:

- :mod:`repro.crypto.aes` — FIPS-197 AES block cipher (128/192/256).
- :mod:`repro.crypto.modes` — CBC and CTR modes of operation.
- :mod:`repro.crypto.cbcmac` — the chained CBC-MAC of paper eq. (1).
- :mod:`repro.crypto.otp` — one-time-pad helpers (XOR pads).
- :mod:`repro.crypto.rsa` — textbook RSA for program dispatch.
- :mod:`repro.crypto.hashes` — Merkle-tree node hashing.
- :mod:`repro.crypto.engine` — a latency/throughput *model* of the
  hardware AES / hash units used by the timing simulator.
"""

from .aes import AES, BLOCK_BYTES
from .cbcmac import CbcMac
from .engine import CryptoEngineModel
from .gcm import AesGcm, Ghash
from .modes import cbc_decrypt, cbc_encrypt, ctr_keystream, ctr_xcrypt
from .otp import xor_bytes
from .rsa import RsaKeyPair, generate_keypair
from .sha256 import hmac_sha256, sha256

__all__ = [
    "AES",
    "AesGcm",
    "BLOCK_BYTES",
    "CbcMac",
    "CryptoEngineModel",
    "Ghash",
    "RsaKeyPair",
    "cbc_decrypt",
    "cbc_encrypt",
    "ctr_keystream",
    "ctr_xcrypt",
    "generate_keypair",
    "hmac_sha256",
    "sha256",
    "xor_bytes",
]
