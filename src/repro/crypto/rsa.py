"""Textbook RSA for SENSS program dispatch (sections 2.1, 4.1).

Each processor node holds a public/private key pair (Kp, Ks); the
program distributor encrypts the program's symmetric session key K with
every group member's Kp and bundles the ciphertexts with the encrypted
program. This module implements exactly that mechanism: probabilistic
prime generation (Miller-Rabin), key-pair construction, and raw RSA
encryption of small payloads such as 128-bit AES keys.

This is *textbook* RSA (no OAEP): the reproduction needs the key
distribution code path, not padding-oracle resistance, and the paper's
reference [18] is the original RSA construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import CryptoError

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97]


def _is_probable_prime(candidate: int, rng: random.Random,
                       rounds: int = 24) -> bool:
    """Miller-Rabin primality test."""
    if candidate < 2:
        return False
    for prime in _SMALL_PRIMES:
        if candidate % prime == 0:
            return candidate == prime
    # Write candidate-1 = d * 2^r with d odd.
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        witness = rng.randrange(2, candidate - 1)
        x = pow(witness, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def _random_prime(bits: int, rng: random.Random) -> int:
    """Generate a random prime with the top two bits set."""
    while True:
        candidate = rng.getrandbits(bits)
        candidate |= (1 << (bits - 1)) | (1 << (bits - 2)) | 1
        if _is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    modulus: int
    exponent: int

    def encrypt_int(self, message: int) -> int:
        if not 0 <= message < self.modulus:
            raise CryptoError("message out of range for RSA modulus")
        return pow(message, self.exponent, self.modulus)

    def encrypt_bytes(self, message: bytes) -> int:
        return self.encrypt_int(int.from_bytes(message, "big"))


@dataclass(frozen=True)
class RsaKeyPair:
    """A processor node's sealed (Kp, Ks) pair (section 2.1)."""

    public: RsaPublicKey
    _private_exponent: int

    def decrypt_int(self, ciphertext: int) -> int:
        if not 0 <= ciphertext < self.public.modulus:
            raise CryptoError("ciphertext out of range for RSA modulus")
        return pow(ciphertext, self._private_exponent, self.public.modulus)

    def decrypt_bytes(self, ciphertext: int, num_bytes: int) -> bytes:
        return self.decrypt_int(ciphertext).to_bytes(num_bytes, "big")


def generate_keypair(bits: int = 512,
                     rng: random.Random | None = None) -> RsaKeyPair:
    """Generate an RSA key pair of roughly ``bits`` modulus bits.

    512-bit default keeps test and dispatch setup fast; dispatch runs
    once per program (section 4.1 notes setup-time cost is acceptable).
    """
    if bits < 64:
        raise CryptoError("RSA modulus must be at least 64 bits")
    rng = rng or random.Random()
    exponent = 65537
    while True:
        p = _random_prime(bits // 2, rng)
        q = _random_prime(bits - bits // 2, rng)
        if p == q:
            continue
        phi = (p - 1) * (q - 1)
        if phi % exponent == 0:
            continue
        modulus = p * q
        private_exponent = pow(exponent, -1, phi)
        return RsaKeyPair(RsaPublicKey(modulus, exponent), private_exponent)
