"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``run``       simulate one workload on baseline + SENSS machines and
              report slowdown / traffic increase.
``sweep``     sweep the authentication interval (Figure 9 style).
``trace``     record one secured run as Chrome/Perfetto trace-event
              JSON (schema-validated; load in ui.perfetto.dev).
``report``    baseline-vs-secured comparison with latency histograms
              and wall-clock phases, as a mergeable JSON report.
``profile``   measure engine throughput (accesses/s) per config kind,
              optionally with a cProfile hot-function table.
``overhead``  print the section-7.1 hardware cost table.
``attacks``   run the Type 1/2/3 attack detection matrix.
``faults``    run the timing-layer fault-injection campaign (kind x
              recovery-policy detection matrix; see
              docs/fault_injection.md).
``record``    persist one run as a deterministic recording file
              (events, stats snapshots, config fingerprint; see
              docs/record_replay.md).
``replay``    re-run a recording with exactly one perturbed knob and
              write the resulting recording.
``diff``      structured divergence report between two recordings:
              first-divergence event, per-phase and per-counter
              deltas, cycle-skew histogram. Exits 0 when identical,
              1 when diverged (like diff(1)).
``workloads`` list available workload generators.
``serve``     run the sweep service: async HTTP server with a
              per-tenant fair queue, warm worker pool and shared
              result cache (docs/serving.md).
``submit``    submit a sweep job to a running server and optionally
              follow its NDJSON progress stream.
``jobs``      list a running server's jobs, with per-point failure
              reasons and quarantine status.
``chaos``     deterministic chaos harness: inject seeded faults
              (worker kill, point hang, cache corruption, server
              restart, client drop) into a live serve subprocess and
              assert results stay bit-identical to a clean run
              (docs/resilience.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from . import __version__
from .analysis.overhead import compute_overhead
from .analysis.report import format_table
from .config import e6000_config
from .core.senss import build_secure_system
from .faults.plan import FaultKind
from .smp.metrics import slowdown_percent, traffic_increase_percent
from .smp.system import SmpSystem
from .workloads.registry import SPLASH2_NAMES, generate


def _version_string() -> str:
    from .sim.sweep import ENGINE_VERSION
    from .smp.engine import default_backend
    base = (f"repro {__version__} (engine {ENGINE_VERSION}, "
            f"backend {default_backend()})")
    return base + _checkpoint_suffix()


def _checkpoint_suffix() -> str:
    """Checkpoint-store stats for --version, '' when the default
    store directory does not exist (fresh checkout)."""
    from .sim.checkpoint import DEFAULT_CHECKPOINT_DIR, CheckpointStore
    if not DEFAULT_CHECKPOINT_DIR.is_dir():
        return ""
    stats = CheckpointStore(DEFAULT_CHECKPOINT_DIR).stats()
    rate = stats["hit_rate"]
    return (f" [checkpoints {stats['count']}, "
            f"{stats['bytes'] / 1e6:.1f} MB, "
            f"hit rate {'-' if rate is None else format(rate, '.0%')}]")


def _add_engine_argument(command) -> None:
    from .smp.engine import ENGINE_CHOICES
    command.add_argument("--engine", default="auto",
                         choices=list(ENGINE_CHOICES),
                         help="engine backend (auto = vector when "
                              "numpy is importable, scalar otherwise; "
                              "both are bit-identical)")


def _add_machine_arguments(command, default_scale: float) -> None:
    """The workload/machine flags shared by run, trace and report."""
    command.add_argument("workload",
                         help=f"one of {SPLASH2_NAMES} or a .trace file "
                              "(see repro.workloads.tracefile)")
    command.add_argument("--cpus", type=int, default=4)
    command.add_argument("--l2-mb", type=int, default=1, choices=[1, 4])
    command.add_argument("--interval", type=int, default=100)
    command.add_argument("--masks", type=int, default=0,
                         help="mask count (0 = perfect supply)")
    command.add_argument("--scale", type=float, default=default_scale)
    command.add_argument("--seed", type=int, default=0)
    command.add_argument("--memprotect", action="store_true",
                         help="add OTP memory encryption + CHash "
                              "integrity")
    _add_engine_argument(command)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SENSS (HPCA 2005) reproduction toolkit")
    parser.add_argument("--version", action="version",
                        version=_version_string())
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="simulate one workload")
    _add_machine_arguments(run, default_scale=0.5)

    trace = commands.add_parser(
        "trace", help="record one secured run as Perfetto JSON")
    _add_machine_arguments(trace, default_scale=0.1)
    trace.add_argument("--capacity", type=int, default=65536,
                       help="event ring size (oldest events drop)")
    trace.add_argument("--trace-categories", default=None,
                       metavar="CATS",
                       help="comma-separated event categories to "
                            "record (bus,mem,senss,memprotect,run,"
                            "faults; default all). Filtered runs only "
                            "pay for what they record.")
    trace.add_argument("--out", default="trace.json",
                       help="output path ('-' for stdout)")

    report = commands.add_parser(
        "report", help="baseline-vs-secured run report")
    _add_machine_arguments(report, default_scale=0.2)
    report.add_argument("--json", dest="json_out", default=None,
                        metavar="PATH",
                        help="also write the mergeable JSON report")

    sweep = commands.add_parser("sweep",
                                help="authentication interval sweep")
    sweep.add_argument("workload",
                       help=f"one of {SPLASH2_NAMES} or a .trace file")
    sweep.add_argument("--cpus", type=int, default=4)
    sweep.add_argument("--scale", type=float, default=0.4)
    sweep.add_argument("--intervals", type=int, nargs="+",
                       default=[100, 32, 10, 1])

    profile = commands.add_parser(
        "profile", help="engine throughput profile (accesses/s)")
    profile.add_argument("workload", nargs="?", default="fft",
                         help=f"one of {SPLASH2_NAMES}")
    profile.add_argument("--cpus", type=int, default=4)
    profile.add_argument("--l2-mb", type=int, default=1, choices=[1, 4])
    profile.add_argument("--scale", type=float, default=0.5)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--repeats", type=int, default=3,
                         help="timing repeats (best is reported)")
    profile.add_argument("--configs", nargs="+",
                         default=["baseline", "senss", "integrated"],
                         choices=["baseline", "senss", "integrated"])
    _add_engine_argument(profile)
    profile.add_argument("--cprofile", action="store_true",
                         help="also print the hottest functions")
    profile.add_argument("--breakdown", action="store_true",
                         help="also run the integrated config once "
                              "with the memprotect hot paths "
                              "instrumented and print the wall-time "
                              "split (verify climb / leaf hashing / "
                              "pad generation / pad-cache coherence)")

    commands.add_parser("overhead",
                        help="section 7.1 hardware cost table")
    commands.add_parser("attacks", help="attack detection matrix")

    faults = commands.add_parser(
        "faults", help="timing-layer fault-injection campaign")
    faults.add_argument("--workload", default="ocean",
                        help=f"one of {SPLASH2_NAMES}")
    faults.add_argument("--cpus", type=int, default=4)
    faults.add_argument("--scale", type=float, default=0.05)
    faults.add_argument("--seed", type=int, default=0)
    faults.add_argument("--interval", type=int, default=10,
                        help="authentication interval (short, so "
                             "detection latency is bounded tightly)")
    faults.add_argument("--kinds", nargs="+", default=None,
                        choices=list(FaultKind.ALL),
                        help="fault kinds to inject (default: all)")
    faults.add_argument("--policies", nargs="+",
                        default=["halt", "rekey-replay"],
                        choices=["halt", "rekey-replay", "quarantine"])
    faults.add_argument("--json", dest="json_out", default=None,
                        metavar="PATH",
                        help="also write the campaign report as JSON")
    faults.add_argument("--verify-identity", action="store_true",
                        help="also assert a never-triggering injector "
                             "leaves results bit-identical")
    faults.add_argument("--record-diff", action="store_true",
                        help="record each faulted run and diff it "
                             "against the clean run (adds a "
                             "divergence column / report field)")
    faults.add_argument("--no-fork", action="store_true",
                        help="disable checkpoint forking: simulate "
                             "every cell's clean prefix from cold "
                             "instead of restoring a shared snapshot "
                             "(docs/checkpointing.md)")
    faults.add_argument("--trigger", type=int, default=None,
                        metavar="N",
                        help="inject each fault at event index N "
                             "instead of the per-kind default; "
                             "deeper triggers make forking pay more")

    record = commands.add_parser(
        "record", help="record one run as a deterministic recording "
                       "(docs/record_replay.md)")
    _add_machine_arguments(record, default_scale=0.1)
    record.add_argument("--snapshot-every", type=int, default=1,
                        metavar="N",
                        help="stats snapshot every Nth auth "
                             "checkpoint (default every one)")
    record.add_argument("--out", default="run.rec.json",
                        help="recording output path")
    record.add_argument("--timings", action="store_true",
                        help="embed wall-clock phase timings "
                             "(excluded from the checksum, but "
                             "breaks byte-identity across repeats)")

    replay = commands.add_parser(
        "replay", help="re-run a recording with one perturbed knob")
    replay.add_argument("recording", help="recording file to replay")
    replay.add_argument("--perturb", default=None,
                        metavar="NAME=VALUE",
                        help="exactly one knob to change "
                             "(auth_interval, masks, engine, "
                             "aes_latency, hash_latency, seed, scale, "
                             "fault=kind[:trigger]); omitted = pure "
                             "determinism check")
    replay.add_argument("--out", default=None, metavar="PATH",
                        help="replay recording output path (default "
                             "<recording>.replay.json)")
    replay.add_argument("--snapshot-every", type=int, default=None,
                        metavar="N",
                        help="override the source recording's "
                             "snapshot cadence")
    replay.add_argument("--diff", action="store_true",
                        help="also print the diff against the source "
                             "recording (exit 1 if diverged)")

    diff = commands.add_parser(
        "diff", help="structured diff of two recordings (exit 0 "
                     "identical, 1 diverged)")
    diff.add_argument("recording_a", help="reference recording")
    diff.add_argument("recording_b", help="recording to compare")
    diff.add_argument("--json", dest="json_out", default=None,
                      metavar="PATH",
                      help="also write the diff report as JSON "
                           "(mergeable via tools/collect_results.py "
                           "--diffs)")

    commands.add_parser("workloads", help="list workload generators")

    serve = commands.add_parser(
        "serve", help="run the sweep service (docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = ephemeral, printed)")
    serve.add_argument("--workers", type=int, default=2,
                       help="warm worker-process count")
    serve.add_argument("--cache-dir", default=".benchmarks/cache",
                       metavar="PATH",
                       help="shared result cache directory")
    serve.add_argument("--cache-max-mb", type=float, default=None,
                       metavar="MB",
                       help="result-cache disk budget; least-"
                            "recently-used entries are evicted past "
                            "it (default: unbounded)")
    serve.add_argument("--checkpoint-dir", default=None,
                       metavar="PATH",
                       help="enable checkpoint/fork execution: warm "
                            "workers fork points from shared "
                            "simulation prefixes stored here, across "
                            "jobs and tenants (docs/checkpointing.md)")
    serve.add_argument("--checkpoint-hot", type=int, default=8,
                       metavar="N",
                       help="per-worker in-memory hot-snapshot LRU "
                            "capacity (default 8)")
    serve.add_argument("--max-queued", type=int, default=1024,
                       metavar="N",
                       help="per-tenant queued-point budget; a job "
                            "that would exceed it is rejected whole "
                            "with HTTP 429")
    serve.add_argument("--no-warmup", action="store_true",
                       help="skip the worker warmup pass")
    serve.add_argument("--record-dir", default=None, metavar="PATH",
                       help="directory for job-requested recordings; "
                            "unset = jobs asking to record are "
                            "rejected (400)")
    serve.add_argument("--state-dir", default=None, metavar="PATH",
                       help="server state directory: enables the "
                            "durable job journal "
                            "(journal.jsonl WAL; docs/resilience.md)")
    serve.add_argument("--resume", action="store_true",
                       help="replay the journal on startup and "
                            "re-admit jobs that never finished "
                            "(needs --state-dir)")
    serve.add_argument("--point-timeout", type=float, default=None,
                       metavar="S",
                       help="per-point deadline in seconds; a point "
                            "past it is presumed hung, the worker "
                            "pool is respawned and the point retried")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="per-point retry budget before the "
                            "failure is final (default 2)")
    serve.add_argument("--drain-timeout", type=float, default=None,
                       metavar="S",
                       help="max seconds to wait for accepted jobs "
                            "on shutdown; unfinished work stays "
                            "journalled for --resume")

    submit = commands.add_parser(
        "submit", help="submit a sweep job to a running server")
    _add_machine_arguments(submit, default_scale=0.1)
    submit.add_argument("--seeds", type=int, default=1, metavar="N",
                        help="submit N points with seeds "
                             "seed..seed+N-1")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--weight", type=int, default=1,
                        help="fair-share weight (>=1)")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8642)
    submit.add_argument("--follow", action="store_true",
                        help="stream NDJSON progress events until "
                             "the job finishes and print a result "
                             "table")
    submit.add_argument("--record", action="store_true",
                        help="ask the server to record each point "
                             "(needs a server started with "
                             "--record-dir); fetch recordings via "
                             "GET /v1/jobs/{id}/recordings/{index}")

    jobs = commands.add_parser(
        "jobs", help="list a running server's jobs with per-point "
                     "failure reasons and quarantine status")
    jobs.add_argument("--host", default="127.0.0.1")
    jobs.add_argument("--port", type=int, default=8642)
    jobs.add_argument("--tenant", default=None)
    jobs.add_argument("--no-reasons", action="store_true",
                      help="skip fetching per-point failure reasons "
                           "for failed jobs")

    chaos = commands.add_parser(
        "chaos", help="seeded fault injection against a live serve "
                      "subprocess (docs/resilience.md)")
    chaos.add_argument("--workload", default="fft",
                       help="registry workload for the chaos sweep")
    chaos.add_argument("--cpus", type=int, default=2)
    chaos.add_argument("--scale", type=float, default=0.05)
    chaos.add_argument("--points", type=int, default=4, metavar="N",
                       help="sweep points (seeds 0..N-1)")
    chaos.add_argument("--seed", type=int, default=0,
                       help="chaos plan seed: same seed, same faults "
                            "on the same points")
    chaos.add_argument("--faults", default=",".join(
        ("worker-kill", "point-hang", "cache-corrupt",
         "server-restart", "client-drop")),
        help="comma-separated fault kinds to inject")
    chaos.add_argument("--workers", type=int, default=2)
    chaos.add_argument("--point-timeout", type=float, default=5.0,
                       metavar="S",
                       help="server per-point deadline (the hang "
                            "fault must blow it)")
    chaos.add_argument("--record", action="store_true",
                       help="also run record jobs and assert "
                            "recording bytes are identical to a "
                            "clean run")
    chaos.add_argument("--dir", default=None, metavar="PATH",
                       help="scratch directory (default: a temp dir "
                            "wiped afterwards)")
    chaos.add_argument("--json", default=None, metavar="PATH",
                       help="also write the chaos report as JSON")
    return parser


def _machine_config(args):
    """The SystemConfig the shared machine flags describe."""
    config = e6000_config(num_processors=args.cpus, l2_mb=args.l2_mb,
                          auth_interval=args.interval)
    config = config.with_masks(args.masks or None)
    config = config.with_engine(args.engine)
    if args.memprotect:
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    return config


def _machine_inputs(args):
    """Resolve the (config, workload) pair the machine flags describe."""
    config = _machine_config(args)
    if args.workload.endswith(".trace"):
        from .workloads.tracefile import load_workload
        workload = load_workload(args.workload)
        if workload.num_cpus > args.cpus:
            config = config.with_processors(workload.num_cpus)
    else:
        workload = generate(args.workload, args.cpus, scale=args.scale,
                            seed=args.seed)
    return config, workload


def _cmd_run(args) -> int:
    config, workload = _machine_inputs(args)
    baseline = SmpSystem(config.with_senss(False)).run(workload)
    secured = build_secure_system(config).run(workload)
    print(baseline.summary())
    print(secured.summary())
    print("slowdown         : "
          f"{slowdown_percent(baseline, secured):+.3f}%")
    print("traffic increase : "
          f"{traffic_increase_percent(baseline, secured):+.3f}%")
    return 0


def _cmd_trace(args) -> int:
    from .obs import Tracer, to_chrome_trace, validate_chrome_trace
    from .obs.tracer import parse_categories

    config, workload = _machine_inputs(args)
    system = build_secure_system(config)
    tracer = Tracer(capacity=args.capacity,
                    categories=parse_categories(
                        args.trace_categories)).attach(system)
    system.run(workload)
    payload = to_chrome_trace(tracer)
    # Self-check the export against the published schema before it
    # leaves the process — a trace that fails to load in Perfetto is
    # worse than no trace.
    event_count = validate_chrome_trace(payload)
    text = json.dumps(payload)
    if args.out == "-":
        print(text)
    else:
        with open(args.out, "w") as handle:
            handle.write(text)
    summary = tracer.summary()
    print(f"wrote {args.out}: {event_count} events "
          f"({summary['events_dropped']} dropped) over "
          f"{summary['cycles']:,} cycles", file=sys.stderr)
    by_kind = summary["by_kind"]
    if by_kind:
        rows = [[name, f"{count:,}"]
                for name, count in sorted(by_kind.items())]
        print(format_table("Recorded events", ["kind", "count"], rows),
              file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    from .errors import TraceError
    from .obs import PhaseTimer, Tracer, build_report, format_report

    timer = PhaseTimer()
    with timer.phase("setup"):
        try:
            config, workload = _machine_inputs(args)
        except TraceError as exc:
            # A zero-event trace file (or any unloadable trace) must
            # exit with a message, not a traceback — a report over no
            # events has no baseline to divide by anyway.
            print(f"report: {exc}", file=sys.stderr)
            return 1
    if workload.total_accesses == 0:
        print(f"report: workload {workload.name!r} contains no "
              "memory accesses; nothing to report", file=sys.stderr)
        return 1
    with timer.phase("simulate.baseline"):
        baseline = SmpSystem(config.with_senss(False)).run(workload)
    with timer.phase("simulate.secured"):
        system = build_secure_system(config)
        tracer = Tracer(events=False).attach(system)  # metrics only
        secured = system.run(workload)
    report = build_report(baseline, secured,
                          workload=workload.name,
                          num_cpus=workload.num_cpus,
                          scale=args.scale,
                          histograms=tracer.histogram_summaries(),
                          timings=timer.as_dict(),
                          engine_backend=system.engine_backend)
    # Write the JSON before printing: a truncated stdout pipe
    # (BrokenPipeError, e.g. `... | head`) must not lose the report.
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}", file=sys.stderr)
    print(format_report(report))
    return 0


def _cmd_sweep(args) -> int:
    config = e6000_config(num_processors=args.cpus, l2_mb=4)
    if args.workload.endswith(".trace"):
        from .workloads.tracefile import load_workload
        workload = load_workload(args.workload)
        if workload.num_cpus > args.cpus:
            config = config.with_processors(workload.num_cpus)
    else:
        workload = generate(args.workload, args.cpus, scale=args.scale)
    baseline = SmpSystem(config.with_senss(False)).run(workload)
    rows = []
    for interval in args.intervals:
        secured = build_secure_system(
            config.with_auth_interval(interval)).run(workload)
        rows.append([interval,
                     f"{slowdown_percent(baseline, secured):+.3f}",
                     f"{traffic_increase_percent(baseline, secured):+.3f}"])
    print(format_table(
        f"Authentication interval sweep — {args.workload}, "
        f"{args.cpus}P, 4M L2",
        ["interval", "slowdown %", "traffic %"], rows))
    return 0


def _profile_config(kind: str, args):
    config = e6000_config(num_processors=args.cpus, l2_mb=args.l2_mb,
                          senss_enabled=(kind != "baseline"))
    if kind == "integrated":
        config = config.with_memprotect(encryption_enabled=True,
                                        integrity_enabled=True)
    return config.with_engine(getattr(args, "engine", "auto"))


class _ExclusiveTimer:
    """Wall-clock buckets with exclusive (self-time) accounting.

    Wrapped callables form a stack: a child's elapsed time is
    subtracted from its enclosing wrapped caller, so nested hot paths
    (a verify climb whose node fetch re-enters the pad machinery) are
    attributed exactly once.
    """

    def __init__(self):
        self.buckets = {}
        self._stack = []

    def wrap(self, owner, method_name: str, bucket: str) -> None:
        import time

        func = getattr(owner, method_name)
        buckets = self.buckets
        stack = self._stack
        perf = time.perf_counter
        buckets.setdefault(bucket, 0.0)

        def wrapper(*args, **kwargs):
            start = perf()
            stack.append(0.0)
            try:
                return func(*args, **kwargs)
            finally:
                elapsed = perf() - start
                child = stack.pop()
                buckets[bucket] += elapsed - child
                if stack:
                    stack[-1] += elapsed

        setattr(owner, method_name, wrapper)


#: breakdown bucket -> the memprotect methods it aggregates
#: ("verify climb" also absorbs the coherent node fetches a climb or
#: node update triggers — the CHash cost the paper attributes to L2
#: pollution and bus contention).
_BREAKDOWN_BUCKETS = (
    ("verify climb", "layer", ("_verify_climb", "_update_parent_hash")),
    ("leaf hashing", "hash_engine", ("issue",)),
    ("pad generation", "aes_engine", ("issue",)),
    ("pad-cache coherence", "directory", ("on_fetch", "on_writeback")),
)


def _profile_breakdown(args, workload) -> None:
    """One instrumented integrated run; prints the memprotect split."""
    import time

    from .sim.sweep import build_system

    system = build_system(_profile_config("integrated", args))
    layer = system.memprotect
    timer = _ExclusiveTimer()
    owners = {"layer": layer, "hash_engine": layer.hash_engine,
              "aes_engine": layer.aes_engine,
              "directory": layer.directory}
    for bucket, owner_name, methods in _BREAKDOWN_BUCKETS:
        for method in methods:
            timer.wrap(owners[owner_name], method, bucket)
    for pad_cache in layer.pad_caches:
        for method in ("lookup", "install", "invalidate"):
            timer.wrap(pad_cache, method, "pad-cache coherence")
    # The callbacks themselves: what remains after the buckets above
    # is the layer's own dispatch (directory checks, counter bumps,
    # pad bus messages).
    timer.wrap(layer, "on_memory_fetch", "memprotect dispatch")
    timer.wrap(layer, "on_writeback", "memprotect dispatch")

    start = time.perf_counter()
    system.run(workload)
    total = time.perf_counter() - start

    rows = []
    accounted = 0.0
    order = [bucket for bucket, _, _ in _BREAKDOWN_BUCKETS]
    order.append("memprotect dispatch")
    for bucket in order:
        seconds = timer.buckets.get(bucket, 0.0)
        accounted += seconds
        rows.append([bucket, f"{seconds * 1e3:,.1f}",
                     f"{seconds / total * 100:5.1f}%"])
    rows.append(["core simulator (caches/bus/coherence)",
                 f"{(total - accounted) * 1e3:,.1f}",
                 f"{(total - accounted) / total * 100:5.1f}%"])
    rows.append(["total", f"{total * 1e3:,.1f}", "100.0%"])
    print(format_table(
        f"Memprotect time split — integrated, {args.workload}, "
        f"{args.cpus}P, {args.l2_mb}M L2, scale {args.scale:g} "
        "(one instrumented run; verify climb includes the coherent "
        "node fetches it triggers)",
        ["bucket", "ms", "share"], rows))


def _cmd_profile(args) -> int:
    import time

    from .sim.sweep import build_system

    workload = generate(args.workload, args.cpus, scale=args.scale,
                        seed=args.seed)
    accesses = workload.total_accesses
    rows = []
    backend = None
    for kind in args.configs:
        config = _profile_config(kind, args)
        best = None
        result = None
        for _ in range(max(1, args.repeats)):
            system = build_system(config)
            backend = system.engine_backend
            start = time.perf_counter()
            result = system.run(workload)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
        rows.append([kind, backend, f"{accesses / best:,.0f}",
                     f"{result.cycles / best / 1e6:,.1f}",
                     f"{best:.3f}"])
    print(format_table(
        f"Engine throughput — {args.workload}, {args.cpus}P, "
        f"{args.l2_mb}M L2, scale {args.scale:g} "
        f"({accesses} accesses)",
        ["config", "backend", "accesses/s", "Mcycles/s", "seconds"],
        rows))

    from .sim.checkpoint import DEFAULT_CHECKPOINT_DIR, CheckpointStore
    if DEFAULT_CHECKPOINT_DIR.is_dir():
        stats = CheckpointStore(DEFAULT_CHECKPOINT_DIR).stats()
        rate = stats["hit_rate"]
        print(f"checkpoint store  : {stats['count']} snapshots, "
              f"{stats['bytes'] / 1e6:.1f} MB, "
              f"hit rate "
              f"{'-' if rate is None else format(rate, '.0%')} "
              f"({stats['hits']} hits / {stats['misses']} misses)")

    if args.breakdown:
        _profile_breakdown(args, workload)

    if args.cprofile:
        import cProfile
        import pstats
        config = _profile_config(args.configs[0], args)
        system = build_system(config)
        profiler = cProfile.Profile()
        profiler.enable()
        system.run(workload)
        profiler.disable()
        pstats.Stats(profiler).sort_stats("tottime").print_stats(15)
    return 0


def _cmd_overhead() -> int:
    report = compute_overhead(e6000_config())
    print(format_table("SHU hardware overhead (section 7.1)",
                       ["quantity", "value"], list(report.rows())))
    return 0


def _cmd_attacks() -> int:
    from repro.core.attacks import (DropAttack, SecureBusFabric,
                                    SpoofAttack, SwapAttack)
    from repro.core.authentication import AuthenticationManager
    from repro.core.shu import SecurityHardwareUnit
    from repro.errors import AuthenticationFailure, SpoofDetected

    def detected(attacker) -> str:
        members = set(range(4))
        shus = [SecurityHardwareUnit(pid, max_processors=8)
                for pid in range(4)]
        key = bytes(range(16))
        for shu in shus:
            shu.join_group(1, members, key,
                           bytes([0xA0 + i for i in range(16)]),
                           bytes([0x50 + i for i in range(16)]),
                           auth_interval=8)
        manager = AuthenticationManager(sorted(members), 8, 1)
        fabric = SecureBusFabric(shus, 1, manager, attacker)
        try:
            for index in range(16):
                fabric.transmit(index % 4, bytes([index] * 32))
            fabric.finish()
        except (AuthenticationFailure, SpoofDetected):
            return "DETECTED"
        return "missed"

    rows = [
        ["Type 1: simple drop", detected(DropAttack({3: [2]}))],
        ["Type 1: split-group drop",
         detected(DropAttack({3: [2, 3], 4: [0, 1]}))],
        ["Type 2: swap", detected(SwapAttack(first_index=2))],
        ["Type 3: spoof to claimed PID",
         detected(SpoofAttack(1, 1, 2, bytes(32), [2]))],
        ["Type 3: spoof to other member",
         detected(SpoofAttack(1, 1, 2, bytes(32), [3]))],
    ]
    print(format_table("SENSS attack detection", ["attack", "result"],
                       rows))
    return 0


def _cmd_faults(args) -> int:
    from .faults.campaign import run_campaign, verify_identity

    report = run_campaign(
        kinds=tuple(args.kinds) if args.kinds else FaultKind.ALL,
        policies=tuple(args.policies), workload=args.workload,
        cpus=args.cpus, scale=args.scale, seed=args.seed,
        interval=args.interval, record_diff=args.record_diff,
        fork=not args.no_fork, trigger=args.trigger)
    if args.verify_identity:
        identity = verify_identity(workload=args.workload,
                                   cpus=args.cpus, scale=args.scale,
                                   seed=args.seed)
        report["identity"] = identity

    rows = []
    for entry in report["entries"]:
        row = [
            entry["kind"], entry["policy"],
            "yes" if entry["detected"] else
            ("masked" if entry["masked"] else "NO"),
            entry["mechanism"] or "-",
            str(entry["latency_tx"]) if entry["detected"] else "-",
            f"{entry['latency_cycles']:,}" if entry["detected"] else "-",
            "completed" if entry["completed"] else "halted",
        ]
        if args.record_diff:
            divergence = entry["divergence"]
            first = divergence.get("first_divergence")
            row.append("none" if first is None else
                       f"@{first['cycle']:,} ({first['event']})")
        rows.append(row)
    headers = ["fault", "policy", "detected", "mechanism",
               "latency(tx)", "latency(cyc)", "run"]
    if args.record_diff:
        headers.append("diverges vs clean")
    print(format_table(
        f"Fault-injection campaign — {args.workload}, {args.cpus}P, "
        f"auth interval {args.interval}",
        headers, rows))
    print(f"all detected      : {report['all_detected']}")
    print(f"within interval   : {report['within_interval']}")
    if report.get("fork"):
        print(f"forked cells      : {report['forked_cells']}"
              f"/{len(report['entries'])}")
    if args.verify_identity:
        print(f"identity w/o fault: {report['identity']['identical']}")

    # Write the JSON before deciding the exit code so CI artifacts
    # exist even for a failing matrix.
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}", file=sys.stderr)
    ok = report["all_detected"] and report["within_interval"]
    if args.verify_identity:
        ok = ok and report["identity"]["identical"]
    return 0 if ok else 1


def _record_point(args):
    """The SweepPoint the record-command machine flags describe."""
    from .sim.sweep import SweepPoint
    if args.workload.endswith(".trace"):
        raise SystemExit("record needs a registry workload name; "
                         ".trace files cannot be re-generated by a "
                         "replay")
    return SweepPoint(args.workload, _machine_config(args),
                      scale=args.scale, seed=args.seed)


def _print_recording_summary(recording, path) -> None:
    snapshot_count = len(recording.snapshots)
    cycles = recording.cycles
    print(f"wrote {path}: {recording.events_total:,} events, "
          f"{snapshot_count} stats snapshots, "
          + (f"{cycles:,} cycles" if cycles is not None
             else f"halted ({recording.halted})")
          + f", fingerprint {recording.fingerprint[:12]}",
          file=sys.stderr)


def _cmd_record(args) -> int:
    from .obs import PhaseTimer, record_run

    point = _record_point(args)
    timer = PhaseTimer()
    with timer.phase("record"):
        recording = record_run(point,
                               snapshot_every=args.snapshot_every)
    if args.timings:
        # Timings are outside the checksum, so stamping them post-hoc
        # keeps the recording valid (but breaks byte-identity between
        # repeat recordings — hence opt-in).
        recording.payload["timings"] = timer.as_dict()
    path = recording.save(args.out)
    _print_recording_summary(recording, path)
    return 0


def _cmd_replay(args) -> int:
    from .errors import ConfigError, TraceError
    from .obs import Recording, diff_recordings, format_diff, \
        replay_recording

    try:
        source = Recording.load(args.recording)
        replayed = replay_recording(source, perturb=args.perturb,
                                    snapshot_every=args.snapshot_every)
    except (ConfigError, TraceError) as exc:
        print(f"replay: {exc}", file=sys.stderr)
        return 1
    out = args.out
    if out is None:
        base = args.recording
        if base.endswith(".json"):
            base = base[:-len(".json")]
        out = f"{base}.replay.json"
    path = replayed.save(out)
    _print_recording_summary(replayed, path)
    if not args.diff:
        return 0
    report = diff_recordings(source, replayed)
    print(format_diff(report))
    return 0 if report["identical"] else 1


def _cmd_diff(args) -> int:
    from .errors import TraceError
    from .obs import Recording, diff_recordings, format_diff

    try:
        report = diff_recordings(Recording.load(args.recording_a),
                                 Recording.load(args.recording_b))
    except TraceError as exc:
        print(f"diff: {exc}", file=sys.stderr)
        return 2
    # Write the JSON before printing (pipe-truncation safety, same
    # rationale as report/faults).
    if args.json_out:
        with open(args.json_out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}", file=sys.stderr)
    print(format_diff(report))
    return 0 if report["identical"] else 1


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .serve.http import ServeHTTP
    from .serve.scheduler import Scheduler
    from .sim.sweep import ResultCache

    if args.resume and args.state_dir is None:
        raise SystemExit("--resume needs --state-dir (the journal "
                         "lives there)")

    async def main() -> None:
        journal = None
        if args.state_dir is not None:
            from .serve.journal import JobJournal
            journal = JobJournal(args.state_dir)
        scheduler = Scheduler(cache=ResultCache(
                                  args.cache_dir,
                                  max_mb=args.cache_max_mb),
                              max_workers=args.workers,
                              max_queued_per_tenant=args.max_queued,
                              warmup=not args.no_warmup,
                              record_dir=args.record_dir,
                              journal=journal,
                              point_timeout=args.point_timeout,
                              retries=args.retries,
                              checkpoint_dir=args.checkpoint_dir,
                              checkpoint_hot=args.checkpoint_hot)
        await scheduler.start()
        if args.resume:
            resumed = scheduler.resume()
            if resumed:
                print("resumed "
                      + ", ".join(job.id for job in resumed)
                      + " from the journal", file=sys.stderr)
        elif journal is not None:
            journal.rotate()  # archive a stale journal, don't replay
        server = await ServeHTTP(scheduler, args.host,
                                 args.port).start()
        print(f"repro serve listening on "
              f"http://{args.host}:{server.port} "
              f"({scheduler.max_workers} warm workers, "
              f"cache {args.cache_dir}"
              + (f", recordings {args.record_dir}"
                 if args.record_dir else "")
              + (f", checkpoints {args.checkpoint_dir}"
                 if args.checkpoint_dir else "")
              + (f", journal {args.state_dir}"
                 if args.state_dir else "") + ")", file=sys.stderr)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - win32
                pass
        await stop.wait()
        print("draining: finishing accepted jobs...", file=sys.stderr)
        if await server.drain(timeout=args.drain_timeout):
            print("drained.", file=sys.stderr)
        else:
            print("drain timed out; unfinished jobs remain "
                  "journalled for --resume.", file=sys.stderr)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - no signal handler
        pass
    return 0


def _submit_points(args):
    from .sim.sweep import SweepPoint
    if args.workload.endswith(".trace"):
        raise SystemExit("submit needs a registry workload name; "
                         ".trace files are local to this process")
    config = _machine_config(args)
    return [SweepPoint(args.workload, config, scale=args.scale,
                       seed=args.seed + offset)
            for offset in range(max(1, args.seeds))]


def _cmd_submit(args) -> int:
    from .serve.client import ServeClient

    client = ServeClient(args.host, args.port)
    job = client.submit(_submit_points(args), tenant=args.tenant,
                        weight=args.weight, record=args.record)
    print(f"{job['id']}: {job['points']} points queued as tenant "
          f"{job['tenant']!r} (weight {job['weight']})",
          file=sys.stderr)
    if not args.follow:
        print(job["id"])
        return 0
    for event in client.stream_events(job["id"]):
        print(json.dumps(event, sort_keys=True))
    final = client.job(job["id"])
    rows = []
    for index, result in enumerate(client.results(job["id"])):
        rows.append([index, args.seed + index,
                     f"{result.cycles:,}" if result else "-",
                     f"{result.total_bus_transactions:,}"
                     if result else "-"])
    print(format_table(
        f"{job['id']} — {args.workload}, {args.cpus}P "
        f"[{final['state']}]",
        ["point", "seed", "cycles", "bus tx"], rows),
        file=sys.stderr)
    return 0 if final["state"] == "done" else 1


def _cmd_jobs(args) -> int:
    from .serve.client import ServeClient

    client = ServeClient(args.host, args.port)
    jobs = client.jobs(args.tenant)
    rows = []
    for job in jobs:
        quarantined = job.get("quarantined", [])
        rows.append([job["id"], job["tenant"], job["state"],
                     f"{job['completed']}/{job['points']}",
                     job["failed"] or "",
                     len(quarantined) or ""])
    print(format_table(f"jobs @ {args.host}:{args.port}",
                       ["id", "tenant", "state", "done", "failed",
                        "quar"],
                       rows))
    if args.no_reasons:
        return 0
    # Failure reasons used to be visible only in server logs /
    # SweepError.failures; surface them per point here.
    for job in jobs:
        if not job["failed"]:
            continue
        quarantined = set(job.get("quarantined", []))
        for index, error in enumerate(client.errors(job["id"])):
            if error is None:
                continue
            marker = " [quarantined]" if index in quarantined else ""
            print(f"  {job['id']} point {index}{marker}: {error}")
    return 0


def _cmd_chaos(args) -> int:
    from pathlib import Path

    from .chaos import run_chaos

    kinds = [kind.strip() for kind in args.faults.split(",")
             if kind.strip()]
    report = run_chaos(
        workload=args.workload, cpus=args.cpus, scale=args.scale,
        points=args.points, seed=args.seed, faults=kinds,
        workers=args.workers, point_timeout=args.point_timeout,
        record=args.record, work_dir=args.dir)
    print(report.format())
    if args.json is not None:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=1, sort_keys=True)
            + "\n")
        print(f"chaos report written to {args.json}", file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_workloads() -> int:
    for name in SPLASH2_NAMES:
        workload = generate(name, 2, scale=0.05)
        print(f"{name:8s} {workload.total_accesses:7d} refs at scale "
              f"0.05; metadata: {workload.metadata}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "profile":
            return _cmd_profile(args)
        if args.command == "overhead":
            return _cmd_overhead()
        if args.command == "attacks":
            return _cmd_attacks()
        if args.command == "faults":
            return _cmd_faults(args)
        if args.command == "record":
            return _cmd_record(args)
        if args.command == "replay":
            return _cmd_replay(args)
        if args.command == "diff":
            return _cmd_diff(args)
        if args.command == "workloads":
            return _cmd_workloads()
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "submit":
            return _cmd_submit(args)
        if args.command == "jobs":
            return _cmd_jobs(args)
        if args.command == "chaos":
            return _cmd_chaos(args)
    except BrokenPipeError:
        # Output truncated by a closed pipe (e.g. `| head`): not an
        # error from the user's point of view.
        return 0
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
