"""SENSS: Security Enhancement to Symmetric Shared Memory
Multiprocessors — a full reproduction of the HPCA 2005 paper.

Public API tour
---------------

Configuration and machines::

    from repro import e6000_config, build_secure_system, SmpSystem
    config = e6000_config(num_processors=4, l2_mb=4, auth_interval=100)
    secure = build_secure_system(config)
    baseline = SmpSystem(config.with_senss(False))

Workloads and metrics::

    from repro import generate, slowdown_percent
    workload = generate("fft", num_cpus=4, scale=0.5)
    base_result = baseline.run(workload)
    senss_result = secure.run(workload)
    print(slowdown_percent(base_result, senss_result))

Functional security stack (real AES, real chained MACs, attacks)::

    from repro.core import SecurityHardwareUnit, ProgramDistributor
    from repro.core.attacks import SecureBusFabric, DropAttack

See DESIGN.md for the complete system inventory and the experiment
index mapping every paper figure/table to a bench target.
"""

from .config import (BusConfig, CacheConfig, CryptoConfig, MemProtectConfig,
                     SenssConfig, SystemConfig, e6000_config)
from .core.senss import SenssBusLayer, build_secure_system
from .errors import (AuthenticationFailure, BusError, CoherenceError,
                     ConfigError, CryptoError, GroupTableFull,
                     IntegrityViolation, ReproError, SimulationError,
                     SpoofDetected, TraceError)
from .obs import Tracer
from .smp.metrics import (SimulationResult, slowdown_percent,
                          traffic_increase_percent)
from .smp.system import SmpSystem
from .smp.trace import MemoryAccess, Workload
from .workloads.registry import SPLASH2_NAMES, generate

__version__ = "1.0.0"

__all__ = [
    "AuthenticationFailure",
    "BusConfig",
    "BusError",
    "CacheConfig",
    "CoherenceError",
    "ConfigError",
    "CryptoConfig",
    "CryptoError",
    "GroupTableFull",
    "IntegrityViolation",
    "MemProtectConfig",
    "MemoryAccess",
    "ReproError",
    "SPLASH2_NAMES",
    "SenssBusLayer",
    "SenssConfig",
    "SimulationError",
    "SimulationResult",
    "SmpSystem",
    "SpoofDetected",
    "SystemConfig",
    "TraceError",
    "Tracer",
    "Workload",
    "build_secure_system",
    "e6000_config",
    "generate",
    "slowdown_percent",
    "traffic_increase_percent",
]
