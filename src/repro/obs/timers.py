"""Wall-clock phase timers.

Simulator cycles measure the *modeled* machine; these timers measure
the *simulator itself* — where a CLI run or a sweep worker spends real
seconds (workload generation, simulation, cache I/O). They aggregate
into plain ``{phase: seconds}`` dicts so sweep workers can ship them
across process boundaries and reports can merge them.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict


class PhaseTimer:
    """Accumulates wall-clock seconds per named phase."""

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @contextmanager
    def phase(self, name: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def merge(self, seconds_by_phase: Dict[str, float]) -> None:
        for name, seconds in seconds_by_phase.items():
            self.add(name, seconds)

    def seconds(self, name: str) -> float:
        return self._seconds.get(name, 0.0)

    def as_dict(self) -> Dict[str, float]:
        """``{phase: seconds}``, rounded for JSON reports."""
        return {name: round(seconds, 6)
                for name, seconds in sorted(self._seconds.items())}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{name}={seconds:.3f}s"
                         for name, seconds in sorted(self._seconds.items()))
        return f"PhaseTimer({body})"
