"""The trace-event schema and its validator.

:data:`TRACE_EVENT_SCHEMA` is the machine-readable contract for what
:func:`repro.obs.export.to_chrome_trace` emits — per event name: its
category, phase, and required ``args`` fields with expected types.
:func:`validate_chrome_trace` checks a payload against it (hand-rolled
so the repo needs no jsonschema dependency); the CLI ``trace`` command
validates every trace before writing it, CI validates the smoke
trace, and tests/obs/test_schema.py asserts every emitted kind
conforms.

Shape of a valid payload::

    {"traceEvents": [event, ...],
     "otherData": {"schema_version": 1, ...}}

where every event carries ``name``/``cat``/``ph``/``ts``/``pid``/
``tid``; ``ph == "X"`` adds a non-negative ``dur``; ``ph == "i"``
adds scope ``s``; ``ph == "C"`` is a counter sample (all-integer
``args`` render as a Perfetto counter track); ``ph == "M"`` is track
metadata.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import TraceError

#: event-name contract: category, phase, and required args typing
TRACE_EVENT_SCHEMA: Dict[str, Dict[str, object]] = {
    # bus transactions: one span per granted transaction, named by type
    "BusRd": {"cat": "bus", "ph": "X",
              "args": {"address": int, "cache_to_cache": bool}},
    "BusRdX": {"cat": "bus", "ph": "X",
               "args": {"address": int, "cache_to_cache": bool}},
    "BusUpgr": {"cat": "bus", "ph": "X",
                "args": {"address": int, "cache_to_cache": bool}},
    "WB": {"cat": "bus", "ph": "X",
           "args": {"address": int, "cache_to_cache": bool}},
    "Auth00": {"cat": "bus", "ph": "X",
               "args": {"address": int, "cache_to_cache": bool}},
    "PadInv01": {"cat": "bus", "ph": "X",
                 "args": {"address": int, "cache_to_cache": bool}},
    "PadReq10": {"cat": "bus", "ph": "X",
                 "args": {"address": int, "cache_to_cache": bool}},
    "HashFetch": {"cat": "bus", "ph": "X",
                  "args": {"address": int, "cache_to_cache": bool}},
    "HashWB": {"cat": "bus", "ph": "X",
               "args": {"address": int, "cache_to_cache": bool}},
    # memory-system spans
    "miss": {"cat": "mem", "ph": "X",
             "args": {"address": int, "write": bool, "supplier": str,
                      "dirty_intervention": bool}},
    "upgrade": {"cat": "mem", "ph": "X", "args": {"address": int}},
    # SENSS security events
    "mask_stall": {"cat": "senss", "ph": "X",
                   "args": {"group": int, "wait_cycles": int}},
    "auth_checkpoint": {"cat": "senss", "ph": "i",
                        "args": {"group": int}},
    # memory-protection events
    "pad_cache_hit": {"cat": "memprotect", "ph": "i",
                      "args": {"address": int}},
    "pad_cache_miss": {"cat": "memprotect", "ph": "i",
                       "args": {"address": int}},
    "hash_verify": {"cat": "memprotect", "ph": "i",
                    "args": {"address": int, "outcome": str}},
    "hash_update": {"cat": "memprotect", "ph": "i",
                    "args": {"address": int, "outcome": str}},
    # engine span per CPU
    "execute": {"cat": "run", "ph": "X", "args": {}},
    # fault-injection events (repro.faults)
    "fault_inject": {"cat": "faults", "ph": "i",
                     "args": {"kind": str}},
    "fault_detect": {"cat": "faults", "ph": "i",
                     "args": {"kind": str, "mechanism": str,
                              "latency_cycles": int}},
    # sweep-service job lifecycle (repro.serve): the NDJSON stream a
    # server emits per job reuses this schema as its wire format, so
    # a captured stream loads directly in Perfetto. ts is µs since
    # server start, pid the job serial, tid the point index.
    "job_accepted": {"cat": "serve", "ph": "i",
                     "args": {"job": str, "tenant": str,
                              "points": int}},
    "point_done": {"cat": "serve", "ph": "X",
                   "args": {"index": int, "cycles": int,
                            "source": str}},
    "point_failed": {"cat": "serve", "ph": "i",
                     "args": {"index": int, "error": str}},
    # resilience plane (docs/resilience.md): a point re-entering the
    # queue after a failure, and a journalled job re-admitted by
    # `repro serve --resume`
    "point_retry": {"cat": "serve", "ph": "i",
                    "args": {"index": int, "attempt": int,
                             "error": str}},
    "job_resumed": {"cat": "serve", "ph": "i",
                    "args": {"job": str, "points": int}},
    "job_done": {"cat": "serve", "ph": "i",
                 "args": {"job": str, "state": str}},
    # server-wide counter sample (Chrome counter track, ph "C"),
    # emitted right before each job_done so Perfetto renders the
    # serve.* counters as a track alongside job lifecycles
    "serve.counters": {"cat": "serve", "ph": "C",
                       "args": {"queue_depth": int, "inflight": int,
                                "executed": int, "cache_hits": int,
                                "deduped": int, "failed": int}},
}

#: names allowed for phase-"M" track metadata events
METADATA_NAMES = ("process_name", "thread_name")

#: enumerated values for string-typed args
ARG_ENUMS = {
    ("hash_verify", "outcome"): ("root", "l2_hit", "fetch"),
    ("hash_update", "outcome"): ("root", "write", "clipped"),
    ("fault_inject", "kind"): ("drop", "reorder", "spoof", "bit-flip",
                               "mask-desync", "pad-corrupt",
                               "seq-corrupt", "merkle-flip"),
    ("fault_detect", "kind"): ("drop", "reorder", "spoof", "bit-flip",
                               "mask-desync", "pad-corrupt",
                               "seq-corrupt", "merkle-flip"),
    ("fault_detect", "mechanism"): ("mac_interval", "spoof_self",
                                    "pad_coherence", "merkle_verify"),
    ("point_done", "source"): ("executed", "cache", "dedup"),
    ("job_done", "state"): ("done", "failed", "cancelled"),
}


def _fail(index: int, message: str) -> None:
    raise TraceError(f"trace event [{index}]: {message}")


def _check_int(index: int, event: dict, field: str,
               minimum: int = 0) -> None:
    value = event.get(field)
    # bool is an int subclass; reject it for count/time fields.
    if not isinstance(value, int) or isinstance(value, bool):
        _fail(index, f"{field!r} must be an integer, got {value!r}")
    if value < minimum:
        _fail(index, f"{field!r} must be >= {minimum}, got {value}")


def validate_event(index: int, event) -> None:
    """Validate one trace event dict; raises TraceError on violation."""
    if not isinstance(event, dict):
        _fail(index, f"not an object: {event!r}")
    name = event.get("name")
    if not isinstance(name, str) or not name:
        _fail(index, "missing event name")
    phase = event.get("ph")
    if phase == "M":
        if name not in METADATA_NAMES:
            _fail(index, f"unknown metadata event {name!r}")
        if not isinstance(event.get("args", {}).get("name"), str):
            _fail(index, "metadata event needs a string args.name")
        return
    contract = TRACE_EVENT_SCHEMA.get(name)
    if contract is None:
        _fail(index, f"unknown event name {name!r}")
    if event.get("cat") != contract["cat"]:
        _fail(index, f"{name!r} must have cat {contract['cat']!r}, "
                     f"got {event.get('cat')!r}")
    if phase != contract["ph"]:
        _fail(index, f"{name!r} must have ph {contract['ph']!r}, "
                     f"got {phase!r}")
    _check_int(index, event, "ts")
    _check_int(index, event, "pid")
    _check_int(index, event, "tid")
    if phase == "X":
        _check_int(index, event, "dur")
    elif phase == "i":
        if event.get("s") not in ("t", "p", "g"):
            _fail(index, f"instant {name!r} needs scope s in t/p/g")
    args = event.get("args")
    if not isinstance(args, dict):
        _fail(index, f"{name!r} needs an args object")
    for field, expected in contract["args"].items():
        if field not in args:
            _fail(index, f"{name!r} missing required arg {field!r}")
        value = args[field]
        if expected is bool:
            if not isinstance(value, bool):
                _fail(index, f"{name!r} arg {field!r} must be a bool")
        elif expected is int:
            if not isinstance(value, int) or isinstance(value, bool):
                _fail(index, f"{name!r} arg {field!r} must be an int")
        elif expected is str:
            if not isinstance(value, str):
                _fail(index, f"{name!r} arg {field!r} must be a string")
            allowed = ARG_ENUMS.get((name, field))
            if allowed is not None and value not in allowed:
                _fail(index, f"{name!r} arg {field!r} must be one of "
                             f"{allowed}, got {value!r}")


def validate_chrome_trace(payload) -> int:
    """Validate a full trace payload; returns the event count.

    Raises :class:`~repro.errors.TraceError` naming the first
    offending event and field.
    """
    if not isinstance(payload, dict):
        raise TraceError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise TraceError("trace payload needs a traceEvents list")
    other = payload.get("otherData")
    if not isinstance(other, dict) or \
            not isinstance(other.get("schema_version"), int):
        raise TraceError(
            "trace payload needs otherData.schema_version")
    for index, event in enumerate(events):
        validate_event(index, event)
    return len(events)


def event_names(payload) -> List[str]:
    """Distinct non-metadata event names present, sorted."""
    return sorted({event["name"] for event in payload["traceEvents"]
                   if event.get("ph") != "M"})
