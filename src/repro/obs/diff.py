"""Structured diff of two recordings: where did the timing diverge?

:func:`diff_recordings` aligns the two event streams and reduces the
comparison to the questions a cycle-drift investigation actually
asks:

- **first divergence** — the earliest event index where the ordered
  streams disagree (rendered human-readably: name, category, cycle,
  CPU, decoded payload for both sides);
- **per-phase deltas** — authentication checkpoints split a run into
  phases; aligned snapshot *k* vs snapshot *k* gives the cycle skew at
  each boundary and the per-phase segment delta, so a drift localizes
  to the interval where the skew jumped;
- **per-counter deltas** — final StatsRegistry values side by side,
  only the counters that differ;
- **divergence histogram** — events paired per (CPU, kind) lane by
  occurrence index; the distribution of cycle skews (power-of-two
  buckets) shows whether a perturbation shifted everything uniformly
  or knocked a few events far out of place.

Two recordings are ``identical`` when events, snapshots, final result
and halt state all match — fingerprints, perturbation labels and
wall-clock timings are metadata and never count as divergence. The
diff of a recording against its own unperturbed replay is empty
(pinned by tests/obs/test_replay_diff.py).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .recording import Recording
from .ring import TraceEvent

#: diff report schema version (bump with any shape change)
DIFF_SCHEMA_VERSION = 1

#: cap on per-phase rows carried in the JSON report
MAX_PHASE_ROWS = 64


def _render(event: Optional[TraceEvent]) -> Optional[Dict[str, object]]:
    """Human-readable event rendering (reuses the Perfetto decoder)."""
    if event is None:
        return None
    from .export import _convert
    converted = _convert(event)
    return {"name": converted["name"], "category": converted["cat"],
            "cycle": event.cycle, "cpu": event.cpu, "dur": event.dur,
            "args": converted["args"]}


def _first_divergence(events_a: List[TraceEvent],
                      events_b: List[TraceEvent]
                      ) -> Optional[Dict[str, object]]:
    for index, (left, right) in enumerate(zip(events_a, events_b)):
        if left != right:
            return {"index": index, "a": _render(left),
                    "b": _render(right)}
    if len(events_a) != len(events_b):
        index = min(len(events_a), len(events_b))
        left = events_a[index] if index < len(events_a) else None
        right = events_b[index] if index < len(events_b) else None
        return {"index": index, "a": _render(left),
                "b": _render(right)}
    return None


def _phase_deltas(a: Recording, b: Recording) -> Dict[str, object]:
    """Aligned snapshot-boundary cycle skews and segment deltas."""
    snaps_a, snaps_b = a.snapshots, b.snapshots
    aligned = min(len(snaps_a), len(snaps_b))
    rows: List[Dict[str, int]] = []
    previous_a = previous_b = 0
    for ordinal in range(aligned):
        cycle_a = snaps_a[ordinal]["cycle"]
        cycle_b = snaps_b[ordinal]["cycle"]
        segment_delta = (cycle_b - previous_b) - (cycle_a - previous_a)
        if cycle_a != cycle_b or segment_delta:
            rows.append({"ordinal": ordinal, "cycle_a": cycle_a,
                         "cycle_b": cycle_b,
                         "skew": cycle_b - cycle_a,
                         "segment_delta": segment_delta})
        previous_a, previous_b = cycle_a, cycle_b
    return {
        "aligned": aligned,
        "extra_a": len(snaps_a) - aligned,
        "extra_b": len(snaps_b) - aligned,
        "diverged": len(rows),
        "rows": rows[:MAX_PHASE_ROWS],
        "truncated": max(0, len(rows) - MAX_PHASE_ROWS),
    }


def _counter_deltas(a: Recording, b: Recording
                    ) -> Dict[str, Dict[str, int]]:
    stats_a, stats_b = a.final_stats(), b.final_stats()
    deltas: Dict[str, Dict[str, int]] = {}
    for name in sorted(set(stats_a) | set(stats_b)):
        left = stats_a.get(name, 0)
        right = stats_b.get(name, 0)
        if left != right:
            deltas[name] = {"a": left, "b": right,
                            "delta": right - left}
    return deltas


def _skew_histogram(events_a: List[TraceEvent],
                    events_b: List[TraceEvent]) -> Dict[str, object]:
    """Pair events per (cpu, kind) lane by occurrence index; bucket
    the cycle skews (power-of-two on magnitude, zero counted apart)."""
    lanes_a: Dict[Tuple[int, int], List[int]] = {}
    lanes_b: Dict[Tuple[int, int], List[int]] = {}
    for event in events_a:
        lanes_a.setdefault((event.cpu, event.kind),
                           []).append(event.cycle)
    for event in events_b:
        lanes_b.setdefault((event.cpu, event.kind),
                           []).append(event.cycle)
    matched = zero = unmatched_a = unmatched_b = 0
    buckets: Dict[int, int] = {}
    max_skew = 0
    for lane in set(lanes_a) | set(lanes_b):
        cycles_a = lanes_a.get(lane, [])
        cycles_b = lanes_b.get(lane, [])
        paired = min(len(cycles_a), len(cycles_b))
        unmatched_a += len(cycles_a) - paired
        unmatched_b += len(cycles_b) - paired
        for position in range(paired):
            matched += 1
            skew = cycles_b[position] - cycles_a[position]
            if skew == 0:
                zero += 1
                continue
            magnitude = abs(skew)
            if magnitude > abs(max_skew):
                max_skew = skew
            buckets[magnitude.bit_length()] = \
                buckets.get(magnitude.bit_length(), 0) + 1
    bucket_rows = [[1 << (bucket - 1), (1 << bucket) - 1, count]
                   for bucket, count in sorted(buckets.items())]
    return {"matched": matched, "zero_skew": zero,
            "buckets": bucket_rows, "max_skew": max_skew,
            "unmatched_a": unmatched_a, "unmatched_b": unmatched_b}


def diff_recordings(a: Recording, b: Recording) -> Dict[str, object]:
    """The structured diff report dict (JSON-ready)."""
    identical = a.core_equal(b)
    events_a = list(a.events())
    events_b = list(b.events())
    cycles_a, cycles_b = a.cycles, b.cycles
    cycles: Optional[Dict[str, object]] = None
    if cycles_a is not None and cycles_b is not None:
        per_cpu_a = a.payload["result"]["per_cpu_cycles"]
        per_cpu_b = b.payload["result"]["per_cpu_cycles"]
        per_cpu_delta = [right - left for left, right
                         in zip(per_cpu_a, per_cpu_b)]
        cycles = {"a": cycles_a, "b": cycles_b,
                  "delta": cycles_b - cycles_a,
                  "per_cpu_delta": per_cpu_delta}
    return {
        "kind": "repro-recording-diff",
        "schema_version": DIFF_SCHEMA_VERSION,
        "identical": identical,
        "workload": dict(a.workload),
        "perturbation": b.perturbation or a.perturbation,
        "fingerprint_a": a.fingerprint,
        "fingerprint_b": b.fingerprint,
        "halted": {"a": a.halted, "b": b.halted},
        "events": {"total_a": len(events_a),
                   "total_b": len(events_b)},
        "first_divergence": None if identical
        else _first_divergence(events_a, events_b),
        "cycles": cycles,
        "phases": _phase_deltas(a, b),
        "counters": {} if identical else _counter_deltas(a, b),
        "histogram": _skew_histogram(events_a, events_b),
    }


def _event_line(side: Dict[str, object]) -> str:
    if side is None:
        return "(stream ended)"
    args = ", ".join(f"{name}={value}" for name, value
                     in sorted(side["args"].items()))
    return (f"{side['name']} [{side['category']}] cycle "
            f"{side['cycle']:,} cpu{side['cpu']}"
            + (f" ({args})" if args else ""))


def format_diff(report: Dict[str, object]) -> str:
    """Human-readable rendering of a diff report (CLI output)."""
    from ..analysis.report import format_table
    workload = report["workload"]
    perturbation = report["perturbation"]
    label = "none (determinism check)" if perturbation is None else \
        f"{perturbation['name']}={perturbation['value']}"
    sections: List[str] = []
    head = [
        ["workload", f"{workload['name']} ({workload['cpus']}P, "
                     f"scale {workload['scale']:g}, "
                     f"seed {workload['seed']})"],
        ["perturbation", label],
        ["identical", "yes" if report["identical"] else "NO"],
        ["events", f"{report['events']['total_a']:,} vs "
                   f"{report['events']['total_b']:,}"],
    ]
    halted = report["halted"]
    if halted["a"] or halted["b"]:
        head.append(["halted", f"a: {halted['a'] or '-'} / "
                               f"b: {halted['b'] or '-'}"])
    cycles = report["cycles"]
    if cycles is not None:
        head.append(["cycles", f"{cycles['a']:,} -> {cycles['b']:,} "
                               f"({cycles['delta']:+,})"])
    sections.append(format_table("Recording diff",
                                 ["field", "value"], head))

    if report["identical"]:
        return sections[0] + "\n\nrecordings are identical."

    divergence = report["first_divergence"]
    if divergence is not None:
        rows = [["index", f"{divergence['index']:,}"],
                ["a", _event_line(divergence["a"])],
                ["b", _event_line(divergence["b"])]]
        sections.append(format_table("First divergence",
                                     ["side", "event"], rows))

    phases = report["phases"]
    if phases["rows"]:
        rows = [[row["ordinal"], f"{row['cycle_a']:,}",
                 f"{row['cycle_b']:,}", f"{row['skew']:+,}",
                 f"{row['segment_delta']:+,}"]
                for row in phases["rows"]]
        title = (f"Phase deltas at auth checkpoints "
                 f"({phases['diverged']}/{phases['aligned']} "
                 "boundaries diverged"
                 + (f"; {phases['truncated']} rows truncated"
                    if phases["truncated"] else "") + ")")
        sections.append(format_table(
            title, ["phase", "cycle a", "cycle b", "skew",
                    "segment delta"], rows))

    counters = report["counters"]
    if counters:
        rows = [[name, f"{entry['a']:,}", f"{entry['b']:,}",
                 f"{entry['delta']:+,}"]
                for name, entry in counters.items()]
        sections.append(format_table(
            f"Counter deltas ({len(counters)} changed)",
            ["counter", "a", "b", "delta"], rows))

    histogram = report["histogram"]
    rows = [["0 (aligned)", "-", f"{histogram['zero_skew']:,}"]]
    rows += [[f"{low:,}", f"{high:,}", f"{count:,}"]
             for low, high, count in histogram["buckets"]]
    if histogram["unmatched_a"] or histogram["unmatched_b"]:
        rows.append(["unmatched", "-",
                     f"a:{histogram['unmatched_a']:,} "
                     f"b:{histogram['unmatched_b']:,}"])
    sections.append(format_table(
        f"Cycle-skew histogram ({histogram['matched']:,} events "
        f"paired per CPU/kind lane; max skew "
        f"{histogram['max_skew']:+,})",
        ["|skew| low", "|skew| high", "events"], rows))
    return "\n\n".join(sections)
