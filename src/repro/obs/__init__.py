"""Observability for the SENSS simulator: tracing, metrics, reports.

Three pieces, usable independently:

- :class:`Tracer` (+ :class:`EventRing`) — a ring-buffered columnar
  event tracer the bus, coherence, SENSS and memory-protection layers
  emit into via optional observer hooks; exports Chrome/Perfetto
  trace-event JSON (:func:`to_chrome_trace`) validated against
  :data:`~repro.obs.schema.TRACE_EVENT_SCHEMA`.
- :class:`~repro.sim.stats.Histogram` metrics — miss latency,
  mask-wait cycles, pad-cache reuse distance, authentication gaps —
  registered on the system's :class:`~repro.sim.stats.StatsRegistry`
  when a tracer attaches.
- :class:`PhaseTimer` + :func:`build_report` — wall-clock phase
  accounting and the mergeable JSON run reports behind
  ``python -m repro report``.
- :func:`record_run` / :func:`replay_recording` /
  :func:`diff_recordings` — deterministic run recordings, one-knob
  perturbation replays and structured divergence diffs
  (docs/record_replay.md) behind ``python -m repro
  record|replay|diff``.

The defining constraint (DESIGN.md §6d): with no tracer attached the
engine keeps its scratch-transaction fast route and results stay
bit-identical; attaching a tracer never changes simulated timing.

Quick start::

    from repro import build_secure_system, e6000_config, generate
    from repro.obs import Tracer, to_chrome_trace

    system = build_secure_system(e6000_config(num_processors=4))
    tracer = Tracer().attach(system)
    system.run(generate("fft", 4, scale=0.1))
    payload = to_chrome_trace(tracer)   # load in ui.perfetto.dev
"""

from .diff import DIFF_SCHEMA_VERSION, diff_recordings, format_diff
from .export import TRACE_SCHEMA_VERSION, to_chrome_trace
from .recording import (RECORDING_SCHEMA_VERSION, Recorder, Recording,
                        record_run)
from .replay import (PERTURBATIONS, apply_perturbation,
                     parse_perturbation, replay_recording)
from .report import REPORT_SCHEMA_VERSION, build_report, format_report
from .ring import EventKind, EventLog, EventRing, TraceEvent
from .schema import (TRACE_EVENT_SCHEMA, event_names,
                     validate_chrome_trace)
from .timers import PhaseTimer
from .tracer import TRACE_CATEGORIES, Tracer, parse_categories

__all__ = [
    "DIFF_SCHEMA_VERSION",
    "EventKind",
    "EventLog",
    "EventRing",
    "PERTURBATIONS",
    "PhaseTimer",
    "RECORDING_SCHEMA_VERSION",
    "REPORT_SCHEMA_VERSION",
    "Recorder",
    "Recording",
    "TRACE_CATEGORIES",
    "TRACE_EVENT_SCHEMA",
    "TRACE_SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "apply_perturbation",
    "build_report",
    "diff_recordings",
    "event_names",
    "format_diff",
    "format_report",
    "parse_categories",
    "parse_perturbation",
    "record_run",
    "replay_recording",
    "to_chrome_trace",
    "validate_chrome_trace",
]
