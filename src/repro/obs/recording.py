"""Deterministic run recordings (docs/record_replay.md).

A *recording* persists everything observable about one simulated run
in one self-describing JSON file:

- the full columnar trace-event stream (a lossless
  :class:`~repro.obs.ring.EventLog`, never a ring — wrap-around would
  read as divergence);
- :class:`~repro.sim.stats.StatsRegistry` snapshots taken at
  authentication-checkpoint boundaries (delta-encoded — each snapshot
  stores only the counters that changed since the previous one);
- the final :class:`~repro.smp.metrics.SimulationResult` (``None``
  when a fault-recovery ``halt`` ended the run early);
- the engine/config fingerprint (:func:`~repro.sim.sweep.point_key`,
  which already excludes the engine *backend* — backends are
  bit-identical, so recordings are backend-agnostic by construction)
  plus the full config and workload coordinates needed to re-run it.

Everything the simulator produces is deterministic, so the file is
deterministic too: the same (workload, scale, seed, config) always
serializes to the same bytes, under either engine backend (pinned by
tests/obs/test_recording.py). The only non-deterministic content —
optional wall-clock phase ``timings`` — is excluded from the embedded
checksum and from diffs, and is only stored when explicitly passed.

:func:`record_run` is the one-call entry point; replay and diffing
live in :mod:`repro.obs.replay` and :mod:`repro.obs.diff`.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..errors import ReproError, TraceError
from ..smp.metrics import SimulationResult
from .ring import EventLog, TraceEvent
from .tracer import Tracer

#: recording file schema version (bump with any shape change)
RECORDING_SCHEMA_VERSION = 1

#: canonical serialization knobs — compact and key-sorted, so equal
#: payloads are equal bytes
_DUMP_KWARGS = {"sort_keys": True, "separators": (",", ":")}


class Recorder(Tracer):
    """A tracer that also snapshots the stats registry at every
    ``snapshot_every``-th authentication checkpoint.

    Events go to a lossless :class:`EventLog`; metrics histograms are
    off (recordings capture the counter namespace exactly — the
    histogram distributions are derivable from the event stream).
    Snapshots are exact despite the engine's deferred-stats hot path:
    any :meth:`StatsRegistry.as_dict` read drains every registered
    flusher first (DESIGN.md §6c), and mid-run reads are bit-identical
    across scalar/vector backends (pinned by
    tests/obs/test_recording.py).
    """

    def __init__(self, snapshot_every: int = 1,
                 categories=None):
        super().__init__(events=True, metrics=False,
                         categories=categories, store=EventLog())
        self.snapshot_every = max(1, snapshot_every)
        self.snapshots: List[Dict[str, object]] = []
        self._auth_seen = 0
        self._last_counters: Dict[str, int] = {}

    def on_auth_mac(self, group_id: int, initiator: int,
                    cycle: int) -> None:
        super().on_auth_mac(group_id, initiator, cycle)
        self._auth_seen += 1
        if (self._auth_seen - 1) % self.snapshot_every:
            return
        if self._system is None:
            return
        current = self._system.stats.as_dict()
        last = self._last_counters
        delta = {name: value for name, value in current.items()
                 if last.get(name) != value}
        self._last_counters = current
        self.snapshots.append({"cycle": cycle, "group": group_id,
                               "counters": delta})


def _checksum(core: Dict[str, object]) -> str:
    canonical = json.dumps(core, **_DUMP_KWARGS)
    return hashlib.sha256(canonical.encode()).hexdigest()


def _plan_to_dict(plan, policy: Optional[str]) -> Dict[str, object]:
    return {
        "seed": plan.seed,
        "policy": policy,
        "specs": [{"kind": spec.kind, "trigger": spec.trigger,
                   "group_id": spec.group_id, "cpu": spec.cpu,
                   "victims": list(spec.victims),
                   "claimed_pid": spec.claimed_pid,
                   "label": spec.label}
                  for spec in plan.specs],
    }


class Recording:
    """One recorded run: a validated payload dict plus typed access.

    Construct with :meth:`build` (from a finished :class:`Recorder`)
    or :meth:`load` / :meth:`loads` (from disk, checksum-verified).
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Dict[str, object]):
        self.payload = payload

    # -- construction --------------------------------------------------

    @classmethod
    def build(cls, point, recorder: Recorder,
              result: Optional[SimulationResult],
              halted: Optional[str] = None,
              fault_plan=None, fault_policy: Optional[str] = None,
              perturbation: Optional[Dict[str, str]] = None,
              timings: Optional[Dict[str, float]] = None
              ) -> "Recording":
        from ..config import config_to_dict
        from ..sim.sweep import ENGINE_VERSION, point_key
        config_payload = config_to_dict(point.config)
        # The backend choice is not part of a recording: backends are
        # bit-identical, so storing it would break byte-identity for
        # no information.
        config_payload.pop("engine", None)
        payload: Dict[str, object] = {
            "kind": "repro-recording",
            "schema_version": RECORDING_SCHEMA_VERSION,
            "engine_version": ENGINE_VERSION,
            "fingerprint": point_key(point),
            "workload": {"name": point.workload,
                         "cpus": point.config.num_processors,
                         "scale": point.scale,
                         "seed": point.seed},
            "config": config_payload,
            "events": recorder.ring.columns(),
            "events_total": recorder.ring.total_recorded,
            "snapshots": recorder.snapshots,
            "snapshot_every": recorder.snapshot_every,
            "result": None if result is None else {
                "cycles": result.cycles,
                "per_cpu_cycles": list(result.per_cpu_cycles),
                "stats": dict(result.stats)},
            "halted": halted,
            "fault_plan": None if fault_plan is None
            else _plan_to_dict(fault_plan, fault_policy),
            "perturbation": perturbation,
            "timings": dict(timings) if timings else {},
        }
        payload["checksum"] = _checksum(cls._core(payload))
        return cls(payload)

    @staticmethod
    def _core(payload: Dict[str, object]) -> Dict[str, object]:
        """The checksummed (and diffed) subset: everything but the
        checksum itself and the wall-clock timings."""
        return {name: value for name, value in payload.items()
                if name not in ("checksum", "timings")}

    # -- persistence ---------------------------------------------------

    def to_bytes(self) -> bytes:
        return (json.dumps(self.payload, **_DUMP_KWARGS) + "\n"
                ).encode("utf-8")

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(self.to_bytes())
        return path

    @classmethod
    def loads(cls, data: Union[str, bytes],
              source: str = "<recording>") -> "Recording":
        try:
            payload = json.loads(data)
        except ValueError as exc:
            raise TraceError(
                f"{source} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict) or \
                payload.get("kind") != "repro-recording":
            raise TraceError(
                f"{source} is not a repro recording "
                "(missing kind: repro-recording)")
        version = payload.get("schema_version")
        if version != RECORDING_SCHEMA_VERSION:
            raise TraceError(
                f"{source} has recording schema version {version!r}; "
                f"this build reads version {RECORDING_SCHEMA_VERSION}")
        stored = payload.get("checksum")
        if stored != _checksum(cls._core(payload)):
            raise TraceError(
                f"{source} failed its checksum — truncated or "
                "hand-edited recording")
        return cls(payload)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Recording":
        path = Path(path)
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise TraceError(
                f"cannot read recording {path}: {exc}") from None
        return cls.loads(data, source=str(path))

    # -- typed access ---------------------------------------------------

    @property
    def fingerprint(self) -> str:
        return self.payload["fingerprint"]

    @property
    def workload(self) -> Dict[str, object]:
        return self.payload["workload"]

    @property
    def snapshots(self) -> List[Dict[str, object]]:
        return self.payload["snapshots"]

    @property
    def snapshot_every(self) -> int:
        return self.payload.get("snapshot_every", 1)

    @property
    def halted(self) -> Optional[str]:
        return self.payload.get("halted")

    @property
    def perturbation(self) -> Optional[Dict[str, str]]:
        return self.payload.get("perturbation")

    @property
    def events_total(self) -> int:
        return self.payload["events_total"]

    @property
    def cycles(self) -> Optional[int]:
        result = self.payload.get("result")
        return None if result is None else result["cycles"]

    def events(self) -> Iterator[TraceEvent]:
        """The recorded event stream, oldest first."""
        columns = self.payload["events"]
        for row in zip(columns["kind"], columns["cycle"],
                       columns["dur"], columns["cpu"], columns["a0"],
                       columns["a1"], columns["a2"]):
            yield TraceEvent(*row)

    def final_stats(self) -> Dict[str, int]:
        """Final counter values: the result's, or (for a halted run)
        the cumulative value of the last snapshot."""
        result = self.payload.get("result")
        if result is not None:
            return dict(result["stats"])
        cumulative: Dict[str, int] = {}
        for snapshot in self.snapshots:
            cumulative.update(snapshot["counters"])
        return cumulative

    def point(self):
        """Rebuild the :class:`~repro.sim.sweep.SweepPoint` this
        recording captured (engine backend left at ``auto``)."""
        from ..config import config_from_dict
        from ..sim.sweep import SweepPoint
        workload = self.payload["workload"]
        config = config_from_dict(self.payload["config"])
        return SweepPoint(workload=workload["name"], config=config,
                          scale=workload["scale"],
                          seed=workload["seed"])

    def to_result(self) -> SimulationResult:
        """The recorded final result; raises for halted runs."""
        result = self.payload.get("result")
        if result is None:
            raise TraceError(
                "recording has no final result (run halted: "
                f"{self.halted})")
        workload = self.payload["workload"]
        return SimulationResult(
            workload=workload["name"], num_cpus=workload["cpus"],
            cycles=result["cycles"],
            per_cpu_cycles=list(result["per_cpu_cycles"]),
            stats=dict(result["stats"]))

    def core_equal(self, other: "Recording") -> bool:
        """True when the two recordings captured the same run: same
        events, snapshots, result and halt state (fingerprint,
        perturbation label and timings are metadata, not behavior)."""
        mine, theirs = self.payload, other.payload
        return all(mine.get(name) == theirs.get(name)
                   for name in ("events", "snapshots", "result",
                                "halted"))


def record_run(point, snapshot_every: int = 1,
               fault_plan=None, fault_policy: str = "rekey-replay",
               perturbation: Optional[Dict[str, str]] = None,
               timings: Optional[Dict[str, float]] = None
               ) -> Recording:
    """Run one sweep point with a :class:`Recorder` attached.

    ``fault_plan`` additionally attaches a
    :class:`~repro.faults.injector.FaultInjector`; a ``halt``-policy
    recovery that aborts the run is captured as a halted recording
    (``result: null``) rather than raised. Pass ``timings`` (e.g.
    ``PhaseTimer.as_dict()``) to embed wall-clock phases — they are
    excluded from the checksum and from diffs, but embedding them
    still breaks byte-identity between repeat recordings, so the
    default leaves them out.
    """
    from ..sim.sweep import build_system
    from ..workloads.registry import generate
    workload = generate(point.workload, point.config.num_processors,
                        scale=point.scale, seed=point.seed)
    system = build_system(point.config)
    recorder = Recorder(snapshot_every=snapshot_every).attach(system)
    injector = None
    if fault_plan is not None and len(fault_plan):
        from ..faults.injector import FaultInjector
        injector = FaultInjector(fault_plan,
                                 policy=fault_policy).attach(system)
    halted: Optional[str] = None
    result: Optional[SimulationResult] = None
    try:
        result = system.run(workload)
    except ReproError as exc:
        halted = f"{type(exc).__name__}: {exc}"
    if injector is not None:
        injector.finalize()
    return Recording.build(point, recorder, result, halted=halted,
                           fault_plan=fault_plan,
                           fault_policy=(None if fault_plan is None
                                         else fault_policy),
                           perturbation=perturbation, timings=timings)
